//! The scale/latency harness: zero-copy payloads under simulated load.
//!
//! Not a paper figure — this is the repo's judging harness for the
//! bytes lane (ISSUE 8): thousands of simulated clients fan variable-size
//! payloads into a hand-sharded MPMC bytes queue (one
//! `ffq::mpmc::bytes_channel` ring per shard, clients hashed to shards,
//! rank-claiming multi-consumer drain per shard), and every message
//! carries a nanosecond timestamp so consumers record end-to-end latency
//! into HDR-style log-linear histograms ([`ffq_bench::hist`]).
//!
//! Two payload lanes run at identical topology so the difference is
//! exactly the copies:
//!
//! * **zero_copy** — the producer builds the message directly in the
//!   cell's slot buffer (`reserve(len)` → in-place write → `commit`) and
//!   the consumer reads it through the borrowed [`PayloadRef`] view. No
//!   intermediate buffer on either side.
//! * **copy_through** — the producer builds the message in a scratch
//!   `Vec` and `send_bytes` copies it into the slot; the consumer copies
//!   the payload out (`to_vec`) before reading it. This is what a
//!   fixed-item queue forces on variable-size traffic: serialize into a
//!   staging buffer, copy in, copy out.
//!
//! Scenarios:
//!
//! * **per_item_cost** — one thread bounces bursts through a
//!   cache-resident SPSC bytes ring: no parking, no scheduler, no rank
//!   contention, so the lane difference is exactly the copies. This is
//!   the row pair that prices the zero-copy bet itself.
//! * **burst_drain** — every client sends bursts of [`BURST`] messages;
//!   the bounded rings absorb, backpressure producers, and drain. The
//!   p999 shows the queue-buildup tail.
//! * **slow_consumer** — same traffic, but one consumer of shard 0
//!   stalls every [`SLOW_EVERY`] messages. In the zero-copy lane it
//!   stalls *while holding the borrowed view* (processing in place), so
//!   its claimed cell stays busy and the producer gap-skips around it —
//!   the honest cost of borrowing; the copy lane drops the view before
//!   stalling. Degradation, never corruption: every payload still
//!   arrives byte-identical.
//! * **slow_consumer_unbounded** — the same slow consumer over the
//!   unbounded segment-list tier (`ffq::unbounded::mpmc`), where
//!   producers never block and the queue grows instead. An extra *idle*
//!   consumer handle is held as a monitoring tap — exactly the handle
//!   users leave lying around — and because reclamation is handle-driven
//!   it pins every segment behind it (`segments_freed` stays ~0, the
//!   freelist starves). The `catch_up` variant has the tap call
//!   [`catch_up()`] periodically, releasing its era pin so drained
//!   segments actually recycle. Compare `segments_freed`/`freelist_hits`
//!   between the two rows.
//! * **shm_rpc** — cross-process RPC over POSIX shared memory: this
//!   binary re-executes itself as an echo server (`--rpc-echo-server`),
//!   the two processes connected only by shm names (the ISSUE 10 C-ABI
//!   satellite). The client ping-pongs request words through an SPMC
//!   submission queue and an SPSC response queue and records full
//!   round-trip latency. Both lanes talk to the *same* Rust echo server;
//!   only the client-side API differs — `rust_client` drives the native
//!   `ffq_shm` handles, `ffi_client` drives the `ffq-ffi` C ABI
//!   (`ffq_spmc_u64_enqueue`, opaque handles, panic shims, status codes)
//!   exactly as a C program would. The derived `ffi_overhead` row is the
//!   per-item difference: what crossing the ABI boundary costs.
//! * **adapter** — the [`BenchHandle`] word-benchmark interface over the
//!   fixed-item `FfqMpmc` vs the bytes-lane `FfqBytesMpmc` adapter, so
//!   the comparative figures' framing (u64 words) prices the descriptor
//!   machinery directly.
//! * **broadcast_fanout** — the seqlock-cell broadcast lane
//!   (`ffq::broadcast`): one wait-free producer, every subscriber
//!   consumes the *full* stream. Swept over subscriber counts; a slow
//!   subscriber loses items instead of backpressuring the producer, and
//!   the loss is accounted exactly — per row,
//!   `items + lagged_items == publishes × subscribers` (`items` counts
//!   deliveries). The producer finishes its publishes regardless of how
//!   many subscribers ride along (the wait-free claim); `lagged_items`
//!   shows what that costs the laggards, brutally so on a single-core
//!   host where the producer laps parked subscribers constantly.
//!
//! Usage: `fig_scale [--quick] [--clients <n>]`
//! (internal: `fig_scale --rpc-echo-server <base>` is the forked child)
//!
//! Writes `BENCH_scale.json` under `target/bench-results/`; the
//! committed copy lives at `results/BENCH_scale.json`.
//!
//! [`PayloadRef`]: ffq::bytes::PayloadRef
//! [`catch_up()`]: ffq::unbounded::McConsumer::catch_up

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use ffq::bytes::{BytesConsumer, BytesProducer, McConsumer, MpProducer};
use ffq_baselines::{
    ffqueue::{FfqBytesMpmc, FfqMpmc},
    BenchHandle, BenchQueue,
};
use ffq_bench::hist::{Histogram, Summary};
use ffq_bench::output::write_json;
use ffq_shm::{spmc, spsc, ShmDequeueError, ShmRegion};

/// Bytes-MPMC rings the clients hash onto.
const SHARDS: usize = 2;
/// OS threads driving the simulated clients (clients are multiplexed).
const DRIVERS: usize = 2;
/// Rank-claiming consumers per shard ring.
const CONSUMERS_PER_SHARD: usize = 2;
/// Cells per shard ring.
const RING_CAP: usize = 1024;
/// Messages per client burst.
const BURST: usize = 8;
/// Payload sizes swept in the burst/drain scenario.
const PAYLOADS: [usize; 4] = [64, 256, 1024, 4096];
/// Payload sizes swept in the slow-consumer scenario.
const SLOW_PAYLOADS: [usize; 2] = [256, 1024];
/// The slow consumer stalls every this many messages...
const SLOW_EVERY: u64 = 64;
/// ...for this long.
const SLOW_STALL: Duration = Duration::from_micros(200);
/// Segment capacity for the unbounded scenario.
const SEG_CAP: usize = 1024;

/// Payload bytes reserved for the header: `[0..8)` sequence number,
/// `[8..16)` nanosecond timestamp.
const HDR: usize = 16;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Lane {
    ZeroCopy,
    CopyThrough,
}

impl Lane {
    fn name(self) -> &'static str {
        match self {
            Lane::ZeroCopy => "zero_copy",
            Lane::CopyThrough => "copy_through",
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Scenario {
    BurstDrain,
    SlowConsumer,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::BurstDrain => "burst_drain",
            Scenario::SlowConsumer => "slow_consumer",
        }
    }
}

/// One measured configuration, as serialized into `BENCH_scale.json`.
#[derive(Debug, Clone, Serialize)]
struct ScaleRow {
    /// "burst_drain", "slow_consumer", "slow_consumer_unbounded",
    /// "shm_rpc", "adapter".
    scenario: String,
    /// "zero_copy", "copy_through", "unbounded_idle_pin",
    /// "unbounded_catch_up", "rust_client", "ffi_client", "ffi_overhead",
    /// "fixed_item", "bytes".
    lane: String,
    /// Bytes per message (8 for the word-queue adapter rows).
    payload_bytes: usize,
    /// Simulated clients (0 where the notion doesn't apply).
    clients: usize,
    /// Shard rings in the fan-in.
    shards: usize,
    /// Messages moved.
    items: u64,
    /// Wall-clock seconds.
    elapsed_secs: f64,
    /// Wall-clock nanoseconds per message (the per-item cost).
    per_item_ns: f64,
    /// Millions of messages per second.
    mops_per_sec: f64,
    /// End-to-end enqueue→dequeue latency percentiles (zeros for the
    /// throughput-only adapter rows).
    latency: Summary,
    /// For zero_copy rows: copy_through `per_item_ns` at the same
    /// scenario/payload divided by this row's (>1 means zero-copy wins).
    /// 0 when not applicable.
    speedup_vs_copy: f64,
    /// Unbounded rows: fresh segment allocations across all handles.
    segments_allocated: u64,
    /// Unbounded rows: rolls served by the freelist.
    freelist_hits: u64,
    /// Unbounded rows: drained segments retired into the limbo list.
    segments_retired: u64,
    /// Unbounded rows: retired segments proved quiescent and recycled.
    segments_freed: u64,
    /// Broadcast rows: items written off as `Lagged` across all
    /// subscribers (`items` counts actual deliveries; the two always sum
    /// to publishes × subscribers). 0 elsewhere.
    lagged_items: u64,
}

impl ScaleRow {
    #[allow(clippy::too_many_arguments)]
    fn new(
        scenario: &str,
        lane: &str,
        payload_bytes: usize,
        clients: usize,
        shards: usize,
        items: u64,
        elapsed: Duration,
        latency: Summary,
    ) -> Self {
        let secs = elapsed.as_secs_f64().max(1e-9);
        Self {
            scenario: scenario.to_string(),
            lane: lane.to_string(),
            payload_bytes,
            clients,
            shards,
            items,
            elapsed_secs: secs,
            per_item_ns: secs * 1e9 / items.max(1) as f64,
            mops_per_sec: items as f64 / secs / 1e6,
            latency,
            speedup_vs_copy: 0.0,
            segments_allocated: 0,
            freelist_hits: 0,
            segments_retired: 0,
            segments_freed: 0,
            lagged_items: 0,
        }
    }
}

/// Fills `buf` with the message for `seq`: sequence number, a zeroed
/// timestamp slot (stamped at the last moment before publish), then
/// pattern words derived from `seq` so the consumer can verify every
/// byte it claims to have received.
fn fill_payload(buf: &mut [u8], seq: u64) {
    buf[..8].copy_from_slice(&seq.to_le_bytes());
    buf[8..HDR].copy_from_slice(&0u64.to_le_bytes());
    let mut i = 0u64;
    let mut chunks = buf[HDR..].chunks_exact_mut(8);
    for chunk in &mut chunks {
        let w = seq ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        chunk.copy_from_slice(&w.to_le_bytes());
        i += 1;
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let w = (seq ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).to_le_bytes();
        let n = rem.len();
        rem.copy_from_slice(&w[..n]);
    }
}

/// Verifies a received message against [`fill_payload`]'s pattern and
/// returns `(seq, stamp_ns)`. Panics on any corrupted byte — the harness
/// doubles as an integrity test.
fn verify_payload(buf: &[u8]) -> (u64, u64) {
    let mut w8 = [0u8; 8];
    w8.copy_from_slice(&buf[..8]);
    let seq = u64::from_le_bytes(w8);
    w8.copy_from_slice(&buf[8..HDR]);
    let stamp = u64::from_le_bytes(w8);
    // Branch-free word compare (one assert at the end) so verification
    // runs at memory speed and doesn't drown the lane difference the
    // harness exists to measure.
    let mut diff = 0u64;
    let mut i = 0u64;
    let mut chunks = buf[HDR..].chunks_exact(8);
    for chunk in &mut chunks {
        w8.copy_from_slice(chunk);
        diff |= u64::from_le_bytes(w8) ^ seq ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        i += 1;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let w = (seq ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).to_le_bytes();
        diff |= u64::from(rem != &w[..rem.len()]);
    }
    assert_eq!(diff, 0, "payload corrupted (seq {seq})");
    (seq, stamp)
}

/// Runs one (scenario, lane, payload) configuration through the sharded
/// bytes fan-in and returns its row.
fn run_bytes_config(
    scenario: Scenario,
    lane: Lane,
    payload: usize,
    clients: usize,
    bursts_per_client: usize,
) -> ScaleRow {
    let items_total = (clients * bursts_per_client * BURST) as u64;
    let mut producers: Vec<Vec<MpProducer>> = (0..DRIVERS).map(|_| Vec::new()).collect();
    let mut consumers: Vec<(usize, McConsumer<true>)> = Vec::new();
    for shard in 0..SHARDS {
        let (tx, rx) = ffq::mpmc::bytes_channel(RING_CAP, payload)
            .expect("harness geometry within layout limits");
        for driver_producers in producers.iter_mut() {
            driver_producers.push(tx.clone());
        }
        for _ in 0..CONSUMERS_PER_SHARD {
            consumers.push((shard, rx.clone()));
        }
        // `tx`/`rx` drop here: the clones above are the only handles, so
        // consumers see Disconnected exactly when the drivers finish.
    }

    let epoch = Instant::now();
    let start = Instant::now();

    let driver_threads: Vec<_> = producers
        .into_iter()
        .enumerate()
        .map(|(driver, mut txs)| {
            std::thread::spawn(move || {
                let mut scratch = vec![0u8; payload];
                let mut counter = 0u64;
                // Clients are multiplexed round-robin: each round, every
                // client this driver simulates emits one burst.
                let my_clients: Vec<usize> = (driver..clients).step_by(DRIVERS).collect();
                for _round in 0..bursts_per_client {
                    for &client in &my_clients {
                        let shard = client % SHARDS;
                        for _ in 0..BURST {
                            let seq = (driver as u64) << 48 | counter;
                            counter += 1;
                            match lane {
                                Lane::ZeroCopy => {
                                    let mut slot = txs[shard]
                                        .reserve(payload)
                                        .expect("payload sized to the slot buffer");
                                    fill_payload(&mut slot, seq);
                                    let now = epoch.elapsed().as_nanos() as u64;
                                    slot[8..HDR].copy_from_slice(&now.to_le_bytes());
                                    slot.commit();
                                }
                                Lane::CopyThrough => {
                                    fill_payload(&mut scratch, seq);
                                    let now = epoch.elapsed().as_nanos() as u64;
                                    scratch[8..HDR].copy_from_slice(&now.to_le_bytes());
                                    txs[shard]
                                        .send_bytes(&scratch)
                                        .expect("payload sized to the slot buffer");
                                }
                            }
                        }
                    }
                }
            })
        })
        .collect();

    let consumer_threads: Vec<_> = consumers
        .into_iter()
        .enumerate()
        .map(|(idx, (shard, mut rx))| {
            let slow = scenario == Scenario::SlowConsumer && shard == 0 && idx == 0;
            std::thread::spawn(move || {
                let mut hist = Histogram::new();
                let mut got = 0u64;
                loop {
                    match lane {
                        Lane::ZeroCopy => match rx.recv() {
                            Ok(view) => {
                                let now = epoch.elapsed().as_nanos() as u64;
                                let (_seq, stamp) = verify_payload(&view);
                                hist.record(now.saturating_sub(stamp));
                                got += 1;
                                if slow && got.is_multiple_of(SLOW_EVERY) {
                                    // Stall while holding the borrowed
                                    // view: the cell stays busy and the
                                    // producer gap-skips around it.
                                    std::thread::sleep(SLOW_STALL);
                                }
                                drop(view);
                            }
                            Err(_) => break,
                        },
                        Lane::CopyThrough => {
                            let owned = match rx.recv() {
                                Ok(view) => view.to_vec(),
                                Err(_) => break,
                            };
                            let now = epoch.elapsed().as_nanos() as u64;
                            let (_seq, stamp) = verify_payload(&owned);
                            hist.record(now.saturating_sub(stamp));
                            got += 1;
                            if slow && got.is_multiple_of(SLOW_EVERY) {
                                // The copy released the cell already;
                                // the stall hits only this thread.
                                std::thread::sleep(SLOW_STALL);
                            }
                        }
                    }
                }
                (hist, got)
            })
        })
        .collect();

    for t in driver_threads {
        t.join().expect("driver thread panicked");
    }
    let mut hist = Histogram::new();
    let mut got_total = 0u64;
    for t in consumer_threads {
        let (h, got) = t.join().expect("consumer thread panicked");
        hist.merge(&h);
        got_total += got;
    }
    let elapsed = start.elapsed();
    assert_eq!(
        got_total, items_total,
        "harness lost or duplicated messages"
    );

    ScaleRow::new(
        scenario.name(),
        lane.name(),
        payload,
        clients,
        SHARDS,
        items_total,
        elapsed,
        hist.summary(),
    )
}

/// The slow consumer over the unbounded tier, with an idle monitoring
/// tap that either pins reclamation (`catch_up == false`) or releases
/// its pin periodically (`catch_up == true`).
fn run_unbounded_slow(catch_up: bool, items_total: u64) -> ScaleRow {
    let (tx, rx) = ffq::unbounded::mpmc::channel::<[u64; 2]>(SEG_CAP);
    // The idle tap: cloned up front, then held without polling — the
    // handle users keep "just in case" that silently pins every segment
    // behind its era.
    let mut tap = rx.clone();
    let done = Arc::new(AtomicBool::new(false));

    let epoch = Instant::now();
    let start = Instant::now();
    let per_driver = items_total / DRIVERS as u64;
    let items_total = per_driver * DRIVERS as u64;

    let drivers: Vec<_> = (0..DRIVERS)
        .map(|driver| {
            let mut tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..per_driver {
                    let seq = (driver as u64) << 48 | i;
                    let stamp = epoch.elapsed().as_nanos() as u64;
                    // Never blocks: full segments roll, the queue grows.
                    tx.enqueue([seq, stamp]);
                }
                tx.seg_stats()
            })
        })
        .collect();

    let tap_done = Arc::clone(&done);
    let tap_thread = std::thread::spawn(move || {
        while !tap_done.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_micros(500));
            if catch_up {
                // Follow the segment list without consuming: releases
                // this handle's era pin on everything behind the tip.
                tap.catch_up();
            }
        }
        tap.seg_stats()
    });

    let consumer = std::thread::spawn(move || {
        let mut rx = rx;
        let mut hist = Histogram::new();
        let mut got = 0u64;
        // Slow phase over the first half (the queue grows), then an
        // unthrottled drain.
        while got < items_total {
            match rx.try_dequeue() {
                Ok([_seq, stamp]) => {
                    let now = epoch.elapsed().as_nanos() as u64;
                    hist.record(now.saturating_sub(stamp));
                    got += 1;
                    if got < items_total / 2 && got.is_multiple_of(SLOW_EVERY) {
                        std::thread::sleep(SLOW_STALL);
                    }
                }
                Err(_) => std::hint::spin_loop(),
            }
        }
        (hist, rx)
    });

    let mut seg = ffq::SegmentStats::default();
    for d in drivers {
        seg = seg.merge(d.join().expect("driver thread panicked"));
    }
    let (hist, mut rx) = consumer.join().expect("consumer thread panicked");
    let elapsed = start.elapsed();

    // Coda: roll a few more segments through the drained queue (outside
    // the timed window, not counted in `items_total`) so the limbo scans
    // that run on rolls and seam advances get a chance to recycle what
    // the drain retired. The main thread's spare `tx` idle-pinned the
    // list until now — its first coda enqueue chases to the tip and
    // releases that pin — so after the coda the only era still parked in
    // the past is the tap's, and `segments_freed` isolates its effect.
    let mut tx = tx;
    let coda = 4 * SEG_CAP as u64;
    for _ in 0..coda {
        tx.enqueue([0, 0]);
    }
    let mut drained = 0u64;
    while drained < coda {
        if rx.try_dequeue().is_ok() {
            drained += 1;
        } else {
            std::hint::spin_loop();
        }
    }
    seg = seg.merge(tx.seg_stats());
    seg = seg.merge(rx.seg_stats());
    drop(tx);
    drop(rx);

    done.store(true, Ordering::Release);
    seg = seg.merge(tap_thread.join().expect("tap thread panicked"));

    let mut row = ScaleRow::new(
        "slow_consumer_unbounded",
        if catch_up {
            "unbounded_catch_up"
        } else {
            "unbounded_idle_pin"
        },
        16,
        0,
        1,
        items_total,
        elapsed,
        hist.summary(),
    );
    row.segments_allocated = seg.segments_allocated;
    row.freelist_hits = seg.freelist_hits;
    row.segments_retired = seg.segments_retired;
    row.segments_freed = seg.segments_freed;
    row
}

/// The contention-free per-item cost of each lane: one thread bounces
/// bursts through an SPSC bytes ring small enough to stay cache-resident,
/// so the *only* difference between the lanes is the copies — no parking,
/// no scheduler, no rank contention. This is the row pair that prices the
/// zero-copy bet itself; the threaded scenarios above price it under
/// load (where protocol + scheduling noise is shared by both lanes).
fn run_per_item(lane: Lane, payload: usize, items: u64) -> ScaleRow {
    const PI_RING: usize = 64;
    const PI_BURST: u64 = PI_RING as u64 / 2;
    let (mut tx, mut rx) =
        ffq::spsc::bytes_channel(PI_RING, payload).expect("harness geometry within layout limits");
    let epoch = Instant::now();
    let mut scratch = vec![0u8; payload];
    let mut hist = Histogram::new();
    let items = items / PI_BURST * PI_BURST;
    let mut seq = 0u64;
    let start = Instant::now();
    while seq < items {
        for _ in 0..PI_BURST {
            match lane {
                Lane::ZeroCopy => {
                    let mut slot = tx.reserve(payload).expect("payload fits the slot");
                    fill_payload(&mut slot, seq);
                    let now = epoch.elapsed().as_nanos() as u64;
                    slot[8..HDR].copy_from_slice(&now.to_le_bytes());
                    slot.commit();
                }
                Lane::CopyThrough => {
                    fill_payload(&mut scratch, seq);
                    let now = epoch.elapsed().as_nanos() as u64;
                    scratch[8..HDR].copy_from_slice(&now.to_le_bytes());
                    tx.send_bytes(&scratch).expect("payload fits the slot");
                }
            }
            seq += 1;
        }
        for _ in 0..PI_BURST {
            match lane {
                Lane::ZeroCopy => {
                    let view = rx.try_recv().expect("burst just published");
                    let now = epoch.elapsed().as_nanos() as u64;
                    let (_seq, stamp) = verify_payload(&view);
                    hist.record(now.saturating_sub(stamp));
                }
                Lane::CopyThrough => {
                    let owned = rx.try_recv().expect("burst just published").to_vec();
                    let now = epoch.elapsed().as_nanos() as u64;
                    let (_seq, stamp) = verify_payload(&owned);
                    hist.record(now.saturating_sub(stamp));
                }
            }
        }
    }
    let elapsed = start.elapsed();
    ScaleRow::new(
        "per_item_cost",
        lane.name(),
        payload,
        1,
        1,
        items,
        elapsed,
        hist.summary(),
    )
}

/// Cells in each RPC queue (one outstanding request, so far oversized).
const RPC_CAP: usize = 256;
/// Untimed ping-pongs before the measured window (attach handshake,
/// first-touch page faults, branch warm-up).
const RPC_WARMUP: u64 = 256;

/// Opens a shared-memory region by name, retrying while the peer process
/// is still creating/formatting it.
fn rpc_open_retry(name: &str) -> ShmRegion {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match ShmRegion::open(name) {
            Ok(region) => return region,
            Err(e) if Instant::now() > deadline => {
                panic!("rpc echo server: open {name} failed: {e}")
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// The child-process half of the `shm_rpc` scenario: attach to the
/// parent's submission (SPMC) and response (SPSC) queues and echo every
/// word back until the client detaches. Never returns.
fn run_rpc_echo_server(base: &str) -> ! {
    let mut rx =
        spmc::attach_consumer::<u64>(rpc_open_retry(&format!("{base}-sub"))).expect("attach sub");
    let mut tx =
        spsc::attach_producer::<u64>(rpc_open_retry(&format!("{base}-rsp"))).expect("attach rsp");
    loop {
        match rx.dequeue() {
            Ok(word) => {
                if tx.enqueue(word).is_err() {
                    std::process::exit(1);
                }
            }
            Err(ShmDequeueError::Disconnected) => std::process::exit(0),
            Err(ShmDequeueError::Poisoned) => std::process::exit(1),
        }
    }
}

/// The native-handle client lane: `ffq_shm` producer/consumer directly.
fn rpc_client_rust(sub: ShmRegion, rsp: ShmRegion, items: u64) -> (Duration, Histogram) {
    let mut tx = spmc::attach_producer::<u64>(sub).expect("attach submission producer");
    let mut rx = spsc::attach_consumer::<u64>(rsp).expect("attach response consumer");
    let mut hist = Histogram::new();
    for seq in 0..RPC_WARMUP {
        tx.enqueue(seq).expect("warmup enqueue");
        assert_eq!(rx.dequeue().expect("warmup echo"), seq);
    }
    let start = Instant::now();
    for seq in 0..items {
        let t0 = Instant::now();
        tx.enqueue(seq).expect("rpc enqueue");
        assert_eq!(
            rx.dequeue().expect("rpc echo"),
            seq,
            "rpc echo out of order"
        );
        hist.record(t0.elapsed().as_nanos() as u64);
    }
    (start.elapsed(), hist)
    // `tx` drops here: clean detach, the echo server sees Disconnected.
}

/// The C-ABI client lane: the same ping-pong, but every call crosses the
/// `ffq-ffi` boundary exactly as a C client would — open regions by name,
/// opaque handles, status codes, panic shims. Same server, same queues;
/// the row difference against [`rpc_client_rust`] is the ABI toll.
fn rpc_client_ffi(sub_name: &str, rsp_name: &str, items: u64) -> (Duration, Histogram) {
    use ffq_ffi::typed::{
        ffq_spmc_u64_attach_producer, ffq_spmc_u64_enqueue, ffq_spmc_u64_producer_close,
        ffq_spsc_u64_attach_consumer, ffq_spsc_u64_consumer_close, ffq_spsc_u64_dequeue,
    };
    use ffq_ffi::{ffq_region_close, ffq_region_open, FFQ_OK};
    use std::ffi::CString;
    use std::ptr;

    let sub_c = CString::new(sub_name).expect("shm name");
    let rsp_c = CString::new(rsp_name).expect("shm name");
    // SAFETY: every pointer below is non-null and used per the ffq.h
    // contract (single thread, one live handle each, closed exactly once).
    unsafe {
        let mut sub = ptr::null_mut();
        assert_eq!(ffq_region_open(sub_c.as_ptr(), &mut sub), FFQ_OK);
        let mut rsp = ptr::null_mut();
        assert_eq!(ffq_region_open(rsp_c.as_ptr(), &mut rsp), FFQ_OK);
        let mut tx = ptr::null_mut();
        assert_eq!(ffq_spmc_u64_attach_producer(sub, &mut tx), FFQ_OK);
        let mut rx = ptr::null_mut();
        assert_eq!(ffq_spsc_u64_attach_consumer(rsp, &mut rx), FFQ_OK);
        ffq_region_close(sub);
        ffq_region_close(rsp);

        let mut hist = Histogram::new();
        for seq in 0..RPC_WARMUP {
            assert_eq!(ffq_spmc_u64_enqueue(tx, seq), FFQ_OK);
            let mut out = 0u64;
            assert_eq!(ffq_spsc_u64_dequeue(rx, &mut out), FFQ_OK);
            assert_eq!(out, seq);
        }
        let start = Instant::now();
        for seq in 0..items {
            let t0 = Instant::now();
            assert_eq!(ffq_spmc_u64_enqueue(tx, seq), FFQ_OK);
            let mut out = u64::MAX;
            assert_eq!(ffq_spsc_u64_dequeue(rx, &mut out), FFQ_OK);
            assert_eq!(out, seq, "rpc echo out of order");
            hist.record(t0.elapsed().as_nanos() as u64);
        }
        let elapsed = start.elapsed();
        ffq_spmc_u64_producer_close(tx);
        ffq_spsc_u64_consumer_close(rx);
        (elapsed, hist)
    }
}

/// Runs one `shm_rpc` client lane against a fresh echo-server child
/// process and returns its row.
fn run_shm_rpc(ffi: bool, items: u64) -> ScaleRow {
    let lane = if ffi { "ffi_client" } else { "rust_client" };
    let base = format!("ffq-scale-rpc-{}-{lane}", std::process::id());
    let sub_name = format!("{base}-sub");
    let rsp_name = format!("{base}-rsp");
    let _ = ShmRegion::unlink(&sub_name);
    let _ = ShmRegion::unlink(&rsp_name);

    let sub_region = ShmRegion::create(&sub_name, spmc::required_size::<u64>(RPC_CAP).unwrap())
        .expect("create submission region");
    spmc::format::<u64>(&sub_region, RPC_CAP).expect("format submission queue");
    let rsp_region = ShmRegion::create(&rsp_name, spsc::required_size::<u64>(RPC_CAP).unwrap())
        .expect("create response region");
    spsc::format::<u64>(&rsp_region, RPC_CAP).expect("format response queue");

    let exe = std::env::current_exe().expect("current_exe");
    let mut server = std::process::Command::new(exe)
        .arg("--rpc-echo-server")
        .arg(&base)
        .spawn()
        .expect("spawn rpc echo server");

    let (elapsed, hist) = if ffi {
        drop(sub_region);
        drop(rsp_region);
        rpc_client_ffi(&sub_name, &rsp_name, items)
    } else {
        rpc_client_rust(sub_region, rsp_region, items)
    };

    let status = server.wait().expect("reap rpc echo server");
    assert!(status.success(), "rpc echo server failed ({lane})");
    ShmRegion::unlink(&sub_name).expect("unlink submission region");
    ShmRegion::unlink(&rsp_name).expect("unlink response region");

    ScaleRow::new("shm_rpc", lane, 8, 1, 1, items, elapsed, hist.summary())
}

/// Broadcast fan-out: one wait-free producer publishing `[seq, stamp]`
/// pairs flat out, `subscribers` blocking subscribers each consuming the
/// full stream. `items` counts actual deliveries across all subscribers;
/// whatever a laggard loses to ring wrap-around comes back as `Lagged`
/// reports and lands in `lagged_items` — per subscriber,
/// `received + lagged == publishes`, asserted here, so the row proves the
/// lane's no-silent-loss contract at benchmark scale.
fn run_broadcast(subscribers: usize, publishes: u64) -> ScaleRow {
    let (mut tx, rx) = ffq::broadcast::channel::<[u64; 2]>(RING_CAP);
    let epoch = Instant::now();
    let start = Instant::now();

    let handles: Vec<_> = (0..subscribers)
        .map(|_| {
            let mut rx = rx.clone(); // cursor 0: accounts for the full stream
            std::thread::spawn(move || {
                let mut hist = Histogram::new();
                let (mut received, mut lagged) = (0u64, 0u64);
                loop {
                    match rx.recv() {
                        Ok([_seq, stamp]) => {
                            let now = epoch.elapsed().as_nanos() as u64;
                            hist.record(now.saturating_sub(stamp));
                            received += 1;
                        }
                        Err(ffq::BroadcastRecvError::Lagged(n)) => lagged += n,
                        Err(ffq::BroadcastRecvError::Closed) => break,
                    }
                }
                (hist, received, lagged)
            })
        })
        .collect();
    drop(rx);

    for seq in 0..publishes {
        let stamp = epoch.elapsed().as_nanos() as u64;
        tx.send([seq, stamp]);
    }
    drop(tx);

    let mut hist = Histogram::new();
    let (mut delivered, mut lagged_total) = (0u64, 0u64);
    for h in handles {
        let (h_hist, received, lagged) = h.join().expect("subscriber thread panicked");
        assert_eq!(
            received + lagged,
            publishes,
            "broadcast loss must be fully accounted"
        );
        hist.merge(&h_hist);
        delivered += received;
        lagged_total += lagged;
    }
    let elapsed = start.elapsed();

    let mut row = ScaleRow::new(
        "broadcast_fanout",
        &format!("broadcast_x{subscribers}"),
        16,
        subscribers,
        1,
        delivered,
        elapsed,
        hist.summary(),
    );
    row.lagged_items = lagged_total;
    row
}

/// Word-queue adapter comparison: the same enqueue/dequeue ping through
/// [`BenchHandle`] over the fixed-item and bytes-lane adapters.
fn run_adapter<Q: BenchQueue>(lane: &str, payload: usize, items: u64) -> ScaleRow {
    let q = Arc::new(Q::with_capacity(RING_CAP));
    let mut tx = q.register();
    let mut rx = q.register();
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        for i in 0..items {
            tx.enqueue(i);
        }
    });
    let mut expected = 0u64;
    while expected < items {
        match rx.dequeue() {
            Some(v) => {
                assert_eq!(v, expected, "adapter lane reordered");
                expected += 1;
            }
            None => std::hint::spin_loop(),
        }
    }
    producer.join().expect("producer thread panicked");
    let elapsed = start.elapsed();
    ScaleRow::new(
        "adapter",
        lane,
        payload,
        0,
        1,
        items,
        elapsed,
        Histogram::new().summary(),
    )
}

fn print_rows(rows: &[ScaleRow]) {
    println!(
        "\n{:<26} {:<18} {:>8} {:>9} {:>11} {:>8} {:>10} {:>10} {:>10}",
        "scenario",
        "lane",
        "payload",
        "items",
        "per-item ns",
        "Mops/s",
        "p50 us",
        "p99 us",
        "p999 us"
    );
    for r in rows {
        println!(
            "{:<26} {:<18} {:>8} {:>9} {:>11.1} {:>8.3} {:>10.1} {:>10.1} {:>10.1}",
            r.scenario,
            r.lane,
            r.payload_bytes,
            r.items,
            r.per_item_ns,
            r.mops_per_sec,
            r.latency.p50_ns as f64 / 1e3,
            r.latency.p99_ns as f64 / 1e3,
            r.latency.p999_ns as f64 / 1e3,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--rpc-echo-server") {
        run_rpc_echo_server(args.get(1).expect("--rpc-echo-server needs a base name"));
    }
    let quick = args.iter().any(|a| a == "--quick");
    let mut clients = if quick { 256 } else { 2048 };
    if let Some(i) = args.iter().position(|a| a == "--clients") {
        clients = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(clients);
    }
    let bursts_per_client = if quick { 2 } else { 12 };
    let unbounded_items: u64 = if quick { 8_192 } else { 98_304 };
    let adapter_items: u64 = if quick { 20_000 } else { 400_000 };
    let per_item_items: u64 = if quick { 40_000 } else { 800_000 };

    println!(
        "fig_scale: {clients} simulated clients x {DRIVERS} drivers -> {SHARDS} shards x {CONSUMERS_PER_SHARD} consumers (ring {RING_CAP}, burst {BURST})"
    );

    let mut rows: Vec<ScaleRow> = Vec::new();

    for &payload in &PAYLOADS {
        for lane in [Lane::CopyThrough, Lane::ZeroCopy] {
            println!("per_item_cost: {} @{payload}B ...", lane.name());
            rows.push(run_per_item(lane, payload, per_item_items));
        }
    }
    for &payload in &PAYLOADS {
        for lane in [Lane::CopyThrough, Lane::ZeroCopy] {
            println!("burst_drain: {} @{payload}B ...", lane.name());
            rows.push(run_bytes_config(
                Scenario::BurstDrain,
                lane,
                payload,
                clients,
                bursts_per_client,
            ));
        }
    }
    for &payload in &SLOW_PAYLOADS {
        for lane in [Lane::CopyThrough, Lane::ZeroCopy] {
            println!("slow_consumer: {} @{payload}B ...", lane.name());
            rows.push(run_bytes_config(
                Scenario::SlowConsumer,
                lane,
                payload,
                clients,
                bursts_per_client,
            ));
        }
    }
    println!("slow_consumer_unbounded: idle tap pinning ...");
    rows.push(run_unbounded_slow(false, unbounded_items));
    println!("slow_consumer_unbounded: idle tap with catch_up ...");
    rows.push(run_unbounded_slow(true, unbounded_items));

    let broadcast_subs: &[usize] = if quick { &[2, 8] } else { &[2, 8, 32] };
    let broadcast_publishes: u64 = if quick { 40_000 } else { 400_000 };
    for &subs in broadcast_subs {
        println!("broadcast_fanout: {subs} subscribers ...");
        rows.push(run_broadcast(subs, broadcast_publishes));
    }

    let rpc_items: u64 = if quick { 4_000 } else { 40_000 };
    println!("shm_rpc: rust_client ({rpc_items} round trips) ...");
    let rpc_rust = run_shm_rpc(false, rpc_items);
    println!("shm_rpc: ffi_client ({rpc_items} round trips) ...");
    let rpc_ffi = run_shm_rpc(true, rpc_items);
    let (rpc_rust_ns, rpc_ffi_ns) = (rpc_rust.per_item_ns, rpc_ffi.per_item_ns);
    // The FFI-vs-Rust overhead row: same server, same queues, so the
    // per-item delta is exactly the C-ABI boundary (status mapping,
    // opaque-handle deref, panic shim, eager poison gate).
    let mut rpc_overhead = ScaleRow::new(
        "shm_rpc",
        "ffi_overhead",
        8,
        1,
        1,
        rpc_items,
        Duration::from_secs_f64((rpc_ffi_ns - rpc_rust_ns).max(0.0) * rpc_items as f64 / 1e9),
        Histogram::new().summary(),
    );
    rpc_overhead.mops_per_sec = 0.0;
    rows.push(rpc_rust);
    rows.push(rpc_ffi);
    rows.push(rpc_overhead);

    println!("adapter: fixed-item vs bytes BenchHandle ...");
    rows.push(run_adapter::<FfqMpmc>("fixed_item", 8, adapter_items));
    // The bytes adapter reads its payload size from the environment.
    std::env::set_var("FFQ_BENCH_PAYLOAD", "64");
    rows.push(run_adapter::<FfqBytesMpmc>("bytes@64", 64, adapter_items));

    // Zero-copy speedup vs the copy lane at identical scenario/payload.
    let copies: Vec<(String, usize, f64)> = rows
        .iter()
        .filter(|r| r.lane == "copy_through")
        .map(|r| (r.scenario.clone(), r.payload_bytes, r.per_item_ns))
        .collect();
    for r in rows.iter_mut().filter(|r| r.lane == "zero_copy") {
        if let Some((_, _, copy_ns)) = copies
            .iter()
            .find(|(s, p, _)| *s == r.scenario && *p == r.payload_bytes)
        {
            r.speedup_vs_copy = copy_ns / r.per_item_ns;
        }
    }

    print_rows(&rows);
    println!("\nzero-copy speedup vs copy-through (per-item cost):");
    for r in rows.iter().filter(|r| r.speedup_vs_copy > 0.0) {
        println!(
            "  {:<16} @{:>5}B: {:.2}x",
            r.scenario, r.payload_bytes, r.speedup_vs_copy
        );
    }
    for r in rows
        .iter()
        .filter(|r| r.scenario == "slow_consumer_unbounded")
    {
        println!(
            "  {:<22}: {} allocated, {} freelist hits, {} retired, {} freed",
            r.lane, r.segments_allocated, r.freelist_hits, r.segments_retired, r.segments_freed
        );
    }
    println!(
        "  shm_rpc: ffi client {rpc_ffi_ns:.0} ns/rt vs rust client {rpc_rust_ns:.0} ns/rt \
         ({:+.1}% C-ABI overhead)",
        (rpc_ffi_ns / rpc_rust_ns - 1.0) * 100.0
    );
    for r in rows.iter().filter(|r| r.scenario == "broadcast_fanout") {
        println!(
            "  {:<22}: {} delivered, {} written off as Lagged ({} publishes x {} subscribers)",
            r.lane,
            r.items,
            r.lagged_items,
            (r.items + r.lagged_items) / r.clients.max(1) as u64,
            r.clients
        );
    }

    write_json("BENCH_scale", &rows);
    println!("\nwrote BENCH_scale.json (copy the blessed run to results/BENCH_scale.json)");
}
