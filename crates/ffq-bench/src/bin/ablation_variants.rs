//! Ablation: what each relaxation of FFQ buys.
//!
//! The paper's conclusion attributes SPMC's >50% advantage over MPMC to
//! "needing fewer atomic operations", and §IV claims a badly-tuned vs
//! well-tuned configuration can differ by an order of magnitude. This
//! binary isolates the design choices one at a time, always on the same
//! round-trip workload:
//!
//! 1. **Variant ablation** (1 producer / 1 consumer): SPSC (no atomic RMW)
//!    → SPMC (head fetch-add) → MPMC (tail fetch-add + double-word CAS).
//! 2. **Layout ablation** under consumer contention (1 producer / 4
//!    consumers, MPMC): the Figure 2 axes at one topology.
//! 3. **Queue-size ablation** (SPSC): tiny vs tuned vs cache-busting, the
//!    §IV-C claim.
//!
//! Usage: `ablation_variants [--quick] [--secs <f>]`

use ffq::cell::{CompactCell, PaddedCell};
use ffq::layout::{LinearMap, RotateMap};
use ffq_bench::measure::CommonArgs;
use ffq_bench::microbench::{mpmc_roundtrips, spmc_roundtrips, spsc_roundtrips, Topo};
use ffq_bench::output::{print_table, write_json};

fn main() {
    let args = CommonArgs::parse();
    let q = 8192;
    println!("FFQ ablation study");

    // 1. Variant ablation.
    let topo1 = Topo {
        producers: 1,
        consumers_per: 1,
        queue_size: q,
    };
    let variants = vec![
        spsc_roundtrips(q, args.duration, "spsc (no atomic RMW)"),
        spmc_roundtrips(topo1, args.duration, None, "spmc (head FAA)"),
        mpmc_roundtrips::<PaddedCell<u64>, LinearMap>(
            topo1,
            args.duration,
            "mpmc (tail FAA + DWCAS)",
        ),
    ];
    print_table("Ablation 1: variant cost, 1p/1c", &variants);

    // 2. Layout ablation under consumer contention.
    let topo4 = Topo {
        producers: 1,
        consumers_per: 4,
        queue_size: q,
    };
    let layouts = vec![
        mpmc_roundtrips::<CompactCell<u64>, LinearMap>(topo4, args.duration, "compact+linear"),
        mpmc_roundtrips::<PaddedCell<u64>, LinearMap>(topo4, args.duration, "padded+linear"),
        mpmc_roundtrips::<CompactCell<u64>, RotateMap>(topo4, args.duration, "compact+rotate"),
        mpmc_roundtrips::<PaddedCell<u64>, RotateMap>(topo4, args.duration, "padded+rotate"),
    ];
    print_table("Ablation 2: layout under 4 consumers (mpmc)", &layouts);

    // 3. Queue-size ablation.
    let sizes = vec![
        spsc_roundtrips(4, args.duration, "spsc 4 entries (too small)"),
        spsc_roundtrips(1 << 10, args.duration, "spsc 1k entries"),
        spsc_roundtrips(1 << 16, args.duration, "spsc 64k entries (paper's peak)"),
        spsc_roundtrips(1 << 21, args.duration, "spsc 2M entries (cache-busting)"),
    ];
    print_table("Ablation 3: queue size (spsc)", &sizes);

    let mut all = variants;
    all.extend(layouts);
    all.extend(sizes);
    write_json("ablation_variants", &all);
}
