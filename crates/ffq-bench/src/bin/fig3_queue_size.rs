//! Figure 3: throughput as a function of queue size in a single-producer/
//! single-consumer configuration.
//!
//! Paper result (Skylake): throughput rises with queue size, peaks around
//! 64k entries, then decreases once the queue outgrows the cache.
//!
//! Usage: `fig3_queue_size [--quick] [--secs <f>]`

use ffq_bench::measure::CommonArgs;
use ffq_bench::microbench::spsc_roundtrips;
use ffq_bench::output::{print_table, write_json};

fn main() {
    let args = CommonArgs::parse();
    let max_log2 = if args.quick { 14 } else { 20 };
    println!("Figure 3 reproduction: SPSC throughput vs. queue size");

    let mut rows = Vec::new();
    let mut log2 = 6;
    while log2 <= max_log2 {
        let size = 1usize << log2;
        rows.push(spsc_roundtrips(
            size,
            args.duration,
            &format!("2^{log2} = {size} entries"),
        ));
        log2 += 2;
    }
    print_table("Fig.3 SPSC throughput vs queue size", &rows);
    write_json("fig3_queue_size", &rows);
}
