//! Figure 4: L2 hit ratio and IPC as a function of queue size for the four
//! affinity policies (single producer / single consumer, aligned cells).
//!
//! The paper read these from hardware performance counters; this
//! reproduction regenerates them on the deterministic cache-hierarchy
//! simulator (DESIGN.md §4.3). The paper's third panel — core frequency —
//! is a turbo-boost artefact the model deliberately holds constant, and is
//! reported as such.
//!
//! Paper result: L2 hit ratio rises with queue size for the cross-core
//! mappings until the footprint bursts the caches; *sibling HT* holds the
//! best L2/L3 hit ratios except at extreme sizes; *same HT* has the best
//! IPC for mid-size queues; *no affinity* tracks *other core*.
//!
//! Usage: `fig4_cache_l2 [--quick]`

use ffq_bench::measure::CommonArgs;
use ffq_bench::output::write_json;
use ffq_cachesim::{simulate_spsc, SimConfig, SimPlacement, SimReport};

fn main() {
    let args = CommonArgs::parse();
    let (max_log2, ops) = if args.quick {
        (16, 300_000)
    } else {
        (22, 2_000_000)
    };
    println!("Figure 4 reproduction (simulated): L2 hit ratio and IPC");
    println!("note: 'no affinity' is reported by the 'other core' mapping (§V-D: almost the same behaviour)");
    println!("note: core frequency is constant in the model (no turbo)");

    let mut all: Vec<(String, SimReport)> = Vec::new();
    for placement in [
        SimPlacement::SameHt,
        SimPlacement::SiblingHt,
        SimPlacement::OtherCore,
    ] {
        println!("\n-- {} --", placement.name());
        println!("{:>9} {:>10} {:>8}", "qsize", "l2_hit", "ipc");
        let mut log2 = 6;
        while log2 <= max_log2 {
            let mut cfg = SimConfig::fig45(1 << log2, placement);
            cfg.ops = ops;
            let r = simulate_spsc(&cfg);
            println!(
                "{:>9} {:>10.4} {:>8.3}",
                r.queue_size, r.l2_hit_ratio, r.ipc
            );
            all.push((placement.name().to_string(), r));
            log2 += 2;
        }
    }
    write_json("fig4_cache_l2", &all);
}
