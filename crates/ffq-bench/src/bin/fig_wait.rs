//! Adaptive-wait evaluation (not a paper figure; the evaluation for the
//! spin → yield → park blocking layer).
//!
//! Each panel runs twice — [`WaitConfig::spin_only`] (the old busy-wait
//! behavior) vs the adaptive default — and reports throughput *and*
//! CPU-seconds:
//!
//! 1. **idle** — consumers blocked on an empty queue for a fixed window.
//!    Adaptive waiting must cut the CPU burnt per idle second by ≥10×.
//! 2. **oversubscribed** — one producer, 2× more blocking consumers than
//!    cores. Adaptive throughput must be no worse than spin-only.
//! 3. **uncontended** — alternating enqueue/dequeue pairs on one thread.
//!    The wait layer never engages; adaptive must stay within ~5% of
//!    spin-only, pricing the fast-path overhead at a branch.
//!
//! Usage: `fig_wait [--quick] [--items <n>] [--pairs <n>] [--idle-ms <n>]`
//!
//! Writes `BENCH_wait.json` rows under `target/bench-results/`.

use std::time::Duration;

use serde::Serialize;

use ffq::WaitConfig;
use ffq_bench::measure::CommonArgs;
use ffq_bench::output::write_json;
use ffq_bench::wait::{idle_burn, oversubscribed_drain, uncontended_pairs, WaitRun};

/// One panel × config measurement, as serialized into `BENCH_wait.json`.
#[derive(Debug, Clone, Serialize)]
struct WaitRow {
    /// Configuration label.
    label: String,
    /// "idle" / "oversubscribed" / "uncontended".
    panel: &'static str,
    /// "spin-only" or "adaptive".
    config: &'static str,
    /// Worker threads involved (consumers; +1 producer where one runs).
    threads: usize,
    /// Items moved (0 for the idle panel — nothing moves by design).
    ops: u64,
    /// Wall-clock seconds.
    elapsed_secs: f64,
    /// Millions of items per second (0 for the idle panel).
    mops_per_sec: f64,
    /// Summed worker-thread CPU-seconds.
    cpu_secs: f64,
    /// CPU-seconds burnt per wall-clock second (the idle panel's verdict).
    cpu_per_wall: f64,
    /// Futex parks taken across all handles.
    parks: u64,
}

fn row(panel: &'static str, config: &'static str, threads: usize, r: &WaitRun) -> WaitRow {
    WaitRow {
        label: r.m.label.clone(),
        panel,
        config,
        threads,
        ops: r.m.ops,
        elapsed_secs: r.m.elapsed_secs,
        mops_per_sec: r.m.mops_per_sec,
        cpu_secs: r.cpu_secs,
        cpu_per_wall: r.cpu_secs / r.m.elapsed_secs.max(1e-9),
        parks: r.parks,
    }
}

type NamedConfig = (&'static str, fn() -> WaitConfig);

const CONFIGS: [NamedConfig; 2] = [
    ("spin-only", WaitConfig::spin_only),
    ("adaptive", WaitConfig::adaptive),
];

fn main() {
    let args = CommonArgs::parse();
    let mut items: u64 = if args.quick { 200_000 } else { 1_000_000 };
    let mut pairs: u64 = if args.quick { 200_000 } else { 2_000_000 };
    let mut idle_ms: u64 = if args.quick { 250 } else { 1_000 };
    let mut it = args.rest.iter();
    while let Some(a) = it.next() {
        let parse = |v: Option<&String>| -> u64 {
            v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("usage: fig_wait [--quick] [--items <n>] [--pairs <n>] [--idle-ms <n>]");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--items" => items = parse(it.next()).max(1),
            "--pairs" => pairs = parse(it.next()).max(1),
            "--idle-ms" => idle_ms = parse(it.next()).max(1),
            _ => {
                eprintln!("unknown argument: {a}");
                std::process::exit(2);
            }
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let idle_consumers = 2;
    let over_consumers = (2 * cores).max(2);
    const QUEUE_SIZE: usize = 256;
    let window = Duration::from_millis(idle_ms);

    println!(
        "Adaptive wait evaluation: spin-only vs spin->yield->park \
         ({cores} cores, {over_consumers} oversubscribed consumers)"
    );
    let mut rows = Vec::new();

    for (name, cfg) in CONFIGS {
        let r = idle_burn(
            idle_consumers,
            window,
            cfg(),
            format!("idle {idle_consumers}c {name}"),
        );
        rows.push(row("idle", name, idle_consumers, &r));
    }
    // Throughput panels are best-of-N: on an oversubscribed (or plain
    // busy) box a single drain is at the mercy of the scheduler, and the
    // question is what each config can do, not what the box happened to
    // be doing.
    let reps = if args.quick { 1 } else { 3 };
    let best = |runs: Vec<WaitRun>| {
        runs.into_iter()
            .max_by(|a, b| a.m.mops_per_sec.total_cmp(&b.m.mops_per_sec))
            .expect("reps >= 1")
    };
    for (name, cfg) in CONFIGS {
        let r = best(
            (0..reps)
                .map(|_| {
                    oversubscribed_drain(
                        QUEUE_SIZE,
                        over_consumers,
                        items,
                        cfg(),
                        format!("drain 1p/{over_consumers}c {name}"),
                    )
                })
                .collect(),
        );
        rows.push(row("oversubscribed", name, over_consumers + 1, &r));
    }
    for (name, cfg) in CONFIGS {
        let r = best(
            (0..reps)
                .map(|_| uncontended_pairs(pairs, cfg(), format!("pairs 1t {name}")))
                .collect(),
        );
        rows.push(row("uncontended", name, 1, &r));
    }

    println!(
        "\n{:<28} {:>10} {:>10} {:>10} {:>12} {:>10} {:>8}",
        "config", "ops", "secs", "Mops/s", "cpu-secs", "cpu/wall", "parks"
    );
    for r in &rows {
        println!(
            "{:<28} {:>10} {:>10.3} {:>10.3} {:>12.4} {:>10.3} {:>8}",
            r.label, r.ops, r.elapsed_secs, r.mops_per_sec, r.cpu_secs, r.cpu_per_wall, r.parks
        );
    }

    let by = |panel: &str, config: &str| {
        rows.iter()
            .find(|r| r.panel == panel && r.config == config)
            .expect("all panels ran")
    };
    let burn_ratio = by("idle", "spin-only").cpu_secs / by("idle", "adaptive").cpu_secs.max(1e-9);
    let thr_ratio = by("oversubscribed", "adaptive").mops_per_sec
        / by("oversubscribed", "spin-only").mops_per_sec;
    let lat_ratio =
        by("uncontended", "spin-only").mops_per_sec / by("uncontended", "adaptive").mops_per_sec;
    println!("\nidle CPU burn: adaptive is {burn_ratio:.1}x cheaper than spin-only");
    println!("oversubscribed throughput: adaptive/spin-only = {thr_ratio:.3}");
    println!("uncontended hot path: spin-only/adaptive = {lat_ratio:.3} (1.0 = free)");

    write_json("BENCH_wait", &rows);
}
