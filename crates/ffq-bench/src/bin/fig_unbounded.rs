//! Bounded vs unbounded tier: the per-item price of the segment list.
//!
//! Two experiments (not a paper figure — the unbounded tier is this
//! repo's extension):
//!
//! * **steady** — `pairs` producer threads stream to `pairs` consumer
//!   threads through the bounded `ffq::mpmc` ring and through the
//!   unbounded tier at the *same ring geometry* (the bounded capacity is
//!   the unbounded segment capacity). Consumers keep up, so the unbounded
//!   queue stays on a segment or two at a time and rolls recycle through
//!   the freelist — the throughput ratio is exactly the steady-state
//!   overhead of the seal checks and seam bookkeeping. Acceptance: within
//!   15% of the bounded ring (`ratio_vs_bounded >= 0.85`). Native handles
//!   on both sides, dropped when each thread finishes — an idle handle
//!   would pin reclamation (see `ffq::unbounded`'s module docs) and turn
//!   freelist hits into allocations.
//! * **burst** — one producer bursts `4 × segment_capacity` items with no
//!   consumer running (the bounded ring would simply block here), then
//!   drains. Runs through the `FfqUnbounded` bench adapter, exercising
//!   its segment-churn accessors. Records the absorption rate and the
//!   churn (rolls, allocations vs freelist hits, retires).
//!
//! Usage: `fig_unbounded [--quick] [--items <n>] [--pairs <list>]`
//!
//! Writes `BENCH_unbounded.json` next to the tables.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use ffq_baselines::{ffqueue::FfqUnbounded, BenchHandle, BenchQueue};
use ffq_bench::output::{print_table, write_json};
use ffq_bench::Measurement;

/// Ring capacity for the bounded queue and segment capacity for the
/// unbounded one — matching geometry isolates the segment machinery.
const QUEUE_CAP: usize = 1 << 12;

/// One measured configuration, as serialized into `BENCH_unbounded.json`.
#[derive(Debug, Clone, Serialize)]
struct UnboundedRow {
    /// Configuration label ("steady unbounded @2p", "burst enqueue", ...).
    label: String,
    /// "steady" or "burst".
    mode: String,
    /// "bounded" or "unbounded".
    queue: String,
    /// Producer/consumer thread pairs (steady mode).
    pairs: usize,
    /// Items moved.
    ops: u64,
    /// Wall-clock seconds (best of the repeat runs).
    elapsed_secs: f64,
    /// Millions of items per second.
    mops_per_sec: f64,
    /// Throughput relative to the bounded ring at the same pair count
    /// (1.0 for the bounded rows themselves, 0.0 for burst rows).
    ratio_vs_bounded: f64,
    /// Segments sealed across all handles (unbounded rows).
    segments_sealed: u64,
    /// Fresh heap allocations across the run (unbounded rows).
    segments_allocated: u64,
    /// Rolls served by the freelist (unbounded rows).
    freelist_hits: u64,
    /// Consumer seam crossings (unbounded rows).
    segments_advanced: u64,
    /// Segments retired into the epoch limbo list (unbounded rows).
    segments_retired: u64,
    /// Retired segments proven quiescent and freed (unbounded rows).
    segments_freed: u64,
}

/// Streams `items_total` values through `pairs` native bounded-MPMC
/// producer and consumer threads.
fn run_steady_bounded(pairs: usize, items_total: u64) -> Measurement {
    let per_producer = items_total / pairs as u64;
    let total = per_producer * pairs as u64;
    let (tx, rx) = ffq::mpmc::channel::<u64>(QUEUE_CAP);
    let start = Instant::now();
    let producers: Vec<_> = (0..pairs)
        .map(|t| {
            let mut tx = tx.clone();
            std::thread::spawn(move || {
                let base = t as u64 * per_producer;
                for i in 0..per_producer {
                    tx.enqueue(base + i);
                }
            })
        })
        .collect();
    drop(tx);
    let consumers: Vec<_> = (0..pairs)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                let mut n = 0u64;
                while rx.dequeue().is_ok() {
                    n += 1;
                }
                n
            })
        })
        .collect();
    drop(rx);
    for p in producers {
        p.join().unwrap();
    }
    let consumed: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    let elapsed = start.elapsed();
    assert_eq!(consumed, total, "lost items");
    Measurement::new(format!("steady bounded @{pairs}p"), total, elapsed)
}

/// Same streaming load through the unbounded tier (segment capacity =
/// `QUEUE_CAP`), returning the merged segment churn of every handle.
fn run_steady_unbounded(pairs: usize, items_total: u64) -> (Measurement, ffq::SegmentStats) {
    let per_producer = items_total / pairs as u64;
    let total = per_producer * pairs as u64;
    let (tx, rx) = ffq::unbounded::mpmc::channel::<u64>(QUEUE_CAP);
    let start = Instant::now();
    let producers: Vec<_> = (0..pairs)
        .map(|t| {
            let mut tx = tx.clone();
            std::thread::spawn(move || {
                let base = t as u64 * per_producer;
                for i in 0..per_producer {
                    tx.enqueue(base + i);
                }
                tx.seg_stats()
            })
        })
        .collect();
    drop(tx);
    let consumers: Vec<_> = (0..pairs)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                let mut n = 0u64;
                while rx.dequeue().is_ok() {
                    n += 1;
                }
                (n, rx.seg_stats())
            })
        })
        .collect();
    drop(rx);
    let mut churn = ffq::SegmentStats::default();
    for p in producers {
        churn = churn.merge(p.join().unwrap());
    }
    let mut consumed = 0u64;
    for c in consumers {
        let (n, s) = c.join().unwrap();
        consumed += n;
        churn = churn.merge(s);
    }
    let elapsed = start.elapsed();
    assert_eq!(consumed, total, "lost items");
    (
        Measurement::new(format!("steady unbounded @{pairs}p"), total, elapsed),
        churn,
    )
}

/// Best-of-`repeats` (scheduler noise on shared CI hosts makes single
/// runs useless for a ratio with a 15% acceptance band).
fn best_of<R>(repeats: usize, mops: impl Fn(&R) -> f64, run: impl Fn() -> R) -> R {
    let mut best: Option<R> = None;
    for _ in 0..repeats {
        let r = run();
        if best.as_ref().is_none_or(|b| mops(&r) > mops(b)) {
            best = Some(r);
        }
    }
    best.unwrap()
}

/// The burst experiment through the bench adapter: enqueue
/// `4 × QUEUE_CAP` with nobody draining, then drain.
fn run_burst() -> (Measurement, Measurement, ffq::SegmentStats) {
    const BURST: u64 = 4 * QUEUE_CAP as u64;
    let q = Arc::new(FfqUnbounded::with_capacity(QUEUE_CAP));
    let mut h = q.register();
    let start = Instant::now();
    for i in 0..BURST {
        h.enqueue(i);
    }
    let enq = Measurement::new("burst enqueue (4x segment)", BURST, start.elapsed());
    let start = Instant::now();
    let mut buf = Vec::with_capacity(256);
    let mut n = 0u64;
    while n < BURST {
        buf.clear();
        let k = h.dequeue_batch(&mut buf, 256);
        assert!(k > 0, "burst drain starved at {n}/{BURST}");
        n += k as u64;
    }
    let drain = Measurement::new("burst drain", BURST, start.elapsed());
    let churn = h.producer_seg_stats().merge(h.consumer_seg_stats());
    (enq, drain, churn)
}

fn row(
    m: &Measurement,
    mode: &str,
    queue: &str,
    pairs: usize,
    base: f64,
    c: ffq::SegmentStats,
) -> UnboundedRow {
    UnboundedRow {
        label: m.label.clone(),
        mode: mode.into(),
        queue: queue.into(),
        pairs,
        ops: m.ops,
        elapsed_secs: m.elapsed_secs,
        mops_per_sec: m.mops_per_sec,
        ratio_vs_bounded: if base > 0.0 {
            m.mops_per_sec / base
        } else {
            0.0
        },
        segments_sealed: c.segments_sealed,
        segments_allocated: c.segments_allocated,
        freelist_hits: c.freelist_hits,
        segments_advanced: c.segments_advanced,
        segments_retired: c.segments_retired,
        segments_freed: c.segments_freed,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let items: u64 = args
        .iter()
        .position(|a| a == "--items")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 200_000 } else { 2_000_000 });
    let pair_counts: Vec<usize> = args
        .iter()
        .position(|a| a == "--pairs")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| if quick { vec![1] } else { vec![1, 2] });
    let repeats = if quick { 2 } else { 3 };

    println!("Bounded vs unbounded: {items} items per steady run, ring/segment {QUEUE_CAP}");

    let mut rows: Vec<UnboundedRow> = Vec::new();
    let mut table = Vec::new();
    for &pairs in &pair_counts {
        let bm = best_of(
            repeats,
            |m: &Measurement| m.mops_per_sec,
            || run_steady_bounded(pairs, items),
        );
        let (um, uc) = best_of(
            repeats,
            |r: &(Measurement, ffq::SegmentStats)| r.0.mops_per_sec,
            || run_steady_unbounded(pairs, items),
        );
        rows.push(row(
            &bm,
            "steady",
            "bounded",
            pairs,
            bm.mops_per_sec,
            ffq::SegmentStats::default(),
        ));
        rows.push(row(&um, "steady", "unbounded", pairs, bm.mops_per_sec, uc));
        table.push(bm);
        table.push(um);
    }

    let (enq, drain, bc) = run_burst();
    rows.push(row(&enq, "burst", "unbounded", 1, 0.0, bc));
    rows.push(row(&drain, "burst", "unbounded", 1, 0.0, bc));
    table.push(enq);
    table.push(drain);

    print_table("Bounded ring vs unbounded segment list", &table);
    println!(
        "\n{:<26} {:>10} {:>12} {:>7} {:>7} {:>8} {:>8} {:>6}",
        "config", "mops/s", "vs bounded", "sealed", "alloc", "freehit", "retired", "freed"
    );
    for r in &rows {
        println!(
            "{:<26} {:>10.3} {:>11.2}x {:>7} {:>7} {:>8} {:>8} {:>6}",
            r.label,
            r.mops_per_sec,
            r.ratio_vs_bounded,
            r.segments_sealed,
            r.segments_allocated,
            r.freelist_hits,
            r.segments_retired,
            r.segments_freed
        );
    }
    for r in rows
        .iter()
        .filter(|r| r.mode == "steady" && r.queue == "unbounded")
    {
        if r.ratio_vs_bounded < 0.85 {
            println!(
                "WARNING: {} at {:.2}x of bounded — outside the 15% band",
                r.label, r.ratio_vs_bounded
            );
        }
    }
    write_json("BENCH_unbounded", &rows);
}
