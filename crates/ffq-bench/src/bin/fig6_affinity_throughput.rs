//! Figure 6: throughput for different queue sizes and affinity settings,
//! with 1–4 producer/consumer pairs.
//!
//! Paper result (Skylake): *sibling HT* performs best at small and large
//! queue sizes; *same HT* wins (per core used) at medium sizes that maximize
//! cache hit ratios; *other core*/*no affinity* need large queues to
//! decouple the pair.
//!
//! Runs the real-thread benchmark for every policy the host topology can
//! express, then the cache-simulator mirror (which models the paper's
//! 4-core/8-HT Skylake) so the multi-core shape is reproducible on hosts
//! without SMT or multiple cores — such as this repository's 1-CPU CI
//! container.
//!
//! Usage: `fig6_affinity_throughput [--quick] [--secs <f>] [pairs]`

use ffq_affinity::{Placement, Topology};
use ffq_bench::measure::CommonArgs;
use ffq_bench::microbench::{spmc_roundtrips, Topo};
use ffq_bench::output::{print_table, write_json};
use ffq_cachesim::{simulate_spsc, SimConfig, SimPlacement};

fn main() {
    let args = CommonArgs::parse();
    let pairs: usize = args.rest.first().and_then(|s| s.parse().ok()).unwrap_or(1);
    let max_log2 = if args.quick { 12 } else { 16 };
    let topo_hw = Topology::detect().expect("cpu topology");
    println!(
        "Figure 6 reproduction: throughput vs queue size x affinity ({} pair(s))",
        pairs
    );
    println!(
        "host: {} cores / {} hardware threads",
        topo_hw.num_cores(),
        topo_hw.num_cpus()
    );

    // Real threads, where the topology supports the policy.
    let mut rows = Vec::new();
    for policy in Placement::ALL {
        if !policy.is_supported(&topo_hw) {
            println!(
                "[skipping '{}': host topology cannot express it]",
                policy.name()
            );
            continue;
        }
        let mut log2 = 6;
        while log2 <= max_log2 {
            let m = spmc_roundtrips(
                Topo {
                    producers: pairs,
                    consumers_per: 1,
                    queue_size: 1 << log2,
                },
                args.duration,
                Some((policy, &topo_hw)).filter(|_| policy != Placement::NoAffinity),
                &format!("{} 2^{log2}", policy.name()),
            );
            rows.push(m);
            log2 += 2;
        }
    }
    print_table("Fig.6 measured (real threads)", &rows);
    write_json("fig6_affinity_throughput", &rows);

    // Simulator mirror with the paper's Skylake model.
    println!("\n== Fig.6 simulator mirror (paper's 4-core Skylake model) ==");
    println!("{:>12} {:>9} {:>12}", "placement", "qsize", "ops/kcycle");
    let mut sim_rows = Vec::new();
    for placement in [
        SimPlacement::SameHt,
        SimPlacement::SiblingHt,
        SimPlacement::OtherCore,
    ] {
        let mut log2 = 6;
        while log2 <= 20 {
            let mut cfg = SimConfig::fig45(1 << log2, placement);
            cfg.ops = if args.quick { 200_000 } else { 1_000_000 };
            let r = simulate_spsc(&cfg);
            println!(
                "{:>12} {:>9} {:>12.2}",
                placement.name(),
                r.queue_size,
                r.ops_per_kcycle
            );
            sim_rows.push((placement.name().to_string(), r));
            log2 += 2;
        }
    }
    write_json("fig6_sim_mirror", &sim_rows);
}
