//! Figure 5: L3 hit ratio, L3 misses, and memory access bandwidth as a
//! function of queue size for the affinity policies (single producer /
//! single consumer, aligned cells). Simulator-backed, like Figure 4.
//!
//! Paper result: L3 hit ratio climbs with queue size and then collapses
//! when the queue no longer fits in L3 (8 MB on Skylake — 2^17 aligned
//! cells), at which point misses and memory bandwidth shoot up; sibling HT
//! shows more L3 misses at very large sizes since producer and consumer
//! push their combined footprint through one port.
//!
//! Usage: `fig5_cache_l3 [--quick]`

use ffq_bench::measure::CommonArgs;
use ffq_bench::output::write_json;
use ffq_cachesim::{simulate_spsc, SimConfig, SimPlacement, SimReport};

fn main() {
    let args = CommonArgs::parse();
    let (max_log2, ops) = if args.quick {
        (16, 300_000)
    } else {
        (22, 2_000_000)
    };
    println!("Figure 5 reproduction (simulated): L3 behaviour and memory bandwidth");

    let mut all: Vec<(String, SimReport)> = Vec::new();
    for placement in [
        SimPlacement::SameHt,
        SimPlacement::SiblingHt,
        SimPlacement::OtherCore,
    ] {
        println!("\n-- {} --", placement.name());
        println!(
            "{:>9} {:>10} {:>12} {:>14}",
            "qsize", "l3_hit", "l3_misses", "bytes/kcycle"
        );
        let mut log2 = 6;
        while log2 <= max_log2 {
            let mut cfg = SimConfig::fig45(1 << log2, placement);
            cfg.ops = ops;
            let r = simulate_spsc(&cfg);
            println!(
                "{:>9} {:>10.4} {:>12} {:>14.1}",
                r.queue_size, r.l3_hit_ratio, r.l3_misses, r.mem_bytes_per_kcycle
            );
            all.push((placement.name().to_string(), r));
            log2 += 2;
        }
    }
    write_json("fig5_cache_l3", &all);
}
