//! Batch-amortization sweep: SPMC drain throughput as a function of the
//! consumer harvest bound, against the per-item `drain_into` baseline.
//!
//! This is the evaluation for the batch API (not a paper figure): consumers
//! claiming rank *runs* with one `fetch_add` and producers publishing runs
//! with one release pass should beat the per-item path by a growing margin
//! as the batch bound rises, with `batch=1` costing the same as per-item
//! (same one-RMW-per-rank schedule, so no regression).
//!
//! Usage: `fig_batch_amortization [--quick] [--secs <f>]`
//!
//! Writes `BENCH_batch.json` (rows with throughput, consumer-side RMW
//! counts, and speedup over the per-item baseline) next to the tables.

use serde::Serialize;

use ffq_bench::measure::CommonArgs;
use ffq_bench::microbench::{spmc_batch_drain, DrainCost, DrainMode};
use ffq_bench::output::{print_table, write_json};
use ffq_bench::Measurement;

/// One sweep point, as serialized into `BENCH_batch.json`.
#[derive(Debug, Clone, Serialize)]
struct BatchRow {
    /// Configuration label ("per-item 4c" / "batch=32 4c").
    label: String,
    /// Consumer threads draining the queue.
    consumers: usize,
    /// Harvest bound per `dequeue_batch` call; `null` for the per-item path.
    batch: Option<usize>,
    /// Items drained.
    ops: u64,
    /// Wall-clock seconds.
    elapsed_secs: f64,
    /// Millions of items drained per second.
    mops_per_sec: f64,
    /// Consumer-side head fetch-and-adds.
    head_rmws: u64,
    /// Head ranks claimed per fetch-and-add (the amortization factor).
    ranks_per_rmw: Option<f64>,
    /// Throughput relative to the per-item row at the same consumer count.
    speedup_vs_per_item: f64,
}

fn row(
    label: &str,
    consumers: usize,
    batch: Option<usize>,
    m: &Measurement,
    cost: &DrainCost,
    base_mops: f64,
) -> BatchRow {
    BatchRow {
        label: label.to_string(),
        consumers,
        batch,
        ops: m.ops,
        elapsed_secs: m.elapsed_secs,
        mops_per_sec: m.mops_per_sec,
        head_rmws: cost.head_rmws,
        ranks_per_rmw: cost.ranks_per_rmw(),
        speedup_vs_per_item: m.mops_per_sec / base_mops.max(1e-12),
    }
}

/// Measures one configuration `reps` times and keeps the fastest run —
/// standard noise suppression for an unpinned, possibly oversubscribed
/// host, where one unlucky scheduling quantum can skew a short window.
fn measure_best(
    queue_size: usize,
    consumers: usize,
    mode: DrainMode,
    duration: std::time::Duration,
    reps: usize,
    label: &str,
) -> (Measurement, DrainCost) {
    let mut best: Option<(Measurement, DrainCost)> = None;
    for _ in 0..reps.max(1) {
        let (m, c) = spmc_batch_drain(queue_size, consumers, mode, duration, label);
        let better = match &best {
            Some((b, _)) => m.mops_per_sec > b.mops_per_sec,
            None => true,
        };
        if better {
            best = Some((m, c));
        }
    }
    best.unwrap()
}

fn main() {
    let args = CommonArgs::parse();
    // Large enough that per-phase costs (queue-full producer stalls, empty
    // consumer backoffs, timeslice handoffs on oversubscribed hosts) are
    // amortized over many items and the per-item claim cost dominates —
    // same regime where the paper's Figure 3 throughput peaks.
    const QUEUE_SIZE: usize = 16384;
    let consumer_counts: &[usize] = if args.quick { &[4] } else { &[1, 4] };
    let max_batch_log2 = if args.quick { 6 } else { 8 };
    let reps = if args.quick { 1 } else { 2 };
    println!("Batch amortization: SPMC drain, batched vs per-item claims");

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &consumers in consumer_counts {
        let label = format!("per-item {consumers}c");
        let (base_m, base_cost) = measure_best(
            QUEUE_SIZE,
            consumers,
            DrainMode::PerItem,
            args.duration,
            reps,
            &label,
        );
        rows.push(row(
            &label,
            consumers,
            None,
            &base_m,
            &base_cost,
            base_m.mops_per_sec,
        ));
        table.push(base_m.clone());

        let mut log2 = 0;
        while log2 <= max_batch_log2 {
            let batch = 1usize << log2;
            let label = format!("batch={batch} {consumers}c");
            let (m, cost) = measure_best(
                QUEUE_SIZE,
                consumers,
                DrainMode::Batch(batch),
                args.duration,
                reps,
                &label,
            );
            rows.push(row(
                &label,
                consumers,
                Some(batch),
                &m,
                &cost,
                base_m.mops_per_sec,
            ));
            table.push(m);
            log2 += 1;
        }
    }
    print_table("Batch amortization (SPMC drain)", &table);
    println!(
        "\n{:<20} {:>14} {:>14} {:>10}",
        "config", "head RMWs", "ranks/RMW", "speedup"
    );
    for r in &rows {
        println!(
            "{:<20} {:>14} {:>14} {:>10.3}",
            r.label,
            r.head_rmws,
            r.ranks_per_rmw.map_or("-".into(), |v| format!("{v:.1}")),
            r.speedup_vs_per_item
        );
    }
    write_json("BENCH_batch", &rows);
}
