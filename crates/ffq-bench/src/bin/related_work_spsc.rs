//! Related-work SPSC shootout (§II of the paper).
//!
//! Cross-thread streaming throughput for every SPSC design the paper's
//! related-work section discusses, plus FFQ's own SPSC variant. Two
//! workloads:
//!
//! * **stream** — producer pushes continuously, consumer drains
//!   continuously (pipeline-parallel shape, FastForward/B-Queue's target);
//! * **lockstep** — one item round-trips at a time with a flush per item
//!   (latency-bound shape where batching designs pay their deferral).
//!
//! Usage: `related_work_spsc [--quick] [--secs <f>]`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ffq_baselines::spsc::{
    batchqueue::BatchQueue, bqueue::BQueue, fastforward::FastForward, ffqspsc::FfqSpsc,
    lamport::LamportQueue, mcringbuffer::McRingBuffer, SpscPair, SpscRx, SpscTx,
};
use ffq_bench::measure::CommonArgs;
use ffq_bench::output::{print_table, write_json};
use ffq_bench::Measurement;

fn stream<Q: SpscPair>(capacity: usize, duration: std::time::Duration) -> Measurement
where
    Q::Tx: Send,
    Q::Rx: Send,
{
    let (mut tx, mut rx) = Q::with_capacity(capacity);
    let stop = Arc::new(AtomicBool::new(false));
    let consumed = Arc::new(AtomicU64::new(0));

    let producer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0u64;
            let mut backoff = ffq_sync::Backoff::new();
            while !stop.load(Ordering::Relaxed) {
                if tx.try_enqueue(i) {
                    i += 1;
                    backoff.reset();
                } else {
                    backoff.wait();
                }
            }
            tx.flush();
        })
    };
    let consumer = {
        let stop = Arc::clone(&stop);
        let consumed = Arc::clone(&consumed);
        std::thread::spawn(move || {
            let mut n = 0u64;
            let mut expected = 0u64;
            let mut backoff = ffq_sync::Backoff::new();
            while !stop.load(Ordering::Relaxed) {
                if let Some(v) = rx.try_dequeue() {
                    assert_eq!(v, expected, "{} reordered", Q::NAME);
                    expected += 1;
                    n += 1;
                    backoff.reset();
                } else {
                    backoff.wait();
                }
            }
            consumed.store(n, Ordering::Relaxed);
        })
    };

    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let elapsed = start.elapsed();
    producer.join().unwrap();
    consumer.join().unwrap();
    Measurement::new(
        format!("{} stream", Q::NAME),
        consumed.load(Ordering::Relaxed),
        elapsed,
    )
}

fn lockstep<Q: SpscPair>(capacity: usize, duration: std::time::Duration) -> Measurement {
    let (mut tx, mut rx) = Q::with_capacity(capacity);
    let start = Instant::now();
    let mut i = 0u64;
    while start.elapsed() < duration {
        for _ in 0..256 {
            tx.enqueue(i);
            tx.flush();
            assert_eq!(rx.dequeue(), i, "{} reordered", Q::NAME);
            i += 1;
        }
    }
    Measurement::new(format!("{} lockstep", Q::NAME), i, start.elapsed())
}

fn main() {
    let args = CommonArgs::parse();
    let cap = 1 << 12;
    println!("Related-work SPSC shootout (paper §II)");

    let mut rows = Vec::new();
    macro_rules! both {
        ($q:ty) => {
            rows.push(stream::<$q>(cap, args.duration));
            rows.push(lockstep::<$q>(cap, args.duration));
        };
    }
    both!(LamportQueue);
    both!(FastForward);
    both!(McRingBuffer);
    both!(BatchQueue);
    both!(BQueue);
    both!(FfqSpsc);

    print_table("Related-work SPSC queues", &rows);
    write_json("related_work_spsc", &rows);
}
