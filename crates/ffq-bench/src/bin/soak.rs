//! Soak test: hammer every queue with randomized concurrent workloads and
//! verify each run with the linearizability checker.
//!
//! Unlike the unit/integration tests (fixed scenarios) this tool runs
//! until the time budget expires, randomizing thread counts, capacities
//! and workload mixes between rounds — a race-hunting harness rather than
//! a benchmark.
//!
//! Usage: `soak [--secs <f>] [--quick]`  (default budget: 20 s)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ffq_baselines::{
    ccqueue::CcQueue, ffqueue::FfqMpmc, htmqueue::HtmQueue, lcrq::Lcrq, msqueue::MsQueue,
    vyukov::VyukovQueue, wfqueue::WfQueue, BenchHandle, BenchQueue,
};
use ffq_bench::delay::XorShift;
use ffq_lincheck::HistoryRecorder;

fn soak_round<Q: BenchQueue>(rng: &mut XorShift) -> Result<u64, String> {
    let threads = 2 + (rng.next_u64() % 5) as usize;
    let per = 1_000 + rng.next_u64() % 6_000;
    let cap = 1usize << (4 + rng.next_u64() % 8);
    let q = Arc::new(Q::with_capacity(cap));
    let rec = HistoryRecorder::new();
    let total = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..threads as u64)
        .map(|t| {
            let q = Arc::clone(&q);
            let mut r = rec.handle();
            let total = Arc::clone(&total);
            let mut rng = XorShift::new(t * 7919 + per);
            std::thread::spawn(move || {
                let mut h = q.register();
                for i in 0..per {
                    let v = t * 1_000_000_000 + i;
                    r.enqueue(v, || h.enqueue(v));
                    // Random think time widens interleavings.
                    for _ in 0..rng.next_u64() % 64 {
                        std::hint::spin_loop();
                    }
                    r.dequeue_until(|| h.dequeue());
                    total.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().map_err(|_| "worker panicked".to_string())?;
    }
    rec.check()
        .map_err(|v| format!("{} linearizability violation: {v}", Q::NAME))?;
    Ok(total.load(Ordering::Relaxed))
}

fn soak_queue<Q: BenchQueue>(budget: Duration, rng: &mut XorShift) {
    let start = Instant::now();
    let mut rounds = 0u64;
    let mut pairs = 0u64;
    while start.elapsed() < budget {
        match soak_round::<Q>(rng) {
            Ok(n) => {
                rounds += 1;
                pairs += n;
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "{:<16} {:>6} rounds {:>12} pairs  all linearizable",
        Q::NAME,
        rounds,
        pairs
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let secs: f64 = args
        .iter()
        .position(|a| a == "--secs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 2.0 } else { 20.0 });
    let per_queue = Duration::from_secs_f64(secs / 7.0);
    println!("soak: {secs}s total, randomized topologies, lincheck-verified");

    let mut rng = XorShift::new(0x50AC);
    soak_queue::<FfqMpmc>(per_queue, &mut rng);
    soak_queue::<WfQueue>(per_queue, &mut rng);
    soak_queue::<Lcrq>(per_queue, &mut rng);
    soak_queue::<CcQueue>(per_queue, &mut rng);
    soak_queue::<MsQueue>(per_queue, &mut rng);
    soak_queue::<HtmQueue>(per_queue, &mut rng);
    soak_queue::<VyukovQueue>(per_queue, &mut rng);
    println!("soak complete: no violations.");
}
