//! Sharded-MPMC geometry sweep: per-item throughput of the block-granular
//! sharded frontend (`ffq::shard`) against the single-shard MPMC baseline,
//! as a function of producer/consumer pairs × shard count × block size.
//!
//! This is the evaluation for the k-relaxed sharded frontend (not a paper
//! figure): all flavors of plain FFQ funnel through one `head`/`tail`
//! cache line, so MPMC throughput flattens as pairs are added. Sharding
//! splits that line N ways at the cost of a documented reordering bound
//! `k = 3 · (N − 1) · B`; the sweep records what that trade buys at each
//! geometry. The single-shard rows ARE the baseline — geometry (1, B) is
//! exactly the strict MPMC queue behind the same endpoint code, so the
//! comparison isolates the sharding itself, not adapter overhead.
//!
//! Usage: `fig_shard [--quick] [--items <n>] [--pairs <list>]`
//!
//! Writes `BENCH_shard.json` (rows with throughput, the realized k-bound,
//! speedup over single-shard at the same pair count, and the consumers'
//! merged shard-selection counters) next to the tables.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use ffq_baselines::{ffqueue::FfqSharded, BenchHandle, BenchQueue};
use ffq_bench::output::{print_table, write_json};
use ffq_bench::Measurement;

/// Total cells across all shards — matches the fig8 comparative cap so
/// single-shard rows are comparable with that figure's `ffq (mpmc)` rows.
const QUEUE_CAP: usize = 1 << 12;

/// Consumer-side harvest bound per `dequeue_batch` call.
const HARVEST: usize = 256;

/// One sweep point, as serialized into `BENCH_shard.json`.
#[derive(Debug, Clone, Serialize)]
struct ShardRow {
    /// Configuration label ("4s×64 @4p" / "1s×64 @4p" for the baseline).
    label: String,
    /// Shard count `N` of the geometry.
    shards: usize,
    /// Block size `B` (items per producer shard visit).
    block: usize,
    /// Realized reordering bound `k = 3 · (N − 1) · B`.
    relaxation_bound: usize,
    /// Producer/consumer thread pairs driving the queue.
    pairs: usize,
    /// Items moved through the queue.
    ops: u64,
    /// Wall-clock seconds.
    elapsed_secs: f64,
    /// Millions of items moved per second.
    mops_per_sec: f64,
    /// Throughput relative to the single-shard row at the same pair count.
    speedup_vs_single_shard: f64,
    /// Consumers' shard drains, merged across handles.
    shard_visits: u64,
    /// Drains satisfied by the work-stealing fallback scan.
    steals: u64,
    /// Occupancy estimates read for c-choices selection.
    occupancy_samples: u64,
}

/// Moves `items_total` values through one sharded queue with `pairs`
/// producer threads and `pairs` consumer threads, returning the
/// measurement and the consumers' merged shard-selection counters.
fn run_geometry(
    shards: usize,
    block: usize,
    pairs: usize,
    items_total: u64,
) -> (Measurement, ffq::ShardStats) {
    let q = Arc::new(FfqSharded::with_geometry(QUEUE_CAP, shards, block));
    let per_producer = items_total / pairs as u64;
    let total = per_producer * pairs as u64;
    let consumed = Arc::new(AtomicU64::new(0));
    let start = Instant::now();

    let producers: Vec<_> = (0..pairs)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut h = q.register();
                let base = t as u64 * per_producer;
                let mut chunk = Vec::with_capacity(HARVEST);
                let mut i = 0;
                while i < per_producer {
                    chunk.clear();
                    let n = (per_producer - i).min(HARVEST as u64);
                    chunk.extend(base + i..base + i + n);
                    // `enqueue_batch` blocks (futex park) while the queue
                    // is full, so an oversubscribed host spends its quanta
                    // moving items rather than spinning on a full ring.
                    h.enqueue_batch(&chunk);
                    i += n;
                }
            })
        })
        .collect();

    let consumers: Vec<_> = (0..pairs)
        .map(|_| {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            std::thread::spawn(move || {
                let mut h = q.register();
                let mut buf = Vec::with_capacity(HARVEST);
                loop {
                    buf.clear();
                    let n = h.dequeue_batch(&mut buf, HARVEST);
                    if n > 0 {
                        consumed.fetch_add(n as u64, Ordering::Relaxed);
                    } else {
                        if consumed.load(Ordering::Relaxed) >= total {
                            break;
                        }
                        // Empty but not done: yield the core instead of
                        // spinning a full quantum on a 1-CPU host.
                        std::thread::yield_now();
                    }
                }
                h.shard_stats()
            })
        })
        .collect();

    for p in producers {
        p.join().unwrap();
    }
    let mut stats = ffq::ShardStats::default();
    for c in consumers {
        stats = stats.merge(c.join().unwrap());
    }
    let elapsed = start.elapsed();
    assert_eq!(consumed.load(Ordering::Relaxed), total, "lost items");
    let label = format!("{shards}s×{block} @{pairs}p");
    (Measurement::new(label, total, elapsed), stats)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let items: u64 = args
        .iter()
        .position(|a| a == "--items")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 200_000 } else { 2_000_000 });
    let pair_counts: Vec<usize> = args
        .iter()
        .position(|a| a == "--pairs")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| if quick { vec![1, 4] } else { vec![1, 2, 4] });
    let shard_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let blocks: &[usize] = if quick { &[64] } else { &[16, 64] };

    println!("Sharded MPMC sweep: {items} items per run, geometry N shards × B block");
    println!(
        "host parallelism: {} — pair counts beyond it are oversubscribed",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let mut rows: Vec<ShardRow> = Vec::new();
    let mut table = Vec::new();
    for &pairs in &pair_counts {
        for &block in blocks {
            // Single-shard first: every wider geometry at this (pairs,
            // block) point is normalized against it.
            let mut base_mops = f64::NAN;
            for &shards in shard_counts {
                let (m, s) = run_geometry(shards, block, pairs, items);
                if shards == 1 {
                    base_mops = m.mops_per_sec;
                }
                rows.push(ShardRow {
                    label: m.label.clone(),
                    shards,
                    block,
                    relaxation_bound: ffq::shard::relaxation_bound(shards, block),
                    pairs,
                    ops: m.ops,
                    elapsed_secs: m.elapsed_secs,
                    mops_per_sec: m.mops_per_sec,
                    speedup_vs_single_shard: m.mops_per_sec / base_mops.max(1e-12),
                    shard_visits: s.shard_visits,
                    steals: s.steals,
                    occupancy_samples: s.occupancy_samples,
                });
                table.push(m);
            }
        }
    }

    print_table(
        "Sharded MPMC throughput (N shards × B block @ P pairs)",
        &table,
    );
    println!(
        "\n{:<14} {:>6} {:>10} {:>12} {:>10} {:>14} {:>8}",
        "config", "k", "mops/s", "vs 1-shard", "visits", "occ samples", "steals"
    );
    for r in &rows {
        println!(
            "{:<14} {:>6} {:>10.3} {:>11.2}x {:>10} {:>14} {:>8}",
            r.label,
            r.relaxation_bound,
            r.mops_per_sec,
            r.speedup_vs_single_shard,
            r.shard_visits,
            r.occupancy_samples,
            r.steals
        );
    }
    write_json("BENCH_shard", &rows);
}
