//! Figure 2: impact of cell alignment and index randomization on the
//! throughput of the MPMC variant of FFQ, for 1 producer/1 consumer,
//! 1 producer/8 consumers, and 8 producers with 8 consumers each.
//!
//! Paper result: neither optimization helps at 1p/1c (compact cells cache
//! better); alignment wins once consumers multiply; alignment+randomization
//! is best at 1p/8c; randomization turns counter-productive at 8 producers.
//!
//! Usage: `fig2_false_sharing [--quick] [--secs <f>]`

use ffq::cell::{CompactCell, PaddedCell};
use ffq::layout::{LinearMap, RotateMap};
use ffq_bench::measure::CommonArgs;
use ffq_bench::microbench::{mpmc_roundtrips, Topo};
use ffq_bench::output::{print_normalized, write_json};
use ffq_bench::Measurement;

fn run_layouts(topo: Topo, secs: std::time::Duration, tag: &str) -> Vec<Measurement> {
    // Queue size follows the paper's microbenchmark default (8k entries)
    // scaled down in quick mode by the caller via `topo.queue_size`.
    vec![
        mpmc_roundtrips::<CompactCell<u64>, LinearMap>(topo, secs, &format!("not-aligned {tag}")),
        mpmc_roundtrips::<PaddedCell<u64>, LinearMap>(topo, secs, &format!("aligned {tag}")),
        mpmc_roundtrips::<CompactCell<u64>, RotateMap>(topo, secs, &format!("randomized {tag}")),
        mpmc_roundtrips::<PaddedCell<u64>, RotateMap>(topo, secs, &format!("both {tag}")),
    ]
}

fn main() {
    let args = CommonArgs::parse();
    let queue_size = if args.quick { 1024 } else { 8192 };
    println!("Figure 2 reproduction: alignment x randomization (FFQ-m)");
    println!(
        "host parallelism: {} (oversubscription is expected on small hosts)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let mut all = Vec::new();
    for (producers, consumers_per, tag) in
        [(1usize, 1usize, "1p/1c"), (1, 8, "1p/8c"), (8, 8, "8p/8c")]
    {
        let topo = Topo {
            producers,
            consumers_per,
            queue_size,
        };
        let rows = run_layouts(topo, args.duration, tag);
        print_normalized(
            &format!("Fig.2 {tag}"),
            &rows,
            &format!("not-aligned {tag}"),
        );
        all.extend(rows);
    }
    write_json("fig2_false_sharing", &all);

    // Simulator mirror: on a 1-core host the real-thread runs cannot show
    // coherence effects, so demonstrate the mechanism on the simulated
    // 4-core Skylake (consumers on distinct cores).
    use ffq_cachesim::{simulate_spmc, CellLayoutKind, SimConfig, SimPlacement};
    println!("\n== Fig.2 simulator mirror: coherence invalidations, 1p/8c ==");
    println!(
        "{:>12} {:>14} {:>14} {:>12}",
        "layout", "invalidations", "remote xfers", "ops/kcycle"
    );
    for (layout, name) in [
        (CellLayoutKind::Compact, "not-aligned"),
        (CellLayoutKind::Padded, "aligned"),
    ] {
        let mut cfg = SimConfig::fig45(8192, SimPlacement::OtherCore);
        cfg.layout = layout;
        cfg.ops = if args.quick { 200_000 } else { 1_000_000 };
        let r = simulate_spmc(&cfg, 8);
        println!(
            "{:>12} {:>14} {:>14} {:>12.2}",
            name, r.invalidations, r.remote_transfers, r.ops_per_kcycle
        );
    }
}
