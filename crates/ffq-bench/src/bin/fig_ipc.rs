//! In-process vs cross-process deployment comparison (not a paper figure;
//! the evaluation for the `ffq-shm` subsystem).
//!
//! Panel 1 — SPMC drain throughput: one producer, N consumers, as threads
//! over the heap channel vs forked processes over an `ffq-shm` queue in a
//! `memfd` region (each child on its own mapping).
//!
//! Panel 2 — SPSC round-trip latency: a request/response queue pair
//! between two threads vs between two processes.
//!
//! Since FFQ exchanges only queue-relative ranks, the algorithm is
//! identical in both deployments; the delta is the cost (or lack of one)
//! of the shared-memory packaging — fork/attach setup aside, steady-state
//! numbers should be close.
//!
//! Usage: `fig_ipc [--quick] [--items <n>] [--rtts <n>]`
//!
//! Writes `BENCH_ipc.json` rows under `target/bench-results/`.

use serde::Serialize;

use ffq_bench::ipc::{
    avg_ns, spmc_drain_cross_process, spmc_drain_in_process, spsc_rtt_cross_process,
    spsc_rtt_in_process,
};
use ffq_bench::measure::CommonArgs;
use ffq_bench::output::{print_table, write_json};
use ffq_bench::Measurement;

/// One comparison point, as serialized into `BENCH_ipc.json`.
#[derive(Debug, Clone, Serialize)]
struct IpcRow {
    /// Configuration label.
    label: String,
    /// "throughput" (SPMC drain) or "latency" (SPSC round trip).
    panel: &'static str,
    /// "in-process" or "cross-process".
    mode: &'static str,
    /// Consumer count (throughput panel) — 1 for the latency panel.
    consumers: usize,
    /// Items drained / round trips completed.
    ops: u64,
    /// Wall-clock seconds.
    elapsed_secs: f64,
    /// Millions of items (round trips) per second.
    mops_per_sec: f64,
    /// Nanoseconds per item (per round trip on the latency panel).
    avg_ns: f64,
    /// Throughput relative to the in-process row of the same shape.
    vs_in_process: f64,
}

fn row(
    panel: &'static str,
    mode: &'static str,
    consumers: usize,
    m: &Measurement,
    base_mops: f64,
) -> IpcRow {
    IpcRow {
        label: m.label.clone(),
        panel,
        mode,
        consumers,
        ops: m.ops,
        elapsed_secs: m.elapsed_secs,
        mops_per_sec: m.mops_per_sec,
        avg_ns: avg_ns(m),
        vs_in_process: m.mops_per_sec / base_mops.max(1e-12),
    }
}

fn main() {
    let args = CommonArgs::parse();
    let mut items: u64 = if args.quick { 200_000 } else { 1_000_000 };
    let mut rtts: u64 = if args.quick { 20_000 } else { 100_000 };
    let mut it = args.rest.iter();
    while let Some(a) = it.next() {
        let parse = |v: Option<&String>| -> u64 {
            v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("usage: fig_ipc [--quick] [--items <n>] [--rtts <n>]");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--items" => items = parse(it.next()).max(1),
            "--rtts" => rtts = parse(it.next()).max(1),
            _ => {
                eprintln!("unknown argument: {a}");
                std::process::exit(2);
            }
        }
    }
    // Same size regime as the batch sweep: large enough that steady-state
    // claim costs dominate producer stalls.
    const QUEUE_SIZE: usize = 16384;
    const RTT_QUEUE: usize = 64;
    let consumer_counts: &[usize] = if args.quick { &[2] } else { &[1, 2, 4] };

    println!("IPC deployment comparison: heap+threads vs memfd+forked processes");
    let mut rows = Vec::new();
    let mut table = Vec::new();

    for &consumers in consumer_counts {
        let base = spmc_drain_in_process(QUEUE_SIZE, consumers, items);
        let cross = spmc_drain_cross_process(QUEUE_SIZE, consumers, items);
        rows.push(row(
            "throughput",
            "in-process",
            consumers,
            &base,
            base.mops_per_sec,
        ));
        rows.push(row(
            "throughput",
            "cross-process",
            consumers,
            &cross,
            base.mops_per_sec,
        ));
        table.push(base);
        table.push(cross);
    }

    let base = spsc_rtt_in_process(RTT_QUEUE, rtts);
    let cross = spsc_rtt_cross_process(RTT_QUEUE, rtts);
    rows.push(row("latency", "in-process", 1, &base, base.mops_per_sec));
    rows.push(row(
        "latency",
        "cross-process",
        1,
        &cross,
        base.mops_per_sec,
    ));
    table.push(base);
    table.push(cross);

    print_table("IPC comparison (SPMC drain + SPSC round trip)", &table);
    println!("\n{:<32} {:>12} {:>12}", "config", "ns/op", "vs in-proc");
    for r in &rows {
        println!(
            "{:<32} {:>12.0} {:>12.3}",
            r.label, r.avg_ns, r.vs_in_process
        );
    }
    write_json("BENCH_ipc", &rows);
}
