//! Figure 8: the comparative study. All threads repeatedly execute
//! enqueue/dequeue pairs on one shared queue — the benchmark of Yang &
//! Mellor-Crummey [21] that the paper plugged FFQ into — with a 50–150 ns
//! think time between operations. The MPMC variant of FFQ faces wfqueue,
//! lcrq, ccqueue, msqueue and the HTM queue; single-threaded SPSC and SPMC
//! FFQ marks are reported alongside.
//!
//! Paper result: FFQ-m is consistently among the fastest at every thread
//! count; ccqueue wins single-threaded but collapses with threads; wfqueue
//! and lcrq scale well; msqueue is the worst performer; HTM cannot compete
//! under concurrency. SPMC beats MPMC by >50% single-threaded.
//!
//! Usage: `fig8_comparative [--quick] [--pairs <n>] [--threads <list>]`
//! (defaults: 1e6 pairs — the paper's 1e7 via `--pairs 10000000`)

use std::sync::Arc;
use std::time::Instant;

use ffq_baselines::{
    ccqueue::CcQueue, ffqueue::FfqMpmc, htmqueue::HtmQueue, lcrq::Lcrq, msqueue::MsQueue,
    mutexqueue::MutexQueue, vyukov::VyukovQueue, wfqueue::WfQueue, BenchHandle, BenchQueue,
};
use ffq_bench::delay::{SpinDelay, XorShift};
use ffq_bench::output::{print_table, write_json};
use ffq_bench::Measurement;

const QUEUE_CAP: usize = 1 << 12;

fn run_queue<Q: BenchQueue>(threads: usize, pairs_total: u64, delay: SpinDelay) -> Measurement {
    let q = Arc::new(Q::with_capacity(QUEUE_CAP));
    let per_thread = pairs_total / threads as u64;
    let start = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut h = q.register();
                let mut rng = XorShift::new(0xFF0F_u64 ^ ((t as u64 + 1) * 0x9E37));
                for i in 0..per_thread {
                    h.enqueue(t as u64 * per_thread + i);
                    delay.think(&mut rng);
                    // Pairs on a shared queue: another thread may grab our
                    // element; retry until *an* element arrives.
                    while h.dequeue().is_none() {
                        std::hint::spin_loop();
                    }
                    delay.think(&mut rng);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = start.elapsed();
    // Each pair is one enqueue + one dequeue = 2 operations.
    Measurement::new(
        format!("{} @{}", Q::NAME, threads),
        2 * per_thread * threads as u64,
        elapsed,
    )
}

fn run_ffq_spsc(pairs: u64, delay: SpinDelay) -> Measurement {
    let (mut tx, mut rx) = ffq::spsc::channel::<u64>(QUEUE_CAP);
    let mut rng = XorShift::new(1);
    let start = Instant::now();
    for i in 0..pairs {
        tx.enqueue(i);
        delay.think(&mut rng);
        let _ = rx.try_dequeue().expect("own element");
        delay.think(&mut rng);
    }
    Measurement::new("ffq (spsc) @1", 2 * pairs, start.elapsed())
}

fn run_ffq_spmc(pairs: u64, delay: SpinDelay) -> Measurement {
    let (mut tx, mut rx) = ffq::spmc::channel::<u64>(QUEUE_CAP);
    let mut rng = XorShift::new(2);
    let start = Instant::now();
    for i in 0..pairs {
        tx.enqueue(i);
        delay.think(&mut rng);
        let _ = rx.try_dequeue().expect("own element");
        delay.think(&mut rng);
    }
    Measurement::new("ffq (spmc) @1", 2 * pairs, start.elapsed())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let pairs: u64 = args
        .iter()
        .position(|a| a == "--pairs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 100_000 } else { 1_000_000 });
    let threads: Vec<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);

    println!("Figure 8 reproduction: comparative study ({pairs} pairs total per run)");
    println!(
        "host parallelism: {} — thread counts beyond it are oversubscribed, as in the paper's >cores runs",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let delay = SpinDelay::calibrate();

    let mut rows = Vec::new();
    rows.push(run_ffq_spsc(pairs, delay));
    rows.push(run_ffq_spmc(pairs, delay));
    for &t in &threads {
        rows.push(run_queue::<FfqMpmc>(t, pairs, delay));
        rows.push(run_queue::<WfQueue>(t, pairs, delay));
        rows.push(run_queue::<Lcrq>(t, pairs, delay));
        rows.push(run_queue::<CcQueue>(t, pairs, delay));
        rows.push(run_queue::<MsQueue>(t, pairs, delay));
        rows.push(run_queue::<HtmQueue>(t, pairs, delay));
        rows.push(run_queue::<VyukovQueue>(t, pairs, delay));
        rows.push(run_queue::<MutexQueue>(t, pairs, delay));
    }
    print_table("Fig.8 comparative throughput", &rows);
    write_json("fig8_comparative", &rows);
}
