//! Workloads for the adaptive-wait evaluation (`fig_wait`).
//!
//! Three panels, each run once per [`WaitConfig`] (pure busy-wait vs the
//! spin → yield → park default):
//!
//! 1. **Idle burn** — consumers blocked on an empty queue for a fixed
//!    window. The interesting number is CPU-seconds, not throughput: a
//!    spinning waiter burns a core doing nothing, a parked one doesn't.
//! 2. **Oversubscribed drain** — one producer feeding 2× more blocking
//!    consumers than cores. Spinning waiters steal cycles from the threads
//!    that have work; parking hands them back.
//! 3. **Uncontended pairs** — alternating enqueue/dequeue on one thread,
//!    so the blocking API runs its fast path only. This prices the wait
//!    layer's overhead when nobody ever waits.
//!
//! CPU time is read per thread via `getrusage(RUSAGE_THREAD)` and summed
//! at join, so the numbers cover exactly the worker threads of each panel.

use std::time::{Duration, Instant};

use ffq::WaitConfig;

use crate::measure::Measurement;

/// CPU seconds (user + system) consumed so far by the calling thread.
pub fn thread_cpu_seconds() -> f64 {
    // SAFETY: zeroed is a valid byte pattern for the plain-data `rusage`.
    let mut ru: libc::rusage = unsafe { std::mem::zeroed() };
    // SAFETY: `ru` is a valid out-pointer for the duration of the call.
    let rc = unsafe { libc::getrusage(libc::RUSAGE_THREAD, &mut ru) };
    assert_eq!(rc, 0, "getrusage(RUSAGE_THREAD) failed");
    let tv = |t: libc::timeval| t.tv_sec as f64 + t.tv_usec as f64 * 1e-6;
    tv(ru.ru_utime) + tv(ru.ru_stime)
}

/// A measured panel run plus the resource numbers the panel is about.
#[derive(Debug, Clone)]
pub struct WaitRun {
    /// Ops and wall-clock throughput.
    pub m: Measurement,
    /// Summed CPU-seconds of every worker thread in the run.
    pub cpu_secs: f64,
    /// Summed futex parks across every handle in the run.
    pub parks: u64,
}

/// Panel 1: `consumers` blocked dequeues against an empty queue for
/// `window`. `ops` is 0 by construction — the whole point is that nothing
/// happens; `cpu_secs` says what that nothing cost.
pub fn idle_burn(
    consumers: usize,
    window: Duration,
    cfg: WaitConfig,
    label: impl Into<String>,
) -> WaitRun {
    let (tx, rx) = ffq::spmc::channel::<u64>(64);
    let start = Instant::now();
    let workers: Vec<_> = (0..consumers)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                rx.set_wait_config(cfg);
                let r = rx.dequeue_timeout(window);
                assert_eq!(r, Err(ffq::TryDequeueError::Empty));
                (thread_cpu_seconds(), rx.stats().parks)
            })
        })
        .collect();
    drop(rx);
    let mut cpu_secs = 0.0;
    let mut parks = 0;
    for w in workers {
        let (cpu, p) = w.join().unwrap();
        cpu_secs += cpu;
        parks += p;
    }
    let elapsed = start.elapsed();
    drop(tx); // keep the producer alive for the whole window: Empty, not Disconnected
    WaitRun {
        m: Measurement::new(label, 0, elapsed),
        cpu_secs,
        parks,
    }
}

/// Panel 2: one producer pushes `items` through a `queue_size` SPMC queue
/// into `consumers` blocking consumers (intended: 2× the cores). Returns
/// wall-clock throughput over the full drain plus all threads' CPU.
pub fn oversubscribed_drain(
    queue_size: usize,
    consumers: usize,
    items: u64,
    cfg: WaitConfig,
    label: impl Into<String>,
) -> WaitRun {
    let (mut tx, rx) = ffq::spmc::channel::<u64>(queue_size);
    tx.set_wait_config(cfg);
    // The producer runs on the calling thread, which may have burnt CPU
    // before this panel — charge only the delta.
    let cpu_base = thread_cpu_seconds();
    let start = Instant::now();
    let workers: Vec<_> = (0..consumers)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                rx.set_wait_config(cfg);
                let mut n = 0u64;
                while rx.dequeue().is_ok() {
                    n += 1;
                }
                (n, thread_cpu_seconds(), rx.stats().parks)
            })
        })
        .collect();
    drop(rx);
    for i in 0..items {
        tx.enqueue(i);
    }
    let producer_parks = tx.stats().parks;
    drop(tx); // consumers drain the tail and observe the disconnect
    let mut total = 0u64;
    let mut cpu_secs = thread_cpu_seconds() - cpu_base;
    let mut parks = producer_parks;
    for w in workers {
        let (n, cpu, p) = w.join().unwrap();
        total += n;
        cpu_secs += cpu;
        parks += p;
    }
    let elapsed = start.elapsed();
    assert_eq!(total, items, "oversubscribed drain lost items");
    WaitRun {
        m: Measurement::new(label, items, elapsed),
        cpu_secs,
        parks,
    }
}

/// Panel 3: `items` alternating enqueue → blocking dequeue pairs on a
/// single thread. The dequeue always finds its item published, so both
/// configs run the identical no-wait fast path; any ratio off 1.0 is
/// wait-layer overhead on the hot path.
pub fn uncontended_pairs(items: u64, cfg: WaitConfig, label: impl Into<String>) -> WaitRun {
    let (mut tx, mut rx) = ffq::spsc::channel::<u64>(64);
    tx.set_wait_config(cfg);
    rx.set_wait_config(cfg);
    // Single-threaded panel on the calling thread: charge only the delta.
    let cpu_base = thread_cpu_seconds();
    let start = Instant::now();
    for i in 0..items {
        tx.enqueue(i);
        assert_eq!(rx.dequeue(), Ok(i));
    }
    let elapsed = start.elapsed();
    let cpu_secs = thread_cpu_seconds() - cpu_base;
    let parks = tx.stats().parks + rx.stats().parks;
    WaitRun {
        m: Measurement::new(label, items, elapsed),
        cpu_secs,
        parks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_is_monotonic_and_sane() {
        let a = thread_cpu_seconds();
        // Burn a little CPU so the delta is observable.
        let mut x = 0u64;
        for i in 0..5_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = thread_cpu_seconds();
        assert!(b >= a);
        assert!(b < 3600.0, "absurd thread CPU reading: {b}");
    }

    #[test]
    fn idle_burn_adaptive_parks_and_burns_little() {
        let r = idle_burn(
            2,
            Duration::from_millis(200),
            WaitConfig::default(),
            "idle adaptive",
        );
        assert!(r.parks > 0, "idle consumers never parked");
        // Two consumers idling 200 ms must not cost anywhere near
        // 2 × 200 ms of CPU; allow generous slack for slow CI.
        assert!(r.cpu_secs < 0.2, "idle burn too high: {} s", r.cpu_secs);
    }

    #[test]
    fn uncontended_pairs_never_park() {
        let r = uncontended_pairs(10_000, WaitConfig::default(), "pairs");
        assert_eq!(r.parks, 0, "hot handoff should never reach the waiter");
        assert_eq!(r.m.ops, 10_000);
    }

    #[test]
    fn oversubscribed_drain_delivers_everything() {
        // Delivery is asserted inside; parks may be zero on a fast box.
        let r = oversubscribed_drain(256, 4, 50_000, WaitConfig::default(), "drain");
        assert_eq!(r.m.ops, 50_000);
    }
}
