//! Criterion: per-item vs batched transfer cost on a single thread.
//!
//! Moves `k` items through a queue per iteration, either one call per item
//! or with `enqueue_many`/`dequeue_batch`. Single-threaded, so the delta is
//! pure instruction count: the batch path replaces `k` head RMWs with one
//! `fetch_add` (consumer) and `k` publication stores with one release pass
//! (producer). The multi-threaded sweep lives in `fig_batch_amortization`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const BATCHES: &[usize] = &[1, 8, 32, 128];

fn spmc_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch/spmc");
    for &k in BATCHES {
        g.throughput(Throughput::Elements(k as u64));
        let (mut tx, mut rx) = ffq::spmc::channel::<u64>(1 << 10);
        g.bench_with_input(BenchmarkId::new("per_item", k), &k, |b, &k| {
            b.iter(|| {
                for i in 0..k as u64 {
                    tx.enqueue(black_box(i));
                }
                for _ in 0..k {
                    black_box(rx.try_dequeue().unwrap());
                }
            })
        });
        let (mut tx, mut rx) = ffq::spmc::channel::<u64>(1 << 10);
        let mut buf = Vec::with_capacity(128);
        g.bench_with_input(BenchmarkId::new("batched", k), &k, |b, &k| {
            b.iter(|| {
                tx.enqueue_many(black_box(0..k as u64));
                buf.clear();
                black_box(rx.dequeue_batch(&mut buf, k))
            })
        });
    }
    g.finish();
}

fn spsc_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch/spsc");
    for &k in BATCHES {
        g.throughput(Throughput::Elements(k as u64));
        let (mut tx, mut rx) = ffq::spsc::channel::<u64>(1 << 10);
        let mut buf = Vec::with_capacity(128);
        g.bench_with_input(BenchmarkId::new("batched", k), &k, |b, &k| {
            b.iter(|| {
                tx.enqueue_many(black_box(0..k as u64));
                buf.clear();
                black_box(rx.dequeue_batch(&mut buf, k))
            })
        });
    }
    g.finish();
}

fn mpmc_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch/mpmc");
    for &k in BATCHES {
        g.throughput(Throughput::Elements(k as u64));
        let (mut tx, mut rx) = ffq::mpmc::channel::<u64>(1 << 10);
        let mut buf = Vec::with_capacity(128);
        g.bench_with_input(BenchmarkId::new("batched", k), &k, |b, &k| {
            b.iter(|| {
                tx.enqueue_many(black_box(0..k as u64));
                buf.clear();
                black_box(rx.dequeue_batch(&mut buf, k))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = spmc_transfer, spsc_transfer, mpmc_transfer
}
criterion_main!(benches);
