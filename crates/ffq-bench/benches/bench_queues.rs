//! Criterion: single-threaded enqueue/dequeue pair cost for every queue.
//!
//! The single-thread column of Figure 8 — ccqueue is expected to win
//! (node reuse, no contention), FFQ variants close behind, msqueue paying
//! its allocations, HTM paying STM bookkeeping (real HTM would be cheaper;
//! see EXPERIMENTS.md).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use ffq_baselines::{
    ccqueue::CcQueue, ffqueue::FfqMpmc, htmqueue::HtmQueue, lcrq::Lcrq, msqueue::MsQueue,
    mutexqueue::MutexQueue, vyukov::VyukovQueue, wfqueue::WfQueue, BenchHandle, BenchQueue,
};
use std::hint::black_box;

fn bench_one<Q: BenchQueue>(c: &mut Criterion) {
    let q = Arc::new(Q::with_capacity(1 << 10));
    let mut h = q.register();
    c.bench_function(&format!("pair/{}", Q::NAME), |b| {
        b.iter(|| {
            h.enqueue(black_box(7));
            black_box(h.dequeue())
        })
    });
}

fn bench_ffq_native(c: &mut Criterion) {
    let (mut tx, mut rx) = ffq::spsc::channel::<u64>(1 << 10);
    c.bench_function("pair/ffq (spsc)", |b| {
        b.iter(|| {
            tx.enqueue(black_box(7));
            black_box(rx.try_dequeue().unwrap())
        })
    });
    let (mut tx, mut rx) = ffq::spmc::channel::<u64>(1 << 10);
    c.bench_function("pair/ffq (spmc)", |b| {
        b.iter(|| {
            tx.enqueue(black_box(7));
            black_box(rx.try_dequeue().unwrap())
        })
    });
}

fn all(c: &mut Criterion) {
    bench_ffq_native(c);
    bench_one::<FfqMpmc>(c);
    bench_one::<WfQueue>(c);
    bench_one::<Lcrq>(c);
    bench_one::<CcQueue>(c);
    bench_one::<MsQueue>(c);
    bench_one::<HtmQueue>(c);
    bench_one::<VyukovQueue>(c);
    bench_one::<MutexQueue>(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = all
}
criterion_main!(benches);
