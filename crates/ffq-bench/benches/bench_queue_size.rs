//! Criterion: Figure 3's queue-size sweep on the SPSC variant,
//! single-threaded (cross-thread sweeps live in `fig3_queue_size`).
//!
//! Uncontended per-op cost is size-independent until the working set busts
//! a cache level; the cross-thread figure binary shows the full curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("spsc_queue_size");
    for log2 in [6u32, 10, 14, 18, 20] {
        let size = 1usize << log2;
        let (mut tx, mut rx) = ffq::spsc::channel::<u64>(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            // Keep the queue half full so the pair walks the whole array
            // (wrap-around) instead of hammering one cell.
            for i in 0..(size as u64) / 2 {
                tx.enqueue(i);
            }
            b.iter(|| {
                tx.enqueue(black_box(1));
                black_box(rx.try_dequeue().unwrap())
            });
            while rx.try_dequeue().is_ok() {}
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(25).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = sweep
}
criterion_main!(benches);
