//! Criterion: Figure 2's four layout configurations on FFQ-m, uncontended.
//!
//! Single-threaded this mainly shows the randomization's index-computation
//! overhead and the footprint cost of padding — the paper's finding that
//! "for a single producer and a single consumer, neither alignment nor
//! randomization improves throughput".

use criterion::{criterion_group, criterion_main, Criterion};
use ffq::cell::{CellSlot, CompactCell, PaddedCell};
use ffq::layout::{IndexMap, LinearMap, RotateMap};
use std::hint::black_box;

fn bench_layout<C: CellSlot<u64> + 'static, M: IndexMap>(c: &mut Criterion, name: &str) {
    let (mut tx, mut rx) = ffq::mpmc::channel_with::<u64, C, M>(1 << 12);
    c.bench_function(&format!("layout/{name}"), |b| {
        b.iter(|| {
            tx.enqueue(black_box(7));
            black_box(rx.try_dequeue().unwrap())
        })
    });
}

fn all(c: &mut Criterion) {
    bench_layout::<CompactCell<u64>, LinearMap>(c, "not-aligned");
    bench_layout::<PaddedCell<u64>, LinearMap>(c, "aligned");
    bench_layout::<CompactCell<u64>, RotateMap>(c, "randomized");
    bench_layout::<PaddedCell<u64>, RotateMap>(c, "both");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = all
}
criterion_main!(benches);
