//! Criterion: Figure 8 under contention — two threads executing
//! enqueue/dequeue pairs on one shared queue (the full thread sweep lives
//! in `fig8_comparative`; Criterion measures the 2-thread point with
//! statistical rigor).

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use ffq_baselines::{
    ccqueue::CcQueue, ffqueue::FfqMpmc, htmqueue::HtmQueue, lcrq::Lcrq, msqueue::MsQueue,
    vyukov::VyukovQueue, wfqueue::WfQueue, BenchHandle, BenchQueue,
};

/// Runs `iters` pairs split over two threads and returns the wall time.
fn contended_pairs<Q: BenchQueue>(iters: u64) -> Duration {
    let q = Arc::new(Q::with_capacity(1 << 10));
    let per = iters / 2 + 1;
    let start = Instant::now();
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut h = q.register();
                for i in 0..per {
                    h.enqueue(i);
                    while h.dequeue().is_none() {
                        std::hint::spin_loop();
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    start.elapsed()
}

fn bench_contended<Q: BenchQueue>(c: &mut Criterion) {
    c.bench_function(&format!("contended2/{}", Q::NAME), |b| {
        b.iter_custom(contended_pairs::<Q>)
    });
}

fn all(c: &mut Criterion) {
    bench_contended::<FfqMpmc>(c);
    bench_contended::<WfQueue>(c);
    bench_contended::<Lcrq>(c);
    bench_contended::<CcQueue>(c);
    bench_contended::<MsQueue>(c);
    bench_contended::<HtmQueue>(c);
    bench_contended::<VyukovQueue>(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = all
}
criterion_main!(benches);
