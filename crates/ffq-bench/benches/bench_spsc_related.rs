//! Criterion: single-threaded enqueue+flush+dequeue round trips for the
//! related-work SPSC queues (§II) — the statistically rigorous counterpart
//! of the `related_work_spsc` binary's lockstep workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ffq_baselines::spsc::{
    batchqueue::BatchQueue, bqueue::BQueue, fastforward::FastForward, ffqspsc::FfqSpsc,
    lamport::LamportQueue, mcringbuffer::McRingBuffer, SpscPair, SpscRx, SpscTx,
};
use std::hint::black_box;

fn bench_one<Q: SpscPair>(c: &mut Criterion) {
    let (mut tx, mut rx) = Q::with_capacity(1 << 10);
    c.bench_function(&format!("spsc_pair/{}", Q::NAME), |b| {
        b.iter(|| {
            tx.enqueue(black_box(7));
            tx.flush();
            black_box(rx.dequeue())
        })
    });
}

fn all(c: &mut Criterion) {
    bench_one::<LamportQueue>(c);
    bench_one::<FastForward>(c);
    bench_one::<McRingBuffer>(c);
    bench_one::<BatchQueue>(c);
    bench_one::<BQueue>(c);
    bench_one::<FfqSpsc>(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = all
}
criterion_main!(benches);
