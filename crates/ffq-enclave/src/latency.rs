//! The Figure 7 (right) latency benchmark: end-to-end `getppid` latency in
//! cycles, measured with a single application thread "to prevent thread
//! multiplexing in the SGX variants".

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ffq_baselines::vyukov::VyukovQueue;
use ffq_baselines::{BenchHandle, BenchQueue};
use serde::Serialize;

use crate::runtime::{rdtsc, Enclave, EnclaveConfig};
use crate::syscall::{execute, native_syscall, Request, Variant};

/// Outcome of one latency run.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyResult {
    /// Variant label.
    pub variant: &'static str,
    /// Measured round trips.
    pub iterations: u64,
    /// Mean cycles per syscall (request → response for queued variants).
    pub avg_cycles: f64,
    /// Fastest observed round trip.
    pub min_cycles: u64,
    /// Slowest observed round trip (scheduling noise indicator).
    pub max_cycles: u64,
}

fn summarize(variant: Variant, samples: &[u64]) -> LatencyResult {
    let sum: u64 = samples.iter().sum();
    LatencyResult {
        variant: variant.name(),
        iterations: samples.len() as u64,
        avg_cycles: sum as f64 / samples.len() as f64,
        min_cycles: samples.iter().copied().min().unwrap_or(0),
        max_cycles: samples.iter().copied().max().unwrap_or(0),
    }
}

/// Measures per-call latency over `iterations` round trips.
pub fn measure_latency(variant: Variant, iterations: u64, config: EnclaveConfig) -> LatencyResult {
    assert!(iterations > 0);
    match variant {
        Variant::Native => {
            let mut samples = Vec::with_capacity(iterations as usize);
            for _ in 0..iterations {
                let t0 = rdtsc();
                let _ = native_syscall();
                samples.push(rdtsc() - t0);
            }
            summarize(variant, &samples)
        }
        Variant::SgxFfq => {
            let enclave = Enclave::new(config);
            let (mut sub_tx, sub_rx) = ffq::spmc::channel::<u64>(64);
            let (resp_tx, mut resp_rx) = ffq::spsc::channel::<u64>(64);
            let stop = Arc::new(AtomicBool::new(false));
            let proxy = {
                let stop = Arc::clone(&stop);
                let mut sub_rx = sub_rx;
                let mut resp_tx = resp_tx;
                std::thread::spawn(move || loop {
                    match sub_rx.try_dequeue() {
                        Ok(word) => {
                            let r = execute(Request::decode(word));
                            resp_tx.enqueue(r.encode());
                        }
                        Err(ffq::TryDequeueError::Disconnected) => break,
                        Err(ffq::TryDequeueError::Empty) => {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                })
            };
            let mut samples = Vec::with_capacity(iterations as usize);
            for seq in 0..iterations {
                let req = Request {
                    enclave_thread: 0,
                    app_thread: 0,
                    seq: seq as u32,
                };
                let t0 = rdtsc();
                sub_tx.enqueue(req.encode());
                enclave.memory_tax();
                // The single app thread blocks on its response (the paper's
                // m:n runtime would switch app threads here; with one app
                // thread there is nothing to switch to).
                let _ = resp_rx.dequeue().expect("proxy alive");
                samples.push(rdtsc() - t0);
            }
            stop.store(true, Ordering::Relaxed);
            drop(sub_tx);
            proxy.join().unwrap();
            summarize(variant, &samples)
        }
        Variant::SgxMpmc => {
            let enclave = Enclave::new(config);
            let submission = Arc::new(VyukovQueue::with_capacity(64));
            let response = Arc::new(VyukovQueue::with_capacity(64));
            let stop = Arc::new(AtomicBool::new(false));
            let proxy = {
                let submission = Arc::clone(&submission);
                let response = Arc::clone(&response);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut sub = submission.register();
                    let mut resp = response.register();
                    loop {
                        match sub.dequeue() {
                            Some(word) => {
                                let r = execute(Request::decode(word));
                                resp.enqueue(r.encode());
                            }
                            None => {
                                if stop.load(Ordering::Relaxed) {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                })
            };
            let mut sub = submission.register();
            let mut resp = response.register();
            let mut samples = Vec::with_capacity(iterations as usize);
            for seq in 0..iterations {
                let req = Request {
                    enclave_thread: 0,
                    app_thread: 0,
                    seq: seq as u32,
                };
                let t0 = rdtsc();
                sub.enqueue(req.encode());
                enclave.memory_tax();
                loop {
                    if let Some(_word) = resp.dequeue() {
                        break;
                    }
                    std::hint::spin_loop();
                }
                samples.push(rdtsc() - t0);
            }
            stop.store(true, Ordering::Relaxed);
            proxy.join().unwrap();
            summarize(variant, &samples)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_latency_is_positive() {
        let r = measure_latency(Variant::Native, 1000, EnclaveConfig::free());
        assert!(r.avg_cycles > 0.0);
        assert!(r.min_cycles > 0);
        assert!(r.min_cycles <= r.max_cycles);
    }

    #[test]
    fn ffq_round_trip_measured() {
        let r = measure_latency(Variant::SgxFfq, 2000, EnclaveConfig::free());
        assert_eq!(r.iterations, 2000);
        assert!(r.avg_cycles > 0.0);
    }

    #[test]
    fn mpmc_round_trip_measured() {
        let r = measure_latency(Variant::SgxMpmc, 2000, EnclaveConfig::free());
        assert_eq!(r.iterations, 2000);
        assert!(r.avg_cycles > 0.0);
    }

    #[test]
    fn queued_latency_exceeds_native() {
        // Figure 7 (right): "the latency is higher than the baseline because
        // it involves a ping/pong of request and answer between two
        // threads". Holds even with a zero-cost enclave model.
        let native = measure_latency(Variant::Native, 2000, EnclaveConfig::free());
        let ffq = measure_latency(Variant::SgxFfq, 2000, EnclaveConfig::free());
        assert!(
            ffq.avg_cycles > native.avg_cycles,
            "ffq {} <= native {}",
            ffq.avg_cycles,
            native.avg_cycles
        );
    }
}
