//! System-call requests, their wire encoding, and execution by proxies.

/// Which syscall framework variant is under test (the three binaries of the
/// paper's Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Direct `getppid(2)` from the application thread (no enclave).
    Native,
    /// Enclave with a generic bounded MPMC queue in both directions
    /// (Vyukov's — the paper's original design, footnote 8).
    SgxMpmc,
    /// Enclave with FFQ: SPMC submission + per-proxy SPSC response queues.
    SgxFfq,
}

impl Variant {
    /// All variants in the paper's presentation order.
    pub const ALL: [Variant; 3] = [Variant::Native, Variant::SgxMpmc, Variant::SgxFfq];

    /// Report label (matching the paper's legends).
    pub fn name(self) -> &'static str {
        match self {
            Variant::Native => "native",
            Variant::SgxMpmc => "mpmc",
            Variant::SgxFfq => "ffq",
        }
    }
}

/// A request travelling through the queues, packed into the 64-bit word the
/// benchmark queues carry: `[enclave_thread:16][app_thread:16][seq:32]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Index of the enclave (producer) thread.
    pub enclave_thread: u16,
    /// Application thread within that producer.
    pub app_thread: u16,
    /// Monotonic per-app-thread sequence number (at most one outstanding).
    pub seq: u32,
}

impl Request {
    /// Packs into the queue word.
    pub fn encode(self) -> u64 {
        ((self.enclave_thread as u64) << 48) | ((self.app_thread as u64) << 32) | self.seq as u64
    }

    /// Unpacks from the queue word.
    pub fn decode(word: u64) -> Self {
        Self {
            enclave_thread: (word >> 48) as u16,
            app_thread: (word >> 32) as u16,
            seq: word as u32,
        }
    }
}

/// A response word: the app-thread routing plus the (truncated) syscall
/// return value — `getppid` fits easily.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Application thread the response routes back to.
    pub app_thread: u16,
    /// Sequence number of the answered request.
    pub seq: u32,
    /// Low 16 bits of the return value (pid truncation is harmless for the
    /// benchmark; the value is only checked for plausibility).
    pub value: u16,
}

impl Response {
    /// Packs into the queue word.
    pub fn encode(self) -> u64 {
        ((self.app_thread as u64) << 48) | ((self.value as u64) << 32) | self.seq as u64
    }

    /// Unpacks from the queue word.
    pub fn decode(word: u64) -> Self {
        Self {
            app_thread: (word >> 48) as u16,
            value: (word >> 32) as u16,
            seq: word as u32,
        }
    }
}

/// Executes the benchmark syscall for `req` — a real `getppid(2)`.
pub fn execute(req: Request) -> Response {
    // SAFETY: getppid takes no arguments and cannot fail.
    let pid = unsafe { libc::getppid() };
    Response {
        app_thread: req.app_thread,
        seq: req.seq,
        value: pid as u16,
    }
}

/// The native baseline: the "syscall" without any queueing.
#[inline]
pub fn native_syscall() -> i32 {
    // SAFETY: as above.
    unsafe { libc::getppid() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = Request {
            enclave_thread: 7,
            app_thread: 513,
            seq: 0xDEAD_BEEF,
        };
        assert_eq!(Request::decode(r.encode()), r);
    }

    #[test]
    fn response_roundtrip() {
        let r = Response {
            app_thread: 65_535,
            seq: 42,
            value: 31_000,
        };
        assert_eq!(Response::decode(r.encode()), r);
    }

    #[test]
    fn encode_fields_do_not_collide() {
        let a = Request {
            enclave_thread: 1,
            app_thread: 0,
            seq: 0,
        };
        let b = Request {
            enclave_thread: 0,
            app_thread: 1,
            seq: 0,
        };
        let c = Request {
            enclave_thread: 0,
            app_thread: 0,
            seq: 1,
        };
        assert_ne!(a.encode(), b.encode());
        assert_ne!(b.encode(), c.encode());
    }

    #[test]
    fn execute_answers_with_routing_intact() {
        let req = Request {
            enclave_thread: 3,
            app_thread: 9,
            seq: 77,
        };
        let resp = execute(req);
        assert_eq!(resp.app_thread, 9);
        assert_eq!(resp.seq, 77);
    }

    #[test]
    fn native_syscall_returns_a_pid() {
        assert!(native_syscall() >= 0);
    }

    #[test]
    fn variant_names() {
        assert_eq!(Variant::Native.name(), "native");
        assert_eq!(Variant::SgxMpmc.name(), "mpmc");
        assert_eq!(Variant::SgxFfq.name(), "ffq");
    }
}
