//! The enclave cost model: calibrated cycle burning for transitions and
//! encrypted-memory overhead, plus a cycle counter for latency measurements.

use core::sync::atomic::{AtomicU64, Ordering};

/// Reads the CPU timestamp counter (cycles).
#[inline]
pub fn rdtsc() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: RDTSC has no memory effects and is available on every
        // x86_64 CPU.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // Fallback: nanoseconds as a cycle proxy.
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .subsec_nanos() as u64
    }
}

/// Busy-spins for roughly `cycles` timestamp-counter cycles.
#[inline]
pub fn spin_cycles(cycles: u64) {
    if cycles == 0 {
        return;
    }
    let start = rdtsc();
    while rdtsc().wrapping_sub(start) < cycles {
        core::hint::spin_loop();
    }
}

/// Cost parameters of the simulated enclave.
#[derive(Debug, Clone, Copy)]
pub struct EnclaveConfig {
    /// Cycles burned by one exit + re-enter round trip. SGXv1 literature
    /// reports ~8 000–50 000 cycles for the pair depending on cache state
    /// (the paper's Lynx discussion cites "up to 50 000 cycles" for the
    /// signal-delivery exit alone); 12 000 is a mid-range default.
    pub transition_cycles: u64,
    /// Per-operation tax on enclave-side work, modelling memory encryption
    /// on EPC misses ("running inside SGX enclave causes additional
    /// overheads when the enclave memory is removed from the CPU cache").
    pub memory_tax_cycles: u64,
}

impl Default for EnclaveConfig {
    fn default() -> Self {
        Self {
            transition_cycles: 12_000,
            memory_tax_cycles: 60,
        }
    }
}

impl EnclaveConfig {
    /// A zero-cost configuration for functional tests.
    pub fn free() -> Self {
        Self {
            transition_cycles: 0,
            memory_tax_cycles: 0,
        }
    }
}

/// The simulated enclave: a cost model plus accounting.
#[derive(Debug, Default)]
pub struct Enclave {
    config: EnclaveConfigCell,
    transitions: AtomicU64,
    taxed_ops: AtomicU64,
}

#[derive(Debug, Default)]
struct EnclaveConfigCell(EnclaveConfig);

impl Enclave {
    /// Creates an enclave with the given cost model.
    pub fn new(config: EnclaveConfig) -> Self {
        Self {
            config: EnclaveConfigCell(config),
            transitions: AtomicU64::new(0),
            taxed_ops: AtomicU64::new(0),
        }
    }

    /// The active cost model.
    pub fn config(&self) -> EnclaveConfig {
        self.config.0
    }

    /// Simulates one exit + re-enter round trip (an enclave thread yielding
    /// because it found no runnable application thread).
    pub fn transition(&self) {
        spin_cycles(self.config.0.transition_cycles);
        self.transitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Charges the encrypted-memory tax for one enclave-side operation.
    #[inline]
    pub fn memory_tax(&self) {
        spin_cycles(self.config.0.memory_tax_cycles);
        self.taxed_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Transitions performed so far.
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Operations that paid the memory tax so far.
    pub fn taxed_ops(&self) -> u64 {
        self.taxed_ops.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdtsc_is_monotonic_enough() {
        let a = rdtsc();
        let b = rdtsc();
        assert!(b >= a, "tsc went backwards within one thread");
    }

    #[test]
    fn spin_cycles_burns_at_least_requested() {
        let start = rdtsc();
        spin_cycles(10_000);
        assert!(rdtsc() - start >= 10_000);
    }

    #[test]
    fn spin_zero_is_free() {
        spin_cycles(0);
    }

    #[test]
    fn transition_accounting() {
        let e = Enclave::new(EnclaveConfig {
            transition_cycles: 100,
            memory_tax_cycles: 10,
        });
        e.transition();
        e.transition();
        e.memory_tax();
        assert_eq!(e.transitions(), 2);
        assert_eq!(e.taxed_ops(), 1);
    }

    #[test]
    fn free_config_has_no_costs() {
        let e = Enclave::new(EnclaveConfig::free());
        let start = rdtsc();
        for _ in 0..1000 {
            e.memory_tax();
        }
        // Sanity: 1000 free taxes stay far under one real transition.
        assert!(rdtsc() - start < 12_000_000);
        assert_eq!(e.taxed_ops(), 1000);
    }
}
