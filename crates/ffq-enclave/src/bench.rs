//! The Figure 7 (left) throughput benchmark: application threads issue
//! `getppid` in a loop through the syscall framework; we count completed
//! calls per second.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ffq_baselines::vyukov::VyukovQueue;
use ffq_baselines::{BenchHandle, BenchQueue};
use serde::Serialize;

use crate::runtime::{Enclave, EnclaveConfig};
use crate::syscall::{execute, native_syscall, Request, Response, Variant};

/// Outcome of one throughput run.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputResult {
    /// Variant label ("native" / "mpmc" / "ffq").
    pub variant: &'static str,
    /// Enclave-side OS threads (producers). For `Native`, the thread count.
    pub enclave_threads: usize,
    /// Proxy (consumer) threads per enclave thread.
    pub proxies_per_thread: usize,
    /// Application threads multiplexed per enclave thread.
    pub app_threads: usize,
    /// Completed syscalls.
    pub completed: u64,
    /// Wall-clock seconds.
    pub elapsed_secs: f64,
    /// Completed syscalls per second.
    pub ops_per_sec: f64,
    /// Simulated enclave transitions (idle yields).
    pub transitions: u64,
}

use crate::queue_capacity;

/// How many submissions an FFQ proxy harvests per head RMW. Bounded by the
/// queue capacity floor in [`queue_capacity`], so a full batch of responses
/// can never overfill a response queue (each request in flight has a
/// reserved response slot).
const PROXY_BATCH: usize = 32;

/// Runs the benchmark for `duration` and reports throughput.
///
/// `enclave_threads` producers each multiplex `app_threads` application
/// threads and are served by `proxies_per_thread` proxy threads.
pub fn run_throughput(
    variant: Variant,
    enclave_threads: usize,
    proxies_per_thread: usize,
    app_threads: usize,
    duration: Duration,
    config: EnclaveConfig,
) -> ThroughputResult {
    assert!(enclave_threads >= 1 && proxies_per_thread >= 1 && app_threads >= 1);
    let enclave = Arc::new(Enclave::new(config));
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();

    let completed = match variant {
        Variant::Native => run_native(enclave_threads, &stop, duration),
        Variant::SgxFfq => run_ffq(
            &enclave,
            enclave_threads,
            proxies_per_thread,
            app_threads,
            &stop,
            duration,
        ),
        Variant::SgxMpmc => run_mpmc(
            &enclave,
            enclave_threads,
            proxies_per_thread,
            app_threads,
            &stop,
            duration,
        ),
    };
    let elapsed = start.elapsed().as_secs_f64();

    ThroughputResult {
        variant: variant.name(),
        enclave_threads,
        proxies_per_thread,
        app_threads,
        completed,
        elapsed_secs: elapsed,
        ops_per_sec: completed as f64 / elapsed,
        transitions: enclave.transitions(),
    }
}

fn run_native(threads: usize, stop: &Arc<AtomicBool>, duration: Duration) -> u64 {
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let _ = native_syscall();
                    n += 1;
                }
                n
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    workers.into_iter().map(|w| w.join().unwrap()).sum()
}

/// The FFQ architecture: per enclave thread, one SPMC submission queue and
/// one SPSC response queue per proxy.
fn run_ffq(
    enclave: &Arc<Enclave>,
    enclave_threads: usize,
    proxies_per: usize,
    apps: usize,
    stop: &Arc<AtomicBool>,
    duration: Duration,
) -> u64 {
    let cap = queue_capacity(apps);
    let mut enclave_handles = Vec::new();
    let mut proxy_handles = Vec::new();

    for e in 0..enclave_threads as u16 {
        let (sub_tx, sub_rx) = ffq::spmc::channel::<u64>(cap);
        let mut resp_rx_all = Vec::new();
        for _ in 0..proxies_per {
            let (resp_tx, resp_rx) = ffq::spsc::channel::<u64>(cap);
            resp_rx_all.push(resp_rx);
            let mut sub_rx = sub_rx.clone();
            let stop = Arc::clone(stop);
            proxy_handles.push(std::thread::spawn(move || {
                let mut resp_tx = resp_tx;
                let mut reqs = Vec::with_capacity(PROXY_BATCH);
                loop {
                    // Batch drain: one head fetch-and-add claims a run of
                    // submissions, and the responses go back out under one
                    // release pass instead of one publication per call.
                    reqs.clear();
                    if sub_rx.dequeue_batch(&mut reqs, PROXY_BATCH) > 0 {
                        let responses = reqs
                            .drain(..)
                            .map(|word| execute(Request::decode(word)).encode());
                        resp_tx.enqueue_many(responses);
                        continue;
                    }
                    // Empty harvest: fall back to the per-item path, which
                    // distinguishes a momentary lull from disconnection.
                    match sub_rx.try_dequeue() {
                        Ok(word) => {
                            let resp = execute(Request::decode(word));
                            resp_tx.enqueue(resp.encode());
                        }
                        Err(ffq::TryDequeueError::Disconnected) => break,
                        Err(ffq::TryDequeueError::Empty) => {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            // Idle proxy: wait adaptively (spin, then a
                            // bounded futex park) for up to a millisecond
                            // instead of burning the core, so stop-flag
                            // checks stay ~1 ms apart while an idle proxy
                            // costs essentially no CPU.
                            match sub_rx.dequeue_timeout(Duration::from_millis(1)) {
                                Ok(word) => {
                                    let resp = execute(Request::decode(word));
                                    resp_tx.enqueue(resp.encode());
                                }
                                Err(ffq::TryDequeueError::Disconnected) => break,
                                Err(ffq::TryDequeueError::Empty) => {}
                            }
                        }
                    }
                }
            }));
        }
        drop(sub_rx);

        let enclave = Arc::clone(enclave);
        let stop = Arc::clone(stop);
        enclave_handles.push(std::thread::spawn(move || {
            enclave_thread_loop(&enclave, &stop, apps, e, sub_tx, resp_rx_all)
        }));
    }

    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let completed = enclave_handles.into_iter().map(|h| h.join().unwrap()).sum();
    for p in proxy_handles {
        p.join().unwrap();
    }
    completed
}

/// The enclave-side scheduling loop shared by both queued variants, generic
/// over how words are submitted and how responses are polled.
///
/// Returns the number of completed syscalls.
fn run_enclave_loop<S, P>(
    enclave: &Enclave,
    stop: &AtomicBool,
    apps: usize,
    e: u16,
    mut submit: S,
    mut poll: P,
) -> u64
where
    S: FnMut(u64),
    P: FnMut(&mut dyn FnMut(u64)),
{
    // outstanding[a] = Some(seq) while app thread a awaits a response.
    let mut outstanding: Vec<Option<u32>> = vec![None; apps];
    let mut next_seq = 0u32;
    let mut completed = 0u64;
    loop {
        let stopping = stop.load(Ordering::Relaxed);
        let mut progress = false;

        if !stopping {
            for (a, slot) in outstanding.iter_mut().enumerate() {
                if slot.is_none() {
                    let req = Request {
                        enclave_thread: e,
                        app_thread: a as u16,
                        seq: next_seq,
                    };
                    submit(req.encode());
                    enclave.memory_tax();
                    *slot = Some(next_seq);
                    next_seq = next_seq.wrapping_add(1);
                    progress = true;
                }
            }
        }

        poll(&mut |word| {
            let resp = Response::decode(word);
            let slot = &mut outstanding[resp.app_thread as usize];
            debug_assert_eq!(*slot, Some(resp.seq), "response routed to wrong app thread");
            *slot = None;
            completed += 1;
            progress = true;
        });

        if stopping {
            // In-flight requests are abandoned (their queues are dropped
            // with us); waiting for them would race proxies that also just
            // observed the stop flag.
            break;
        }
        if !progress {
            // No runnable app thread: the OS thread yields the processor,
            // i.e. leaves the enclave (§I: "will yield the processor, i.e.,
            // leave the enclave and sleep on the outside").
            enclave.transition();
            std::thread::yield_now();
        }
    }
    completed
}

fn enclave_thread_loop(
    enclave: &Enclave,
    stop: &AtomicBool,
    apps: usize,
    e: u16,
    mut tx: ffq::spmc::Producer<u64>,
    mut resp_rx: Vec<ffq::spsc::Consumer<u64>>,
) -> u64 {
    run_enclave_loop(
        enclave,
        stop,
        apps,
        e,
        |word| tx.enqueue(word),
        |on_resp| {
            for rx in resp_rx.iter_mut() {
                while let Ok(word) = rx.try_dequeue() {
                    on_resp(word);
                }
            }
        },
    )
}

/// The baseline architecture: one shared bounded MPMC queue for submissions
/// and one per enclave thread for responses (Vyukov's queue, footnote 8).
fn run_mpmc(
    enclave: &Arc<Enclave>,
    enclave_threads: usize,
    proxies_per: usize,
    apps: usize,
    stop: &Arc<AtomicBool>,
    duration: Duration,
) -> u64 {
    let sub_cap = queue_capacity(apps * enclave_threads);
    let submission = Arc::new(VyukovQueue::with_capacity(sub_cap));
    let responses: Vec<Arc<VyukovQueue>> = (0..enclave_threads)
        .map(|_| Arc::new(VyukovQueue::with_capacity(queue_capacity(apps))))
        .collect();

    let proxy_handles: Vec<_> = (0..enclave_threads * proxies_per)
        .map(|_| {
            let submission = Arc::clone(&submission);
            let responses = responses.clone();
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let mut sub = submission.register();
                let mut resp: Vec<_> = responses.iter().map(|q| q.register()).collect();
                loop {
                    match sub.dequeue() {
                        Some(word) => {
                            let req = Request::decode(word);
                            let r = execute(req);
                            resp[req.enclave_thread as usize].enqueue(r.encode());
                        }
                        None => {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
            })
        })
        .collect();

    let enclave_handles: Vec<_> = (0..enclave_threads as u16)
        .map(|e| {
            let submission = Arc::clone(&submission);
            let response = Arc::clone(&responses[e as usize]);
            let enclave = Arc::clone(enclave);
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let mut sub = submission.register();
                let mut resp = response.register();
                run_enclave_loop(
                    &enclave,
                    &stop,
                    apps,
                    e,
                    |word| sub.enqueue(word),
                    |on_resp| {
                        while let Some(word) = resp.dequeue() {
                            on_resp(word);
                        }
                    },
                )
            })
        })
        .collect();

    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let completed = enclave_handles.into_iter().map(|h| h.join().unwrap()).sum();
    for p in proxy_handles {
        p.join().unwrap();
    }
    completed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(variant: Variant) -> ThroughputResult {
        run_throughput(
            variant,
            1,
            1,
            4,
            Duration::from_millis(120),
            EnclaveConfig::free(),
        )
    }

    #[test]
    fn native_counts_syscalls() {
        let r = quick(Variant::Native);
        assert!(r.completed > 100, "completed {}", r.completed);
        assert!(r.ops_per_sec > 0.0);
    }

    #[test]
    fn ffq_round_trips_complete() {
        let r = quick(Variant::SgxFfq);
        assert!(r.completed > 50, "completed {}", r.completed);
        assert_eq!(r.variant, "ffq");
    }

    #[test]
    fn mpmc_round_trips_complete() {
        let r = quick(Variant::SgxMpmc);
        assert!(r.completed > 50, "completed {}", r.completed);
        assert_eq!(r.variant, "mpmc");
    }

    #[test]
    fn multi_producer_multi_proxy_topologies() {
        for variant in [Variant::SgxFfq, Variant::SgxMpmc] {
            let r = run_throughput(
                variant,
                2,
                2,
                3,
                Duration::from_millis(120),
                EnclaveConfig::free(),
            );
            assert!(r.completed > 20, "{}: {}", r.variant, r.completed);
        }
    }

    #[test]
    fn transitions_are_recorded_when_idle() {
        // One app thread and a tiny run: the enclave thread will go idle
        // waiting for responses, forcing transitions.
        let r = run_throughput(
            Variant::SgxFfq,
            1,
            1,
            1,
            Duration::from_millis(80),
            EnclaveConfig {
                transition_cycles: 10,
                memory_tax_cycles: 0,
            },
        );
        assert!(r.transitions > 0);
    }
}
