//! A simulated SGX secure-enclave asynchronous system-call framework.
//!
//! This is the application that motivated FFQ (§I of the paper): threads
//! inside an enclave cannot trap into the kernel, so a syscall is shipped as
//! a message through a FIFO queue to a proxy thread pool outside, which
//! executes it and ships the result back through a second queue. Figure 7
//! benchmarks exactly this with `getppid(2)`.
//!
//! No SGX hardware is available here, so the *enclave boundary* is simulated
//! (substitution DESIGN.md §4.1) while everything else is real:
//!
//! * the communication architecture is the paper's, verbatim — per enclave
//!   thread one SPMC **submission queue** (the enclave thread is its single
//!   producer) and one SPSC **response queue per proxy** in the FFQ variant;
//!   a generic bounded MPMC queue (Vyukov — the paper's footnote 8) in the
//!   baseline variant;
//! * proxies issue the real `getppid(2)` via libc;
//! * the enclave costs are a calibrated cycle model ([`runtime`]):
//!   a transition (EENTER/EEXIT round trip) burns a configurable number of
//!   cycles (default 12 000, in the published SGXv1 range) and enclave-side
//!   work pays a small memory-encryption tax per operation.
//!
//! The quantity Figure 7 reports — how throughput and latency of the
//! *queued* variants compare to each other and to native — is preserved
//! because the queue is the bottleneck in both the real and the simulated
//! system (the paper picked `getppid` precisely for that property).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bench;
pub mod latency;
pub mod runtime;
pub mod syscall;

pub use bench::{run_throughput, ThroughputResult};
pub use latency::{measure_latency, LatencyResult};
pub use runtime::{Enclave, EnclaveConfig};
pub use syscall::Variant;
