//! A simulated SGX secure-enclave asynchronous system-call framework.
//!
//! This is the application that motivated FFQ (§I of the paper): threads
//! inside an enclave cannot trap into the kernel, so a syscall is shipped as
//! a message through a FIFO queue to a proxy thread pool outside, which
//! executes it and ships the result back through a second queue. Figure 7
//! benchmarks exactly this with `getppid(2)`.
//!
//! No SGX hardware is available here, so the *enclave boundary* is simulated
//! (substitution DESIGN.md §4.1) while everything else is real:
//!
//! * the communication architecture is the paper's, verbatim — per enclave
//!   thread one SPMC **submission queue** (the enclave thread is its single
//!   producer) and one SPSC **response queue per proxy** in the FFQ variant;
//!   a generic bounded MPMC queue (Vyukov — the paper's footnote 8) in the
//!   baseline variant;
//! * proxies issue the real `getppid(2)` via libc;
//! * the enclave costs are a calibrated cycle model ([`runtime`]):
//!   a transition (EENTER/EEXIT round trip) burns a configurable number of
//!   cycles (default 12 000, in the published SGXv1 range) and enclave-side
//!   work pays a small memory-encryption tax per operation.
//!
//! The quantity Figure 7 reports — how throughput and latency of the
//! *queued* variants compare to each other and to native — is preserved
//! because the queue is the bottleneck in both the real and the simulated
//! system (the paper picked `getppid` precisely for that property).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bench;
pub mod latency;
pub mod runtime;
pub mod syscall;

pub use bench::{run_throughput, ThroughputResult};
pub use latency::{measure_latency, LatencyResult};
pub use runtime::{Enclave, EnclaveConfig};
pub use syscall::Variant;

/// Sizes a syscall queue for `callers` concurrently waiting requesters by
/// the paper's *implicit flow control* rule (§I observation 2): each caller
/// has at most one outstanding request, so a queue of twice the caller count
/// can never fill up — which is what keeps FFQ's enqueue wait-free here.
///
/// The result goes through [`ffq::normalize_capacity`], the crate-wide
/// validation path, and carries a floor of 64 cells so batched proxies
/// (which harvest up to 32 submissions per head RMW) always have room for a
/// full batch of responses in flight.
///
/// Also used by the cross-process RPC demo in `ffq-shm` to size its shared
/// submission and response queues.
pub fn queue_capacity(callers: usize) -> usize {
    let requested = (callers * 2).max(64);
    let cap_log2 = ffq::normalize_capacity(requested)
        .expect("flow-control sizing is nonzero and within bounds");
    1usize << cap_log2
}

#[cfg(test)]
mod capacity_tests {
    use super::queue_capacity;

    #[test]
    fn flow_control_sizing() {
        assert_eq!(queue_capacity(0), 64, "floor");
        assert_eq!(queue_capacity(8), 64, "2x8 below the floor");
        assert_eq!(queue_capacity(32), 64);
        assert_eq!(queue_capacity(33), 128, "rounds 66 up");
        assert_eq!(queue_capacity(1000), 2048);
    }
}
