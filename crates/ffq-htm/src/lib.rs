//! Software transactional emulation of hardware transactional memory.
//!
//! The paper's comparative study (Figure 8) includes "a simple concurrent
//! queue algorithm that uses hardware transactional memory (HTM) extensions
//! of Intel and IBM CPUs ... based on a bounded circular buffer [that]
//! simply executes the enqueue and dequeue operations inside hardware
//! transactions". No TM hardware is available in this environment, so this
//! crate provides the documented substitution (DESIGN.md §4.2): a
//! word-granular TL2-style software transactional memory with the canonical
//! HTM usage template on top —
//!
//! 1. try the operation speculatively up to `max_retries` times
//!    ([`TxRegion::transaction`]), aborting on any read/write conflict;
//! 2. fall back to a global lock once speculation keeps failing, exactly
//!    like the lock-elision fallback path every real HTM deployment needs.
//!
//! What the comparison needs from the HTM baseline is its *behavioural
//! profile*: near-zero synchronization cost when uncontended, collapse under
//! concurrency as conflicting transactions abort and retry. The conflicts
//! here are genuine — concurrent enqueues/dequeues really do collide on the
//! head/tail/cell words — so the profile is preserved; absolute single-thread
//! cost is higher than real HTM (a version-clock STM does more bookkeeping
//! than `XBEGIN`), which EXPERIMENTS.md notes.
//!
//! # Example
//!
//! ```
//! use ffq_htm::{TxRegion, Abort};
//!
//! let region = TxRegion::new(4, 16);
//! // Transfer between two "accounts" atomically.
//! region.transaction(|tx| {
//!     let a = tx.read(0)?;
//!     let b = tx.read(1)?;
//!     tx.write(0, a + 10)?;
//!     tx.write(1, b.wrapping_sub(10))?;
//!     Ok(())
//! });
//! assert_eq!(region.peek(0), 10);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod stats;
mod stm;

pub use stats::{AbortCause, HtmStats};
pub use stm::{Abort, Tx, TxRegion};
