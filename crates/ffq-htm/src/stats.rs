//! Abort accounting — the emulated analogue of the TSX abort-cause counters
//! (`perf stat -e tx-abort...`) the paper's authors could read from hardware.

use core::sync::atomic::{AtomicU64, Ordering};

/// Why a speculative transaction attempt aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// A word in the read or write set was locked by a committing writer —
    /// the emulated equivalent of a coherence-conflict abort.
    Locked,
    /// A read word's version advanced past the transaction's snapshot —
    /// another transaction committed underneath us.
    Validation,
    /// The read or write set outgrew the configured capacity — the emulated
    /// equivalent of an L1-overflow capacity abort.
    Capacity,
    /// The user's transaction body requested an explicit retry.
    Explicit,
}

/// Cumulative transaction statistics for a [`crate::TxRegion`].
///
/// All counters are updated with relaxed atomics; totals are exact once the
/// threads of interest have quiesced.
#[derive(Debug, Default)]
pub struct HtmStats {
    pub(crate) commits: AtomicU64,
    pub(crate) fallbacks: AtomicU64,
    pub(crate) aborts_locked: AtomicU64,
    pub(crate) aborts_validation: AtomicU64,
    pub(crate) aborts_capacity: AtomicU64,
    pub(crate) aborts_explicit: AtomicU64,
}

/// A point-in-time copy of [`HtmStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HtmStatsSnapshot {
    /// Transactions that committed speculatively.
    pub commits: u64,
    /// Transactions that gave up on speculation and ran under the fallback
    /// lock.
    pub fallbacks: u64,
    /// Aborts due to encountering a locked word.
    pub aborts_locked: u64,
    /// Aborts due to read-set validation failure.
    pub aborts_validation: u64,
    /// Aborts due to read/write-set capacity overflow.
    pub aborts_capacity: u64,
    /// Aborts requested by the transaction body.
    pub aborts_explicit: u64,
}

impl HtmStats {
    pub(crate) fn record_abort(&self, cause: AbortCause) {
        let counter = match cause {
            AbortCause::Locked => &self.aborts_locked,
            AbortCause::Validation => &self.aborts_validation,
            AbortCause::Capacity => &self.aborts_capacity,
            AbortCause::Explicit => &self.aborts_explicit,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> HtmStatsSnapshot {
        HtmStatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            aborts_locked: self.aborts_locked.load(Ordering::Relaxed),
            aborts_validation: self.aborts_validation.load(Ordering::Relaxed),
            aborts_capacity: self.aborts_capacity.load(Ordering::Relaxed),
            aborts_explicit: self.aborts_explicit.load(Ordering::Relaxed),
        }
    }
}

impl HtmStatsSnapshot {
    /// Total aborted speculative attempts.
    pub fn total_aborts(&self) -> u64 {
        self.aborts_locked + self.aborts_validation + self.aborts_capacity + self.aborts_explicit
    }

    /// Fraction of attempts that aborted (0.0 when nothing ran).
    pub fn abort_ratio(&self) -> f64 {
        let attempts = self.commits + self.fallbacks + self.total_aborts();
        if attempts == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_aborts() {
        let s = HtmStats::default();
        s.record_abort(AbortCause::Locked);
        s.record_abort(AbortCause::Locked);
        s.record_abort(AbortCause::Validation);
        s.record_abort(AbortCause::Capacity);
        s.record_abort(AbortCause::Explicit);
        let snap = s.snapshot();
        assert_eq!(snap.aborts_locked, 2);
        assert_eq!(snap.aborts_validation, 1);
        assert_eq!(snap.aborts_capacity, 1);
        assert_eq!(snap.aborts_explicit, 1);
        assert_eq!(snap.total_aborts(), 5);
    }

    #[test]
    fn abort_ratio_handles_zero_attempts() {
        assert_eq!(HtmStatsSnapshot::default().abort_ratio(), 0.0);
        let snap = HtmStatsSnapshot {
            commits: 3,
            aborts_locked: 1,
            ..Default::default()
        };
        assert!((snap.abort_ratio() - 0.25).abs() < 1e-12);
    }
}
