//! A TL2-style word-granular software transactional memory.
//!
//! Classic two-phase design over a fixed array of versioned words:
//!
//! * **Read phase** — sample the global version clock (`rv`), then read
//!   words optimistically; abort if a word is locked or newer than `rv`.
//! * **Commit phase** — lock the write set (bounded spin: abort on
//!   contention, like a real HTM conflict), bump the clock, re-validate the
//!   read set, publish the writes with the new version.
//!
//! Read-only transactions commit without touching the clock or any lock.

use core::sync::atomic::{AtomicU64, Ordering};

use ffq_sync::CachePadded;
use parking_lot::Mutex;

use crate::stats::{AbortCause, HtmStats};

/// Word version/lock: bit 0 = locked, bits 63..1 = version.
struct VWord {
    meta: AtomicU64,
    value: AtomicU64,
}

const LOCKED: u64 = 1;

impl VWord {
    fn new(value: u64) -> Self {
        Self {
            meta: AtomicU64::new(0),
            value: AtomicU64::new(value),
        }
    }
}

/// A fixed-size transactional memory region of `u64` words.
///
/// The HTM-queue baseline lays its head, tail and buffer cells out as words
/// of one region and runs every queue operation as a transaction, mirroring
/// the paper's "enqueue and dequeue operations inside hardware transactions".
pub struct TxRegion {
    words: Box<[VWord]>,
    /// TL2 global version clock.
    clock: CachePadded<AtomicU64>,
    /// Lock-elision fallback; serializes fallback holders against each
    /// other (exclusion vs. speculation flows through the word locks).
    fallback: Mutex<()>,
    stats: HtmStats,
    max_retries: u32,
    /// Emulated capacity limit: total (read + write) set size per attempt.
    set_capacity: usize,
}

/// Abort reason surfaced to the transaction body; propagate it with `?`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort(pub(crate) AbortCause);

impl Abort {
    /// Request an explicit retry of the enclosing transaction.
    pub fn retry() -> Self {
        Abort(AbortCause::Explicit)
    }
}

/// An in-flight speculative transaction. Created by
/// [`TxRegion::transaction`]; read and write words through it.
pub struct Tx<'r> {
    region: &'r TxRegion,
    rv: u64,
    read_set: Vec<(usize, u64)>,
    /// Write set with write-before-read-your-writes semantics.
    write_set: Vec<(usize, u64)>,
    /// Fallback mode: the caller holds every word lock, so reads are served
    /// directly and nothing aborts (real HTM fallbacks are non-speculative).
    exclusive: bool,
}

impl<'r> Tx<'r> {
    /// Transactionally reads word `idx`.
    pub fn read(&mut self, idx: usize) -> Result<u64, Abort> {
        // Read-your-writes.
        if let Some(&(_, v)) = self.write_set.iter().rev().find(|&&(i, _)| i == idx) {
            return Ok(v);
        }
        if self.exclusive {
            return Ok(self.region.words[idx].value.load(Ordering::Acquire));
        }
        if self.read_set.len() + self.write_set.len() >= self.region.set_capacity {
            return Err(Abort(AbortCause::Capacity));
        }
        let w = &self.region.words[idx];
        // TL2 read: meta must be unlocked and not newer than our snapshot,
        // both before and after the value read (the second check subsumes
        // the first for a racing commit).
        let m1 = w.meta.load(Ordering::Acquire);
        if m1 & LOCKED != 0 {
            return Err(Abort(AbortCause::Locked));
        }
        let value = w.value.load(Ordering::Acquire);
        let m2 = w.meta.load(Ordering::Acquire);
        if m1 != m2 || (m2 >> 1) > self.rv {
            return Err(Abort(AbortCause::Validation));
        }
        self.read_set.push((idx, m2));
        Ok(value)
    }

    /// Transactionally writes `value` to word `idx` (buffered until commit).
    pub fn write(&mut self, idx: usize, value: u64) -> Result<(), Abort> {
        if let Some(entry) = self.write_set.iter_mut().find(|e| e.0 == idx) {
            entry.1 = value;
            return Ok(());
        }
        if !self.exclusive && self.read_set.len() + self.write_set.len() >= self.region.set_capacity
        {
            return Err(Abort(AbortCause::Capacity));
        }
        self.write_set.push((idx, value));
        Ok(())
    }

    /// Attempts to commit; returns the abort cause on failure.
    fn commit(self) -> Result<(), Abort> {
        let region = self.region;
        if self.write_set.is_empty() {
            // Read-only: the per-read validation already proved a consistent
            // snapshot at version rv.
            return Ok(());
        }

        // Phase 1: lock the write set (sorted to avoid livelock between
        // writers; bounded — busy means conflict, abort like real HTM).
        let mut locked: Vec<usize> = Vec::with_capacity(self.write_set.len());
        let mut set: Vec<usize> = self.write_set.iter().map(|&(i, _)| i).collect();
        set.sort_unstable();
        set.dedup();
        let unlock = |ids: &[usize]| {
            for &i in ids {
                let w = &region.words[i];
                w.meta
                    .store(w.meta.load(Ordering::Relaxed) & !LOCKED, Ordering::Release);
            }
        };
        for &i in &set {
            let w = &region.words[i];
            let m = w.meta.load(Ordering::Relaxed);
            if m & LOCKED != 0
                || w.meta
                    .compare_exchange(m, m | LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_err()
            {
                unlock(&locked);
                return Err(Abort(AbortCause::Locked));
            }
            locked.push(i);
        }

        // Phase 2: new version.
        let wv = region.clock.fetch_add(1, Ordering::AcqRel) + 1;

        // Phase 3: validate the read set. Words we ourselves locked in
        // phase 1 are compared with the lock bit masked out — their version
        // must still be the one we read (a read-modify-write that lost a
        // race sees a newer version here and aborts).
        for &(i, m_seen) in &self.read_set {
            let m = region.words[i].meta.load(Ordering::Acquire);
            let owned = set.binary_search(&i).is_ok();
            let effective = if owned { m & !LOCKED } else { m };
            if effective != m_seen {
                unlock(&locked);
                return Err(Abort(AbortCause::Validation));
            }
        }

        // Phase 4: publish writes and release with the new version.
        for &(i, v) in &self.write_set {
            region.words[i].value.store(v, Ordering::Release);
        }
        for &i in &set {
            region.words[i].meta.store(wv << 1, Ordering::Release);
        }
        Ok(())
    }
}

impl TxRegion {
    /// Creates a region of `len` words, all zero, with speculative attempts
    /// capped at `max_retries` before falling back to the global lock.
    pub fn new(len: usize, max_retries: u32) -> Self {
        Self::with_capacity_limit(len, max_retries, usize::MAX)
    }

    /// Like [`new`](Self::new) but with an emulated read+write-set capacity,
    /// mirroring HTM capacity aborts (L1-sized working sets).
    pub fn with_capacity_limit(len: usize, max_retries: u32, set_capacity: usize) -> Self {
        Self {
            words: (0..len).map(|_| VWord::new(0)).collect(),
            clock: CachePadded::new(AtomicU64::new(0)),
            fallback: Mutex::new(()),
            stats: HtmStats::default(),
            max_retries,
            set_capacity,
        }
    }

    /// Number of words in the region.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the region has zero words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Runs `body` as a transaction: speculative attempts with exponential
    /// back-off, then the fallback lock. Always completes (the fallback path
    /// cannot abort), like the canonical HTM retry template.
    pub fn transaction<R>(&self, mut body: impl FnMut(&mut Tx<'_>) -> Result<R, Abort>) -> R {
        let mut backoff = ffq_sync::Backoff::new();
        for _ in 0..self.max_retries {
            let mut tx = Tx {
                region: self,
                rv: self.clock.load(Ordering::Acquire),
                read_set: Vec::with_capacity(8),
                write_set: Vec::with_capacity(8),
                exclusive: false,
            };
            match body(&mut tx) {
                Ok(result) => match tx.commit() {
                    Ok(()) => {
                        self.stats.commits.fetch_add(1, Ordering::Relaxed);
                        return result;
                    }
                    Err(Abort(cause)) => self.stats.record_abort(cause),
                },
                Err(Abort(cause)) => self.stats.record_abort(cause),
            }
            backoff.wait();
        }

        // Fallback: exclusive execution. The mutex serializes fallback
        // holders against each other; exclusion against speculative commits
        // flows through the word locks themselves — we acquire *every* word
        // lock, so an in-flight speculative commit either finished first or
        // will see a locked word and abort. Speculative *reads* during our
        // window observe the locked bit (or a bumped version) and abort too.
        let _guard = self.fallback.lock();
        for (i, w) in self.words.iter().enumerate() {
            loop {
                let m = w.meta.load(Ordering::Relaxed);
                if m & LOCKED == 0
                    && w.meta
                        .compare_exchange_weak(m, m | LOCKED, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                {
                    break;
                }
                core::hint::spin_loop();
                let _ = i;
            }
        }
        // Run the body in exclusive mode: reads are served directly (we hold
        // every lock) and nothing can abort except an explicit retry.
        let result = loop {
            let mut sp = Tx {
                region: self,
                rv: u64::MAX >> 1,
                read_set: Vec::new(),
                write_set: Vec::new(),
                exclusive: true,
            };
            match body(&mut sp) {
                Ok(r) => {
                    let wv = self.clock.fetch_add(1, Ordering::AcqRel) + 1;
                    for &(idx, v) in &sp.write_set {
                        self.words[idx].value.store(v, Ordering::Release);
                        self.words[idx].meta.store(wv << 1, Ordering::Release);
                    }
                    // Release the untouched words with their old versions.
                    let written: std::collections::HashSet<usize> =
                        sp.write_set.iter().map(|&(idx, _)| idx).collect();
                    for (idx, w) in self.words.iter().enumerate() {
                        if !written.contains(&idx) {
                            let m = w.meta.load(Ordering::Relaxed);
                            w.meta.store(m & !LOCKED, Ordering::Release);
                        }
                    }
                    break r;
                }
                Err(Abort(AbortCause::Explicit)) => {
                    std::thread::yield_now();
                    continue;
                }
                Err(Abort(cause)) => {
                    unreachable!("fallback transaction aborted with {cause:?}")
                }
            }
        };
        self.stats.fallbacks.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Non-transactional read for tests and reporting (racy by nature).
    pub fn peek(&self, idx: usize) -> u64 {
        self.words[idx].value.load(Ordering::Acquire)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &HtmStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_write_roundtrip() {
        let r = TxRegion::new(8, 8);
        r.transaction(|tx| {
            tx.write(3, 42)?;
            Ok(())
        });
        assert_eq!(r.peek(3), 42);
        let v = r.transaction(|tx| tx.read(3));
        assert_eq!(v, 42);
    }

    #[test]
    fn read_your_own_writes() {
        let r = TxRegion::new(4, 8);
        let out = r.transaction(|tx| {
            tx.write(0, 7)?;
            let v = tx.read(0)?;
            tx.write(0, v + 1)?;
            tx.read(0)
        });
        assert_eq!(out, 8);
        assert_eq!(r.peek(0), 8);
    }

    #[test]
    fn capacity_abort_falls_back_and_completes() {
        let r = TxRegion::with_capacity_limit(64, 4, 8);
        // Touches 16 words: always a capacity abort speculatively, must
        // complete via fallback.
        r.transaction(|tx| {
            for i in 0..16 {
                tx.write(i, i as u64)?;
            }
            Ok(())
        });
        for i in 0..16 {
            assert_eq!(r.peek(i), i as u64);
        }
        let snap = r.stats().snapshot();
        assert_eq!(snap.fallbacks, 1);
        assert!(snap.aborts_capacity >= 1);
    }

    #[test]
    fn explicit_retry_eventually_succeeds() {
        let r = TxRegion::new(2, 3);
        let mut attempts = 0;
        let v = r.transaction(|tx| {
            attempts += 1;
            if attempts < 3 {
                return Err(Abort::retry());
            }
            tx.write(0, 5)?;
            tx.read(0)
        });
        assert_eq!(v, 5);
        assert_eq!(r.stats().snapshot().aborts_explicit, 2);
    }

    #[test]
    fn concurrent_counter_increments_are_atomic() {
        const THREADS: usize = 4;
        const PER: u64 = 10_000;
        let r = Arc::new(TxRegion::new(1, 16));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..PER {
                        r.transaction(|tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.peek(0), THREADS as u64 * PER);
        // Contention must have produced genuine aborts (the behavioural
        // profile Figure 8 relies on).
        assert!(r.stats().snapshot().total_aborts() > 0 || r.stats().snapshot().fallbacks > 0);
    }

    #[test]
    fn invariant_across_words_never_torn() {
        // Writers keep word0 + word1 == 0 (mod 2^64). Readers must never
        // observe a violation.
        let r = Arc::new(TxRegion::new(2, 16));
        let stop = Arc::new(AtomicU64::new(0));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let r = Arc::clone(&r);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut x = 1u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        r.transaction(|tx| {
                            tx.write(0, x)?;
                            tx.write(1, x.wrapping_neg())?;
                            Ok(())
                        });
                        x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    }
                })
            })
            .collect();
        for _ in 0..20_000 {
            let (a, b) = r.transaction(|tx| {
                let a = tx.read(0)?;
                let b = tx.read(1)?;
                Ok((a, b))
            });
            assert_eq!(a.wrapping_add(b), 0, "torn transactional read");
        }
        stop.store(1, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }
}
