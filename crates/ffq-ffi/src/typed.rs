//! Monomorphized typed-queue lanes: `ffq_spsc_u64_*`, `ffq_spmc_16b_*`, …
//!
//! C has no generics, so each fixed payload size the ABI supports is
//! stamped out as its own family of functions over its own opaque handle
//! pair. Two macros do the stamping: [`queue_core!`](self) (create /
//! attach / close / poison / capacity — identical for every element type)
//! and `scalar_io!` / `blob_io!` (enqueue / dequeue — by value for `u64`,
//! by pointer for the `[u8; N]` blobs). Eight lanes ship:
//!
//! | prefix            | element    | C-side value        |
//! |-------------------|------------|---------------------|
//! | `ffq_spsc_u64_`   | `u64`      | `uint64_t`          |
//! | `ffq_spmc_u64_`   | `u64`      | `uint64_t`          |
//! | `ffq_spsc_16b_`   | `[u8; 16]` | `uint8_t*` 16 bytes |
//! | `ffq_spmc_16b_`   | `[u8; 16]` | `uint8_t*` 16 bytes |
//! | `ffq_spsc_32b_`   | `[u8; 32]` | `uint8_t*` 32 bytes |
//! | `ffq_spmc_32b_`   | `[u8; 32]` | `uint8_t*` 32 bytes |
//! | `ffq_spsc_64b_`   | `[u8; 64]` | `uint8_t*` 64 bytes |
//! | `ffq_spmc_64b_`   | `[u8; 64]` | `uint8_t*` 64 bytes |
//!
//! Blob lanes copy through unaligned caller buffers (`read_unaligned` /
//! `copy_nonoverlapping`), so the C side may pass any byte pointer.
//! Variable-size payloads belong to the zero-copy [`bytes`](crate::bytes)
//! lane instead.

use std::time::Duration;

use crate::{
    guard, out_ptr, region_of, set_last_error, status_of, FfqRegion, FFQ_DISCONNECTED, FFQ_EMPTY,
    FFQ_ERR_NULL, FFQ_FULL, FFQ_OK, FFQ_POISONED,
};
use ffq_shm::{ShmDequeueError, ShmTryDequeueError};

/// Null-checks a handle pointer and reborrows it mutably.
macro_rules! handle {
    ($p:expr) => {
        // SAFETY: per the header contract the pointer is either NULL
        // (rejected here) or a live handle created by this library and not
        // yet closed, used from one thread at a time.
        match unsafe { $p.as_mut() } {
            Some(h) => h,
            None => {
                $crate::set_last_error(concat!(stringify!($p), " handle is NULL"));
                return $crate::FFQ_ERR_NULL;
            }
        }
    };
}

fn dequeue_status(e: ShmDequeueError) -> i32 {
    set_last_error(&e.to_string());
    match e {
        ShmDequeueError::Disconnected => FFQ_DISCONNECTED,
        ShmDequeueError::Poisoned => FFQ_POISONED,
    }
}

fn try_dequeue_status(e: ShmTryDequeueError) -> i32 {
    match e {
        // Empty is the common retry path — skip the last-error write.
        ShmTryDequeueError::Empty => FFQ_EMPTY,
        ShmTryDequeueError::Disconnected => {
            set_last_error(&e.to_string());
            FFQ_DISCONNECTED
        }
        ShmTryDequeueError::Poisoned => {
            set_last_error(&e.to_string());
            FFQ_POISONED
        }
    }
}

/// Stamps the element-type-independent half of one typed lane: handle
/// types, region setup, lifecycle and introspection.
macro_rules! queue_core {
    (
        variant: $variant:ident, elem: $elem:ty,
        producer_handle: $Producer:ident, consumer_handle: $Consumer:ident,
        fns: $required_size:ident, $create:ident, $attach_producer:ident, $attach_consumer:ident,
             $producer_capacity:ident, $producer_is_poisoned:ident, $producer_poison:ident,
             $producer_close:ident,
             $consumer_capacity:ident, $consumer_is_poisoned:ident, $consumer_poison:ident,
             $consumer_close:ident
    ) => {
        #[doc = concat!(
                            "Opaque producer handle (`",
                            stringify!($variant), "`, `", stringify!($elem), "` elements)."
                        )]
        pub struct $Producer {
            inner: ffq_shm::$variant::Producer<$elem>,
        }

        #[doc = concat!(
                            "Opaque consumer handle (`",
                            stringify!($variant), "`, `", stringify!($elem), "` elements)."
                        )]
        pub struct $Consumer {
            inner: ffq_shm::$variant::Consumer<$elem>,
        }

        #[doc = concat!(
                            "Stores in `*out` the region size (bytes) this lane needs for ",
                            "at least `capacity` elements (rounded up to a power of two)."
                        )]
        #[no_mangle]
        pub unsafe extern "C" fn $required_size(capacity: usize, out: *mut usize) -> i32 {
            guard(|| {
                out_ptr!(out);
                match ffq_shm::$variant::required_size::<$elem>(capacity) {
                    Ok(n) => {
                        // SAFETY: out was null-checked.
                        unsafe { *out = n };
                        FFQ_OK
                    }
                    Err(e) => status_of(&e),
                }
            })
        }

        #[doc = concat!(
                            "Formats `region` as this lane's queue and attaches as its ",
                            "producer (the creator path). The new handle lands in `*out`; ",
                            "the caller may close its region handle afterwards."
                        )]
        #[no_mangle]
        pub unsafe extern "C" fn $create(
            region: *const FfqRegion,
            capacity: usize,
            out: *mut *mut $Producer,
        ) -> i32 {
            guard(|| {
                out_ptr!(out);
                // SAFETY: per header contract, a live region handle or NULL.
                let region = match unsafe { region_of(region) } {
                    Ok(r) => r,
                    Err(s) => return s,
                };
                match ffq_shm::$variant::create::<$elem>(region, capacity) {
                    Ok(inner) => {
                        // SAFETY: out was null-checked.
                        unsafe { *out = Box::into_raw(Box::new($Producer { inner })) };
                        FFQ_OK
                    }
                    Err(e) => status_of(&e),
                }
            })
        }

        #[doc = concat!(
                            "Attaches as the producer of an already-formatted region ",
                            "(waits for READY; `FFQ_ERR_PRODUCER_ATTACHED` while another ",
                            "live process holds that side)."
                        )]
        #[no_mangle]
        pub unsafe extern "C" fn $attach_producer(
            region: *const FfqRegion,
            out: *mut *mut $Producer,
        ) -> i32 {
            guard(|| {
                out_ptr!(out);
                // SAFETY: per header contract, a live region handle or NULL.
                let region = match unsafe { region_of(region) } {
                    Ok(r) => r,
                    Err(s) => return s,
                };
                match ffq_shm::$variant::attach_producer::<$elem>(region) {
                    Ok(inner) => {
                        // SAFETY: out was null-checked.
                        unsafe { *out = Box::into_raw(Box::new($Producer { inner })) };
                        FFQ_OK
                    }
                    Err(e) => status_of(&e),
                }
            })
        }

        #[doc = concat!(
                            "Attaches a consumer to an already-formatted region (waits for ",
                            "READY; `FFQ_ERR_SLOTS_FULL` when no consumer slot is free)."
                        )]
        #[no_mangle]
        pub unsafe extern "C" fn $attach_consumer(
            region: *const FfqRegion,
            out: *mut *mut $Consumer,
        ) -> i32 {
            guard(|| {
                out_ptr!(out);
                // SAFETY: per header contract, a live region handle or NULL.
                let region = match unsafe { region_of(region) } {
                    Ok(r) => r,
                    Err(s) => return s,
                };
                match ffq_shm::$variant::attach_consumer::<$elem>(region) {
                    Ok(inner) => {
                        // SAFETY: out was null-checked.
                        unsafe { *out = Box::into_raw(Box::new($Consumer { inner })) };
                        FFQ_OK
                    }
                    Err(e) => status_of(&e),
                }
            })
        }

        #[doc = "Queue capacity in elements (0 for NULL)."]
        #[no_mangle]
        pub unsafe extern "C" fn $producer_capacity(p: *const $Producer) -> usize {
            if p.is_null() {
                return 0;
            }
            // SAFETY: live handle per header contract.
            unsafe { (*p).inner.capacity() }
        }

        #[doc = "1 if the queue is poisoned, 0 if not, `FFQ_ERR_NULL` for NULL."]
        #[no_mangle]
        pub unsafe extern "C" fn $producer_is_poisoned(p: *const $Producer) -> i32 {
            if p.is_null() {
                return FFQ_ERR_NULL;
            }
            // SAFETY: live handle per header contract.
            unsafe { (*p).inner.is_poisoned() as i32 }
        }

        #[doc = "Poisons the queue for every attached handle in every process."]
        #[no_mangle]
        pub unsafe extern "C" fn $producer_poison(p: *const $Producer) -> i32 {
            guard(|| {
                if p.is_null() {
                    set_last_error("producer handle is NULL");
                    return FFQ_ERR_NULL;
                }
                // SAFETY: live handle per header contract.
                unsafe { (*p).inner.poison() };
                FFQ_OK
            })
        }

        #[doc = "Detaches and destroys the producer handle. NULL is a no-op."]
        #[no_mangle]
        pub unsafe extern "C" fn $producer_close(p: *mut $Producer) {
            if p.is_null() {
                return;
            }
            let _ = guard(move || {
                // SAFETY: live handle per header contract, not yet closed.
                drop(unsafe { Box::from_raw(p) });
                FFQ_OK
            });
        }

        #[doc = "Queue capacity in elements (0 for NULL)."]
        #[no_mangle]
        pub unsafe extern "C" fn $consumer_capacity(c: *const $Consumer) -> usize {
            if c.is_null() {
                return 0;
            }
            // SAFETY: live handle per header contract.
            unsafe { (*c).inner.capacity() }
        }

        #[doc = "1 if the queue is poisoned, 0 if not, `FFQ_ERR_NULL` for NULL."]
        #[no_mangle]
        pub unsafe extern "C" fn $consumer_is_poisoned(c: *const $Consumer) -> i32 {
            if c.is_null() {
                return FFQ_ERR_NULL;
            }
            // SAFETY: live handle per header contract.
            unsafe { (*c).inner.is_poisoned() as i32 }
        }

        #[doc = "Poisons the queue for every attached handle in every process."]
        #[no_mangle]
        pub unsafe extern "C" fn $consumer_poison(c: *const $Consumer) -> i32 {
            guard(|| {
                if c.is_null() {
                    set_last_error("consumer handle is NULL");
                    return FFQ_ERR_NULL;
                }
                // SAFETY: live handle per header contract.
                unsafe { (*c).inner.poison() };
                FFQ_OK
            })
        }

        #[doc = "Detaches and destroys the consumer handle. NULL is a no-op."]
        #[no_mangle]
        pub unsafe extern "C" fn $consumer_close(c: *mut $Consumer) {
            if c.is_null() {
                return;
            }
            let _ = guard(move || {
                // SAFETY: live handle per header contract, not yet closed.
                drop(unsafe { Box::from_raw(c) });
                FFQ_OK
            });
        }
    };
}

/// Stamps the enqueue/dequeue half for the by-value `u64` lanes.
macro_rules! scalar_io {
    (
        producer_handle: $Producer:ident, consumer_handle: $Consumer:ident,
        fns: $enqueue:ident, $try_enqueue:ident,
             $dequeue:ident, $try_dequeue:ident, $dequeue_timeout_ms:ident
    ) => {
        #[doc = "Enqueues `value`, blocking while the queue is full. \
                 `FFQ_POISONED` if a peer died."]
        #[no_mangle]
        pub unsafe extern "C" fn $enqueue(p: *mut $Producer, value: u64) -> i32 {
            guard(|| {
                let h = handle!(p);
                if h.inner.is_poisoned() {
                    set_last_error("shared-memory queue poisoned");
                    return FFQ_POISONED;
                }
                match h.inner.enqueue(value) {
                    Ok(()) => FFQ_OK,
                    Err(e) => {
                        set_last_error(&e.to_string());
                        FFQ_POISONED
                    }
                }
            })
        }

        #[doc = "Enqueues `value` without blocking: `FFQ_FULL` when no cell \
                 is free, `FFQ_POISONED` if a peer died."]
        #[no_mangle]
        pub unsafe extern "C" fn $try_enqueue(p: *mut $Producer, value: u64) -> i32 {
            guard(|| {
                let h = handle!(p);
                if h.inner.is_poisoned() {
                    set_last_error("shared-memory queue poisoned");
                    return FFQ_POISONED;
                }
                match h.inner.try_enqueue(value) {
                    Ok(()) => FFQ_OK,
                    Err(_) if h.inner.is_poisoned() => {
                        set_last_error("shared-memory queue poisoned");
                        FFQ_POISONED
                    }
                    Err(_) => FFQ_FULL,
                }
            })
        }

        #[doc = "Dequeues into `*out`, blocking while the queue is empty. \
                 `FFQ_DISCONNECTED` once the producer detached cleanly and \
                 the queue drained; `FFQ_POISONED` if a peer died."]
        #[no_mangle]
        pub unsafe extern "C" fn $dequeue(c: *mut $Consumer, out: *mut u64) -> i32 {
            guard(|| {
                out_ptr!(out);
                let h = handle!(c);
                match h.inner.dequeue() {
                    Ok(v) => {
                        // SAFETY: out was null-checked.
                        unsafe { *out = v };
                        FFQ_OK
                    }
                    Err(e) => dequeue_status(e),
                }
            })
        }

        #[doc = "Dequeues into `*out` without blocking: `FFQ_EMPTY` when \
                 nothing is ready."]
        #[no_mangle]
        pub unsafe extern "C" fn $try_dequeue(c: *mut $Consumer, out: *mut u64) -> i32 {
            guard(|| {
                out_ptr!(out);
                let h = handle!(c);
                match h.inner.try_dequeue() {
                    Ok(v) => {
                        // SAFETY: out was null-checked.
                        unsafe { *out = v };
                        FFQ_OK
                    }
                    Err(e) => try_dequeue_status(e),
                }
            })
        }

        #[doc = "Dequeues into `*out`, giving up with `FFQ_EMPTY` after \
                 `timeout_ms` milliseconds."]
        #[no_mangle]
        pub unsafe extern "C" fn $dequeue_timeout_ms(
            c: *mut $Consumer,
            out: *mut u64,
            timeout_ms: u64,
        ) -> i32 {
            guard(|| {
                out_ptr!(out);
                let h = handle!(c);
                match h.inner.dequeue_timeout(Duration::from_millis(timeout_ms)) {
                    Ok(v) => {
                        // SAFETY: out was null-checked.
                        unsafe { *out = v };
                        FFQ_OK
                    }
                    Err(e) => try_dequeue_status(e),
                }
            })
        }
    };
}

/// Stamps the enqueue/dequeue half for the by-pointer `[u8; N]` lanes.
/// Caller buffers need no alignment; exactly `N` bytes are copied.
macro_rules! blob_io {
    (
        n: $n:literal,
        producer_handle: $Producer:ident, consumer_handle: $Consumer:ident,
        fns: $enqueue:ident, $try_enqueue:ident,
             $dequeue:ident, $try_dequeue:ident, $dequeue_timeout_ms:ident
    ) => {
        #[doc = concat!(
                            "Enqueues the ", stringify!($n), " bytes at `value`, blocking ",
                            "while the queue is full. `FFQ_POISONED` if a peer died."
                        )]
        #[no_mangle]
        pub unsafe extern "C" fn $enqueue(p: *mut $Producer, value: *const u8) -> i32 {
            guard(|| {
                out_ptr!(value);
                let h = handle!(p);
                if h.inner.is_poisoned() {
                    set_last_error("shared-memory queue poisoned");
                    return FFQ_POISONED;
                }
                // SAFETY: per the header contract `value` points at N
                // readable bytes; read_unaligned imposes no alignment.
                let v: [u8; $n] = unsafe { core::ptr::read_unaligned(value.cast()) };
                match h.inner.enqueue(v) {
                    Ok(()) => FFQ_OK,
                    Err(e) => {
                        set_last_error(&e.to_string());
                        FFQ_POISONED
                    }
                }
            })
        }

        #[doc = concat!(
                            "Enqueues the ", stringify!($n), " bytes at `value` without ",
                            "blocking: `FFQ_FULL` when no cell is free."
                        )]
        #[no_mangle]
        pub unsafe extern "C" fn $try_enqueue(p: *mut $Producer, value: *const u8) -> i32 {
            guard(|| {
                out_ptr!(value);
                let h = handle!(p);
                if h.inner.is_poisoned() {
                    set_last_error("shared-memory queue poisoned");
                    return FFQ_POISONED;
                }
                // SAFETY: per the header contract `value` points at N
                // readable bytes; read_unaligned imposes no alignment.
                let v: [u8; $n] = unsafe { core::ptr::read_unaligned(value.cast()) };
                match h.inner.try_enqueue(v) {
                    Ok(()) => FFQ_OK,
                    Err(_) if h.inner.is_poisoned() => {
                        set_last_error("shared-memory queue poisoned");
                        FFQ_POISONED
                    }
                    Err(_) => FFQ_FULL,
                }
            })
        }

        #[doc = concat!(
                            "Dequeues ", stringify!($n), " bytes into `out`, blocking while ",
                            "the queue is empty. `FFQ_DISCONNECTED` once the producer ",
                            "detached cleanly and the queue drained."
                        )]
        #[no_mangle]
        pub unsafe extern "C" fn $dequeue(c: *mut $Consumer, out: *mut u8) -> i32 {
            guard(|| {
                out_ptr!(out);
                let h = handle!(c);
                match h.inner.dequeue() {
                    Ok(v) => {
                        // SAFETY: per the header contract `out` points at N
                        // writable bytes; plain byte copy, no alignment.
                        unsafe { core::ptr::copy_nonoverlapping(v.as_ptr(), out, $n) };
                        FFQ_OK
                    }
                    Err(e) => dequeue_status(e),
                }
            })
        }

        #[doc = concat!(
                            "Dequeues ", stringify!($n), " bytes into `out` without ",
                            "blocking: `FFQ_EMPTY` when nothing is ready."
                        )]
        #[no_mangle]
        pub unsafe extern "C" fn $try_dequeue(c: *mut $Consumer, out: *mut u8) -> i32 {
            guard(|| {
                out_ptr!(out);
                let h = handle!(c);
                match h.inner.try_dequeue() {
                    Ok(v) => {
                        // SAFETY: per the header contract `out` points at N
                        // writable bytes; plain byte copy, no alignment.
                        unsafe { core::ptr::copy_nonoverlapping(v.as_ptr(), out, $n) };
                        FFQ_OK
                    }
                    Err(e) => try_dequeue_status(e),
                }
            })
        }

        #[doc = concat!(
                            "Dequeues ", stringify!($n), " bytes into `out`, giving up with ",
                            "`FFQ_EMPTY` after `timeout_ms` milliseconds."
                        )]
        #[no_mangle]
        pub unsafe extern "C" fn $dequeue_timeout_ms(
            c: *mut $Consumer,
            out: *mut u8,
            timeout_ms: u64,
        ) -> i32 {
            guard(|| {
                out_ptr!(out);
                let h = handle!(c);
                match h.inner.dequeue_timeout(Duration::from_millis(timeout_ms)) {
                    Ok(v) => {
                        // SAFETY: per the header contract `out` points at N
                        // writable bytes; plain byte copy, no alignment.
                        unsafe { core::ptr::copy_nonoverlapping(v.as_ptr(), out, $n) };
                        FFQ_OK
                    }
                    Err(e) => try_dequeue_status(e),
                }
            })
        }
    };
}

// ---------------------------------------------------------------------------
// ffq_spsc_u64_* / ffq_spmc_u64_*
// ---------------------------------------------------------------------------

queue_core! {
    variant: spsc, elem: u64,
    producer_handle: FfqSpscU64Producer, consumer_handle: FfqSpscU64Consumer,
    fns: ffq_spsc_u64_required_size, ffq_spsc_u64_create,
         ffq_spsc_u64_attach_producer, ffq_spsc_u64_attach_consumer,
         ffq_spsc_u64_producer_capacity, ffq_spsc_u64_producer_is_poisoned,
         ffq_spsc_u64_producer_poison, ffq_spsc_u64_producer_close,
         ffq_spsc_u64_consumer_capacity, ffq_spsc_u64_consumer_is_poisoned,
         ffq_spsc_u64_consumer_poison, ffq_spsc_u64_consumer_close
}
scalar_io! {
    producer_handle: FfqSpscU64Producer, consumer_handle: FfqSpscU64Consumer,
    fns: ffq_spsc_u64_enqueue, ffq_spsc_u64_try_enqueue,
         ffq_spsc_u64_dequeue, ffq_spsc_u64_try_dequeue, ffq_spsc_u64_dequeue_timeout_ms
}

queue_core! {
    variant: spmc, elem: u64,
    producer_handle: FfqSpmcU64Producer, consumer_handle: FfqSpmcU64Consumer,
    fns: ffq_spmc_u64_required_size, ffq_spmc_u64_create,
         ffq_spmc_u64_attach_producer, ffq_spmc_u64_attach_consumer,
         ffq_spmc_u64_producer_capacity, ffq_spmc_u64_producer_is_poisoned,
         ffq_spmc_u64_producer_poison, ffq_spmc_u64_producer_close,
         ffq_spmc_u64_consumer_capacity, ffq_spmc_u64_consumer_is_poisoned,
         ffq_spmc_u64_consumer_poison, ffq_spmc_u64_consumer_close
}
scalar_io! {
    producer_handle: FfqSpmcU64Producer, consumer_handle: FfqSpmcU64Consumer,
    fns: ffq_spmc_u64_enqueue, ffq_spmc_u64_try_enqueue,
         ffq_spmc_u64_dequeue, ffq_spmc_u64_try_dequeue, ffq_spmc_u64_dequeue_timeout_ms
}

// ---------------------------------------------------------------------------
// ffq_spsc_16b_* / ffq_spmc_16b_*
// ---------------------------------------------------------------------------

queue_core! {
    variant: spsc, elem: [u8; 16],
    producer_handle: FfqSpsc16bProducer, consumer_handle: FfqSpsc16bConsumer,
    fns: ffq_spsc_16b_required_size, ffq_spsc_16b_create,
         ffq_spsc_16b_attach_producer, ffq_spsc_16b_attach_consumer,
         ffq_spsc_16b_producer_capacity, ffq_spsc_16b_producer_is_poisoned,
         ffq_spsc_16b_producer_poison, ffq_spsc_16b_producer_close,
         ffq_spsc_16b_consumer_capacity, ffq_spsc_16b_consumer_is_poisoned,
         ffq_spsc_16b_consumer_poison, ffq_spsc_16b_consumer_close
}
blob_io! {
    n: 16,
    producer_handle: FfqSpsc16bProducer, consumer_handle: FfqSpsc16bConsumer,
    fns: ffq_spsc_16b_enqueue, ffq_spsc_16b_try_enqueue,
         ffq_spsc_16b_dequeue, ffq_spsc_16b_try_dequeue, ffq_spsc_16b_dequeue_timeout_ms
}

queue_core! {
    variant: spmc, elem: [u8; 16],
    producer_handle: FfqSpmc16bProducer, consumer_handle: FfqSpmc16bConsumer,
    fns: ffq_spmc_16b_required_size, ffq_spmc_16b_create,
         ffq_spmc_16b_attach_producer, ffq_spmc_16b_attach_consumer,
         ffq_spmc_16b_producer_capacity, ffq_spmc_16b_producer_is_poisoned,
         ffq_spmc_16b_producer_poison, ffq_spmc_16b_producer_close,
         ffq_spmc_16b_consumer_capacity, ffq_spmc_16b_consumer_is_poisoned,
         ffq_spmc_16b_consumer_poison, ffq_spmc_16b_consumer_close
}
blob_io! {
    n: 16,
    producer_handle: FfqSpmc16bProducer, consumer_handle: FfqSpmc16bConsumer,
    fns: ffq_spmc_16b_enqueue, ffq_spmc_16b_try_enqueue,
         ffq_spmc_16b_dequeue, ffq_spmc_16b_try_dequeue, ffq_spmc_16b_dequeue_timeout_ms
}

// ---------------------------------------------------------------------------
// ffq_spsc_32b_* / ffq_spmc_32b_*
// ---------------------------------------------------------------------------

queue_core! {
    variant: spsc, elem: [u8; 32],
    producer_handle: FfqSpsc32bProducer, consumer_handle: FfqSpsc32bConsumer,
    fns: ffq_spsc_32b_required_size, ffq_spsc_32b_create,
         ffq_spsc_32b_attach_producer, ffq_spsc_32b_attach_consumer,
         ffq_spsc_32b_producer_capacity, ffq_spsc_32b_producer_is_poisoned,
         ffq_spsc_32b_producer_poison, ffq_spsc_32b_producer_close,
         ffq_spsc_32b_consumer_capacity, ffq_spsc_32b_consumer_is_poisoned,
         ffq_spsc_32b_consumer_poison, ffq_spsc_32b_consumer_close
}
blob_io! {
    n: 32,
    producer_handle: FfqSpsc32bProducer, consumer_handle: FfqSpsc32bConsumer,
    fns: ffq_spsc_32b_enqueue, ffq_spsc_32b_try_enqueue,
         ffq_spsc_32b_dequeue, ffq_spsc_32b_try_dequeue, ffq_spsc_32b_dequeue_timeout_ms
}

queue_core! {
    variant: spmc, elem: [u8; 32],
    producer_handle: FfqSpmc32bProducer, consumer_handle: FfqSpmc32bConsumer,
    fns: ffq_spmc_32b_required_size, ffq_spmc_32b_create,
         ffq_spmc_32b_attach_producer, ffq_spmc_32b_attach_consumer,
         ffq_spmc_32b_producer_capacity, ffq_spmc_32b_producer_is_poisoned,
         ffq_spmc_32b_producer_poison, ffq_spmc_32b_producer_close,
         ffq_spmc_32b_consumer_capacity, ffq_spmc_32b_consumer_is_poisoned,
         ffq_spmc_32b_consumer_poison, ffq_spmc_32b_consumer_close
}
blob_io! {
    n: 32,
    producer_handle: FfqSpmc32bProducer, consumer_handle: FfqSpmc32bConsumer,
    fns: ffq_spmc_32b_enqueue, ffq_spmc_32b_try_enqueue,
         ffq_spmc_32b_dequeue, ffq_spmc_32b_try_dequeue, ffq_spmc_32b_dequeue_timeout_ms
}

// ---------------------------------------------------------------------------
// ffq_spsc_64b_* / ffq_spmc_64b_*
// ---------------------------------------------------------------------------

queue_core! {
    variant: spsc, elem: [u8; 64],
    producer_handle: FfqSpsc64bProducer, consumer_handle: FfqSpsc64bConsumer,
    fns: ffq_spsc_64b_required_size, ffq_spsc_64b_create,
         ffq_spsc_64b_attach_producer, ffq_spsc_64b_attach_consumer,
         ffq_spsc_64b_producer_capacity, ffq_spsc_64b_producer_is_poisoned,
         ffq_spsc_64b_producer_poison, ffq_spsc_64b_producer_close,
         ffq_spsc_64b_consumer_capacity, ffq_spsc_64b_consumer_is_poisoned,
         ffq_spsc_64b_consumer_poison, ffq_spsc_64b_consumer_close
}
blob_io! {
    n: 64,
    producer_handle: FfqSpsc64bProducer, consumer_handle: FfqSpsc64bConsumer,
    fns: ffq_spsc_64b_enqueue, ffq_spsc_64b_try_enqueue,
         ffq_spsc_64b_dequeue, ffq_spsc_64b_try_dequeue, ffq_spsc_64b_dequeue_timeout_ms
}

queue_core! {
    variant: spmc, elem: [u8; 64],
    producer_handle: FfqSpmc64bProducer, consumer_handle: FfqSpmc64bConsumer,
    fns: ffq_spmc_64b_required_size, ffq_spmc_64b_create,
         ffq_spmc_64b_attach_producer, ffq_spmc_64b_attach_consumer,
         ffq_spmc_64b_producer_capacity, ffq_spmc_64b_producer_is_poisoned,
         ffq_spmc_64b_producer_poison, ffq_spmc_64b_producer_close,
         ffq_spmc_64b_consumer_capacity, ffq_spmc_64b_consumer_is_poisoned,
         ffq_spmc_64b_consumer_poison, ffq_spmc_64b_consumer_close
}
blob_io! {
    n: 64,
    producer_handle: FfqSpmc64bProducer, consumer_handle: FfqSpmc64bConsumer,
    fns: ffq_spmc_64b_enqueue, ffq_spmc_64b_try_enqueue,
         ffq_spmc_64b_dequeue, ffq_spmc_64b_try_dequeue, ffq_spmc_64b_dequeue_timeout_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ffq_region_close, ffq_region_create, ffq_region_open, ffq_region_unlink};
    use std::ffi::CString;
    use std::ptr;

    fn shm_name(tag: &str) -> CString {
        CString::new(format!("ffq-ffi-{tag}-{}", std::process::id())).unwrap()
    }

    #[test]
    fn spsc_u64_round_trip_through_the_c_abi() {
        let name = shm_name("t-spsc-u64");
        // SAFETY: all pointers below are valid per the ABI contract; the
        // test exercises the extern fns exactly as a C client would.
        unsafe {
            let mut size = 0usize;
            assert_eq!(ffq_spsc_u64_required_size(64, &mut size), FFQ_OK);
            assert!(size > 0);

            let mut region = ptr::null_mut();
            assert_eq!(ffq_region_create(name.as_ptr(), size, &mut region), FFQ_OK);

            let mut prod = ptr::null_mut();
            assert_eq!(ffq_spsc_u64_create(region, 64, &mut prod), FFQ_OK);
            assert_eq!(ffq_spsc_u64_producer_capacity(prod), 64);

            // A consumer in the same process, via a second mapping, as a
            // separate process would do it.
            let mut region2 = ptr::null_mut();
            assert_eq!(ffq_region_open(name.as_ptr(), &mut region2), FFQ_OK);
            let mut cons = ptr::null_mut();
            assert_eq!(ffq_spsc_u64_attach_consumer(region2, &mut cons), FFQ_OK);
            ffq_region_close(region);
            ffq_region_close(region2);

            for i in 0..1000u64 {
                assert_eq!(ffq_spsc_u64_enqueue(prod, i), FFQ_OK);
                let mut out = u64::MAX;
                assert_eq!(ffq_spsc_u64_dequeue(cons, &mut out), FFQ_OK);
                assert_eq!(out, i);
            }
            let mut out = 0u64;
            assert_eq!(ffq_spsc_u64_try_dequeue(cons, &mut out), FFQ_EMPTY);
            assert_eq!(
                ffq_spsc_u64_dequeue_timeout_ms(cons, &mut out, 1),
                FFQ_EMPTY
            );

            // Producer closing first → consumer sees clean disconnect.
            ffq_spsc_u64_producer_close(prod);
            assert_eq!(ffq_spsc_u64_dequeue(cons, &mut out), FFQ_DISCONNECTED);
            ffq_spsc_u64_consumer_close(cons);
            assert_eq!(ffq_region_unlink(name.as_ptr()), FFQ_OK);
        }
    }

    #[test]
    fn spmc_16b_round_trip_and_poison() {
        let name = shm_name("t-spmc-16b");
        // SAFETY: as above — valid pointers throughout.
        unsafe {
            let mut size = 0usize;
            assert_eq!(ffq_spmc_16b_required_size(32, &mut size), FFQ_OK);
            let mut region = ptr::null_mut();
            assert_eq!(ffq_region_create(name.as_ptr(), size, &mut region), FFQ_OK);
            let mut prod = ptr::null_mut();
            assert_eq!(ffq_spmc_16b_create(region, 32, &mut prod), FFQ_OK);
            let mut cons = ptr::null_mut();
            assert_eq!(ffq_spmc_16b_attach_consumer(region, &mut cons), FFQ_OK);
            ffq_region_close(region);

            let msg = *b"polyglot-payload";
            assert_eq!(ffq_spmc_16b_try_enqueue(prod, msg.as_ptr()), FFQ_OK);
            let mut out = [0u8; 16];
            assert_eq!(ffq_spmc_16b_dequeue(cons, out.as_mut_ptr()), FFQ_OK);
            assert_eq!(out, msg);

            assert_eq!(ffq_spmc_16b_producer_is_poisoned(prod), 0);
            assert_eq!(ffq_spmc_16b_consumer_poison(cons), FFQ_OK);
            assert_eq!(ffq_spmc_16b_producer_is_poisoned(prod), 1);
            assert_eq!(ffq_spmc_16b_enqueue(prod, msg.as_ptr()), FFQ_POISONED);
            let mut out2 = [0u8; 16];
            assert_eq!(
                ffq_spmc_16b_try_dequeue(cons, out2.as_mut_ptr()),
                FFQ_POISONED
            );

            ffq_spmc_16b_producer_close(prod);
            ffq_spmc_16b_consumer_close(cons);
            assert_eq!(ffq_region_unlink(name.as_ptr()), FFQ_OK);
        }
    }

    #[test]
    fn null_handles_are_rejected() {
        // SAFETY: deliberately passing NULL — the contract promises
        // FFQ_ERR_NULL (or a 0/no-op) instead of UB.
        unsafe {
            assert_eq!(ffq_spsc_u64_enqueue(ptr::null_mut(), 7), FFQ_ERR_NULL);
            let mut out = 0u64;
            assert_eq!(
                ffq_spsc_u64_dequeue(ptr::null_mut(), &mut out),
                FFQ_ERR_NULL
            );
            let mut cons = ptr::null_mut();
            assert_eq!(
                ffq_spmc_u64_attach_consumer(ptr::null(), &mut cons),
                FFQ_ERR_NULL
            );
            assert_eq!(ffq_spmc_u64_producer_capacity(ptr::null()), 0);
            assert_eq!(ffq_spmc_u64_consumer_is_poisoned(ptr::null()), FFQ_ERR_NULL);
            ffq_spsc_u64_producer_close(ptr::null_mut());
            ffq_spsc_u64_consumer_close(ptr::null_mut());
        }
    }
}
