//! Prints the generated `ffq.h` to stdout.
//!
//! Regenerate the committed header with:
//!
//! ```text
//! cargo run -p ffq-ffi --bin ffq_header_gen > include/ffq.h
//! ```
//!
//! CI diffs the committed file against this output, and the in-crate
//! drift-gate test does the same under plain `cargo test`.

fn main() {
    print!("{}", ffq_ffi::header_gen::generate());
}
