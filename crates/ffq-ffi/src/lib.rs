//! # ffq-ffi — the C ABI over `ffq-shm`
//!
//! Everything `ffq-shm` can do across processes — SPSC and SPMC typed
//! queues, the zero-copy bytes lane, region create/attach/close, crash
//! detection — exported as a plain C ABI, so the shared-memory region
//! format stops being a Rust-only protocol. A C (or Python-ctypes, Go-cgo,
//! …) process links `libffq_ffi` and includes the checked-in
//! `include/ffq.h`; the Rust side of the queue neither knows nor cares.
//!
//! ## Shape of the ABI
//!
//! * Every status is an [`ffq_status_t`](crate::FFQ_OK) (`int32_t`):
//!   `FFQ_OK` is 0, retryable conditions are small positives
//!   (`FFQ_EMPTY`, `FFQ_FULL`, …), setup/programming errors are
//!   negatives. [`ffq_last_error_message`] returns a thread-local,
//!   human-readable reason for the most recent failure — including the
//!   expected-vs-found detail of version/config refusals.
//! * Every handle is an opaque pointer (`ffq_region_t`,
//!   `ffq_spsc_u64_producer_t`, …) created by exactly one `…_create` /
//!   `…_attach_…` call and destroyed by exactly one `…_close` call.
//!   Handles are not thread-safe; share queues by attaching more handles,
//!   not by sharing one.
//! * Monomorphized element types are stamped per fixed payload size
//!   ([`typed`]): `ffq_spsc_u64_*`, `ffq_spmc_16b_*`, `…32b…`, `…64b…`.
//!   Variable-size payloads go through the zero-copy byte-slice lane
//!   ([`bytes`]): `ffq_bytes_*_reserve` / `commit` to write in place,
//!   `ffq_bytes_*_payload_ref` / `payload_release` to read borrowed.
//! * Every entry point catches Rust panics and converts them to
//!   `FFQ_ERR_PANIC` — a bug in this crate cannot unwind into C frames
//!   (which would be UB).
//!
//! The header is *generated from this crate* ([`header_gen`], the
//! `ffq_header_gen` binary) and committed; CI diffs the two so the
//! committed header can never drift from the compiled symbols.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
// Every extern fn takes raw pointers from C; the safety contract is the
// header's documentation, repeated on each fn.
#![allow(clippy::missing_safety_doc)]

use std::cell::RefCell;
use std::ffi::{c_char, CStr, CString};
use std::panic::{catch_unwind, AssertUnwindSafe};

use ffq_shm::{ShmError, ShmRegion};

pub mod bytes;
pub mod header_gen;
pub mod typed;

// ---------------------------------------------------------------------------
// ffq_status_t
// ---------------------------------------------------------------------------

/// Success.
pub const FFQ_OK: i32 = 0;
/// No item ready (try/timeout paths); retry later.
pub const FFQ_EMPTY: i32 = 1;
/// Queue full (try paths); retry later.
pub const FFQ_FULL: i32 = 2;
/// The peer detached cleanly and the queue is drained; no more items ever.
pub const FFQ_DISCONNECTED: i32 = 3;
/// The queue is poisoned (a peer process died mid-operation); tear down.
pub const FFQ_POISONED: i32 = 4;
/// The payload can never fit this queue's slot geometry.
pub const FFQ_TOO_LARGE: i32 = 5;
/// The subscriber lagged and items were overwritten (broadcast lanes).
pub const FFQ_LAGGED: i32 = 6;

/// An OS call failed (see `ffq_last_error_message`).
pub const FFQ_ERR_OS: i32 = -1;
/// Invalid shared-memory object name.
pub const FFQ_ERR_INVALID_NAME: i32 = -2;
/// Requested capacity/slot size is invalid or overflows.
pub const FFQ_ERR_CAPACITY: i32 = -3;
/// The region is smaller than the queue layout requires.
pub const FFQ_ERR_REGION_TOO_SMALL: i32 = -4;
/// The region was already formatted by another process.
pub const FFQ_ERR_ALREADY_FORMATTED: i32 = -5;
/// The region never became ready (creator slow, dead, or not a queue).
pub const FFQ_ERR_NOT_READY: i32 = -6;
/// Not an ffq-shm region (bad magic).
pub const FFQ_ERR_BAD_MAGIC: i32 = -7;
/// Region formatted by an incompatible ffq-shm version.
pub const FFQ_ERR_BAD_VERSION: i32 = -8;
/// Region header is self-inconsistent (corrupt).
pub const FFQ_ERR_BAD_CONFIG: i32 = -9;
/// Region holds a different queue than this call asked for.
pub const FFQ_ERR_CONFIG_MISMATCH: i32 = -10;
/// Another live process already holds the producer side.
pub const FFQ_ERR_PRODUCER_ATTACHED: i32 = -11;
/// All consumer attach slots are taken.
pub const FFQ_ERR_SLOTS_FULL: i32 = -12;
/// A required pointer argument was NULL.
pub const FFQ_ERR_NULL: i32 = -13;
/// Handle-state misuse (e.g. commit with no outstanding reservation).
pub const FFQ_ERR_STATE: i32 = -14;
/// A Rust panic was caught at the FFI boundary (a bug in ffq-ffi).
pub const FFQ_ERR_PANIC: i32 = -15;

thread_local! {
    static LAST_ERROR: RefCell<CString> = RefCell::new(CString::default());
}

/// Records `msg` as this thread's last-error string.
pub(crate) fn set_last_error(msg: &str) {
    let c = CString::new(msg.replace('\0', "?")).unwrap_or_default();
    LAST_ERROR.with(|slot| *slot.borrow_mut() = c);
}

/// Maps an [`ShmError`] to its stable status code, recording the display
/// string (which carries expected-vs-found detail for the negotiation
/// errors) as the thread's last error.
pub(crate) fn status_of(e: &ShmError) -> i32 {
    set_last_error(&e.to_string());
    match e {
        ShmError::Os { .. } => FFQ_ERR_OS,
        ShmError::InvalidName => FFQ_ERR_INVALID_NAME,
        ShmError::Capacity(_) => FFQ_ERR_CAPACITY,
        ShmError::RegionTooSmall { .. } => FFQ_ERR_REGION_TOO_SMALL,
        ShmError::AlreadyFormatted => FFQ_ERR_ALREADY_FORMATTED,
        ShmError::NotReady => FFQ_ERR_NOT_READY,
        ShmError::BadMagic { .. } => FFQ_ERR_BAD_MAGIC,
        ShmError::BadVersion { .. } => FFQ_ERR_BAD_VERSION,
        ShmError::BadConfig { .. } => FFQ_ERR_BAD_CONFIG,
        ShmError::ConfigMismatch { .. } => FFQ_ERR_CONFIG_MISMATCH,
        ShmError::ProducerAttached => FFQ_ERR_PRODUCER_ATTACHED,
        ShmError::SlotsFull => FFQ_ERR_SLOTS_FULL,
        ShmError::Poisoned => FFQ_POISONED,
    }
}

/// Runs `f`, converting a panic into [`FFQ_ERR_PANIC`] instead of letting
/// it unwind into the C caller's frames (which would be undefined
/// behavior). Every extern fn body goes through here.
///
/// `AssertUnwindSafe` is sound under the ABI contract: after
/// `FFQ_ERR_PANIC` the only calls the header permits on the involved
/// handles are the `…_close` ones, so broken-invariant state is never
/// observed.
pub(crate) fn guard<F: FnOnce() -> i32>(f: F) -> i32 {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(status) => status,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("unknown panic");
            set_last_error(&format!("panic at FFI boundary: {msg}"));
            FFQ_ERR_PANIC
        }
    }
}

/// Null-checks an output pointer.
macro_rules! out_ptr {
    ($p:expr) => {
        if $p.is_null() {
            $crate::set_last_error(concat!(stringify!($p), " is NULL"));
            return $crate::FFQ_ERR_NULL;
        }
    };
}
pub(crate) use out_ptr;

/// Reads a required C string argument.
pub(crate) unsafe fn read_name(name: *const c_char) -> Result<String, i32> {
    if name.is_null() {
        set_last_error("name is NULL");
        return Err(FFQ_ERR_NULL);
    }
    // SAFETY: caller passed a NUL-terminated string per the header contract.
    match unsafe { CStr::from_ptr(name) }.to_str() {
        Ok(s) => Ok(s.to_owned()),
        Err(_) => {
            set_last_error("name is not valid UTF-8");
            Err(FFQ_ERR_INVALID_NAME)
        }
    }
}

/// The thread-local, human-readable reason for this thread's most recent
/// failing ffq call. Valid until the next ffq call on the same thread;
/// never NULL (empty string when nothing failed yet).
#[no_mangle]
pub extern "C" fn ffq_last_error_message() -> *const c_char {
    LAST_ERROR.with(|slot| slot.borrow().as_ptr())
}

// ---------------------------------------------------------------------------
// Regions
// ---------------------------------------------------------------------------

/// Opaque handle to one mapped shared-memory region (`ffq_region_t`).
pub struct FfqRegion {
    pub(crate) region: ShmRegion,
}

/// Creates a named POSIX shared-memory object of `len` bytes and maps it
/// (owner path; fails if the name exists). On success stores the new
/// handle in `*out`.
#[no_mangle]
pub unsafe extern "C" fn ffq_region_create(
    name: *const c_char,
    len: usize,
    out: *mut *mut FfqRegion,
) -> i32 {
    guard(|| {
        out_ptr!(out);
        // SAFETY: per header contract, `name` is a NUL-terminated string.
        let name = match unsafe { read_name(name) } {
            Ok(n) => n,
            Err(s) => return s,
        };
        match ShmRegion::create(&name, len) {
            Ok(region) => {
                // SAFETY: out was null-checked.
                unsafe { *out = Box::into_raw(Box::new(FfqRegion { region })) };
                FFQ_OK
            }
            Err(e) => status_of(&e),
        }
    })
}

/// Opens an existing named region and maps its full size. Returns
/// `FFQ_ERR_OS` (errno `ENOENT`) while the creator has not created it yet
/// — attach loops retry on that.
#[no_mangle]
pub unsafe extern "C" fn ffq_region_open(name: *const c_char, out: *mut *mut FfqRegion) -> i32 {
    guard(|| {
        out_ptr!(out);
        // SAFETY: per header contract, `name` is a NUL-terminated string.
        let name = match unsafe { read_name(name) } {
            Ok(n) => n,
            Err(s) => return s,
        };
        match ShmRegion::open(&name) {
            Ok(region) => {
                // SAFETY: out was null-checked.
                unsafe { *out = Box::into_raw(Box::new(FfqRegion { region })) };
                FFQ_OK
            }
            Err(e) => status_of(&e),
        }
    })
}

/// Removes a named region. Existing mappings stay valid; the name frees.
#[no_mangle]
pub unsafe extern "C" fn ffq_region_unlink(name: *const c_char) -> i32 {
    guard(|| {
        // SAFETY: per header contract, `name` is a NUL-terminated string.
        let name = match unsafe { read_name(name) } {
            Ok(n) => n,
            Err(s) => return s,
        };
        match ShmRegion::unlink(&name) {
            Ok(()) => FFQ_OK,
            Err(e) => status_of(&e),
        }
    })
}

/// Mapped length of the region in bytes (0 for NULL).
#[no_mangle]
pub unsafe extern "C" fn ffq_region_len(region: *const FfqRegion) -> usize {
    if region.is_null() {
        return 0;
    }
    // SAFETY: non-null handle created by this library, per header contract.
    unsafe { (*region).region.len() }
}

/// Unmaps the region and destroys the handle. Queue handles attached from
/// this region hold their own mapping reference and stay valid. NULL is a
/// no-op.
#[no_mangle]
pub unsafe extern "C" fn ffq_region_close(region: *mut FfqRegion) {
    if region.is_null() {
        return;
    }
    // The unwind guard matters even here: Drop runs arbitrary library code.
    let _ = guard(move || {
        // SAFETY: non-null handle created by this library, not yet closed,
        // per header contract.
        drop(unsafe { Box::from_raw(region) });
        FFQ_OK
    });
}

/// Clones the underlying region for a queue handle (each queue handle
/// keeps the mapping alive independently of the caller's region handle).
pub(crate) unsafe fn region_of(region: *const FfqRegion) -> Result<ShmRegion, i32> {
    if region.is_null() {
        set_last_error("region handle is NULL");
        return Err(FFQ_ERR_NULL);
    }
    // SAFETY: non-null handle created by this library, per header contract.
    Ok(unsafe { (*region).region.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ffi::CString;

    #[test]
    fn last_error_is_never_null_and_updates() {
        assert!(!ffq_last_error_message().is_null());
        let mut out: *mut FfqRegion = std::ptr::null_mut();
        // SAFETY: valid C string + out pointer.
        let status = unsafe {
            ffq_region_open(
                CString::new("ffq-ffi-definitely-missing").unwrap().as_ptr(),
                &mut out,
            )
        };
        assert_eq!(status, FFQ_ERR_OS);
        // SAFETY: pointer from ffq_last_error_message is NUL-terminated.
        let msg = unsafe { CStr::from_ptr(ffq_last_error_message()) }
            .to_str()
            .unwrap();
        assert!(msg.contains("shm_open"), "got {msg:?}");
    }

    #[test]
    fn null_arguments_are_rejected_not_ub() {
        // SAFETY: deliberately passing NULLs — the contract says that
        // returns FFQ_ERR_NULL rather than crashing.
        unsafe {
            assert_eq!(
                ffq_region_create(std::ptr::null(), 4096, std::ptr::null_mut()),
                FFQ_ERR_NULL
            );
            let mut out: *mut FfqRegion = std::ptr::null_mut();
            assert_eq!(
                ffq_region_create(std::ptr::null(), 4096, &mut out),
                FFQ_ERR_NULL
            );
            assert_eq!(ffq_region_open(std::ptr::null(), &mut out), FFQ_ERR_NULL);
            assert_eq!(ffq_region_unlink(std::ptr::null()), FFQ_ERR_NULL);
            assert_eq!(ffq_region_len(std::ptr::null()), 0);
            ffq_region_close(std::ptr::null_mut()); // no-op, no crash
        }
    }

    #[test]
    fn region_create_open_close_cycle() {
        let name = CString::new(format!("ffq-ffi-region-{}", std::process::id())).unwrap();
        let mut created: *mut FfqRegion = std::ptr::null_mut();
        let mut opened: *mut FfqRegion = std::ptr::null_mut();
        // SAFETY: valid strings and out pointers; handles closed below.
        unsafe {
            assert_eq!(ffq_region_create(name.as_ptr(), 8192, &mut created), FFQ_OK);
            assert_eq!(ffq_region_len(created), 8192);
            assert_eq!(ffq_region_open(name.as_ptr(), &mut opened), FFQ_OK);
            assert_eq!(ffq_region_len(opened), 8192);
            ffq_region_close(created);
            ffq_region_close(opened);
            assert_eq!(ffq_region_unlink(name.as_ptr()), FFQ_OK);
        }
    }
}
