//! The zero-copy byte-slice lane: `ffq_bytes_*` and `ffq_payload_*`.
//!
//! Variable-size payloads cross the ABI without a marshalling copy, in
//! both directions:
//!
//! * **Write in place** — [`ffq_bytes_reserve`] hands C a pointer straight
//!   into the mapped slot buffer; the client fills it and
//!   [`ffq_bytes_commit`]s (or [`ffq_bytes_abort`]s — consumers never see
//!   an aborted reservation). [`ffq_bytes_send`] is the copy-in
//!   convenience.
//! * **Read borrowed** — [`ffq_payload_ref`] yields a `const uint8_t*` +
//!   length pointing at the shared bytes; the cell recycles only at
//!   [`ffq_payload_release`].
//!
//! One producer handle type serves both variants (the single-producer
//! engine is identical); one consumer handle type wraps either engine, so
//! the read API is a single function family. Each handle holds at most one
//! outstanding reservation / borrowed payload — a second `reserve` (or
//! `commit` without `reserve`, etc.) fails with `FFQ_ERR_STATE` instead of
//! corrupting the protocol.
//!
//! SPSC regions spill payloads larger than one slot buffer by chaining
//! cells (up to `capacity/2 × slot_bytes`); SPMC regions refuse them
//! (`FFQ_TOO_LARGE`) — never truncation, exactly like the Rust API.

use crate::{
    guard, out_ptr, region_of, set_last_error, status_of, FfqRegion, FFQ_DISCONNECTED, FFQ_EMPTY,
    FFQ_ERR_NULL, FFQ_ERR_STATE, FFQ_FULL, FFQ_OK, FFQ_POISONED, FFQ_TOO_LARGE,
};
use std::time::Duration;

use ffq::bytes::{McConsumer, PayloadRef, SpProducer, SpscConsumer, WriteSlot};
use ffq::error::TryReserveError;
use ffq_shm::{
    spmc_bytes, spsc_bytes, ShmBytesProducer, ShmBytesSpmcConsumer, ShmBytesSpscConsumer,
    ShmDequeueError, ShmReserveError, ShmTryDequeueError,
};

/// Null-checks a handle pointer and reborrows it mutably.
macro_rules! handle {
    ($p:expr) => {
        // SAFETY: per the header contract the pointer is either NULL
        // (rejected here) or a live handle created by this library and not
        // yet closed, used from one thread at a time.
        match unsafe { $p.as_mut() } {
            Some(h) => h,
            None => {
                set_last_error(concat!(stringify!($p), " handle is NULL"));
                return FFQ_ERR_NULL;
            }
        }
    };
}

/// Extends a [`WriteSlot`]'s borrow to `'static` so it can live inside the
/// same heap allocation as the producer it borrows from.
///
/// # Safety
/// The caller must keep the producer at a stable address for as long as
/// the slot is held, and must not touch the producer through any other
/// path while it is. [`FfqBytesProducer`] guarantees both: the handle is
/// boxed (stable address) and every entry point routes through the
/// `pending` gate.
unsafe fn extend_slot(s: WriteSlot<'_, SpProducer>) -> WriteSlot<'static, SpProducer> {
    // SAFETY: lifetime-only transmute; validity is the caller's contract.
    unsafe { std::mem::transmute(s) }
}

/// Opaque producer handle for a bytes queue (`ffq_bytes_producer_t` —
/// shared by the SPSC and SPMC variants).
pub struct FfqBytesProducer {
    /// Declared before `inner` so an uncommitted reservation drops (and
    /// aborts) before the producer it borrows from.
    pending: Option<WriteSlot<'static, SpProducer>>,
    inner: ShmBytesProducer,
}

/// Borrowed payload, parameterized by which consumer engine lent it. The
/// fields are never read back — they are held so the cell stays claimed
/// until their `Drop` (at `ffq_payload_release`) recycles it.
enum Borrowed {
    #[allow(dead_code)]
    Spsc(PayloadRef<'static, SpscConsumer>),
    #[allow(dead_code)]
    Spmc(PayloadRef<'static, McConsumer<false>>),
}

/// Either bytes-consumer engine behind the one C-visible handle type.
enum ConsumerInner {
    Spsc(ShmBytesSpscConsumer),
    Spmc(ShmBytesSpmcConsumer),
}

/// Opaque consumer handle for a bytes queue (`ffq_bytes_consumer_t` —
/// wraps either variant's engine, so `ffq_payload_*` is one family).
pub struct FfqBytesConsumer {
    /// Declared before `inner` so a still-borrowed payload drops (and
    /// recycles its cell) before the consumer it borrows from.
    borrowed: Option<Borrowed>,
    inner: ConsumerInner,
}

fn reserve_status(e: ShmReserveError) -> i32 {
    set_last_error(&e.to_string());
    match e {
        ShmReserveError::TooLarge { .. } => FFQ_TOO_LARGE,
        ShmReserveError::Poisoned => FFQ_POISONED,
    }
}

// ---------------------------------------------------------------------------
// Region setup
// ---------------------------------------------------------------------------

macro_rules! bytes_setup {
    (
        variant: $variant:ident,
        fns: $required_size:ident, $create:ident, $attach_producer:ident, $attach_consumer:ident,
        wrap_consumer: $wrap:ident
    ) => {
        #[doc = concat!(
                            "Stores in `*out` the region size (bytes) a `", stringify!($variant),
                            "` queue needs for `capacity` descriptor cells of `slot_bytes`-byte ",
                            "payload buffers (both rounded up to powers of two)."
                        )]
        #[no_mangle]
        pub unsafe extern "C" fn $required_size(
            capacity: usize,
            slot_bytes: usize,
            out: *mut usize,
        ) -> i32 {
            guard(|| {
                out_ptr!(out);
                match $variant::required_size(capacity, slot_bytes) {
                    Ok(n) => {
                        // SAFETY: out was null-checked.
                        unsafe { *out = n };
                        FFQ_OK
                    }
                    Err(e) => status_of(&e),
                }
            })
        }

        #[doc = concat!(
                            "Formats `region` as a `", stringify!($variant),
                            "` queue and attaches as its producer (the creator path)."
                        )]
        #[no_mangle]
        pub unsafe extern "C" fn $create(
            region: *const FfqRegion,
            capacity: usize,
            slot_bytes: usize,
            out: *mut *mut FfqBytesProducer,
        ) -> i32 {
            guard(|| {
                out_ptr!(out);
                // SAFETY: per header contract, a live region handle or NULL.
                let region = match unsafe { region_of(region) } {
                    Ok(r) => r,
                    Err(s) => return s,
                };
                match $variant::create(region, capacity, slot_bytes) {
                    Ok(inner) => {
                        let h = Box::new(FfqBytesProducer {
                            pending: None,
                            inner,
                        });
                        // SAFETY: out was null-checked.
                        unsafe { *out = Box::into_raw(h) };
                        FFQ_OK
                    }
                    Err(e) => status_of(&e),
                }
            })
        }

        #[doc = concat!(
                            "Attaches as the producer of an already-formatted `",
                            stringify!($variant), "` region (waits for READY)."
                        )]
        #[no_mangle]
        pub unsafe extern "C" fn $attach_producer(
            region: *const FfqRegion,
            out: *mut *mut FfqBytesProducer,
        ) -> i32 {
            guard(|| {
                out_ptr!(out);
                // SAFETY: per header contract, a live region handle or NULL.
                let region = match unsafe { region_of(region) } {
                    Ok(r) => r,
                    Err(s) => return s,
                };
                match $variant::attach_producer(region) {
                    Ok(inner) => {
                        let h = Box::new(FfqBytesProducer {
                            pending: None,
                            inner,
                        });
                        // SAFETY: out was null-checked.
                        unsafe { *out = Box::into_raw(h) };
                        FFQ_OK
                    }
                    Err(e) => status_of(&e),
                }
            })
        }

        #[doc = concat!(
                            "Attaches a consumer to an already-formatted `",
                            stringify!($variant), "` region (waits for READY)."
                        )]
        #[no_mangle]
        pub unsafe extern "C" fn $attach_consumer(
            region: *const FfqRegion,
            out: *mut *mut FfqBytesConsumer,
        ) -> i32 {
            guard(|| {
                out_ptr!(out);
                // SAFETY: per header contract, a live region handle or NULL.
                let region = match unsafe { region_of(region) } {
                    Ok(r) => r,
                    Err(s) => return s,
                };
                match $variant::attach_consumer(region) {
                    Ok(inner) => {
                        let h = Box::new(FfqBytesConsumer {
                            borrowed: None,
                            inner: ConsumerInner::$wrap(inner),
                        });
                        // SAFETY: out was null-checked.
                        unsafe { *out = Box::into_raw(h) };
                        FFQ_OK
                    }
                    Err(e) => status_of(&e),
                }
            })
        }
    };
}

bytes_setup! {
    variant: spsc_bytes,
    fns: ffq_bytes_spsc_required_size, ffq_bytes_spsc_create,
         ffq_bytes_spsc_attach_producer, ffq_bytes_spsc_attach_consumer,
    wrap_consumer: Spsc
}
bytes_setup! {
    variant: spmc_bytes,
    fns: ffq_bytes_spmc_required_size, ffq_bytes_spmc_create,
         ffq_bytes_spmc_attach_producer, ffq_bytes_spmc_attach_consumer,
    wrap_consumer: Spmc
}

// ---------------------------------------------------------------------------
// Producer: reserve / commit / abort / send
// ---------------------------------------------------------------------------

/// Reserves an in-place writable buffer for a `len`-byte payload, blocking
/// while the queue is full; `*buf` receives the write pointer. Exactly one
/// reservation may be outstanding per handle (`FFQ_ERR_STATE` otherwise).
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_reserve(
    p: *mut FfqBytesProducer,
    len: usize,
    buf: *mut *mut u8,
) -> i32 {
    guard(|| {
        out_ptr!(buf);
        let h = handle!(p);
        if h.pending.is_some() {
            set_last_error("a reservation is already outstanding on this producer");
            return FFQ_ERR_STATE;
        }
        if h.inner.is_poisoned() {
            set_last_error("shared-memory queue poisoned");
            return FFQ_POISONED;
        }
        match h.inner.reserve(len) {
            Ok(mut slot) => {
                // SAFETY: buf was null-checked; the slot buffer is len
                // writable bytes.
                unsafe { *buf = slot.as_mut_ptr() };
                // SAFETY: the handle is boxed (stable address) and the
                // pending gate above keeps the borrow exclusive.
                h.pending = Some(unsafe { extend_slot(slot) });
                FFQ_OK
            }
            Err(e) => reserve_status(e),
        }
    })
}

/// [`ffq_bytes_reserve`] without blocking: `FFQ_FULL` when no cell (or
/// chain run) is free right now.
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_try_reserve(
    p: *mut FfqBytesProducer,
    len: usize,
    buf: *mut *mut u8,
) -> i32 {
    guard(|| {
        out_ptr!(buf);
        let h = handle!(p);
        if h.pending.is_some() {
            set_last_error("a reservation is already outstanding on this producer");
            return FFQ_ERR_STATE;
        }
        if h.inner.is_poisoned() {
            set_last_error("shared-memory queue poisoned");
            return FFQ_POISONED;
        }
        let err = match h.inner.try_reserve(len) {
            Ok(mut slot) => {
                // SAFETY: buf was null-checked; the slot buffer is len
                // writable bytes.
                unsafe { *buf = slot.as_mut_ptr() };
                // SAFETY: boxed handle + pending gate, as in reserve.
                h.pending = Some(unsafe { extend_slot(slot) });
                return FFQ_OK;
            }
            Err(e) => e,
        };
        match err {
            TryReserveError::TooLarge { len, max } => {
                set_last_error(&format!(
                    "payload of {len} bytes exceeds queue maximum of {max}"
                ));
                FFQ_TOO_LARGE
            }
            TryReserveError::Full if h.inner.is_poisoned() => {
                set_last_error("shared-memory queue poisoned");
                FFQ_POISONED
            }
            TryReserveError::Full => FFQ_FULL,
        }
    })
}

/// Publishes the outstanding reservation; the buffer pointer from
/// `reserve` is dead afterwards.
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_commit(p: *mut FfqBytesProducer) -> i32 {
    guard(|| {
        let h = handle!(p);
        match h.pending.take() {
            Some(slot) => {
                slot.commit();
                FFQ_OK
            }
            None => {
                set_last_error("commit without an outstanding reservation");
                FFQ_ERR_STATE
            }
        }
    })
}

/// Drops the outstanding reservation unpublished; consumers never observe
/// it.
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_abort(p: *mut FfqBytesProducer) -> i32 {
    guard(|| {
        let h = handle!(p);
        match h.pending.take() {
            Some(slot) => {
                drop(slot);
                FFQ_OK
            }
            None => {
                set_last_error("abort without an outstanding reservation");
                FFQ_ERR_STATE
            }
        }
    })
}

/// Copy-in convenience: reserve `len` bytes, copy from `data`, commit.
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_send(
    p: *mut FfqBytesProducer,
    data: *const u8,
    len: usize,
) -> i32 {
    guard(|| {
        if data.is_null() && len != 0 {
            set_last_error("data is NULL");
            return FFQ_ERR_NULL;
        }
        let h = handle!(p);
        if h.pending.is_some() {
            set_last_error("a reservation is already outstanding on this producer");
            return FFQ_ERR_STATE;
        }
        // SAFETY: per the header contract `data` points at len readable
        // bytes (NULL allowed only for len 0, checked above).
        let payload = if len == 0 {
            &[][..]
        } else {
            unsafe { std::slice::from_raw_parts(data, len) }
        };
        if h.inner.is_poisoned() {
            set_last_error("shared-memory queue poisoned");
            return FFQ_POISONED;
        }
        match h.inner.send_bytes(payload) {
            Ok(()) => FFQ_OK,
            Err(e) => reserve_status(e),
        }
    })
}

/// The largest payload a reserve on this queue can ever satisfy (0 for
/// NULL).
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_max_payload(p: *const FfqBytesProducer) -> usize {
    if p.is_null() {
        return 0;
    }
    // SAFETY: live handle per header contract.
    unsafe { (*p).inner.max_payload() }
}

/// Bytes per slot buffer — the largest payload that avoids the SPSC
/// chain-spill path (0 for NULL).
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_slot_bytes(p: *const FfqBytesProducer) -> usize {
    if p.is_null() {
        return 0;
    }
    // SAFETY: live handle per header contract.
    unsafe { (*p).inner.slot_bytes() }
}

/// Capacity of the shared descriptor-cell array (0 for NULL).
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_capacity(p: *const FfqBytesProducer) -> usize {
    if p.is_null() {
        return 0;
    }
    // SAFETY: live handle per header contract.
    unsafe { (*p).inner.capacity() }
}

/// 1 if the queue is poisoned, 0 if not, `FFQ_ERR_NULL` for NULL.
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_producer_is_poisoned(p: *const FfqBytesProducer) -> i32 {
    if p.is_null() {
        return FFQ_ERR_NULL;
    }
    // SAFETY: live handle per header contract.
    unsafe { (*p).inner.is_poisoned() as i32 }
}

/// Poisons the queue for every attached handle in every process.
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_producer_poison(p: *const FfqBytesProducer) -> i32 {
    guard(|| {
        if p.is_null() {
            set_last_error("producer handle is NULL");
            return FFQ_ERR_NULL;
        }
        // SAFETY: live handle per header contract.
        unsafe { (*p).inner.poison() };
        FFQ_OK
    })
}

/// Detaches and destroys the producer handle; an uncommitted reservation
/// aborts. NULL is a no-op.
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_producer_close(p: *mut FfqBytesProducer) {
    if p.is_null() {
        return;
    }
    let _ = guard(move || {
        // SAFETY: live handle per header contract, not yet closed.
        drop(unsafe { Box::from_raw(p) });
        FFQ_OK
    });
}

// ---------------------------------------------------------------------------
// Consumer: borrowed payload refs
// ---------------------------------------------------------------------------

/// Claims the next payload and exposes it borrowed through `*data`/`*len`,
/// on success holding the cell until [`ffq_payload_release`]. `$recv` is
/// the engine method to call.
macro_rules! payload_claim {
    ($h:ident, $data:ident, $len:ident, $recv:ident ( $($arg:expr),* ),
     $map_err:ident) => {{
        if $h.borrowed.is_some() {
            set_last_error("a payload ref is already outstanding on this consumer");
            return FFQ_ERR_STATE;
        }
        match &mut $h.inner {
            ConsumerInner::Spsc(c) => match c.$recv($($arg),*) {
                Ok(payload) => {
                    // SAFETY: data/len were null-checked; the borrow stays
                    // valid until release because the handle is boxed and
                    // the borrowed gate keeps it exclusive.
                    unsafe {
                        *$data = payload.as_ptr();
                        *$len = payload.len();
                        $h.borrowed = Some(Borrowed::Spsc(std::mem::transmute::<
                            PayloadRef<'_, SpscConsumer>,
                            PayloadRef<'static, SpscConsumer>,
                        >(payload)));
                    }
                    FFQ_OK
                }
                Err(e) => $map_err(e),
            },
            ConsumerInner::Spmc(c) => match c.$recv($($arg),*) {
                Ok(payload) => {
                    // SAFETY: as above.
                    unsafe {
                        *$data = payload.as_ptr();
                        *$len = payload.len();
                        $h.borrowed = Some(Borrowed::Spmc(std::mem::transmute::<
                            PayloadRef<'_, McConsumer<false>>,
                            PayloadRef<'static, McConsumer<false>>,
                        >(payload)));
                    }
                    FFQ_OK
                }
                Err(e) => $map_err(e),
            },
        }
    }};
}

fn recv_status(e: ShmDequeueError) -> i32 {
    set_last_error(&e.to_string());
    match e {
        ShmDequeueError::Disconnected => FFQ_DISCONNECTED,
        ShmDequeueError::Poisoned => FFQ_POISONED,
    }
}

fn try_recv_status(e: ShmTryDequeueError) -> i32 {
    match e {
        ShmTryDequeueError::Empty => FFQ_EMPTY,
        ShmTryDequeueError::Disconnected => {
            set_last_error(&e.to_string());
            FFQ_DISCONNECTED
        }
        ShmTryDequeueError::Poisoned => {
            set_last_error(&e.to_string());
            FFQ_POISONED
        }
    }
}

/// Claims the next payload, blocking while the queue is empty. On `FFQ_OK`
/// the bytes at `*data` stay valid — and their cell stays out of
/// circulation — until [`ffq_payload_release`]. One ref may be outstanding
/// per handle (`FFQ_ERR_STATE` otherwise).
#[no_mangle]
pub unsafe extern "C" fn ffq_payload_ref(
    c: *mut FfqBytesConsumer,
    data: *mut *const u8,
    len: *mut usize,
) -> i32 {
    guard(|| {
        out_ptr!(data);
        out_ptr!(len);
        let h = handle!(c);
        payload_claim!(h, data, len, recv(), recv_status)
    })
}

/// [`ffq_payload_ref`] without blocking: `FFQ_EMPTY` when nothing is
/// ready.
#[no_mangle]
pub unsafe extern "C" fn ffq_payload_try_ref(
    c: *mut FfqBytesConsumer,
    data: *mut *const u8,
    len: *mut usize,
) -> i32 {
    guard(|| {
        out_ptr!(data);
        out_ptr!(len);
        let h = handle!(c);
        payload_claim!(h, data, len, try_recv(), try_recv_status)
    })
}

/// [`ffq_payload_ref`] giving up with `FFQ_EMPTY` after `timeout_ms`
/// milliseconds.
#[no_mangle]
pub unsafe extern "C" fn ffq_payload_ref_timeout_ms(
    c: *mut FfqBytesConsumer,
    data: *mut *const u8,
    len: *mut usize,
    timeout_ms: u64,
) -> i32 {
    guard(|| {
        out_ptr!(data);
        out_ptr!(len);
        let h = handle!(c);
        payload_claim!(
            h,
            data,
            len,
            recv_timeout(Duration::from_millis(timeout_ms)),
            try_recv_status
        )
    })
}

/// Releases the outstanding payload ref; its cell recycles and the `data`
/// pointer from the claim is dead afterwards.
#[no_mangle]
pub unsafe extern "C" fn ffq_payload_release(c: *mut FfqBytesConsumer) -> i32 {
    guard(|| {
        let h = handle!(c);
        match h.borrowed.take() {
            Some(b) => {
                drop(b);
                FFQ_OK
            }
            None => {
                set_last_error("release without an outstanding payload ref");
                FFQ_ERR_STATE
            }
        }
    })
}

/// Capacity of the shared descriptor-cell array (0 for NULL).
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_consumer_capacity(c: *const FfqBytesConsumer) -> usize {
    if c.is_null() {
        return 0;
    }
    // SAFETY: live handle per header contract.
    match unsafe { &(*c).inner } {
        ConsumerInner::Spsc(x) => x.capacity(),
        ConsumerInner::Spmc(x) => x.capacity(),
    }
}

/// 1 if the queue is poisoned, 0 if not, `FFQ_ERR_NULL` for NULL.
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_consumer_is_poisoned(c: *const FfqBytesConsumer) -> i32 {
    if c.is_null() {
        return FFQ_ERR_NULL;
    }
    // SAFETY: live handle per header contract.
    match unsafe { &(*c).inner } {
        ConsumerInner::Spsc(x) => x.is_poisoned() as i32,
        ConsumerInner::Spmc(x) => x.is_poisoned() as i32,
    }
}

/// Poisons the queue for every attached handle in every process.
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_consumer_poison(c: *const FfqBytesConsumer) -> i32 {
    guard(|| {
        if c.is_null() {
            set_last_error("consumer handle is NULL");
            return FFQ_ERR_NULL;
        }
        // SAFETY: live handle per header contract.
        match unsafe { &(*c).inner } {
            ConsumerInner::Spsc(x) => x.poison(),
            ConsumerInner::Spmc(x) => x.poison(),
        }
        FFQ_OK
    })
}

/// Detaches and destroys the consumer handle; a still-borrowed payload
/// releases. NULL is a no-op.
#[no_mangle]
pub unsafe extern "C" fn ffq_bytes_consumer_close(c: *mut FfqBytesConsumer) {
    if c.is_null() {
        return;
    }
    let _ = guard(move || {
        // SAFETY: live handle per header contract, not yet closed.
        drop(unsafe { Box::from_raw(c) });
        FFQ_OK
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ffq_region_close, ffq_region_create, ffq_region_unlink};
    use std::ffi::CString;
    use std::ptr;

    fn shm_name(tag: &str) -> CString {
        CString::new(format!("ffq-ffi-{tag}-{}", std::process::id())).unwrap()
    }

    #[test]
    fn reserve_commit_payload_ref_round_trip() {
        let name = shm_name("t-bytes-spsc");
        // SAFETY: all pointers below are valid per the ABI contract.
        unsafe {
            let mut size = 0usize;
            assert_eq!(ffq_bytes_spsc_required_size(16, 256, &mut size), FFQ_OK);
            let mut region = ptr::null_mut();
            assert_eq!(ffq_region_create(name.as_ptr(), size, &mut region), FFQ_OK);
            let mut prod = ptr::null_mut();
            assert_eq!(ffq_bytes_spsc_create(region, 16, 256, &mut prod), FFQ_OK);
            let mut cons = ptr::null_mut();
            assert_eq!(ffq_bytes_spsc_attach_consumer(region, &mut cons), FFQ_OK);
            ffq_region_close(region);
            assert_eq!(ffq_bytes_slot_bytes(prod), 256);

            // Zero-copy write: fill the slot buffer in place, commit.
            let msg = b"written in place through the C ABI";
            let mut buf = ptr::null_mut();
            assert_eq!(ffq_bytes_reserve(prod, msg.len(), &mut buf), FFQ_OK);
            assert_eq!(ffq_bytes_reserve(prod, 1, &mut buf), FFQ_ERR_STATE);
            ptr::copy_nonoverlapping(msg.as_ptr(), buf, msg.len());
            assert_eq!(ffq_bytes_commit(prod), FFQ_OK);
            assert_eq!(ffq_bytes_commit(prod), FFQ_ERR_STATE);

            // Borrowed read.
            let mut data = ptr::null();
            let mut len = 0usize;
            assert_eq!(ffq_payload_ref(cons, &mut data, &mut len), FFQ_OK);
            assert_eq!(std::slice::from_raw_parts(data, len), msg);
            assert_eq!(
                ffq_payload_try_ref(cons, &mut data, &mut len),
                FFQ_ERR_STATE
            );
            assert_eq!(ffq_payload_release(cons), FFQ_OK);
            assert_eq!(ffq_payload_release(cons), FFQ_ERR_STATE);

            // Aborted reservations are invisible; sends still flow after.
            let mut buf2 = ptr::null_mut();
            assert_eq!(ffq_bytes_reserve(prod, 8, &mut buf2), FFQ_OK);
            assert_eq!(ffq_bytes_abort(prod), FFQ_OK);
            assert_eq!(ffq_bytes_send(prod, b"after-abort".as_ptr(), 11), FFQ_OK);
            assert_eq!(
                ffq_payload_ref_timeout_ms(cons, &mut data, &mut len, 1000),
                FFQ_OK
            );
            assert_eq!(std::slice::from_raw_parts(data, len), b"after-abort");
            assert_eq!(ffq_payload_release(cons), FFQ_OK);
            assert_eq!(ffq_payload_try_ref(cons, &mut data, &mut len), FFQ_EMPTY);

            // SPSC chains: a payload bigger than one slot buffer spills.
            let big = vec![0xa5u8; 700];
            assert_eq!(ffq_bytes_send(prod, big.as_ptr(), big.len()), FFQ_OK);
            assert_eq!(ffq_payload_ref(cons, &mut data, &mut len), FFQ_OK);
            assert_eq!(std::slice::from_raw_parts(data, len), &big[..]);
            assert_eq!(ffq_payload_release(cons), FFQ_OK);

            ffq_bytes_producer_close(prod);
            ffq_bytes_consumer_close(cons);
            assert_eq!(ffq_region_unlink(name.as_ptr()), FFQ_OK);
        }
    }

    #[test]
    fn spmc_refuses_oversize_and_poisons_through_the_abi() {
        let name = shm_name("t-bytes-spmc");
        // SAFETY: all pointers below are valid per the ABI contract.
        unsafe {
            let mut size = 0usize;
            assert_eq!(ffq_bytes_spmc_required_size(8, 128, &mut size), FFQ_OK);
            let mut region = ptr::null_mut();
            assert_eq!(ffq_region_create(name.as_ptr(), size, &mut region), FFQ_OK);
            let mut prod = ptr::null_mut();
            assert_eq!(ffq_bytes_spmc_create(region, 8, 128, &mut prod), FFQ_OK);
            let mut cons = ptr::null_mut();
            assert_eq!(ffq_bytes_spmc_attach_consumer(region, &mut cons), FFQ_OK);
            ffq_region_close(region);

            // SPMC never chains: oversize is refused up front.
            let mut buf = ptr::null_mut();
            assert_eq!(ffq_bytes_try_reserve(prod, 129, &mut buf), FFQ_TOO_LARGE);
            assert_eq!(ffq_bytes_max_payload(prod), 128);

            assert_eq!(ffq_bytes_send(prod, b"fan-out".as_ptr(), 7), FFQ_OK);
            let mut data = ptr::null();
            let mut len = 0usize;
            assert_eq!(ffq_payload_try_ref(cons, &mut data, &mut len), FFQ_OK);
            assert_eq!(std::slice::from_raw_parts(data, len), b"fan-out");
            assert_eq!(ffq_payload_release(cons), FFQ_OK);

            assert_eq!(ffq_bytes_consumer_poison(cons), FFQ_OK);
            assert_eq!(ffq_bytes_producer_is_poisoned(prod), 1);
            assert_eq!(ffq_bytes_send(prod, b"x".as_ptr(), 1), FFQ_POISONED);

            ffq_bytes_producer_close(prod);
            ffq_bytes_consumer_close(cons);
            assert_eq!(ffq_region_unlink(name.as_ptr()), FFQ_OK);
        }
    }
}
