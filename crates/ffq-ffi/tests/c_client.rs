//! Polyglot integration: a real C process (compiled here with `cc` from
//! `examples/c/smoke_client.c`, using only `include/ffq.h` and the built
//! `libffq_ffi.so`) on one end of Rust-created shared-memory queues.
//!
//! Covers the ISSUE's satellite matrix:
//! * C selftest — a C program drives create/enqueue/dequeue/bytes-lane
//!   round trips end to end with no Rust in the process.
//! * Echo — Rust SPMC producer → C consumer → C SPSC producer → Rust
//!   consumer, 100k items, per-consumer FIFO asserted; the live-region
//!   verifier must call the in-flight region clean.
//! * SIGKILL — the C producer is killed mid-stream without detaching; the
//!   Rust consumer's heartbeat watchdog must poison the queue (not hang),
//!   and the verifier must call the carcass unhealthy.
//! * Refusal — the verifier refuses a garbage region without UB.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use ffq_shm::verify::{verify_region, Verdict, VerifyOptions};
use ffq_shm::{spmc, spsc, ShmDequeueError, ShmRegion};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// Directory holding the built `libffq_ffi.so`: the test binary runs from
/// `target/<profile>/deps`, and cargo uplifts the cdylib one level up.
fn lib_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    let deps = exe.parent().expect("deps dir");
    let profile = deps.parent().expect("profile dir");
    if profile.join("libffq_ffi.so").exists() {
        return profile.to_path_buf();
    }
    // Fallback: copy the newest hashed cdylib out of deps/ under the
    // plain linker name.
    let mut newest: Option<(std::time::SystemTime, PathBuf)> = None;
    for entry in std::fs::read_dir(deps).expect("read deps").flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if name.starts_with("libffq_ffi") && name.ends_with(".so") {
            let mtime = entry.metadata().and_then(|m| m.modified()).expect("mtime");
            if newest.as_ref().is_none_or(|(t, _)| mtime > *t) {
                newest = Some((mtime, entry.path()));
            }
        }
    }
    let (_, so) = newest.expect("libffq_ffi cdylib not found next to test binary");
    let dir = std::env::temp_dir().join(format!("ffq-ffi-libdir-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk libdir");
    std::fs::copy(&so, dir.join("libffq_ffi.so")).expect("copy cdylib");
    dir
}

/// Compiles the smoke client once per test-binary run; later callers get
/// the cached path.
fn smoke_client() -> &'static Path {
    static CLIENT: OnceLock<PathBuf> = OnceLock::new();
    CLIENT.get_or_init(|| {
        let root = repo_root();
        let libs = lib_dir();
        let out = std::env::temp_dir().join(format!("ffq-smoke-client-{}", std::process::id()));
        let status = Command::new("cc")
            .arg(root.join("examples/c/smoke_client.c"))
            .arg("-I")
            .arg(root.join("include"))
            .arg("-o")
            .arg(&out)
            .arg("-L")
            .arg(&libs)
            .arg("-lffq_ffi")
            .arg(format!("-Wl,-rpath,{}", libs.display()))
            .arg("-Wall")
            .status()
            .expect("cc not available to compile the C smoke client");
        assert!(status.success(), "compiling smoke_client.c failed");
        out
    })
}

fn spawn_client(args: &[&str]) -> Child {
    Command::new(smoke_client())
        .args(args)
        .env("LD_LIBRARY_PATH", lib_dir())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn smoke client")
}

fn wait_success(mut child: Child, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "{what}: C client exited with {status}");
                return;
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("{what}: C client did not exit within 60s");
            }
            None => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

#[test]
fn c_selftest_round_trips_without_rust() {
    let name = format!("ffq-ffi-c-selftest-{}", std::process::id());
    // Stale names from a crashed earlier run would fail the create.
    let _ = ShmRegion::unlink(&name);
    let _ = ShmRegion::unlink(&format!("{name}-bytes"));
    let child = spawn_client(&["selftest", &name]);
    wait_success(child, "selftest");
}

#[test]
fn c_echo_preserves_fifo_and_verifier_calls_the_region_clean() {
    const COUNT: u64 = 100_000;
    let pid = std::process::id();
    let in_name = format!("ffq-ffi-echo-in-{pid}");
    let out_name = format!("ffq-ffi-echo-out-{pid}");
    let _ = ShmRegion::unlink(&in_name);
    let _ = ShmRegion::unlink(&out_name);

    // Rust side creates both regions: it produces into `in` (SPMC) and
    // consumes from `out` (SPSC, C client is the producer).
    let in_region = ShmRegion::create(&in_name, spmc::required_size::<u64>(1024).unwrap()).unwrap();
    let mut producer = spmc::create::<u64>(in_region, 1024).unwrap();
    let out_region =
        ShmRegion::create(&out_name, spsc::required_size::<u64>(1024).unwrap()).unwrap();
    spsc::format::<u64>(&out_region, 1024).unwrap();
    let mut consumer = spsc::attach_consumer::<u64>(out_region).unwrap();

    let child = spawn_client(&["echo", &in_name, &out_name, &COUNT.to_string()]);

    let feeder = std::thread::spawn(move || {
        for i in 0..COUNT {
            producer.enqueue(i).expect("feeder enqueue");
        }
        producer // keep the handle (and its clean detach) until joined
    });

    // The C client is this SPMC queue's only consumer, so global FIFO
    // must hold end to end: 0..COUNT in order, nothing lost or reordered.
    for expect in 0..COUNT {
        let got = consumer.dequeue().expect("echoed item");
        assert_eq!(got, expect, "echo broke FIFO at item {expect}");
    }

    // Both queues are still live (producer handle parked in the feeder
    // result, C client not yet reaped): the verifier must agree.
    let feeder_producer = feeder.join().expect("feeder thread");
    for name in [&in_name, &out_name] {
        let ro = ShmRegion::open_readonly(name).unwrap();
        let report = verify_region(&ro, &VerifyOptions::default());
        assert_eq!(
            report.verdict,
            Verdict::Clean,
            "verifier on live {name}: {report}"
        );
    }

    wait_success(child, "echo");
    drop(feeder_producer);
    drop(consumer);
    ShmRegion::unlink(&in_name).unwrap();
    ShmRegion::unlink(&out_name).unwrap();
}

#[test]
fn sigkilled_c_producer_poisons_the_queue_via_heartbeat() {
    const COUNT: u64 = 10;
    let name = format!("ffq-ffi-kill-{}", std::process::id());
    let _ = ShmRegion::unlink(&name);

    let region = ShmRegion::create(&name, spmc::required_size::<u64>(64).unwrap()).unwrap();
    spmc::format::<u64>(&region, 64).unwrap();
    let mut consumer = spmc::attach_consumer::<u64>(region).unwrap();

    let mut child = spawn_client(&["produce-and-hang", &name, &COUNT.to_string()]);

    // Drain everything the C producer published; it is now hanging in
    // pause() with the producer slot still claimed.
    for expect in 0..COUNT {
        assert_eq!(consumer.dequeue().expect("pre-kill item"), expect);
    }

    // SIGKILL: no detach, no poisoning code runs in the child. Only the
    // heartbeat/pid watchdog can save the consumer now.
    child.kill().expect("SIGKILL the C producer");
    child.wait().expect("reap");

    let start = Instant::now();
    match consumer.dequeue() {
        Err(ShmDequeueError::Poisoned) => {}
        other => panic!("expected Poisoned after SIGKILL, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "watchdog took too long"
    );

    // Post-mortem: the verifier must flag the carcass, not call it clean.
    let ro = ShmRegion::open_readonly(&name).unwrap();
    let report = verify_region(&ro, &VerifyOptions::default());
    assert_eq!(
        report.verdict,
        Verdict::Unhealthy,
        "verifier on poisoned region: {report}"
    );

    drop(consumer);
    ShmRegion::unlink(&name).unwrap();
}

#[test]
fn verifier_refuses_garbage_without_ub() {
    let name = format!("ffq-ffi-garbage-{}", std::process::id());
    let _ = ShmRegion::unlink(&name);
    let region = ShmRegion::create(&name, 4096).unwrap();
    // Scribble non-queue bytes over the would-be header.
    // SAFETY: freshly created private test region, no other process
    // attached; plain byte writes.
    unsafe {
        let p = region.as_ptr();
        for i in 0..4096 {
            p.add(i).write((i as u8).wrapping_mul(31).wrapping_add(7));
        }
    }
    let ro = ShmRegion::open_readonly(&name).unwrap();
    let report = verify_region(&ro, &VerifyOptions::default());
    assert_eq!(report.verdict, Verdict::Refused, "garbage region: {report}");
    drop(region);
    ShmRegion::unlink(&name).unwrap();
}
