//! `queue_verifier` — attach read-only to a live ffq-shm region and audit
//! it.
//!
//! ```text
//! queue_verifier <shm-name> [--watch-ms N] [--json]
//! ```
//!
//! Attaches with `PROT_READ` only (the audit physically cannot perturb the
//! queue), runs [`ffq_shm::verify::verify_region`], prints the report, and
//! exits 0 for a clean region, 1 for an unhealthy one (poisoned, dead
//! peer, violated invariant), 2 for bytes it refuses to interpret as a
//! region (truncated, foreign, corrupt header), 64 for usage errors.
//!
//! Useful live (`queue_verifier ffq-rpc-sub` while the RPC demo runs) and
//! post-mortem (point it at whatever `/dev/shm` object a crashed pipeline
//! left behind before deciding whether to unlink it).

use std::process::ExitCode;
use std::time::Duration;

use ffq_shm::verify::{verify_region, Severity, VerifyOptions};
use ffq_shm::ShmRegion;

const USAGE: &str = "usage: queue_verifier <shm-name> [--watch-ms N] [--json]";

fn main() -> ExitCode {
    let mut name = None;
    let mut json = false;
    let mut opts = VerifyOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--watch-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => opts.watch = Duration::from_millis(ms),
                None => return usage("--watch-ms needs an integer argument"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if name.is_none() && !other.starts_with('-') => name = Some(arg),
            other => return usage(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(name) = name else {
        return usage("missing <shm-name>");
    };

    let region = match ShmRegion::open_readonly(&name) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("queue_verifier: cannot open {name:?} read-only: {e}");
            return ExitCode::from(2);
        }
    };
    let report = verify_region(&region, &opts);
    if json {
        print_json(&name, &report);
    } else {
        println!("region {name:?} ({} bytes mapped)", region.len());
        print!("{report}");
    }
    ExitCode::from(report.exit_code() as u8)
}

fn usage(why: &str) -> ExitCode {
    eprintln!("queue_verifier: {why}\n{USAGE}");
    ExitCode::from(64)
}

/// Minimal hand-rolled JSON (no serde dependency): one object with the
/// verdict and a findings array.
fn print_json(name: &str, report: &ffq_shm::verify::Report) {
    let mut out = String::new();
    out.push_str("{\"region\":");
    push_json_string(&mut out, name);
    out.push_str(",\"verdict\":");
    push_json_string(&mut out, &format!("{:?}", report.verdict));
    out.push_str(",\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"severity\":");
        push_json_string(
            &mut out,
            match f.severity {
                Severity::Note => "note",
                Severity::Violation => "violation",
            },
        );
        out.push_str(",\"check\":");
        push_json_string(&mut out, f.check);
        out.push_str(",\"detail\":");
        push_json_string(&mut out, &f.detail);
        out.push('}');
    }
    out.push_str("]}");
    println!("{out}");
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}
