//! Mapped shared-memory regions: `shm_open`/`memfd_create` + `mmap`.
//!
//! A [`ShmRegion`] owns one `MAP_SHARED` mapping of one file descriptor and
//! unmaps/closes on drop. It is deliberately dumb — no queue knowledge, no
//! header parsing; the queue layer ([`crate::spsc`], [`crate::spmc`])
//! validates contents before ever dereferencing into a region.
//!
//! Two backing flavours:
//!
//! * **Named** ([`ShmRegion::create`]/[`ShmRegion::open`]) — a POSIX
//!   `shm_open` object (`/dev/shm/<name>` on Linux). Any process that knows
//!   the name can open it; remove it with [`ShmRegion::unlink`].
//! * **Anonymous** ([`ShmRegion::create_memfd`]) — a `memfd_create` file,
//!   reachable only through inherited file descriptors; ideal for
//!   fork-based tests and parent/child pipelines, and it vanishes with its
//!   last fd.

use std::ffi::CString;
use std::os::raw::{c_int, c_void};
use std::ptr;
use std::sync::Arc;

use crate::error::ShmError;

/// Last `errno` as a typed [`ShmError::Os`].
fn os_err(op: &'static str) -> ShmError {
    ShmError::Os {
        op,
        errno: std::io::Error::last_os_error().raw_os_error().unwrap_or(0),
    }
}

/// Normalizes a user-supplied object name to the `"/name"` form POSIX
/// requires: exactly one leading slash, no other slashes, no NULs.
fn shm_name(name: &str) -> Result<CString, ShmError> {
    let bare = name.strip_prefix('/').unwrap_or(name);
    if bare.is_empty() || bare.contains('/') {
        return Err(ShmError::InvalidName);
    }
    CString::new(format!("/{bare}")).map_err(|_| ShmError::InvalidName)
}

struct Inner {
    ptr: *mut u8,
    len: usize,
    fd: c_int,
}

// SAFETY: the mapping is plain shared bytes; all structured access goes
// through atomics in the queue layer. The fd is only used for metadata ops
// (dup/close), which are thread-safe.
unsafe impl Send for Inner {}
unsafe impl Sync for Inner {}

impl Drop for Inner {
    fn drop(&mut self) {
        // SAFETY: ptr/len are the exact mmap result; fd is owned by us.
        // Errors on teardown are unreportable from drop; ignore them.
        unsafe {
            libc::munmap(self.ptr as *mut c_void, self.len);
            libc::close(self.fd);
        }
    }
}

/// One `MAP_SHARED` mapping of a shared-memory object.
///
/// Cloning is cheap and shares the same mapping (same base address);
/// [`remap`](Self::remap) instead creates a *second* mapping of the same
/// bytes at a different address — in-process tests use it to exercise the
/// queue's address-space independence without forking.
#[derive(Clone)]
pub struct ShmRegion {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ShmRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmRegion")
            .field("ptr", &self.inner.ptr)
            .field("len", &self.inner.len)
            .field("fd", &self.inner.fd)
            .finish()
    }
}

impl ShmRegion {
    /// Creates a new named POSIX shared-memory object of `len` bytes and
    /// maps it. Fails with `EEXIST` if the name is already taken — this is
    /// the *owner* path; peers use [`open`](Self::open).
    pub fn create(name: &str, len: usize) -> Result<Self, ShmError> {
        let cname = shm_name(name)?;
        // SAFETY: valid NUL-terminated name; O_EXCL makes us the creator.
        let fd = unsafe {
            libc::shm_open(
                cname.as_ptr(),
                libc::O_CREAT | libc::O_EXCL | libc::O_RDWR,
                0o600 as libc::mode_t,
            )
        };
        if fd < 0 {
            return Err(os_err("shm_open"));
        }
        Self::finish_create(fd, len)
    }

    /// Opens an existing named object and maps its full current size.
    ///
    /// Returns [`ShmError::Os`] with `ENOENT` while the creator has not
    /// called [`create`](Self::create) yet — attach loops retry on that.
    pub fn open(name: &str) -> Result<Self, ShmError> {
        let cname = shm_name(name)?;
        // SAFETY: valid NUL-terminated name.
        let fd = unsafe { libc::shm_open(cname.as_ptr(), libc::O_RDWR, 0) };
        if fd < 0 {
            return Err(os_err("shm_open"));
        }
        // SAFETY: freshly opened fd we own.
        unsafe { Self::map_whole(fd, libc::PROT_READ | libc::PROT_WRITE) }
    }

    /// Opens an existing named object `PROT_READ`-only — an observer
    /// mapping that physically cannot perturb the queue. Any store through
    /// [`as_ptr`](Self::as_ptr) faults; pure loads (which is all the
    /// [`verify`](crate::verify) pass performs) are fine.
    ///
    /// This is the [`queue_verifier`](crate::verify) attach path: it works
    /// even when the region's owner runs as another user who granted only
    /// read permission, and guarantees the audit is side-effect free.
    pub fn open_readonly(name: &str) -> Result<Self, ShmError> {
        let cname = shm_name(name)?;
        // SAFETY: valid NUL-terminated name.
        let fd = unsafe { libc::shm_open(cname.as_ptr(), libc::O_RDONLY, 0) };
        if fd < 0 {
            return Err(os_err("shm_open"));
        }
        // SAFETY: freshly opened fd we own.
        unsafe { Self::map_whole(fd, libc::PROT_READ) }
    }

    /// Removes a named object. Existing mappings stay valid; the name is
    /// freed for reuse.
    pub fn unlink(name: &str) -> Result<(), ShmError> {
        let cname = shm_name(name)?;
        // SAFETY: valid NUL-terminated name.
        if unsafe { libc::shm_unlink(cname.as_ptr()) } != 0 {
            return Err(os_err("shm_unlink"));
        }
        Ok(())
    }

    /// Creates an anonymous `memfd` region of `len` bytes and maps it.
    ///
    /// The region is reachable only via this process's fds (inherited
    /// across `fork`), and disappears when the last fd and mapping go away
    /// — no name to leak, nothing to unlink.
    pub fn create_memfd(len: usize) -> Result<Self, ShmError> {
        // SAFETY: static NUL-terminated debug name; no flags — the fd must
        // survive fork-inheritance, so no CLOEXEC.
        let fd = unsafe { libc::memfd_create(c"ffq-shm".as_ptr(), 0) };
        if fd < 0 {
            return Err(os_err("memfd_create"));
        }
        Self::finish_create(fd, len)
    }

    /// Maps the object behind an existing file descriptor, taking ownership
    /// of `fd` (it is closed when the region drops).
    ///
    /// This is how a forked child builds its own view of a parent's memfd
    /// region from the inherited descriptor number.
    ///
    /// # Safety
    ///
    /// `fd` is an open, seekable, mmap-able descriptor this caller owns
    /// (nothing else will close it).
    pub unsafe fn from_raw_fd(fd: c_int) -> Result<Self, ShmError> {
        // SAFETY: per caller contract.
        unsafe { Self::map_whole(fd, libc::PROT_READ | libc::PROT_WRITE) }
    }

    /// Creates a second, independent mapping of the same bytes (via
    /// `dup`), at whatever address the kernel picks. Writes through one
    /// mapping are visible through the other — this is two "processes" in
    /// one, for tests of address-space independence.
    pub fn remap(&self) -> Result<Self, ShmError> {
        self.remap_prot(libc::PROT_READ | libc::PROT_WRITE)
    }

    /// Like [`remap`](Self::remap), but the second mapping is
    /// `PROT_READ`-only — how tests hand an anonymous (`memfd`) region to
    /// the verifier the same way [`open_readonly`](Self::open_readonly)
    /// would a named one.
    pub fn remap_readonly(&self) -> Result<Self, ShmError> {
        self.remap_prot(libc::PROT_READ)
    }

    fn remap_prot(&self, prot: c_int) -> Result<Self, ShmError> {
        // SAFETY: our own fd is valid for the lifetime of `inner`.
        let fd = unsafe { libc::dup(self.inner.fd) };
        if fd < 0 {
            return Err(os_err("dup"));
        }
        // SAFETY: freshly dup'd fd we own.
        unsafe { Self::map_whole(fd, prot) }
    }

    fn finish_create(fd: c_int, len: usize) -> Result<Self, ShmError> {
        // SAFETY: fd is ours; on any failure we close it before returning.
        unsafe {
            if libc::ftruncate(fd, len as libc::off_t) != 0 {
                let e = os_err("ftruncate");
                libc::close(fd);
                return Err(e);
            }
        }
        Self::map(fd, len)
    }

    /// Maps the descriptor's full current size. Takes ownership of `fd`.
    ///
    /// # Safety
    /// `fd` is open, seekable and owned by the caller.
    unsafe fn map_whole(fd: c_int, prot: c_int) -> Result<Self, ShmError> {
        // SAFETY: fd valid per contract.
        let end = unsafe { libc::lseek(fd, 0, libc::SEEK_END) };
        if end < 0 {
            let e = os_err("lseek");
            // SAFETY: fd is ours to close.
            unsafe { libc::close(fd) };
            return Err(e);
        }
        Self::map_with(fd, end as usize, prot)
    }

    fn map(fd: c_int, len: usize) -> Result<Self, ShmError> {
        Self::map_with(fd, len, libc::PROT_READ | libc::PROT_WRITE)
    }

    fn map_with(fd: c_int, len: usize, prot: c_int) -> Result<Self, ShmError> {
        // SAFETY: fd is ours; len is the object size (mmap validates both).
        let ptr = unsafe { libc::mmap(ptr::null_mut(), len, prot, libc::MAP_SHARED, fd, 0) };
        if ptr == libc::MAP_FAILED {
            let e = os_err("mmap");
            // SAFETY: fd is ours to close.
            unsafe { libc::close(fd) };
            return Err(e);
        }
        Ok(Self {
            inner: Arc::new(Inner {
                ptr: ptr as *mut u8,
                len,
                fd,
            }),
        })
    }

    /// Base address of the mapping (page-aligned).
    #[inline(always)]
    pub fn as_ptr(&self) -> *mut u8 {
        self.inner.ptr
    }

    /// Mapped length in bytes.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// `true` for a zero-length mapping (never a valid queue region).
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// The underlying file descriptor (borrowed — the region still owns and
    /// closes it). Pass its number to a forked child so it can
    /// [`from_raw_fd`](Self::from_raw_fd) its own mapping.
    pub fn fd(&self) -> c_int {
        self.inner.fd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfd_region_round_trips_bytes() {
        let r = ShmRegion::create_memfd(4096).unwrap();
        assert_eq!(r.len(), 4096);
        // SAFETY: in-bounds writes to our own fresh mapping.
        unsafe {
            *r.as_ptr() = 0xAB;
            *r.as_ptr().add(4095) = 0xCD;
        }
        let view = r.remap().unwrap();
        assert_ne!(view.as_ptr(), r.as_ptr(), "remap must be a second mapping");
        // SAFETY: in-bounds reads of the second mapping of the same bytes.
        unsafe {
            assert_eq!(*view.as_ptr(), 0xAB);
            assert_eq!(*view.as_ptr().add(4095), 0xCD);
        }
    }

    #[test]
    fn clone_shares_the_mapping() {
        let r = ShmRegion::create_memfd(4096).unwrap();
        let c = r.clone();
        assert_eq!(c.as_ptr(), r.as_ptr());
    }

    #[test]
    fn bad_names_are_rejected() {
        assert_eq!(
            ShmRegion::create("", 4096).unwrap_err(),
            ShmError::InvalidName
        );
        assert_eq!(
            ShmRegion::create("a/b", 64).unwrap_err(),
            ShmError::InvalidName
        );
        assert_eq!(ShmRegion::open("/").unwrap_err(), ShmError::InvalidName);
    }

    #[test]
    fn named_create_open_unlink() {
        let name = format!("ffq-shm-test-{}", std::process::id());
        let r = ShmRegion::create(&name, 8192).unwrap();
        // Creating the same name again must fail (O_EXCL).
        assert!(matches!(
            ShmRegion::create(&name, 8192),
            Err(ShmError::Os { op: "shm_open", .. })
        ));
        // SAFETY: in-bounds write.
        unsafe { *r.as_ptr().add(100) = 42 };
        let o = ShmRegion::open(&name).unwrap();
        assert_eq!(o.len(), 8192);
        // SAFETY: in-bounds read.
        unsafe { assert_eq!(*o.as_ptr().add(100), 42) };
        ShmRegion::unlink(&name).unwrap();
        assert!(
            ShmRegion::open(&name).is_err(),
            "unlinked name must be gone"
        );
    }
}
