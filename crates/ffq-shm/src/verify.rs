//! Live-region auditing: attach read-only to a queue region and check the
//! invariants the protocol promises.
//!
//! [`verify_region`] is the library entry point; the `queue_verifier`
//! binary (`src/bin/queue_verifier.rs`) wraps it in a CLI for operators
//! and for post-mortem checks in tests. The audit never writes a byte —
//! it is built to run against [`ShmRegion::open_readonly`] mappings, so
//! pointing it at a live production queue cannot perturb the protocol.
//!
//! # What is checked
//!
//! 1. **Identity** — magic, version, lifecycle word, and a full
//!    [`QueueConfig`] decode. Anything that fails here is *refused*
//!    ([`Verdict::Refused`]): the bytes are not a region this binary can
//!    audit, and no further dereference happens (a truncated mapping is
//!    caught before any offset past the header is touched).
//! 2. **Geometry** — the header's recorded offsets must equal what this
//!    binary recomputes from the config ([`dynamic_region_layout`]), and
//!    the mapping must be at least `region_len` bytes. A header that
//!    disagrees with itself is refused, because every later pointer would
//!    be derived from untrusted offsets.
//! 3. **Counters** — head/tail are non-negative and the state block's
//!    capacity matches the config.
//! 4. **Rank continuity** — every published cell's rank (and every gap
//!    announcement) must map back to the slot that holds it under the
//!    region's index map; for v4 broadcast regions the seqlock stamps
//!    must decode to a rank that maps home, and a stamp stuck *odd*
//!    across the watch window means a writer died mid-publish.
//! 5. **Descriptor sanity** (bytes variants) — published payload
//!    descriptors carry a known discriminant, inline lengths that fit the
//!    slot buffer, and no heap spill (impossible cross-process).
//! 6. **Peer liveness** — each registered pid's heartbeat is sampled
//!    twice across the watch window; a stalled heartbeat escalates to
//!    `kill(pid, 0)` exactly like the in-protocol probe, and a dead peer
//!    (or an already-poisoned lifecycle word) makes the verdict
//!    [`Verdict::Unhealthy`].
//!
//! Checks 3–6 read concurrently-mutated memory, so they only flag states
//! the protocol can never produce (however the audit interleaves with
//! live peers): all loads of the `(rank, gap)` pair are untorn DWCAS
//! reads, and rank→slot mapping is a stable invariant of every published
//! value, not a transient.

use core::sync::atomic::Ordering;
use std::fmt;
use std::time::Duration;

use ffq::cell::{
    PayloadDesc, DESC_ABORT, DESC_CHAIN_CONT, DESC_CHAIN_HEAD, DESC_HEAP, DESC_INLINE, GAP_NONE,
    RANK_CLAIMED, RANK_FREE,
};
use ffq::layout::{IndexMap, LinearMap, RotateMap};
use ffq::raw::QueueState;
use ffq_sync::DoubleWord;

use crate::header::{
    variant_is_bytes, Lifecycle, QueueConfig, RegionHeader, MAGIC, MAX_CONSUMERS, PEER_DETACHED,
    PEER_FREE, VARIANT_BROADCAST, VARIANT_SPSC, VERSION,
};
use crate::region::ShmRegion;

/// Overall outcome of a [`verify_region`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every check passed: the region is a healthy queue.
    Clean,
    /// The region is a well-formed queue, but something is wrong with it:
    /// poisoned, a dead peer, or a protocol invariant violated.
    Unhealthy,
    /// The bytes are not a queue region this binary can audit (truncated,
    /// foreign magic/version, or a self-inconsistent header). Nothing past
    /// the failing field was dereferenced.
    Refused,
}

/// How serious one [`Finding`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Informational observation; does not affect the verdict.
    Note,
    /// A violated invariant; drives the verdict to [`Verdict::Unhealthy`]
    /// (or [`Verdict::Refused`] when identity/geometry checks fail).
    Violation,
}

/// One observation from the audit.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Whether this observation affects the verdict.
    pub severity: Severity,
    /// Short name of the check that produced it (`"magic"`, `"cells"`, …).
    pub check: &'static str,
    /// Human-readable detail, including expected-vs-found values.
    pub detail: String,
}

/// The full result of one audit pass.
#[derive(Debug, Clone)]
pub struct Report {
    /// The overall outcome.
    pub verdict: Verdict,
    /// Everything observed, notes included, in check order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Process exit code the `queue_verifier` binary maps this report to:
    /// 0 clean, 1 unhealthy, 2 refused.
    pub fn exit_code(&self) -> i32 {
        match self.verdict {
            Verdict::Clean => 0,
            Verdict::Unhealthy => 1,
            Verdict::Refused => 2,
        }
    }

    /// `true` when the verdict is [`Verdict::Clean`].
    pub fn is_clean(&self) -> bool {
        self.verdict == Verdict::Clean
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "verdict: {:?}", self.verdict)?;
        for finding in &self.findings {
            let tag = match finding.severity {
                Severity::Note => "note",
                Severity::Violation => "FAIL",
            };
            writeln!(f, "  [{tag}] {}: {}", finding.check, finding.detail)?;
        }
        Ok(())
    }
}

/// Tunables for one audit pass.
#[derive(Debug, Clone, Copy)]
pub struct VerifyOptions {
    /// How long to wait between the two heartbeat/stamp samples. Longer
    /// windows distinguish "slow" from "stuck" more reliably; the default
    /// (200 ms) is ~20 producer block-slices.
    pub watch: Duration,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        Self {
            watch: Duration::from_millis(200),
        }
    }
}

/// Byte-size and alignment of one cell, computed from the header's runtime
/// discriminants rather than compile-time type parameters — the verifier
/// has no `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellGeometry {
    /// `size_of` one cell (the array stride).
    pub size: usize,
    /// `align_of` one cell.
    pub align: usize,
}

const fn round_up(x: usize, align: usize) -> usize {
    (x + align - 1) & !(align - 1)
}

/// Recomputes what `size_of`/`align_of` the cell type would have, from the
/// on-region discriminant and element geometry. Mirrors the `repr(C)`
/// layouts of `ffq::cell::{CompactCell, PaddedCell}`: a 16-byte, 16-aligned
/// `DoubleWord` first, then the element at its natural alignment; the
/// padded flavor rounds the whole cell up to a 64-byte cache line.
/// `None` for an unknown discriminant or absurd geometry.
pub fn dynamic_cell_geometry(
    cell_layout: u8,
    elem_size: usize,
    elem_align: usize,
) -> Option<CellGeometry> {
    if !elem_align.is_power_of_two() || elem_align > (1 << 29) {
        return None;
    }
    // CompactCell<T>: repr(C) { words: DoubleWord /* 16 B, align 16 */,
    // data: UnsafeCell<MaybeUninit<T>> }.
    let align = elem_align.max(16);
    let data_offset = round_up(16, elem_align);
    let size = round_up(data_offset.checked_add(elem_size)?, align);
    match cell_layout {
        2 => Some(CellGeometry { size, align }),
        // PaddedCell<T>: repr(C, align(64)) { inner: CompactCell<T> }.
        1 => Some(CellGeometry {
            size: round_up(size, 64),
            align: align.max(64),
        }),
        _ => None,
    }
}

/// The offsets a region formatted with `cfg` must carry — recomputed at
/// runtime from the decoded config, mirroring
/// [`crate::header::region_layout`] / [`crate::header::bytes_region_layout`]
/// without their type parameters. Returns
/// `(state_offset, cells_offset, total_len)`; `None` on overflow or an
/// undecodable cell geometry.
pub fn dynamic_region_layout(cfg: &QueueConfig) -> Option<(usize, usize, usize)> {
    let cell = dynamic_cell_geometry(cfg.cell_layout, cfg.elem_size as usize, {
        cfg.elem_align as usize
    })?;
    let state_align = core::mem::align_of::<QueueState>().max(128);
    let state_offset = round_up(core::mem::size_of::<RegionHeader>(), state_align);
    let cells_align = cell.align.max(64);
    let cells_offset = round_up(
        state_offset.checked_add(core::mem::size_of::<QueueState>())?,
        cells_align,
    );
    let cells_len = (1usize << cfg.cap_log2).checked_mul(cell.size)?;
    let mut total_len = cells_offset.checked_add(cells_len)?;
    if variant_is_bytes(cfg.variant) {
        let slots_offset = round_up(total_len, 64);
        let slots_len =
            (1usize << cfg.cap_log2).checked_mul(1usize.checked_shl(cfg.slot_log2.into())?)?;
        total_len = slots_offset.checked_add(slots_len)?;
    }
    Some((state_offset, cells_offset, total_len))
}

/// Collects findings and tracks the worst severity seen.
struct Audit {
    findings: Vec<Finding>,
    violated: bool,
}

impl Audit {
    fn new() -> Self {
        Self {
            findings: Vec::new(),
            violated: false,
        }
    }

    fn note(&mut self, check: &'static str, detail: String) {
        self.findings.push(Finding {
            severity: Severity::Note,
            check,
            detail,
        });
    }

    fn violation(&mut self, check: &'static str, detail: String) {
        self.violated = true;
        self.findings.push(Finding {
            severity: Severity::Violation,
            check,
            detail,
        });
    }

    fn refuse(mut self, check: &'static str, detail: String) -> Report {
        self.findings.push(Finding {
            severity: Severity::Violation,
            check,
            detail,
        });
        Report {
            verdict: Verdict::Refused,
            findings: self.findings,
        }
    }

    fn finish(self) -> Report {
        Report {
            verdict: if self.violated {
                Verdict::Unhealthy
            } else {
                Verdict::Clean
            },
            findings: self.findings,
        }
    }
}

/// `slot(rank)` under the region's recorded index map.
fn map_slot(index_map: u8, rank: i64, cap_log2: u32) -> usize {
    match index_map {
        2 => RotateMap::slot(rank, cap_log2),
        _ => LinearMap::slot(rank, cap_log2),
    }
}

/// Audits the queue region mapped at `region` and reports everything it
/// finds. Pure loads only — safe against [`ShmRegion::open_readonly`] /
/// [`ShmRegion::remap_readonly`] mappings, and safe to run concurrently
/// with live producers and consumers.
pub fn verify_region(region: &ShmRegion, opts: &VerifyOptions) -> Report {
    let mut a = Audit::new();

    // ---- 1. Identity: refuse before dereferencing anything derived. ----
    if region.len() < core::mem::size_of::<RegionHeader>() {
        return a.refuse(
            "size",
            format!(
                "mapping of {} bytes cannot hold a {}-byte region header",
                region.len(),
                core::mem::size_of::<RegionHeader>()
            ),
        );
    }
    // SAFETY: the mapping is page-aligned and at least header-sized; the
    // header type is repr(C) atomics, for which every bit pattern is valid.
    let header = unsafe { &*(region.as_ptr() as *const RegionHeader) };
    let magic = header.magic();
    if magic != MAGIC {
        return a.refuse(
            "magic",
            format!("expected {MAGIC:#018x}, found {magic:#018x} — not an ffq-shm region"),
        );
    }
    let version = header.version();
    if version != VERSION {
        return a.refuse(
            "version",
            format!("this binary audits v{VERSION} regions, found v{version}"),
        );
    }
    let lifecycle = match header.lifecycle_state() {
        None => {
            return a.refuse(
                "lifecycle",
                "lifecycle word holds a value outside the state machine".to_string(),
            )
        }
        Some(s) => s,
    };
    match lifecycle {
        Lifecycle::Ready => {}
        Lifecycle::Poisoned => {
            a.violation(
                "lifecycle",
                "region is POISONED (a peer died mid-operation or poisoned explicitly)".to_string(),
            );
        }
        // Valid magic with a pre-READY lifecycle word: the creator died
        // in the few stores between writing identity and publishing.
        Lifecycle::Raw | Lifecycle::Initializing => {
            return a.refuse(
                "lifecycle",
                format!(
                    "region carries identity but is still {lifecycle:?} — creator died mid-format"
                ),
            );
        }
    }
    let cfg = match QueueConfig::decode(header.config_words()) {
        Ok(cfg) => cfg,
        Err(e) => return a.refuse("config", format!("config words do not decode: {e}")),
    };
    a.note(
        "config",
        format!(
            "variant {} · capacity 2^{} · elem {} B align {} · cell layout {} · index map {}{}",
            cfg.variant,
            cfg.cap_log2,
            cfg.elem_size,
            cfg.elem_align,
            cfg.cell_layout,
            cfg.index_map,
            if variant_is_bytes(cfg.variant) {
                format!(" · slot 2^{} B", cfg.slot_log2)
            } else {
                String::new()
            }
        ),
    );

    // ---- 2. Geometry: the header must agree with itself. ----
    let (state_offset, cells_offset, total_len) = match dynamic_region_layout(&cfg) {
        Some(l) => l,
        None => {
            return a.refuse(
                "layout",
                "config describes a geometry this binary cannot recompute".to_string(),
            )
        }
    };
    if cfg.state_offset as usize != state_offset
        || cfg.cells_offset as usize != cells_offset
        || cfg.region_len != total_len as u64
    {
        return a.refuse(
            "layout",
            format!(
                "recorded offsets (state {}, cells {}, len {}) disagree with recomputed \
                 (state {state_offset}, cells {cells_offset}, len {total_len})",
                cfg.state_offset, cfg.cells_offset, cfg.region_len
            ),
        );
    }
    if region.len() < total_len {
        return a.refuse(
            "layout",
            format!(
                "mapping is {} bytes but the region claims {total_len}",
                region.len()
            ),
        );
    }

    // ---- 3. Counters. ----
    // SAFETY: state_offset was just validated in-bounds and 128-aligned;
    // QueueState is repr(C) atomics + plain words, every bit pattern valid.
    let state = unsafe { &*(region.as_ptr().add(state_offset) as *const QueueState) };
    let head = state.head().load(Ordering::Relaxed);
    let tail = state.tail().load(Ordering::Relaxed);
    let capacity = 1usize << cfg.cap_log2;
    if state.cap_log2() != cfg.cap_log2 {
        a.violation(
            "state",
            format!(
                "state block capacity 2^{} disagrees with header 2^{}",
                state.cap_log2(),
                cfg.cap_log2
            ),
        );
    }
    if head < 0 || tail < 0 {
        a.violation(
            "state",
            format!("negative rank counter (head {head}, tail {tail})"),
        );
    }
    let producers = state.producers().load(Ordering::Relaxed);
    let consumers = state.consumers().load(Ordering::Relaxed);
    if producers > 1 {
        a.violation(
            "state",
            format!("{producers} producers on a single-producer queue"),
        );
    }
    a.note(
        "state",
        format!(
            "head {head} · tail {tail} · {producers} producer(s) · {consumers} consumer(s) \
             · {} buffered (capacity {capacity})",
            tail.saturating_sub(head).max(0)
        ),
    );

    // ---- 4/5. Cells. ----
    if lifecycle == Lifecycle::Ready {
        if cfg.variant == VARIANT_BROADCAST {
            audit_broadcast_cells(&mut a, region, &cfg, cells_offset, opts.watch);
        } else {
            audit_point_to_point_cells(&mut a, region, &cfg, cells_offset);
        }
    } else {
        a.note(
            "cells",
            "cell audit skipped: poisoned region makes no cell-state promises".to_string(),
        );
    }

    // ---- 6. Peers. ----
    audit_peers(&mut a, header, &cfg, opts.watch);

    a.finish()
}

/// Geometry of the region's cell array, recomputed for raw traversal.
struct Cells {
    base: *const u8,
    stride: usize,
    count: usize,
}

impl Cells {
    fn of(region: &ShmRegion, cfg: &QueueConfig, cells_offset: usize) -> Self {
        let geom = dynamic_cell_geometry(cfg.cell_layout, cfg.elem_size as usize, {
            cfg.elem_align as usize
        })
        .expect("geometry validated before cell audit");
        Self {
            // SAFETY: cells_offset validated in-bounds for the full array.
            base: unsafe { region.as_ptr().add(cells_offset) },
            stride: geom.size,
            count: 1usize << cfg.cap_log2,
        }
    }

    /// The `(rank, gap)` / `(stamp, gap)` word pair of cell `i`, loaded
    /// untorn.
    fn words(&self, i: usize) -> (i64, i64) {
        debug_assert!(i < self.count);
        // SAFETY: i in bounds; the DoubleWord is the first field of both
        // cell layouts (repr(C)), 16-aligned by the array's construction.
        let words = unsafe { &*(self.base.add(i * self.stride) as *const DoubleWord) };
        words.load_pair_untorn(Ordering::Acquire)
    }
}

/// Rank/gap continuity for the point-to-point variants, plus descriptor
/// sanity for the bytes lanes.
fn audit_point_to_point_cells(
    a: &mut Audit,
    region: &ShmRegion,
    cfg: &QueueConfig,
    cells_offset: usize,
) {
    let cells = Cells::of(region, cfg, cells_offset);
    let is_bytes = variant_is_bytes(cfg.variant);
    let mut published = 0usize;
    let mut claimed = 0usize;
    let mut gaps = 0usize;
    let mut bad = 0usize;
    for i in 0..cells.count {
        let (rank, gap) = cells.words(i);
        match rank {
            RANK_FREE => {}
            RANK_CLAIMED => claimed += 1,
            r if r >= 0 => {
                published += 1;
                if map_slot(cfg.index_map, r, cfg.cap_log2) != i {
                    bad += 1;
                    if bad <= 3 {
                        a.violation(
                            "cells",
                            format!(
                                "cell {i} holds rank {r}, which maps to slot {} — rank \
                                 continuity broken",
                                map_slot(cfg.index_map, r, cfg.cap_log2)
                            ),
                        );
                    }
                }
                if is_bytes {
                    audit_descriptor(a, cfg, &cells, i);
                }
            }
            r => {
                bad += 1;
                if bad <= 3 {
                    a.violation("cells", format!("cell {i} holds invalid rank {r}"));
                }
            }
        }
        match gap {
            GAP_NONE => {}
            g if g >= 0 => {
                gaps += 1;
                if map_slot(cfg.index_map, g, cfg.cap_log2) != i {
                    bad += 1;
                    if bad <= 3 {
                        a.violation(
                            "cells",
                            format!(
                                "cell {i} announces gap rank {g}, which maps to slot {}",
                                map_slot(cfg.index_map, g, cfg.cap_log2)
                            ),
                        );
                    }
                }
            }
            g => {
                bad += 1;
                if bad <= 3 {
                    a.violation("cells", format!("cell {i} holds invalid gap word {g}"));
                }
            }
        }
    }
    if bad > 3 {
        a.violation("cells", format!("… and {} more cell violations", bad - 3));
    }
    a.note(
        "cells",
        format!(
            "{} cells scanned: {published} published · {claimed} claimed · {gaps} gap-marked",
            cells.count
        ),
    );
}

/// Validates the published payload descriptor in bytes-lane cell `i`.
///
/// The read races with the consumer retiring the cell, so the descriptor
/// copy only counts if the rank word is unchanged on both sides of it
/// (seqlock-style validation); otherwise the cell is simply skipped.
fn audit_descriptor(a: &mut Audit, cfg: &QueueConfig, cells: &Cells, i: usize) {
    let elem_align = cfg.elem_align as usize;
    let data_offset = round_up(16, elem_align);
    let before = cells.words(i);
    // SAFETY: in-bounds (cell i's data field, validated geometry); the
    // descriptor is plain words and the copy is re-validated below.
    let desc =
        unsafe { (cells.base.add(i * cells.stride + data_offset) as *const PayloadDesc).read() };
    if cells.words(i) != before || before.0 < 0 {
        return; // Cell moved under us (or was never published): no claim.
    }
    let slot_bytes = 1u64 << cfg.slot_log2;
    match desc.flags {
        DESC_INLINE => {
            if desc.len > slot_bytes {
                a.violation(
                    "descriptors",
                    format!(
                        "cell {i}: inline descriptor of {} bytes exceeds the {slot_bytes}-byte \
                         slot buffer",
                        desc.len
                    ),
                );
            }
        }
        DESC_CHAIN_HEAD | DESC_CHAIN_CONT => {
            if cfg.variant != crate::header::VARIANT_SPSC_BYTES {
                a.violation(
                    "descriptors",
                    format!(
                        "cell {i}: chain descriptor on a variant that refuses spill (flags {})",
                        desc.flags
                    ),
                );
            }
        }
        DESC_ABORT => {}
        DESC_HEAP => {
            a.violation(
                "descriptors",
                format!("cell {i}: heap-spill descriptor cannot cross address spaces"),
            );
        }
        f => {
            a.violation(
                "descriptors",
                format!("cell {i}: unknown descriptor discriminant {f}"),
            );
        }
    }
}

/// Seqlock stamp parity for the v4 broadcast variant: stamps decode to a
/// rank that maps home, and no stamp stays *odd* (writer mid-publish)
/// across the watch window.
fn audit_broadcast_cells(
    a: &mut Audit,
    region: &ShmRegion,
    cfg: &QueueConfig,
    cells_offset: usize,
    watch: Duration,
) {
    let cells = Cells::of(region, cfg, cells_offset);
    let mut published = 0usize;
    let mut bad = 0usize;
    let mut odd: Vec<(usize, i64)> = Vec::new();
    for i in 0..cells.count {
        let (stamp, _) = cells.words(i);
        match stamp {
            RANK_FREE => {}
            s if s >= 1 && s % 2 == 1 => odd.push((i, s)),
            s if s >= 2 => {
                published += 1;
                // seq_published(rank) = 2·rank + 2.
                let rank = (s - 2) / 2;
                if map_slot(cfg.index_map, rank, cfg.cap_log2) != i {
                    bad += 1;
                    if bad <= 3 {
                        a.violation(
                            "broadcast",
                            format!(
                                "cell {i} stamp {s} decodes to rank {rank}, which maps to \
                                 slot {}",
                                map_slot(cfg.index_map, rank, cfg.cap_log2)
                            ),
                        );
                    }
                }
            }
            s => {
                bad += 1;
                if bad <= 3 {
                    a.violation("broadcast", format!("cell {i} holds invalid stamp {s}"));
                }
            }
        }
    }
    if !odd.is_empty() {
        // An odd stamp is legal for the nanoseconds of one racy payload
        // write; across the whole watch window it means the writer died
        // between its odd and even stores.
        std::thread::sleep(watch);
        for (i, stamp) in odd {
            let (now, _) = cells.words(i);
            if now == stamp {
                a.violation(
                    "broadcast",
                    format!(
                        "cell {i} stamp {stamp} stayed mid-write (odd) across the watch \
                         window — writer died mid-publish"
                    ),
                );
            }
        }
    }
    if bad > 3 {
        a.violation(
            "broadcast",
            format!("… and {} more stamp violations", bad - 3),
        );
    }
    a.note(
        "broadcast",
        format!("{} cells scanned: {published} published", cells.count),
    );
}

/// `kill(pid, 0)` probe: `true` while the process exists (or outranks us —
/// `EPERM` still proves existence).
fn process_alive(pid: i64) -> bool {
    // SAFETY: signal 0 delivers nothing; it only checks existence.
    let r = unsafe { libc::kill(pid as libc::pid_t, 0) };
    r == 0 || std::io::Error::last_os_error().raw_os_error() == Some(libc::EPERM)
}

/// Heartbeat freshness per registered peer slot, escalating to the
/// `kill(pid, 0)` probe exactly like the in-protocol watchdog.
fn audit_peers(a: &mut Audit, header: &RegionHeader, cfg: &QueueConfig, watch: Duration) {
    let consumer_slots = if cfg.variant == VARIANT_SPSC {
        1
    } else {
        MAX_CONSUMERS
    };
    let slots: Vec<(&'static str, usize, &crate::header::PeerSlot)> =
        std::iter::once(("producer", 0, header.producer_slot()))
            .chain((0..consumer_slots).map(|i| ("consumer", i, header.consumer_slot(i))))
            .collect();

    // First sample.
    let sampled: Vec<(i64, u64)> = slots
        .iter()
        .map(|(_, _, s)| (s.pid(), s.heartbeat()))
        .collect();
    let any_live = sampled.iter().any(|&(pid, _)| pid > 0);
    if any_live {
        std::thread::sleep(watch);
    }
    let mut attached = 0usize;
    for ((role, idx, slot), (pid, hb0)) in slots.iter().zip(sampled) {
        match pid {
            PEER_FREE => {}
            PEER_DETACHED => a.note("peers", format!("{role} slot {idx}: detached cleanly")),
            pid if pid > 0 => {
                attached += 1;
                let hb1 = slot.heartbeat();
                if hb1 != hb0 {
                    a.note(
                        "peers",
                        format!("{role} slot {idx}: pid {pid} alive (heartbeat advancing)"),
                    );
                } else if process_alive(pid) {
                    a.note(
                        "peers",
                        format!("{role} slot {idx}: pid {pid} alive (idle heartbeat)"),
                    );
                } else {
                    a.violation(
                        "peers",
                        format!(
                            "{role} slot {idx}: pid {pid} is registered but dead — the \
                             in-protocol watchdog will poison this queue"
                        ),
                    );
                }
            }
            pid => a.violation(
                "peers",
                format!("{role} slot {idx}: invalid pid word {pid}"),
            ),
        }
    }
    a.note("peers", format!("{attached} peer(s) attached"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{bytes_region_layout, region_layout};
    use crate::{broadcast, spmc, spsc, spsc_bytes};
    use ffq::cell::{CompactCell, PaddedCell};

    /// The runtime geometry must agree with the compiler for every shipped
    /// cell/element combination — this is what lets the verifier walk cell
    /// arrays it has no type parameters for.
    #[test]
    fn dynamic_cell_geometry_matches_the_compiler() {
        fn check<T>() {
            let size = core::mem::size_of::<T>();
            let align = core::mem::align_of::<T>();
            assert_eq!(
                dynamic_cell_geometry(1, size, align).unwrap(),
                CellGeometry {
                    size: core::mem::size_of::<PaddedCell<T>>(),
                    align: core::mem::align_of::<PaddedCell<T>>(),
                },
                "padded cell geometry for {}",
                core::any::type_name::<T>()
            );
            assert_eq!(
                dynamic_cell_geometry(2, size, align).unwrap(),
                CellGeometry {
                    size: core::mem::size_of::<CompactCell<T>>(),
                    align: core::mem::align_of::<CompactCell<T>>(),
                },
                "compact cell geometry for {}",
                core::any::type_name::<T>()
            );
        }
        check::<u32>();
        check::<u64>();
        check::<[u8; 16]>();
        check::<[u8; 32]>();
        check::<[u8; 64]>();
        check::<[u64; 7]>();
        check::<PayloadDesc>();
        assert_eq!(dynamic_cell_geometry(3, 8, 8), None, "unknown discriminant");
        assert_eq!(
            dynamic_cell_geometry(1, 8, 3),
            None,
            "non-power-of-two align"
        );
    }

    #[test]
    fn dynamic_region_layout_matches_the_generic_one() {
        let cfg = QueueConfig {
            variant: crate::header::VARIANT_SPMC,
            cell_layout: 1,
            index_map: 1,
            cap_log2: 10,
            slot_log2: 0,
            elem_size: 8,
            elem_align: 8,
            state_offset: 0,
            cells_offset: 0,
            region_len: 0,
        };
        let l = region_layout::<u64, PaddedCell<u64>>(10).unwrap();
        assert_eq!(
            dynamic_region_layout(&cfg).unwrap(),
            (l.state_offset, l.cells_offset, l.total_len)
        );
        let bytes_cfg = QueueConfig {
            variant: crate::header::VARIANT_SPSC_BYTES,
            cell_layout: 1,
            index_map: 1,
            cap_log2: 6,
            slot_log2: 9,
            elem_size: core::mem::size_of::<PayloadDesc>() as u32,
            elem_align: core::mem::align_of::<PayloadDesc>() as u32,
            state_offset: 0,
            cells_offset: 0,
            region_len: 0,
        };
        let b = bytes_region_layout(6, 9).unwrap();
        assert_eq!(
            dynamic_region_layout(&bytes_cfg).unwrap(),
            (b.state_offset, b.cells_offset, b.total_len)
        );
    }

    fn quick_opts() -> VerifyOptions {
        VerifyOptions {
            watch: Duration::from_millis(20),
        }
    }

    #[test]
    fn healthy_live_region_is_clean() {
        let region = ShmRegion::create_memfd(spmc::required_size::<u64>(64).unwrap()).unwrap();
        let mut tx = spmc::create::<u64>(region.clone(), 64).unwrap();
        let mut rx = spmc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        for i in 0..40u64 {
            tx.enqueue(i).unwrap();
        }
        for _ in 0..10 {
            rx.dequeue().unwrap();
        }
        let report = verify_region(&region.remap_readonly().unwrap(), &quick_opts());
        assert!(report.is_clean(), "healthy region flagged:\n{report}");
        assert_eq!(report.exit_code(), 0);
    }

    #[test]
    fn healthy_bytes_region_is_clean() {
        let region = ShmRegion::create_memfd(spsc_bytes::required_size(16, 128).unwrap()).unwrap();
        let mut tx = spsc_bytes::create(region.clone(), 16, 128).unwrap();
        tx.send_bytes(b"payload one").unwrap();
        tx.send_bytes(&[7u8; 300]).unwrap(); // chain-spilled
        let report = verify_region(&region.remap_readonly().unwrap(), &quick_opts());
        assert!(report.is_clean(), "healthy bytes region flagged:\n{report}");
    }

    #[test]
    fn healthy_broadcast_region_is_clean() {
        let region = ShmRegion::create_memfd(broadcast::required_size::<u64>(32).unwrap()).unwrap();
        let mut tx = broadcast::create::<u64>(region.clone(), 32).unwrap();
        for i in 0..100u64 {
            tx.send(i); // wraps: every cell re-stamped several times
        }
        let report = verify_region(&region.remap_readonly().unwrap(), &quick_opts());
        assert!(
            report.is_clean(),
            "healthy broadcast region flagged:\n{report}"
        );
    }

    #[test]
    fn poisoned_region_is_unhealthy() {
        let region = ShmRegion::create_memfd(spsc::required_size::<u64>(16).unwrap()).unwrap();
        let tx = spsc::create::<u64>(region.clone(), 16).unwrap();
        tx.poison();
        let report = verify_region(&region.remap_readonly().unwrap(), &quick_opts());
        assert_eq!(report.verdict, Verdict::Unhealthy);
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn dead_registered_peer_is_unhealthy() {
        let region = ShmRegion::create_memfd(spmc::required_size::<u64>(16).unwrap()).unwrap();
        spmc::format::<u64>(&region, 16).unwrap();
        // A pid that cannot exist (beyond pid_max) in the producer slot:
        // the same trick the attach tests use for a crashed peer.
        let header = unsafe { &*(region.as_ptr() as *const RegionHeader) };
        assert!(header.producer_slot().try_claim((1 << 22) + 1));
        let report = verify_region(&region.remap_readonly().unwrap(), &quick_opts());
        assert_eq!(report.verdict, Verdict::Unhealthy);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.check == "peers" && f.severity == Severity::Violation),
            "expected a dead-peer finding:\n{report}"
        );
    }

    #[test]
    fn truncated_and_corrupted_regions_are_refused_without_ub() {
        // Too small for a header.
        let tiny = ShmRegion::create_memfd(64).unwrap();
        let report = verify_region(&tiny, &quick_opts());
        assert_eq!(report.verdict, Verdict::Refused);
        assert_eq!(report.exit_code(), 2);

        // Zeroed (RAW) region: refused on magic.
        let raw = ShmRegion::create_memfd(4096).unwrap();
        let report = verify_region(&raw, &quick_opts());
        assert_eq!(report.verdict, Verdict::Refused);
        assert!(report.findings.iter().any(|f| f.check == "magic"));

        // Garbage bytes: refused, never dereferenced past the header.
        let junk = ShmRegion::create_memfd(4096).unwrap();
        for i in 0..4096 {
            // SAFETY: in-bounds writes to our own fresh mapping.
            unsafe { *junk.as_ptr().add(i) = (i * 37 + 11) as u8 };
        }
        assert_eq!(
            verify_region(&junk, &quick_opts()).verdict,
            Verdict::Refused
        );

        // A real region truncated mid-cells: the header claims more bytes
        // than the mapping holds.
        let real = ShmRegion::create_memfd(spsc::required_size::<u64>(256).unwrap()).unwrap();
        spsc::format::<u64>(&real, 256).unwrap();
        let header_len = 2048; // header + state, but not the full cell array
        let trunc = ShmRegion::create_memfd(header_len).unwrap();
        // SAFETY: both mappings are at least header_len bytes.
        unsafe {
            core::ptr::copy_nonoverlapping(real.as_ptr(), trunc.as_ptr(), header_len);
        }
        let report = verify_region(&trunc, &quick_opts());
        assert_eq!(report.verdict, Verdict::Refused);
        assert!(
            report.findings.iter().any(|f| f.check == "layout"),
            "expected a layout refusal:\n{report}"
        );
    }

    #[test]
    fn rank_continuity_violation_is_flagged() {
        let region = ShmRegion::create_memfd(spsc::required_size::<u64>(16).unwrap()).unwrap();
        let mut tx = spsc::create::<u64>(region.clone(), 16).unwrap();
        tx.enqueue(1).unwrap();
        // Corrupt cell 0's rank word to a rank that maps elsewhere.
        let cfg = QueueConfig::decode(
            unsafe { &*(region.as_ptr() as *const RegionHeader) }.config_words(),
        )
        .unwrap();
        let cells_offset = cfg.cells_offset as usize;
        // SAFETY: in-bounds write to our own region; this deliberately
        // breaks the queue, which is the point of the test.
        let words = unsafe { &*(region.as_ptr().add(cells_offset) as *const DoubleWord) };
        words.store_lo_unpaired(5, Ordering::Release); // slot(5) = 5 ≠ 0
        let report = verify_region(&region.remap_readonly().unwrap(), &quick_opts());
        assert_eq!(report.verdict, Verdict::Unhealthy);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.check == "cells" && f.detail.contains("rank continuity")),
            "expected a continuity finding:\n{report}"
        );
    }
}
