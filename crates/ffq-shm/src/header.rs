//! The versioned region header: format/attach handshake, peer liveness
//! slots, and the encoded queue configuration.
//!
//! A queue region is laid out as
//!
//! ```text
//! offset 0                    [RegionHeader]   — this module
//! state_offset (128-aligned)  [QueueState]     — ffq's repr(C) counter block
//! cells_offset                [C; 1 << cap_log2]
//! ```
//!
//! Every field is offset-based and `#[repr(C)]`; nothing in the region is a
//! pointer, so processes mapping it at different base addresses agree on all
//! of it. The header is written exactly once, by the *creator*, under the
//! lifecycle handshake below; after that it is read-only except for the
//! lifecycle word (poisoning) and the peer slots.
//!
//! # Lifecycle handshake
//!
//! The lifecycle word moves `RAW → INITIALIZING → READY`, with `POISONED`
//! reachable from `INITIALIZING` and `READY` and absorbing:
//!
//! * a fresh (`ftruncate`d, all-zero) region reads as `RAW`;
//! * the creator CASes `RAW → INITIALIZING` — winning that CAS grants
//!   exclusive write access to the whole region;
//! * it writes the [`QueueState`], the cell array, and the config words,
//!   then CASes `INITIALIZING → READY` — the single (release) publication
//!   point. A CAS, not a store: a peer that watched the creator die may
//!   have poisoned the region mid-format, and that verdict must stand;
//! * attachers spin (with a timeout) until they Acquire-load `READY`, so
//!   they observe every formatted byte.
//!
//! The word itself is [`ffq_sync::lifecycle::LifecycleWord`] (re-exported
//! here with its [`Lifecycle`]/[`LifecycleEvent`]/[`lifecycle_step`]
//! relation): it lives in `ffq-sync`, behind the atomics facade, so the
//! loom models check the same handshake code that runs cross-process.

use core::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ffq::cell::CellSlot;
use ffq::raw::QueueState;
use ffq_sync::lifecycle::LifecycleWord;
pub use ffq_sync::lifecycle::{lifecycle_step, Lifecycle, LifecycleEvent};

use crate::error::ShmError;

/// Magic number at offset 0 of every formatted region: `"FFQSHM01"` as
/// little-endian bytes.
pub const MAGIC: u64 = u64::from_le_bytes(*b"FFQSHM01");

/// Format version written by this crate. Attach refuses other versions.
/// Version 2 grew [`QueueState`] by the two eventcount futex words and the
/// shared-wait flag, so version-1 regions are layout-incompatible.
/// Version 3 added the zero-copy bytes variants, whose config word carries
/// a slot-size exponent in the byte version 2 required to be zero — a v2
/// binary must refuse such a region outright rather than misread it.
/// Version 4 added the broadcast variant, whose cells are seqlock records
/// (the rank word carries version stamps, not ranks) — an older binary
/// attaching as a point-to-point consumer would misread every stamp as a
/// rank, so the version gate, not just the variant check, must refuse it.
pub const VERSION: u32 = 4;

/// Number of consumer attach slots (upper bound on concurrently attached
/// consumer processes; the SPSC variant uses only slot 0).
pub const MAX_CONSUMERS: usize = 16;

/// Queue-variant discriminant: single producer, single consumer.
pub const VARIANT_SPSC: u8 = 1;
/// Queue-variant discriminant: single producer, multiple consumers.
pub const VARIANT_SPMC: u8 = 2;
/// Queue-variant discriminant: zero-copy bytes lane, single consumer.
pub const VARIANT_SPSC_BYTES: u8 = 3;
/// Queue-variant discriminant: zero-copy bytes lane, shared-head consumers.
pub const VARIANT_SPMC_BYTES: u8 = 4;
/// Queue-variant discriminant: broadcast (pub-sub) lane over seqlock cells —
/// every subscriber observes the full stream; slow subscribers lose items
/// instead of blocking the producer.
pub const VARIANT_BROADCAST: u8 = 5;

/// `true` for the variants whose cells carry payload descriptors into a
/// per-cell slot-buffer region (the zero-copy bytes lane).
pub const fn variant_is_bytes(v: u8) -> bool {
    matches!(v, VARIANT_SPSC_BYTES | VARIANT_SPMC_BYTES)
}

/// A `pid` slot value meaning "never attached".
pub const PEER_FREE: i64 = 0;
/// A `pid` slot value meaning "attached once, detached cleanly".
pub const PEER_DETACHED: i64 = -1;

/// One peer's liveness record: its pid and a heartbeat counter it bumps as
/// it makes progress.
///
/// Liveness probing is two-phase: a reader first compares the heartbeat to
/// the last value it saw — any advance proves life without a syscall. Only
/// a *stalled* heartbeat escalates to `kill(pid, 0)`, which distinguishes
/// "alive but idle" (probe succeeds) from "gone" (`ESRCH`). A clean detach
/// stores [`PEER_DETACHED`] so it is never mistaken for a crash.
#[repr(C)]
pub struct PeerSlot {
    /// [`PEER_FREE`], [`PEER_DETACHED`], or the attached process's pid.
    pid: AtomicI64,
    /// Monotonic progress counter, written only by the slot's owner.
    heartbeat: AtomicU64,
}

impl PeerSlot {
    /// Claims the slot for `pid` if it is free or cleanly detached.
    pub fn try_claim(&self, pid: i64) -> bool {
        debug_assert!(pid > 0);
        for cur in [PEER_FREE, PEER_DETACHED] {
            if self
                .pid
                .compare_exchange(cur, pid, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
        false
    }

    /// Marks a clean detach.
    pub fn release(&self) {
        self.pid.store(PEER_DETACHED, Ordering::Release);
    }

    /// Current occupant: [`PEER_FREE`], [`PEER_DETACHED`] or a pid.
    pub fn pid(&self) -> i64 {
        self.pid.load(Ordering::Acquire)
    }

    /// Publishes a new heartbeat value (single writer: the slot owner).
    pub fn store_heartbeat(&self, hb: u64) {
        self.heartbeat.store(hb, Ordering::Relaxed);
    }

    /// Reads the heartbeat counter.
    pub fn heartbeat(&self) -> u64 {
        self.heartbeat.load(Ordering::Relaxed)
    }
}

/// The decoded queue configuration a region was formatted with.
///
/// Encoded into four `u64` words in the header ([`encode`](Self::encode) /
/// [`decode`](Self::decode)); attach decodes and compares every field
/// against what the attaching handle's type parameters predict, so two
/// binaries can never exchange ranks over memory they interpret differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// [`VARIANT_SPSC`] or [`VARIANT_SPMC`].
    pub variant: u8,
    /// Cell layout discriminant (see [`cell_discriminant`]).
    pub cell_layout: u8,
    /// Index map discriminant (see [`map_discriminant`]).
    pub index_map: u8,
    /// log2 of the cell count.
    pub cap_log2: u32,
    /// log2 of the per-cell slot-buffer size for the bytes variants
    /// (`6..=30`, i.e. 64 B to 1 GiB); zero for the typed variants.
    pub slot_log2: u8,
    /// `size_of::<T>()` of the element type.
    pub elem_size: u32,
    /// `align_of::<T>()` of the element type.
    pub elem_align: u32,
    /// Byte offset of the [`QueueState`] block.
    pub state_offset: u32,
    /// Byte offset of the cell array.
    pub cells_offset: u32,
    /// Total bytes of header + state + cells.
    pub region_len: u64,
}

impl QueueConfig {
    /// Packs the configuration into the header's four config words.
    pub fn encode(&self) -> [u64; 4] {
        [
            u64::from(self.variant)
                | u64::from(self.cell_layout) << 8
                | u64::from(self.index_map) << 16
                | u64::from(self.slot_log2) << 24
                | u64::from(self.cap_log2) << 32,
            u64::from(self.elem_size) | u64::from(self.elem_align) << 32,
            u64::from(self.state_offset) | u64::from(self.cells_offset) << 32,
            self.region_len,
        ]
    }

    /// Unpacks and validates four config words. Every reserved bit must be
    /// zero and every discriminant in range — a corrupt or foreign header
    /// fails here rather than producing an out-of-bounds queue view.
    pub fn decode(w: [u64; 4]) -> Result<Self, ShmError> {
        let bad = |field| ShmError::BadConfig { field };
        let variant = (w[0] & 0xFF) as u8;
        if !(VARIANT_SPSC..=VARIANT_BROADCAST).contains(&variant) {
            return Err(bad("variant"));
        }
        let cell_layout = (w[0] >> 8 & 0xFF) as u8;
        if !(1..=2).contains(&cell_layout) {
            return Err(bad("cell layout"));
        }
        let index_map = (w[0] >> 16 & 0xFF) as u8;
        if !(1..=2).contains(&index_map) {
            return Err(bad("index map"));
        }
        let slot_log2 = (w[0] >> 24 & 0xFF) as u8;
        if variant_is_bytes(variant) {
            // Slot buffers are 64 B .. 1 GiB, matching
            // `ffq::normalize_slot_bytes`.
            if !(6..=30).contains(&slot_log2) {
                return Err(bad("slot exponent"));
            }
        } else if slot_log2 != 0 {
            // The byte was reserved-must-be-zero in version 2; keep that
            // strictness for the variants that carry no slot region.
            return Err(bad("slot exponent"));
        }
        let cap_log2 = (w[0] >> 32) as u32;
        if cap_log2 > 31 {
            return Err(bad("capacity exponent"));
        }
        let elem_size = (w[1] & 0xFFFF_FFFF) as u32;
        let elem_align = (w[1] >> 32) as u32;
        if !elem_align.is_power_of_two() {
            return Err(bad("element alignment"));
        }
        Ok(Self {
            variant,
            cell_layout,
            index_map,
            cap_log2,
            slot_log2,
            elem_size,
            elem_align,
            state_offset: (w[2] & 0xFFFF_FFFF) as u32,
            cells_offset: (w[2] >> 32) as u32,
            region_len: w[3],
        })
    }
}

/// Maps a [`CellSlot::NAME`] to its on-region discriminant.
pub fn cell_discriminant(name: &str) -> Option<u8> {
    match name {
        "padded" => Some(1),
        "compact" => Some(2),
        _ => None,
    }
}

/// Maps an [`ffq::layout::IndexMap::NAME`] to its on-region discriminant.
pub fn map_discriminant(name: &str) -> Option<u8> {
    match name {
        "linear" => Some(1),
        "rotate" => Some(2),
        _ => None,
    }
}

/// The `#[repr(C)]` header at offset 0 of every queue region.
#[repr(C)]
pub struct RegionHeader {
    /// [`MAGIC`] once formatted.
    magic: AtomicU64,
    /// [`VERSION`] once formatted.
    version: AtomicU32,
    /// The [`Lifecycle`] word driving the format/attach handshake
    /// (`repr(transparent)` over an `AtomicU32`, so the `repr(C)` layout
    /// is unchanged).
    lifecycle: LifecycleWord,
    /// Encoded [`QueueConfig`].
    config: [AtomicU64; 4],
    /// pid of the formatting process (diagnostic).
    owner_pid: AtomicI64,
    /// The single producer's liveness slot.
    producer: PeerSlot,
    /// Consumer liveness slots.
    consumers: [PeerSlot; MAX_CONSUMERS],
}

impl RegionHeader {
    /// Claims a zeroed region for formatting (CAS `RAW → INITIALIZING`).
    pub fn begin_init(&self) -> Result<(), ShmError> {
        if self.lifecycle.begin_init() {
            Ok(())
        } else {
            Err(ShmError::AlreadyFormatted)
        }
    }

    /// Publishes a fully formatted region: writes config, identity and
    /// owner, then CASes `INITIALIZING → READY` (the release publication
    /// point). Caller must hold the `INITIALIZING` claim and have
    /// finished writing state and cells.
    ///
    /// Errors with [`ShmError::Poisoned`] if a peer poisoned the region
    /// mid-format (it watched this process stall and judged it dead): the
    /// poison verdict stands and the caller must abandon the region —
    /// publishing anyway would hand out handles other processes have
    /// already reported dead.
    pub fn publish_ready(&self, cfg: &QueueConfig, owner_pid: i64) -> Result<(), ShmError> {
        let words = cfg.encode();
        for (slot, w) in self.config.iter().zip(words) {
            slot.store(w, Ordering::Relaxed);
        }
        self.owner_pid.store(owner_pid, Ordering::Relaxed);
        self.version.store(VERSION, Ordering::Relaxed);
        self.magic.store(MAGIC, Ordering::Relaxed);
        if self.lifecycle.publish_ready() {
            Ok(())
        } else {
            Err(ShmError::Poisoned)
        }
    }

    /// Spins (politely) until the region is `READY`, then checks identity.
    ///
    /// Errors: [`ShmError::Poisoned`] if the lifecycle lands on `POISONED`,
    /// [`ShmError::NotReady`] on timeout, [`ShmError::BadMagic`] /
    /// [`ShmError::BadVersion`] for a region formatted by something else.
    pub fn wait_ready(&self, timeout: Duration) -> Result<(), ShmError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.lifecycle.state() {
                Some(Lifecycle::Ready) => break,
                Some(Lifecycle::Poisoned) => return Err(ShmError::Poisoned),
                Some(Lifecycle::Raw) | Some(Lifecycle::Initializing) | None => {
                    if Instant::now() >= deadline {
                        return Err(ShmError::NotReady);
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
        let magic = self.magic.load(Ordering::Relaxed);
        if magic != MAGIC {
            return Err(ShmError::BadMagic {
                expected: MAGIC,
                found: magic,
            });
        }
        let version = self.version.load(Ordering::Relaxed);
        if version != VERSION {
            return Err(ShmError::BadVersion {
                supported: VERSION,
                found: version,
            });
        }
        Ok(())
    }

    /// The magic word as currently stored (equal to [`MAGIC`] on any
    /// region formatted by this crate). Introspection only — attach paths
    /// go through [`wait_ready`](Self::wait_ready), which enforces it.
    pub fn magic(&self) -> u64 {
        self.magic.load(Ordering::Relaxed)
    }

    /// The format version as currently stored (equal to [`VERSION`] on a
    /// region this binary can attach to).
    pub fn version(&self) -> u32 {
        self.version.load(Ordering::Relaxed)
    }

    /// The lifecycle word's current state, or `None` if the word holds a
    /// value outside the [`Lifecycle`] state machine (corruption, or not a
    /// queue region at all). Read-only introspection for the verifier; it
    /// never drives the handshake.
    pub fn lifecycle_state(&self) -> Option<Lifecycle> {
        self.lifecycle.state()
    }

    /// The four raw config words (valid once `READY`).
    pub fn config_words(&self) -> [u64; 4] {
        [
            self.config[0].load(Ordering::Relaxed),
            self.config[1].load(Ordering::Relaxed),
            self.config[2].load(Ordering::Relaxed),
            self.config[3].load(Ordering::Relaxed),
        ]
    }

    /// pid of the process that formatted the region.
    pub fn owner_pid(&self) -> i64 {
        self.owner_pid.load(Ordering::Relaxed)
    }

    /// Poisons the queue (CAS loop through [`lifecycle_step`]); returns
    /// `true` if the region is poisoned on return (newly or already).
    pub fn poison(&self) -> bool {
        self.lifecycle.poison()
    }

    /// `true` once the lifecycle word reads `POISONED`.
    pub fn is_poisoned(&self) -> bool {
        self.lifecycle.is_poisoned()
    }

    /// The producer's liveness slot.
    pub fn producer_slot(&self) -> &PeerSlot {
        &self.producer
    }

    /// Consumer liveness slot `idx`.
    pub fn consumer_slot(&self, idx: usize) -> &PeerSlot {
        &self.consumers[idx]
    }

    /// Claims the first free (or cleanly vacated) consumer slot for `pid`.
    pub fn claim_consumer_slot(&self, pid: i64) -> Option<usize> {
        (0..MAX_CONSUMERS).find(|&i| self.consumers[i].try_claim(pid))
    }
}

/// Computed byte offsets of one queue region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionLayout {
    /// Byte offset of the [`QueueState`] block.
    pub state_offset: usize,
    /// Byte offset of the cell array.
    pub cells_offset: usize,
    /// Total bytes required.
    pub total_len: usize,
}

const fn round_up(x: usize, align: usize) -> usize {
    (x + align - 1) & !(align - 1)
}

/// Computes the region layout for a queue of `1 << cap_log2` cells of `C`.
///
/// The state block starts at the first 128-byte boundary past the header
/// (its own alignment, and a fresh cache-line pair away from the header's
/// peer slots); cells follow at their natural alignment, floored at 64 so a
/// compact cell array still begins on a cache line. `None` if the byte size
/// overflows `usize` — callers surface that as a capacity error.
pub fn region_layout<T, C: CellSlot<T>>(cap_log2: u32) -> Option<RegionLayout> {
    let state_align = core::mem::align_of::<QueueState>().max(128);
    let state_offset = round_up(core::mem::size_of::<RegionHeader>(), state_align);
    let cells_align = core::mem::align_of::<C>().max(64);
    let cells_offset = round_up(
        state_offset.checked_add(core::mem::size_of::<QueueState>())?,
        cells_align,
    );
    let cells_len = (1usize << cap_log2).checked_mul(core::mem::size_of::<C>())?;
    let total_len = cells_offset.checked_add(cells_len)?;
    Some(RegionLayout {
        state_offset,
        cells_offset,
        total_len,
    })
}

/// Computed byte offsets of one zero-copy bytes queue region: the typed
/// layout (header, state, descriptor cells) plus the cache-aligned
/// slot-buffer region the payload bytes live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BytesRegionLayout {
    /// Byte offset of the [`QueueState`] block.
    pub state_offset: usize,
    /// Byte offset of the descriptor-cell array.
    pub cells_offset: usize,
    /// Byte offset of the slot-buffer region (64-aligned, so slot buffers
    /// start on cache lines — the in-place write/borrowed read never
    /// false-shares with the descriptor cells).
    pub slots_offset: usize,
    /// Total bytes required.
    pub total_len: usize,
}

/// Computes the region layout for a bytes queue of `1 << cap_log2`
/// descriptor cells with `1 << slot_log2`-byte slot buffers. `None` on
/// `usize` overflow.
pub fn bytes_region_layout(cap_log2: u32, slot_log2: u8) -> Option<BytesRegionLayout> {
    let base = region_layout::<ffq::cell::PayloadDesc, ffq::bytes::DescCell>(cap_log2)?;
    let slots_offset = round_up(base.total_len, 64);
    let slots_len = (1usize << cap_log2).checked_mul(1usize.checked_shl(slot_log2.into())?)?;
    Some(BytesRegionLayout {
        state_offset: base.state_offset,
        cells_offset: base.cells_offset,
        slots_offset,
        total_len: slots_offset.checked_add(slots_len)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffq::cell::{CompactCell, PaddedCell};

    #[test]
    fn header_layout_is_stable() {
        // Mapped by separately compiled binaries: size and offsets must
        // match the repr(C) prediction exactly.
        assert_eq!(core::mem::align_of::<RegionHeader>(), 8);
        assert_eq!(core::mem::size_of::<PeerSlot>(), 16);
        assert_eq!(
            core::mem::size_of::<RegionHeader>(),
            8 + 4 + 4 + 32 + 8 + 16 * (1 + MAX_CONSUMERS)
        );
        let h: RegionHeader = unsafe { core::mem::zeroed() };
        let base = &h as *const _ as usize;
        assert_eq!(&h.magic as *const _ as usize - base, 0);
        assert_eq!(&h.version as *const _ as usize - base, 8);
        assert_eq!(&h.lifecycle as *const _ as usize - base, 12);
        assert_eq!(&h.config as *const _ as usize - base, 16);
        assert_eq!(&h.owner_pid as *const _ as usize - base, 48);
        assert_eq!(&h.producer as *const _ as usize - base, 56);
        assert_eq!(&h.consumers as *const _ as usize - base, 72);
    }

    #[test]
    fn zeroed_header_reads_as_raw_and_free() {
        let h: RegionHeader = unsafe { core::mem::zeroed() };
        assert!(!h.is_poisoned());
        assert_eq!(h.producer_slot().pid(), PEER_FREE);
        assert!(h.begin_init().is_ok(), "fresh region must accept a creator");
        assert_eq!(h.begin_init(), Err(ShmError::AlreadyFormatted));
    }

    #[test]
    fn config_encode_decode_round_trip() {
        let cfgs = [
            QueueConfig {
                variant: VARIANT_SPMC,
                cell_layout: 1,
                index_map: 1,
                cap_log2: 10,
                slot_log2: 0,
                elem_size: 8,
                elem_align: 8,
                state_offset: 384,
                cells_offset: 768,
                region_len: 768 + 1024 * 64,
            },
            QueueConfig {
                variant: VARIANT_SPSC_BYTES,
                cell_layout: 1,
                index_map: 1,
                cap_log2: 10,
                slot_log2: 10,
                elem_size: 24,
                elem_align: 8,
                state_offset: 384,
                cells_offset: 1024,
                region_len: 1024 + 1024 * 64 + 1024 * 1024,
            },
            QueueConfig {
                variant: VARIANT_SPMC_BYTES,
                cell_layout: 1,
                index_map: 1,
                cap_log2: 4,
                slot_log2: 6,
                elem_size: 24,
                elem_align: 8,
                state_offset: 384,
                cells_offset: 1024,
                region_len: 1024 + 16 * 64 + 16 * 64,
            },
            QueueConfig {
                variant: VARIANT_BROADCAST,
                cell_layout: 1,
                index_map: 2,
                cap_log2: 8,
                slot_log2: 0,
                elem_size: 32,
                elem_align: 8,
                state_offset: 384,
                cells_offset: 1024,
                region_len: 1024 + 256 * 64,
            },
            QueueConfig {
                variant: VARIANT_SPSC,
                cell_layout: 2,
                index_map: 2,
                cap_log2: 1,
                slot_log2: 0,
                elem_size: 1,
                elem_align: 1,
                state_offset: 384,
                cells_offset: 768,
                region_len: 800,
            },
            QueueConfig {
                variant: VARIANT_SPSC,
                cell_layout: 1,
                index_map: 1,
                cap_log2: 31,
                slot_log2: 0,
                elem_size: u32::MAX,
                elem_align: 1 << 31,
                state_offset: u32::MAX,
                cells_offset: u32::MAX,
                region_len: u64::MAX,
            },
        ];
        for cfg in cfgs {
            assert_eq!(QueueConfig::decode(cfg.encode()), Ok(cfg));
        }
    }

    #[test]
    fn config_decode_rejects_corruption() {
        let good = QueueConfig {
            variant: VARIANT_SPMC,
            cell_layout: 1,
            index_map: 1,
            cap_log2: 10,
            slot_log2: 0,
            elem_size: 8,
            elem_align: 8,
            state_offset: 384,
            cells_offset: 768,
            region_len: 66304,
        }
        .encode();

        let patch = |i: usize, w: u64| {
            let mut c = good;
            c[i] = w;
            c
        };
        // variant 0 and 7 are out of range (1..=5 is the valid band)
        assert!(QueueConfig::decode(patch(0, good[0] & !0xFF)).is_err());
        assert!(QueueConfig::decode(patch(0, good[0] | 5)).is_err());
        // broadcast (5) is a typed variant: valid only with a zero slot byte
        let bcast = (good[0] & !0xFF) | u64::from(VARIANT_BROADCAST);
        assert!(QueueConfig::decode(patch(0, bcast)).is_ok());
        assert!(QueueConfig::decode(patch(0, bcast | 10 << 24)).is_err());
        // cell layout / index map discriminants
        assert!(QueueConfig::decode(patch(0, good[0] | 0xFF << 8)).is_err());
        assert!(QueueConfig::decode(patch(0, good[0] | 0xFF << 16)).is_err());
        // typed variants must keep the (once reserved) slot byte zero
        assert!(QueueConfig::decode(patch(0, good[0] | 1 << 24)).is_err());
        // bytes variants must keep the slot exponent in 6..=30
        let bytes_variant = (good[0] & !0xFF) | u64::from(VARIANT_SPSC_BYTES);
        assert!(QueueConfig::decode(patch(0, bytes_variant)).is_err());
        assert!(QueueConfig::decode(patch(0, bytes_variant | 31 << 24)).is_err());
        assert!(QueueConfig::decode(patch(0, bytes_variant | 10 << 24)).is_ok());
        // capacity exponent above 31
        assert!(QueueConfig::decode(patch(0, good[0] | 32u64 << 32)).is_err());
        // element alignment must be a nonzero power of two
        assert!(QueueConfig::decode(patch(1, 8)).is_err());
        assert!(QueueConfig::decode(patch(1, 8 | 3u64 << 32)).is_err());
    }

    #[test]
    fn lifecycle_poisoned_is_absorbing() {
        use LifecycleEvent::*;
        for ev in [BeginInit, Publish, Poison] {
            let next = lifecycle_step(Lifecycle::Poisoned, ev);
            assert!(
                next.is_none() || next == Some(Lifecycle::Poisoned),
                "{ev:?} must not leave POISONED"
            );
        }
    }

    #[test]
    fn lifecycle_ready_needs_full_handshake() {
        use LifecycleEvent::*;
        // The only path to READY is RAW -BeginInit-> INITIALIZING -Publish->.
        for state in [Lifecycle::Raw, Lifecycle::Ready, Lifecycle::Poisoned] {
            assert_ne!(lifecycle_step(state, Publish), Some(Lifecycle::Ready));
        }
        assert_eq!(
            lifecycle_step(Lifecycle::Raw, BeginInit).and_then(|s| lifecycle_step(s, Publish)),
            Some(Lifecycle::Ready)
        );
        // A raw region cannot be poisoned; formatting cannot be re-entered.
        assert_eq!(lifecycle_step(Lifecycle::Raw, Poison), None);
        for state in [
            Lifecycle::Initializing,
            Lifecycle::Ready,
            Lifecycle::Poisoned,
        ] {
            assert_eq!(lifecycle_step(state, BeginInit), None);
        }
    }

    #[test]
    fn header_poison_handshake() {
        let h: RegionHeader = unsafe { core::mem::zeroed() };
        assert!(!h.poison(), "RAW region must not poison");
        h.begin_init().unwrap();
        let cfg = QueueConfig {
            variant: VARIANT_SPSC,
            cell_layout: 1,
            index_map: 1,
            cap_log2: 4,
            slot_log2: 0,
            elem_size: 8,
            elem_align: 8,
            state_offset: 384,
            cells_offset: 768,
            region_len: 1792,
        };
        h.publish_ready(&cfg, 1234).unwrap();
        h.wait_ready(Duration::from_millis(10)).unwrap();
        assert_eq!(h.owner_pid(), 1234);
        assert_eq!(QueueConfig::decode(h.config_words()), Ok(cfg));
        assert!(h.poison());
        assert!(h.is_poisoned());
        assert!(h.poison(), "poisoning again stays poisoned");
        assert_eq!(
            h.wait_ready(Duration::from_millis(1)),
            Err(ShmError::Poisoned)
        );
    }

    #[test]
    fn peer_slot_claim_release_cycle() {
        let h: RegionHeader = unsafe { core::mem::zeroed() };
        let s = h.producer_slot();
        assert!(s.try_claim(42));
        assert!(!s.try_claim(43), "occupied slot must reject");
        assert_eq!(s.pid(), 42);
        s.release();
        assert_eq!(s.pid(), PEER_DETACHED);
        assert!(s.try_claim(43), "detached slot must be reclaimable");
    }

    #[test]
    fn consumer_slots_exhaust_at_max() {
        let h: RegionHeader = unsafe { core::mem::zeroed() };
        for i in 0..MAX_CONSUMERS {
            assert_eq!(h.claim_consumer_slot(100 + i as i64), Some(i));
        }
        assert_eq!(h.claim_consumer_slot(999), None);
        h.consumer_slot(7).release();
        assert_eq!(h.claim_consumer_slot(999), Some(7));
    }

    #[test]
    fn region_layout_offsets() {
        // Header is 328 bytes -> state at 384 (128-aligned); QueueState is
        // 640 bytes (two counter lines, two eventcount lines, one misc
        // line) -> cells at 1024 for both cell layouts.
        let l = region_layout::<u64, PaddedCell<u64>>(10).unwrap();
        assert_eq!(l.state_offset, 384);
        assert_eq!(l.cells_offset, 1024);
        assert_eq!(
            l.total_len,
            1024 + 1024 * core::mem::size_of::<PaddedCell<u64>>()
        );
        let c = region_layout::<u64, CompactCell<u64>>(4).unwrap();
        assert_eq!(c.cells_offset, 1024);
        assert_eq!(
            c.total_len,
            1024 + 16 * core::mem::size_of::<CompactCell<u64>>()
        );
        // Offsets respect every participant's alignment.
        assert_eq!(l.state_offset % core::mem::align_of::<QueueState>(), 0);
        assert_eq!(l.cells_offset % core::mem::align_of::<PaddedCell<u64>>(), 0);
    }

    #[test]
    fn region_layout_overflow_is_caught() {
        // 2^31 cells of 64 bytes = 2^37 bytes: fine on 64-bit, but the
        // arithmetic is checked, so a hypothetical overflow returns None
        // rather than wrapping. Exercise the biggest legal exponent.
        assert!(region_layout::<u64, PaddedCell<u64>>(31).is_some());
        assert!(region_layout::<[u64; 512], PaddedCell<[u64; 512]>>(31).is_some());
    }

    #[test]
    fn discriminants_cover_the_shipped_types() {
        use ffq::cell::CellSlot;
        use ffq::layout::{IndexMap, LinearMap, RotateMap};
        assert_eq!(
            cell_discriminant(<PaddedCell<u64> as CellSlot<u64>>::NAME),
            Some(1)
        );
        assert_eq!(
            cell_discriminant(<CompactCell<u64> as CellSlot<u64>>::NAME),
            Some(2)
        );
        assert_eq!(map_discriminant(<LinearMap as IndexMap>::NAME), Some(1));
        assert_eq!(map_discriminant(<RotateMap as IndexMap>::NAME), Some(2));
        assert_eq!(cell_discriminant("other"), None);
        assert_eq!(map_discriminant("other"), None);
    }
}
