//! Error types for shared-memory queue setup and operation.
//!
//! Setup (create/format/attach) fails with the broad [`ShmError`]; steady-
//! state queue operations use the narrow [`ShmDequeueError`] /
//! [`ShmTryDequeueError`] / [`Poisoned`] types so hot-path match arms stay
//! small. Everything is `PartialEq` so tests can assert on exact variants.

use std::fmt;

use ffq::CapacityError;

/// The queue was poisoned: a peer process died mid-operation (detected by
/// the pid/heartbeat probe) or a handle poisoned it explicitly.
///
/// Poisoning is sticky — once observed, the queue never becomes usable
/// again; tear the region down and build a new one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Poisoned;

impl fmt::Display for Poisoned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("shared-memory queue poisoned (a peer process died mid-operation)")
    }
}

impl std::error::Error for Poisoned {}

/// Why a non-blocking dequeue on a shared-memory queue returned no item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmTryDequeueError {
    /// No item is ready; one may arrive later.
    Empty,
    /// The producer detached cleanly and everything published has been
    /// consumed.
    Disconnected,
    /// The queue is poisoned; no further item will ever arrive.
    Poisoned,
}

impl fmt::Display for ShmTryDequeueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => f.write_str("shared-memory queue empty"),
            Self::Disconnected => f.write_str("producer disconnected and queue drained"),
            Self::Poisoned => Poisoned.fmt(f),
        }
    }
}

impl std::error::Error for ShmTryDequeueError {}

/// Why a blocking dequeue on a shared-memory queue gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmDequeueError {
    /// The producer detached cleanly and everything published has been
    /// consumed.
    Disconnected,
    /// The queue is poisoned; no further item will ever arrive.
    Poisoned,
}

impl fmt::Display for ShmDequeueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Disconnected => f.write_str("producer disconnected and queue drained"),
            Self::Poisoned => Poisoned.fmt(f),
        }
    }
}

impl std::error::Error for ShmDequeueError {}

/// Why a non-blocking receive on a shared-memory broadcast queue returned
/// no item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmBroadcastTryRecvError {
    /// Nothing new is published; an item may arrive later.
    Empty,
    /// The subscriber fell more than one ring behind: the producer
    /// overwrote this many items before they could be observed. The
    /// subscriber is resynced to the oldest retained item; the next
    /// receive resumes there.
    Lagged(u64),
    /// The sender detached cleanly and everything published has been
    /// observed.
    Closed,
    /// The queue is poisoned; no further item will ever arrive.
    Poisoned,
}

impl fmt::Display for ShmBroadcastTryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => f.write_str("shared-memory broadcast stream has nothing new"),
            Self::Lagged(n) => write!(f, "subscriber lagged: {n} items overwritten"),
            Self::Closed => f.write_str("sender disconnected and stream fully observed"),
            Self::Poisoned => Poisoned.fmt(f),
        }
    }
}

impl std::error::Error for ShmBroadcastTryRecvError {}

/// Why a blocking receive on a shared-memory broadcast queue gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmBroadcastRecvError {
    /// The subscriber fell more than one ring behind; see
    /// [`ShmBroadcastTryRecvError::Lagged`].
    Lagged(u64),
    /// The sender detached cleanly and everything published has been
    /// observed.
    Closed,
    /// The queue is poisoned; no further item will ever arrive.
    Poisoned,
}

impl fmt::Display for ShmBroadcastRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lagged(n) => write!(f, "subscriber lagged: {n} items overwritten"),
            Self::Closed => f.write_str("sender disconnected and stream fully observed"),
            Self::Poisoned => Poisoned.fmt(f),
        }
    }
}

impl std::error::Error for ShmBroadcastRecvError {}

/// Why a blocking zero-copy reservation on a shared-memory bytes queue
/// gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmReserveError {
    /// No reservation on this queue can ever satisfy the requested length
    /// (shared-memory bytes queues never truncate — size the slot buffers
    /// for the largest payload instead).
    TooLarge {
        /// The requested payload length.
        len: usize,
        /// The largest length this queue can satisfy.
        max: usize,
    },
    /// The queue is poisoned; nothing can be published anymore.
    Poisoned,
}

impl fmt::Display for ShmReserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds queue maximum of {max}")
            }
            Self::Poisoned => Poisoned.fmt(f),
        }
    }
}

impl std::error::Error for ShmReserveError {}

/// Errors from creating, formatting or attaching to a shared-memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmError {
    /// An OS call failed; `op` names it, `errno` is the raw error code.
    Os {
        /// The OS call that failed (`"shm_open"`, `"mmap"`, ...).
        op: &'static str,
        /// The raw `errno` value.
        errno: i32,
    },
    /// The shared-memory object name is empty or contains `/` or NUL beyond
    /// the optional leading slash.
    InvalidName,
    /// The requested capacity failed [`ffq::normalize_capacity`], or the
    /// resulting region size overflows `usize`.
    Capacity(CapacityError),
    /// The region is smaller than the queue needs.
    RegionTooSmall {
        /// Bytes the queue layout requires.
        required: usize,
        /// Bytes the region actually has.
        actual: usize,
    },
    /// `format` was called on a region some process already began
    /// formatting (the lifecycle word was not `RAW`).
    AlreadyFormatted,
    /// The region did not become `READY` within the attach timeout — the
    /// creator is slow, died mid-format, or this is not a queue region.
    NotReady,
    /// The region is `READY` but its magic number is wrong: not an ffq-shm
    /// region, or one mapped at the wrong offset.
    BadMagic {
        /// The magic number this crate writes ([`crate::header::MAGIC`]).
        expected: u64,
        /// The value found where the magic number should be.
        found: u64,
    },
    /// The region was formatted by an incompatible ffq-shm version (e.g. a
    /// v3 binary refusing a v4 broadcast region whose cells it would
    /// misread as ranks).
    BadVersion {
        /// The version this binary speaks ([`crate::header::VERSION`]).
        supported: u32,
        /// The version number found in the header.
        found: u32,
    },
    /// The header's queue configuration is self-inconsistent (bad
    /// discriminant, reserved bits set, impossible geometry).
    BadConfig {
        /// Which configuration field failed validation.
        field: &'static str,
    },
    /// The header decodes fine but describes a different queue than the one
    /// this attach asked for (element type, cell layout, index map, variant
    /// or offsets disagree).
    ConfigMismatch {
        /// Which configuration field disagrees.
        field: &'static str,
        /// The value the attaching handle's type parameters predict.
        expected: u64,
        /// The value the header actually carries.
        found: u64,
    },
    /// Another live process already holds the producer side.
    ProducerAttached,
    /// All consumer attach slots are taken.
    SlotsFull,
    /// The queue is poisoned; attaching to it is refused.
    Poisoned,
}

impl fmt::Display for ShmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Os { op, errno } => {
                write!(
                    f,
                    "{op} failed: {}",
                    std::io::Error::from_raw_os_error(*errno)
                )
            }
            Self::InvalidName => f.write_str(
                "invalid shared-memory name (must be non-empty, no '/' beyond a leading one)",
            ),
            Self::Capacity(e) => e.fmt(f),
            Self::RegionTooSmall { required, actual } => {
                write!(f, "region too small: need {required} bytes, have {actual}")
            }
            Self::AlreadyFormatted => f.write_str("region already formatted by another process"),
            Self::NotReady => f.write_str("region did not become ready within the attach timeout"),
            Self::BadMagic { expected, found } => {
                write!(
                    f,
                    "not an ffq-shm region: bad magic (expected {expected:#018x}, found {found:#018x})"
                )
            }
            Self::BadVersion { supported, found } => {
                write!(
                    f,
                    "unsupported ffq-shm region version (this binary speaks v{supported}, region is v{found})"
                )
            }
            Self::BadConfig { field } => write!(f, "corrupt region config: bad {field}"),
            Self::ConfigMismatch {
                field,
                expected,
                found,
            } => {
                write!(
                    f,
                    "region holds a different queue: {field} mismatch (expected {expected}, found {found})"
                )
            }
            Self::ProducerAttached => {
                f.write_str("another process already holds the producer side")
            }
            Self::SlotsFull => f.write_str("all consumer attach slots are taken"),
            Self::Poisoned => Poisoned.fmt(f),
        }
    }
}

impl std::error::Error for ShmError {}

impl From<CapacityError> for ShmError {
    fn from(e: CapacityError) -> Self {
        Self::Capacity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Version-negotiation refusals are operator-facing (they end up in C
    /// clients' logs verbatim via `ffq_last_error_message`), so the exact
    /// wording — including both the expected and the found value — is
    /// pinned here.
    #[test]
    fn negotiation_errors_carry_expected_and_found() {
        assert_eq!(
            ShmError::BadMagic {
                expected: u64::from_le_bytes(*b"FFQSHM01"),
                found: 0xDEAD_BEEF,
            }
            .to_string(),
            "not an ffq-shm region: bad magic \
             (expected 0x31304d4853514646, found 0x00000000deadbeef)"
        );
        assert_eq!(
            ShmError::BadVersion {
                supported: 4,
                found: 3,
            }
            .to_string(),
            "unsupported ffq-shm region version (this binary speaks v4, region is v3)"
        );
        assert_eq!(
            ShmError::ConfigMismatch {
                field: "capacity",
                expected: 1024,
                found: 4096,
            }
            .to_string(),
            "region holds a different queue: capacity mismatch (expected 1024, found 4096)"
        );
    }
}
