//! Shared-memory queue handles: format, attach, and dead-peer detection.
//!
//! The heavy lifting is `ffq`'s [`raw`](ffq::raw) layer — the types here
//! add what a *cross-process* queue needs on top of the protocol itself:
//!
//! * the format/attach handshake over the [`RegionHeader`]
//!   (see [`crate::header`]);
//! * configuration validation, so an attach with the wrong element type,
//!   cell layout, index map or variant is refused instead of corrupting
//!   memory;
//! * liveness: every handle registers its pid in a header slot, the
//!   producer heartbeats as it publishes, and blocked peers escalate a
//!   stalled heartbeat to a `kill(pid, 0)` probe. A peer that vanished
//!   without detaching **poisons** the queue, so nobody hangs on ranks that
//!   will never be published.
//!
//! Ranks and gap announcements need no fixup across address spaces: both
//! are plain integers relative to the queue's own counters, and the cell a
//! rank lives in is recomputed from `rank & (N-1)` on each side — the
//! region contains no pointer anywhere.

use core::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use ffq::cell::{CellSlot, PaddedCell};
use ffq::error::{Full, TryDequeueError};
use ffq::layout::{IndexMap, LinearMap};
use ffq::raw::{QueueState, RawConsumer, RawProducer, RawQueue, RawSpscConsumer, ShmSafe};
use ffq::stats::{ConsumerStats, ProducerStats};

use crate::error::{Poisoned, ShmDequeueError, ShmError, ShmTryDequeueError};
use crate::header::{
    cell_discriminant, map_discriminant, region_layout, QueueConfig, RegionHeader, RegionLayout,
    VARIANT_SPMC, VARIANT_SPSC,
};
use crate::region::ShmRegion;

/// How long a blocked handle waits (spinning, then parked on the queue's
/// process-shared futex) between liveness probes. A blocked peer burns no
/// CPU inside a slice, and a dead or poisoning peer is noticed within one
/// slice — the bound on how long a parked process can hang on ranks that
/// will never be published.
const BLOCK_SLICE: Duration = Duration::from_millis(10);

/// How long an attach waits for the creator to finish formatting.
const ATTACH_TIMEOUT: Duration = Duration::from_secs(5);

/// The wait config every shm handle attaches with: adaptive, plus the
/// [`WaitConfig::max_park`](ffq::WaitConfig) watchdog armed at one
/// [`BLOCK_SLICE`]. In-process queues park unboundedly — the eventcount
/// makes that safe — but a cross-process peer can die between publishing
/// and notifying without running any poisoning code, so a shm park must
/// never outlive a liveness-probe slice even on a code path that forgot
/// to pass a deadline.
fn shm_wait_config() -> ffq::WaitConfig {
    ffq::WaitConfig::adaptive().with_max_park(BLOCK_SLICE)
}

fn process_id() -> i64 {
    // SAFETY: getpid is always safe.
    i64::from(unsafe { libc::getpid() })
}

/// `kill(pid, 0)` liveness probe: delivery permission errors still prove
/// the process exists; only `ESRCH` (or an impossible pid) means gone.
fn pid_alive(pid: i64) -> bool {
    let Ok(pid) = libc::pid_t::try_from(pid) else {
        return false;
    };
    // SAFETY: signal 0 performs error checking only; no signal is sent.
    if unsafe { libc::kill(pid, 0) } == 0 {
        return true;
    }
    std::io::Error::last_os_error().raw_os_error() == Some(libc::EPERM)
}

/// The region's header view. Callers must have bounds-checked the region
/// against `size_of::<RegionHeader>()` (every public path below does).
fn header_of(region: &ShmRegion) -> &RegionHeader {
    debug_assert!(region.len() >= core::mem::size_of::<RegionHeader>());
    // SAFETY: the mapping is page-aligned (mmap), lives as long as the
    // borrow (the region handle keeps it mapped), and is at least
    // header-sized per the callers' validation. All header fields are
    // atomics, so concurrent access from other processes is defined.
    unsafe { &*(region.as_ptr() as *const RegionHeader) }
}

/// Builds the raw queue view over a validated region.
///
/// # Safety
///
/// `layout` must have been validated against `region.len()` and the state
/// and cells at those offsets must be initialized (lifecycle `READY`, or
/// this process is the formatter past its `ptr::write`s).
unsafe fn queue_view<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
    region: &ShmRegion,
    layout: &RegionLayout,
) -> RawQueue<T, C, M> {
    let base = region.as_ptr();
    // SAFETY: offsets in bounds per caller; alignment by region_layout
    // construction (mmap base is page-aligned).
    unsafe {
        let state = base.add(layout.state_offset) as *const QueueState;
        let cells = base.add(layout.cells_offset) as *const C;
        RawQueue::from_raw(state, cells)
    }
}

fn discriminants_for<T: ShmSafe, C: CellSlot<T>, M: IndexMap>() -> Result<(u8, u8), ShmError> {
    let cell = cell_discriminant(C::NAME).ok_or(ShmError::BadConfig {
        field: "cell layout",
    })?;
    let map = map_discriminant(M::NAME).ok_or(ShmError::BadConfig { field: "index map" })?;
    Ok((cell, map))
}

/// Formats `region` as a queue of at least `capacity` cells: wins the
/// lifecycle claim, writes state and cells, publishes `READY`.
fn format_impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
    region: &ShmRegion,
    capacity: usize,
    variant: u8,
) -> Result<(), ShmError> {
    let cap_log2 = ffq::normalize_capacity(capacity)?;
    let layout = region_layout::<T, C>(cap_log2).ok_or(ShmError::Capacity(
        ffq::CapacityError::TooLarge {
            requested: capacity,
        },
    ))?;
    if region.len() < layout.total_len {
        return Err(ShmError::RegionTooSmall {
            required: layout.total_len,
            actual: region.len(),
        });
    }
    let elem_size = u32::try_from(core::mem::size_of::<T>()).map_err(|_| ShmError::BadConfig {
        field: "element size",
    })?;
    let (cell_layout, index_map) = discriminants_for::<T, C, M>()?;

    let header = header_of(region);
    header.begin_init()?;
    // We won the RAW -> INITIALIZING race: the region is exclusively ours
    // until we publish READY.
    // SAFETY: offsets are in bounds (checked above) and correctly aligned
    // (region_layout); nobody else references these bytes yet.
    unsafe {
        let base = region.as_ptr();
        let state = base.add(layout.state_offset) as *mut QueueState;
        // producers starts at 1: the count is pre-reserved for the (sole)
        // producer so consumers that attach first do not misread an
        // untaken producer slot as a disconnect. Shared-wait mode makes
        // the eventcount futexes process-shared (no FUTEX_PRIVATE_FLAG),
        // so parks and wakes work across address spaces.
        state.write(QueueState::new(cap_log2, 1, 0).with_shared_wait());
        let cells = base.add(layout.cells_offset) as *mut C;
        for i in 0..(1usize << cap_log2) {
            cells.add(i).write(C::empty());
        }
    }
    header.publish_ready(
        &QueueConfig {
            variant,
            cell_layout,
            index_map,
            cap_log2,
            elem_size,
            elem_align: core::mem::align_of::<T>() as u32,
            state_offset: layout.state_offset as u32,
            cells_offset: layout.cells_offset as u32,
            region_len: layout.total_len as u64,
        },
        process_id(),
    );
    Ok(())
}

/// Waits for `READY`, then validates that the region holds exactly the
/// queue `<T, C, M, variant>` describes. Returns the validated layout.
fn validate_attach<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
    region: &ShmRegion,
    variant: u8,
) -> Result<RegionLayout, ShmError> {
    if region.len() < core::mem::size_of::<RegionHeader>() {
        return Err(ShmError::RegionTooSmall {
            required: core::mem::size_of::<RegionHeader>(),
            actual: region.len(),
        });
    }
    let header = header_of(region);
    header.wait_ready(ATTACH_TIMEOUT)?;
    let cfg = QueueConfig::decode(header.config_words())?;
    let mismatch = |field| Err(ShmError::ConfigMismatch { field });
    if cfg.variant != variant {
        return mismatch("variant");
    }
    let (cell_layout, index_map) = discriminants_for::<T, C, M>()?;
    if cfg.cell_layout != cell_layout {
        return mismatch("cell layout");
    }
    if cfg.index_map != index_map {
        return mismatch("index map");
    }
    if u64::from(cfg.elem_size) != core::mem::size_of::<T>() as u64 {
        return mismatch("element size");
    }
    if u64::from(cfg.elem_align) != core::mem::align_of::<T>() as u64 {
        return mismatch("element alignment");
    }
    let layout = region_layout::<T, C>(cfg.cap_log2).ok_or(ShmError::BadConfig {
        field: "capacity exponent",
    })?;
    if cfg.state_offset as usize != layout.state_offset
        || cfg.cells_offset as usize != layout.cells_offset
        || cfg.region_len != layout.total_len as u64
    {
        return mismatch("layout offsets");
    }
    if region.len() < layout.total_len {
        return Err(ShmError::RegionTooSmall {
            required: layout.total_len,
            actual: region.len(),
        });
    }
    Ok(layout)
}

fn attach_producer_impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
    region: ShmRegion,
    variant: u8,
) -> Result<ShmProducer<T, C, M>, ShmError> {
    let layout = validate_attach::<T, C, M>(&region, variant)?;
    let header = header_of(&region);
    if header.is_poisoned() {
        return Err(ShmError::Poisoned);
    }
    if !header.producer_slot().try_claim(process_id()) {
        return Err(ShmError::ProducerAttached);
    }
    // SAFETY: layout validated against the READY region.
    let q = unsafe { queue_view::<T, C, M>(&region, &layout) };
    // Winning the slot makes us the sole producer; re-arm the count a
    // previous producer's clean detach may have dropped to zero.
    q.state().producers().store(1, Ordering::Release);
    let heartbeat = header.producer_slot().heartbeat();
    // SAFETY: unique producer (slot claim), view valid while `region` is
    // held by the returned handle.
    let mut raw = unsafe { RawProducer::attach(q) };
    raw.set_wait_config(shm_wait_config());
    // SPMC regions can have several parked consumers, each owning specific
    // pending ranks: publish wakes must broadcast so one cannot land on the
    // wrong consumer and leave the rank's owner sleeping (see
    // `RawProducer::set_multi_consumer`).
    raw.set_multi_consumer(variant == crate::header::VARIANT_SPMC);
    Ok(ShmProducer {
        raw,
        region,
        heartbeat,
    })
}

/// The producer side of a shared-memory queue (SPSC and SPMC — the
/// single-producer engine is identical; the variant only gates who may
/// attach on the other side).
///
/// Created by [`spsc::create`]/[`spmc::create`] (format + attach) or
/// [`spsc::attach_producer`]/[`spmc::attach_producer`] on an existing
/// region. Dropping the handle detaches cleanly: consumers drain whatever
/// was published, then observe `Disconnected`.
pub struct ShmProducer<T: ShmSafe, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    raw: RawProducer<T, C, M>,
    region: ShmRegion,
    heartbeat: u64,
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> ShmProducer<T, C, M> {
    fn header(&self) -> &RegionHeader {
        header_of(&self.region)
    }

    fn bump_heartbeat(&mut self) {
        self.heartbeat += 1;
        self.header()
            .producer_slot()
            .store_heartbeat(self.heartbeat);
    }

    /// `true` while at least one registered consumer process is alive. No
    /// consumer *yet* (all slots untouched) also counts as alive — a
    /// producer may legitimately publish before anyone attaches.
    fn consumers_look_dead(&self) -> bool {
        let header = self.header();
        let mut saw_attached = false;
        for i in 0..crate::header::MAX_CONSUMERS {
            let pid = header.consumer_slot(i).pid();
            if pid > 0 {
                saw_attached = true;
                if pid_alive(pid) {
                    return false;
                }
            }
        }
        saw_attached
    }

    /// Enqueues `value`, blocking while the queue is full. The wait is
    /// adaptive: a short spin, then bounded parks on the queue's
    /// process-shared not-full futex, so a blocked producer burns no CPU.
    ///
    /// Between park slices it keeps its heartbeat fresh and probes the
    /// consumer side: if every registered consumer is dead it poisons the
    /// queue and returns [`Poisoned`] instead of waiting on cells that
    /// will never be freed.
    pub fn enqueue(&mut self, value: T) -> Result<(), Poisoned> {
        let mut value = value;
        loop {
            match self.raw.enqueue_timeout(value, BLOCK_SLICE) {
                Ok(()) => {
                    self.bump_heartbeat();
                    return Ok(());
                }
                Err(Full(v)) => {
                    value = v;
                    // Stay visibly alive to consumers while blocked.
                    self.bump_heartbeat();
                    if self.header().is_poisoned() {
                        return Err(Poisoned);
                    }
                    if self.consumers_look_dead() {
                        self.poison();
                        return Err(Poisoned);
                    }
                }
            }
        }
    }

    /// Replaces the wait policy used while blocked on a full queue; see
    /// [`ffq::WaitConfig`].
    pub fn set_wait_config(&mut self, cfg: ffq::WaitConfig) {
        self.raw.set_wait_config(cfg);
    }

    /// Attempts to enqueue without blocking; hands the value back if the
    /// queue looks full (see [`ffq::spmc::Producer::try_enqueue`] for the
    /// rank-consumption caveat). Check [`is_poisoned`](Self::is_poisoned)
    /// separately if fullness persists.
    pub fn try_enqueue(&mut self, value: T) -> Result<(), Full<T>> {
        let r = self.raw.try_enqueue(value);
        if r.is_ok() {
            self.bump_heartbeat();
        }
        r
    }

    /// Enqueues every item of `iter` on the batched release-pass path;
    /// returns the count. Blocks while full (without a dead-peer probe —
    /// size the queue by the flow-control rule so it cannot fill, as
    /// [`ffq_enclave::queue_capacity`] does).
    ///
    /// [`ffq_enclave::queue_capacity`]:
    ///     https://docs.rs/ffq-enclave "ffq-enclave's sizing rule"
    pub fn enqueue_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        let n = self.raw.enqueue_many(iter);
        if n > 0 {
            self.bump_heartbeat();
        }
        n
    }

    /// Capacity of the shared cell array.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Approximate number of items currently enqueued.
    pub fn len_hint(&self) -> usize {
        self.raw.len_hint()
    }

    /// Number of live consumer handles (attached across all processes).
    pub fn consumers(&self) -> usize {
        self.raw.consumers()
    }

    /// `true` once the queue is poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.header().is_poisoned()
    }

    /// Explicitly poisons the queue: every blocked or future operation on
    /// any attached handle errors out. Irreversible.
    pub fn poison(&self) {
        self.header().poison();
        // Kick every parked peer so the poison is observed now, not at
        // the end of a bounded park.
        self.raw.queue().state().wake_all();
    }

    /// Snapshot of this producer's counters.
    pub fn stats(&self) -> ProducerStats {
        self.raw.stats()
    }
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> Drop for ShmProducer<T, C, M> {
    fn drop(&mut self) {
        // Clean detach: drop the producer count (consumers see
        // `Disconnected` once drained), then vacate the slot so the count
        // zeroing is never mistaken for a crash. Wake parked consumers so
        // they observe the disconnect promptly.
        let state = self.raw.queue().state();
        state.producers().fetch_sub(1, Ordering::Release);
        state.wake_all();
        self.header().producer_slot().release();
    }
}

/// Consumer-side liveness state shared by both consumer handle types.
struct PeerWatch {
    slot: usize,
    last_producer_hb: u64,
}

impl PeerWatch {
    /// Called once per expired [`BLOCK_SLICE`] while blocked empty;
    /// returns `true` when the queue is (now) poisoned. Slices are tens of
    /// milliseconds apart, so probing on every call is free.
    fn empty_tick(&mut self, header: &RegionHeader) -> bool {
        if header.is_poisoned() {
            return true;
        }
        let slot = header.producer_slot();
        let hb = slot.heartbeat();
        if hb != self.last_producer_hb {
            // Progress since the last probe: definitely alive.
            self.last_producer_hb = hb;
            return false;
        }
        let pid = slot.pid();
        if pid <= 0 || pid_alive(pid) {
            // Not attached / detached cleanly (the disconnect path covers
            // those), or alive but idle.
            return false;
        }
        // Stalled heartbeat and the pid is gone: the producer crashed.
        // Poison so every consumer (including ones blocked on ranks the
        // dead producer claimed but never published) wakes with an error.
        header.poison();
        true
    }
}

fn attach_consumer_common<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
    region: &ShmRegion,
    variant: u8,
    spsc: bool,
) -> Result<(RawQueue<T, C, M>, PeerWatch), ShmError> {
    let layout = validate_attach::<T, C, M>(region, variant)?;
    let header = header_of(region);
    if header.is_poisoned() {
        return Err(ShmError::Poisoned);
    }
    let pid = process_id();
    let slot = if spsc {
        // The SPSC contract allows exactly one consumer: slot 0 or bust.
        if !header.consumer_slot(0).try_claim(pid) {
            return Err(ShmError::SlotsFull);
        }
        0
    } else {
        header.claim_consumer_slot(pid).ok_or(ShmError::SlotsFull)?
    };
    // SAFETY: layout validated against the READY region.
    let q = unsafe { queue_view::<T, C, M>(region, &layout) };
    q.state().consumers().fetch_add(1, Ordering::AcqRel);
    let watch = PeerWatch {
        slot,
        last_producer_hb: header.producer_slot().heartbeat(),
    };
    Ok((q, watch))
}

fn consumer_detach(state: &QueueState, header: &RegionHeader, slot: usize) {
    state.consumers().fetch_sub(1, Ordering::AcqRel);
    header.consumer_slot(slot).release();
}

macro_rules! consumer_common_impl {
    () => {
        fn header(&self) -> &RegionHeader {
            header_of(&self.region)
        }

        /// Attempts to dequeue one item without blocking.
        pub fn try_dequeue(&mut self) -> Result<T, ShmTryDequeueError> {
            match self.raw.try_dequeue() {
                Ok(v) => Ok(v),
                Err(TryDequeueError::Disconnected) => Err(ShmTryDequeueError::Disconnected),
                Err(TryDequeueError::Empty) => Err(if self.header().is_poisoned() {
                    ShmTryDequeueError::Poisoned
                } else {
                    ShmTryDequeueError::Empty
                }),
            }
        }

        /// Dequeues one item, waiting — spinning, then parked on the
        /// queue's process-shared not-empty futex — while the queue is
        /// empty. A blocked consumer burns no CPU between wakes.
        ///
        /// Between park slices it probes the producer: a stalled
        /// heartbeat whose pid no longer exists poisons the queue and
        /// returns [`ShmDequeueError::Poisoned`] — bounded by the slice
        /// length, a crashed producer never leaves parked consumers
        /// hanging.
        pub fn dequeue(&mut self) -> Result<T, ShmDequeueError> {
            loop {
                match self.raw.dequeue_timeout(BLOCK_SLICE) {
                    Ok(v) => return Ok(v),
                    Err(TryDequeueError::Disconnected) => {
                        return Err(ShmDequeueError::Disconnected)
                    }
                    Err(TryDequeueError::Empty) => {
                        if self.watch.empty_tick(header_of(&self.region)) {
                            // Wake fellow parked consumers onto the
                            // poison we just observed (or published).
                            self.raw.queue().state().wake_all();
                            return Err(ShmDequeueError::Poisoned);
                        }
                    }
                }
            }
        }

        /// Dequeues one item, giving up with
        /// [`ShmTryDequeueError::Empty`] after `timeout`. Runs the same
        /// liveness probes as [`dequeue`](Self::dequeue).
        pub fn dequeue_timeout(&mut self, timeout: Duration) -> Result<T, ShmTryDequeueError> {
            let deadline = Instant::now() + timeout;
            loop {
                let now = Instant::now();
                let slice = if now >= deadline {
                    Duration::ZERO
                } else {
                    BLOCK_SLICE.min(deadline - now)
                };
                match self.raw.dequeue_timeout(slice) {
                    Ok(v) => return Ok(v),
                    Err(TryDequeueError::Disconnected) => {
                        return Err(ShmTryDequeueError::Disconnected)
                    }
                    Err(TryDequeueError::Empty) => {
                        if self.watch.empty_tick(header_of(&self.region)) {
                            self.raw.queue().state().wake_all();
                            return Err(ShmTryDequeueError::Poisoned);
                        }
                        if Instant::now() >= deadline {
                            return Err(ShmTryDequeueError::Empty);
                        }
                    }
                }
            }
        }

        /// Replaces the wait policy used inside blocked slices; see
        /// [`ffq::WaitConfig`].
        pub fn set_wait_config(&mut self, cfg: ffq::WaitConfig) {
            self.raw.set_wait_config(cfg);
        }

        /// Harvests up to `max` ready items into `buf` without blocking;
        /// returns the count.
        pub fn dequeue_batch(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
            self.raw.dequeue_batch(buf, max)
        }

        /// Capacity of the shared cell array.
        pub fn capacity(&self) -> usize {
            self.raw.capacity()
        }

        /// Approximate number of items currently enqueued.
        pub fn len_hint(&self) -> usize {
            self.raw.len_hint()
        }

        /// `true` once the queue is poisoned.
        pub fn is_poisoned(&self) -> bool {
            self.header().is_poisoned()
        }

        /// Explicitly poisons the queue for every attached handle.
        pub fn poison(&self) {
            self.header().poison();
            // Kick every parked peer so the poison is observed now, not
            // at the end of a bounded park.
            self.raw.queue().state().wake_all();
        }

        /// Snapshot of this consumer's counters.
        pub fn stats(&self) -> ConsumerStats {
            self.raw.stats()
        }
    };
}

/// A shared-head consumer on a shared-memory SPMC queue. Attach up to
/// [`MAX_CONSUMERS`](crate::header::MAX_CONSUMERS) of these, from any mix
/// of processes and threads.
pub struct ShmSpmcConsumer<T: ShmSafe, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    raw: RawConsumer<T, C, M, false>,
    region: ShmRegion,
    watch: PeerWatch,
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> ShmSpmcConsumer<T, C, M> {
    consumer_common_impl!();

    /// Number of ranks this handle has claimed but not yet resolved.
    pub fn pending_ranks(&self) -> usize {
        self.raw.pending_ranks()
    }
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> Drop for ShmSpmcConsumer<T, C, M> {
    fn drop(&mut self) {
        // Return published-but-pending cells to circulation, then detach.
        self.raw.recover_pending();
        consumer_detach(self.raw.queue().state(), self.header(), self.watch.slot);
    }
}

/// The unique consumer of a shared-memory SPSC queue (private head — no
/// shared-counter RMW on dequeue).
pub struct ShmSpscConsumer<T: ShmSafe, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    raw: RawSpscConsumer<T, C, M>,
    region: ShmRegion,
    watch: PeerWatch,
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> ShmSpscConsumer<T, C, M> {
    consumer_common_impl!();
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> Drop for ShmSpscConsumer<T, C, M> {
    fn drop(&mut self) {
        consumer_detach(self.raw.queue().state(), self.header(), self.watch.slot);
    }
}

macro_rules! variant_module {
    ($variant:expr) => {
        /// Bytes a region must have for a queue of at least `capacity`
        /// elements of `T` (after power-of-two rounding) in the default
        /// cell layout. Pass the result to [`ShmRegion::create`] /
        /// [`ShmRegion::create_memfd`](crate::region::ShmRegion::create_memfd).
        pub fn required_size<T: ShmSafe>(capacity: usize) -> Result<usize, ShmError> {
            required_size_with::<T, PaddedCell<T>>(capacity)
        }

        /// [`required_size`] for an explicit cell layout.
        pub fn required_size_with<T: ShmSafe, C: CellSlot<T>>(
            capacity: usize,
        ) -> Result<usize, ShmError> {
            let cap_log2 = ffq::normalize_capacity(capacity)?;
            region_layout::<T, C>(cap_log2)
                .map(|l| l.total_len)
                .ok_or(ShmError::Capacity(ffq::CapacityError::TooLarge {
                    requested: capacity,
                }))
        }

        /// Formats `region` as this variant's queue *without* attaching —
        /// for an owner process that only brokers the region. Exactly one
        /// process may format a region, ever.
        pub fn format<T: ShmSafe>(region: &ShmRegion, capacity: usize) -> Result<(), ShmError> {
            format_with::<T, PaddedCell<T>, LinearMap>(region, capacity)
        }

        /// [`format`] with explicit cell layout and index map.
        pub fn format_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
            region: &ShmRegion,
            capacity: usize,
        ) -> Result<(), ShmError> {
            format_impl::<T, C, M>(region, capacity, $variant)
        }

        /// Formats `region` and attaches as its producer in one step — the
        /// usual creator path.
        pub fn create<T: ShmSafe>(
            region: ShmRegion,
            capacity: usize,
        ) -> Result<Producer<T>, ShmError> {
            create_with::<T, PaddedCell<T>, LinearMap>(region, capacity)
        }

        /// [`create`] with explicit cell layout and index map.
        pub fn create_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
            region: ShmRegion,
            capacity: usize,
        ) -> Result<Producer<T, C, M>, ShmError> {
            format_with::<T, C, M>(&region, capacity)?;
            attach_producer_with::<T, C, M>(region)
        }

        /// Attaches as the producer of an already-formatted region (waits
        /// for `READY`). Fails with [`ShmError::ProducerAttached`] while
        /// another live handle holds the producer side; succeeds again
        /// after a clean detach, resuming from the mirrored tail.
        pub fn attach_producer<T: ShmSafe>(region: ShmRegion) -> Result<Producer<T>, ShmError> {
            attach_producer_with::<T, PaddedCell<T>, LinearMap>(region)
        }

        /// [`attach_producer`] with explicit cell layout and index map.
        pub fn attach_producer_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
            region: ShmRegion,
        ) -> Result<Producer<T, C, M>, ShmError> {
            attach_producer_impl::<T, C, M>(region, $variant)
        }
    };
}

/// Single-producer/single-consumer queues in shared memory.
pub mod spsc {
    use super::*;

    /// The producer handle ([`ShmProducer`] — shared with [`spmc`](super::spmc)).
    pub use super::ShmProducer as Producer;
    /// The consumer handle.
    pub use super::ShmSpscConsumer as Consumer;

    variant_module!(VARIANT_SPSC);

    /// Attaches the unique consumer of an already-formatted SPSC region
    /// (waits for `READY`). A second live consumer is refused with
    /// [`ShmError::SlotsFull`].
    pub fn attach_consumer<T: ShmSafe>(region: ShmRegion) -> Result<Consumer<T>, ShmError> {
        attach_consumer_with::<T, PaddedCell<T>, LinearMap>(region)
    }

    /// [`attach_consumer`] with explicit cell layout and index map.
    pub fn attach_consumer_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
        region: ShmRegion,
    ) -> Result<Consumer<T, C, M>, ShmError> {
        let (q, watch) = attach_consumer_common::<T, C, M>(&region, VARIANT_SPSC, true)?;
        // SAFETY: validated READY region; consumer uniqueness enforced by
        // the exclusive claim on header slot 0.
        let mut raw = unsafe { RawSpscConsumer::attach(q) };
        raw.set_wait_config(shm_wait_config());
        Ok(Consumer { raw, region, watch })
    }
}

/// Single-producer/multiple-consumer queues in shared memory — the paper's
/// headline variant, across processes.
pub mod spmc {
    use super::*;

    /// The producer handle ([`ShmProducer`] — shared with [`spsc`](super::spsc)).
    pub use super::ShmProducer as Producer;
    /// The consumer handle.
    pub use super::ShmSpmcConsumer as Consumer;

    variant_module!(VARIANT_SPMC);

    /// Attaches a consumer to an already-formatted SPMC region (waits for
    /// `READY`). Up to [`MAX_CONSUMERS`](crate::header::MAX_CONSUMERS) may
    /// be attached at once, from any mix of processes and threads.
    pub fn attach_consumer<T: ShmSafe>(region: ShmRegion) -> Result<Consumer<T>, ShmError> {
        attach_consumer_with::<T, PaddedCell<T>, LinearMap>(region)
    }

    /// [`attach_consumer`] with explicit cell layout and index map.
    pub fn attach_consumer_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
        region: ShmRegion,
    ) -> Result<Consumer<T, C, M>, ShmError> {
        let (q, watch) = attach_consumer_common::<T, C, M>(&region, VARIANT_SPMC, false)?;
        // SAFETY: validated READY region; shared-head consumers may attach
        // in any number up to the slot limit.
        let mut raw = unsafe { RawConsumer::attach(q) };
        raw.set_wait_config(shm_wait_config());
        Ok(Consumer { raw, region, watch })
    }
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> core::fmt::Debug for ShmProducer<T, C, M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShmProducer")
            .field("capacity", &self.raw.capacity())
            .field("heartbeat", &self.heartbeat)
            .finish_non_exhaustive()
    }
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> core::fmt::Debug for ShmSpmcConsumer<T, C, M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShmSpmcConsumer")
            .field("capacity", &self.raw.capacity())
            .field("slot", &self.watch.slot)
            .finish_non_exhaustive()
    }
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> core::fmt::Debug for ShmSpscConsumer<T, C, M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShmSpscConsumer")
            .field("capacity", &self.raw.capacity())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::MAX_CONSUMERS;
    use std::sync::atomic::{AtomicU64, Ordering as AtOrdering};
    use std::sync::Arc;
    use std::thread;

    fn memfd_for_spsc(capacity: usize) -> ShmRegion {
        ShmRegion::create_memfd(spsc::required_size::<u64>(capacity).unwrap()).unwrap()
    }

    #[test]
    fn handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<spsc::Producer<u64>>();
        assert_send::<spsc::Consumer<u64>>();
        assert_send::<spmc::Consumer<u64>>();
    }

    #[test]
    fn spsc_round_trip_through_a_second_mapping() {
        let region = memfd_for_spsc(256);
        let mut tx = spsc::create::<u64>(region.clone(), 256).unwrap();
        // The consumer maps the same bytes at a different address — the
        // in-process stand-in for a second process.
        let mut rx = spsc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        assert_eq!(tx.capacity(), 256);
        assert_eq!(rx.capacity(), 256);

        let t = thread::spawn(move || {
            let mut next = 0u64;
            loop {
                match rx.dequeue() {
                    Ok(v) => {
                        assert_eq!(v, next, "SPSC must preserve FIFO order");
                        next += 1;
                    }
                    Err(ShmDequeueError::Disconnected) => return next,
                    Err(e) => panic!("unexpected {e:?}"),
                }
            }
        });
        for i in 0..50_000u64 {
            tx.enqueue(i).unwrap();
        }
        drop(tx);
        assert_eq!(t.join().unwrap(), 50_000);
    }

    #[test]
    fn spmc_fan_out_across_mappings() {
        const ITEMS: u64 = 100_000;
        let region = ShmRegion::create_memfd(spmc::required_size::<u64>(1024).unwrap()).unwrap();
        let mut tx = spmc::create::<u64>(region.clone(), 1024).unwrap();

        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let mut rx = spmc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
                let (sum, count) = (Arc::clone(&sum), Arc::clone(&count));
                thread::spawn(move || {
                    let mut last = None;
                    loop {
                        match rx.dequeue() {
                            Ok(v) => {
                                // Per-consumer FIFO: ranks a consumer
                                // receives are increasing.
                                if let Some(prev) = last {
                                    assert!(v > prev, "per-consumer order violated");
                                }
                                last = Some(v);
                                sum.fetch_add(v, AtOrdering::Relaxed);
                                count.fetch_add(1, AtOrdering::Relaxed);
                            }
                            Err(ShmDequeueError::Disconnected) => return,
                            Err(e) => panic!("unexpected {e:?}"),
                        }
                    }
                })
            })
            .collect();

        for i in 0..ITEMS {
            tx.enqueue(i).unwrap();
        }
        drop(tx);
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(count.load(AtOrdering::Relaxed), ITEMS);
        assert_eq!(sum.load(AtOrdering::Relaxed), ITEMS * (ITEMS - 1) / 2);
    }

    #[test]
    fn attach_validates_the_configuration() {
        let region = memfd_for_spsc(64);
        spsc::format::<u64>(&region, 64).unwrap();
        // Wrong variant.
        assert_eq!(
            spmc::attach_consumer::<u64>(region.remap().unwrap()).unwrap_err(),
            ShmError::ConfigMismatch { field: "variant" }
        );
        // Wrong element type (size differs).
        assert_eq!(
            spsc::attach_consumer::<u32>(region.remap().unwrap()).unwrap_err(),
            ShmError::ConfigMismatch {
                field: "element size"
            }
        );
        // Wrong cell layout.
        assert_eq!(
            spsc::attach_consumer_with::<u64, ffq::cell::CompactCell<u64>, LinearMap>(
                region.remap().unwrap()
            )
            .unwrap_err(),
            ShmError::ConfigMismatch {
                field: "cell layout"
            }
        );
        // Wrong index map.
        assert_eq!(
            spsc::attach_consumer_with::<u64, PaddedCell<u64>, ffq::layout::RotateMap>(
                region.remap().unwrap()
            )
            .unwrap_err(),
            ShmError::ConfigMismatch { field: "index map" }
        );
        // Matching attach still works after all those rejections.
        let rx = spsc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        drop(rx);
    }

    #[test]
    fn format_errors() {
        let region = memfd_for_spsc(64);
        assert_eq!(
            spsc::format::<u64>(&region, 0).unwrap_err(),
            ShmError::Capacity(ffq::CapacityError::Zero)
        );
        assert!(matches!(
            spsc::format::<u64>(&region, 1 << 20).unwrap_err(),
            ShmError::RegionTooSmall { .. }
        ));
        spsc::format::<u64>(&region, 64).unwrap();
        assert_eq!(
            spsc::format::<u64>(&region, 64).unwrap_err(),
            ShmError::AlreadyFormatted
        );
    }

    #[test]
    fn producer_side_is_exclusive_but_reattachable() {
        let region = memfd_for_spsc(64);
        let mut tx = spsc::create::<u64>(region.clone(), 64).unwrap();
        tx.enqueue(1).unwrap();
        tx.enqueue(2).unwrap();
        assert_eq!(
            spsc::attach_producer::<u64>(region.remap().unwrap()).unwrap_err(),
            ShmError::ProducerAttached
        );
        drop(tx);
        // Clean detach: a successor resumes from the mirrored tail.
        let mut tx2 = spsc::attach_producer::<u64>(region.remap().unwrap()).unwrap();
        tx2.enqueue(3).unwrap();
        let mut rx = spsc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        assert_eq!(rx.dequeue(), Ok(1));
        assert_eq!(rx.dequeue(), Ok(2));
        assert_eq!(rx.dequeue(), Ok(3));
        drop(tx2);
        assert_eq!(rx.dequeue(), Err(ShmDequeueError::Disconnected));
    }

    #[test]
    fn spsc_allows_exactly_one_consumer() {
        let region = memfd_for_spsc(64);
        spsc::format::<u64>(&region, 64).unwrap();
        let rx = spsc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        assert_eq!(
            spsc::attach_consumer::<u64>(region.remap().unwrap()).unwrap_err(),
            ShmError::SlotsFull
        );
        drop(rx);
        assert!(spsc::attach_consumer::<u64>(region.remap().unwrap()).is_ok());
    }

    #[test]
    fn spmc_consumer_slots_exhaust() {
        let region = ShmRegion::create_memfd(spmc::required_size::<u64>(64).unwrap()).unwrap();
        spmc::format::<u64>(&region, 64).unwrap();
        let held: Vec<_> = (0..MAX_CONSUMERS)
            .map(|_| spmc::attach_consumer::<u64>(region.clone()).unwrap())
            .collect();
        assert_eq!(
            spmc::attach_consumer::<u64>(region.clone()).unwrap_err(),
            ShmError::SlotsFull
        );
        drop(held);
        assert!(spmc::attach_consumer::<u64>(region).is_ok());
    }

    #[test]
    fn explicit_poison_unblocks_a_waiting_consumer() {
        let region = ShmRegion::create_memfd(spmc::required_size::<u64>(64).unwrap()).unwrap();
        let tx = spmc::create::<u64>(region.clone(), 64).unwrap();
        let mut rx = spmc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        let t = thread::spawn(move || rx.dequeue());
        thread::sleep(Duration::from_millis(20));
        tx.poison();
        assert_eq!(t.join().unwrap(), Err(ShmDequeueError::Poisoned));
        assert!(tx.is_poisoned());
        // Attaching to a poisoned queue is refused.
        assert_eq!(
            spmc::attach_consumer::<u64>(region.remap().unwrap()).unwrap_err(),
            ShmError::Poisoned
        );
    }

    #[test]
    fn dead_producer_pid_poisons_the_queue() {
        // Simulate a crashed producer without forking: register a pid that
        // cannot exist (beyond Linux's PID_MAX_LIMIT of 2^22) in the
        // producer slot. The consumer's heartbeat probe finds it stalled,
        // the kill(2) probe reports ESRCH, and the queue poisons.
        let region = ShmRegion::create_memfd(spmc::required_size::<u64>(64).unwrap()).unwrap();
        spmc::format::<u64>(&region, 64).unwrap();
        assert!(header_of(&region).producer_slot().try_claim((1 << 22) + 1));
        let mut rx = spmc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        let start = Instant::now();
        assert_eq!(
            rx.dequeue_timeout(Duration::from_secs(10)),
            Err(ShmTryDequeueError::Poisoned),
            "consumer must observe the crash, not time out"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "crash detection must be bounded"
        );
        assert!(rx.is_poisoned());
    }

    #[test]
    fn try_dequeue_reports_poison_only_when_drained() {
        let region = memfd_for_spsc(64);
        let mut tx = spsc::create::<u64>(region.clone(), 64).unwrap();
        let mut rx = spsc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        tx.enqueue(7).unwrap();
        tx.poison();
        // The published item is still delivered; poison surfaces after.
        assert_eq!(rx.try_dequeue(), Ok(7));
        assert_eq!(rx.try_dequeue(), Err(ShmTryDequeueError::Poisoned));
        // A poisoned producer can no longer block forever either.
        assert_eq!(tx.enqueue(8), Ok(()), "space available: enqueue succeeds");
    }

    #[test]
    fn batched_paths_work_across_mappings() {
        let region = ShmRegion::create_memfd(spmc::required_size::<u64>(512).unwrap()).unwrap();
        let mut tx = spmc::create::<u64>(region.clone(), 512).unwrap();
        let mut rx = spmc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        assert_eq!(tx.enqueue_many(0..300u64), 300);
        let mut buf = Vec::new();
        let mut got = 0;
        while got < 300 {
            got += rx.dequeue_batch(&mut buf, 64);
        }
        assert_eq!(buf, (0..300u64).collect::<Vec<_>>());
    }
}
