//! Shared-memory queue handles: format, attach, and dead-peer detection.
//!
//! The heavy lifting is `ffq`'s [`raw`](ffq::raw) layer — the types here
//! add what a *cross-process* queue needs on top of the protocol itself:
//!
//! * the format/attach handshake over the [`RegionHeader`]
//!   (see [`crate::header`]);
//! * configuration validation, so an attach with the wrong element type,
//!   cell layout, index map or variant is refused instead of corrupting
//!   memory;
//! * liveness: every handle registers its pid in a header slot, the
//!   producer heartbeats as it publishes, and blocked peers escalate a
//!   stalled heartbeat to a `kill(pid, 0)` probe. A peer that vanished
//!   without detaching **poisons** the queue, so nobody hangs on ranks that
//!   will never be published.
//!
//! Ranks and gap announcements need no fixup across address spaces: both
//! are plain integers relative to the queue's own counters, and the cell a
//! rank lives in is recomputed from `rank & (N-1)` on each side — the
//! region contains no pointer anywhere.

use core::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use ffq::broadcast::{RawBroadcastProducer, RawBroadcastSubscriber};
use ffq::bytes::{
    BytesConsumer as _, BytesProducer as _, DescCell, McConsumer, PayloadRef, SlotRegion,
    SpProducer, SpillMode, SpscConsumer, WriteSlot,
};
use ffq::cell::{CellSlot, PaddedCell, PayloadDesc};
use ffq::error::{BroadcastTryRecvError, Full, TryDequeueError, TryReserveError};
use ffq::layout::{IndexMap, LinearMap};
use ffq::raw::{QueueState, RawConsumer, RawProducer, RawQueue, RawSpscConsumer, ShmSafe};
use ffq::stats::{ConsumerStats, ProducerStats, SubscriberStats};
use ffq_sync::{WaitRound, WaitStrategy};

use crate::error::{
    Poisoned, ShmBroadcastRecvError, ShmBroadcastTryRecvError, ShmDequeueError, ShmError,
    ShmReserveError, ShmTryDequeueError,
};
use crate::header::{
    bytes_region_layout, cell_discriminant, map_discriminant, region_layout, BytesRegionLayout,
    QueueConfig, RegionHeader, RegionLayout, VARIANT_BROADCAST, VARIANT_SPMC, VARIANT_SPMC_BYTES,
    VARIANT_SPSC, VARIANT_SPSC_BYTES,
};
use crate::region::ShmRegion;

/// How long a blocked handle waits (spinning, then parked on the queue's
/// process-shared futex) between liveness probes. A blocked peer burns no
/// CPU inside a slice, and a dead or poisoning peer is noticed within one
/// slice — the bound on how long a parked process can hang on ranks that
/// will never be published.
const BLOCK_SLICE: Duration = Duration::from_millis(10);

/// How long an attach waits for the creator to finish formatting.
const ATTACH_TIMEOUT: Duration = Duration::from_secs(5);

/// The wait config every shm handle attaches with: adaptive, plus the
/// [`WaitConfig::max_park`](ffq::WaitConfig) watchdog armed at one
/// [`BLOCK_SLICE`]. In-process queues park unboundedly — the eventcount
/// makes that safe — but a cross-process peer can die between publishing
/// and notifying without running any poisoning code, so a shm park must
/// never outlive a liveness-probe slice even on a code path that forgot
/// to pass a deadline.
fn shm_wait_config() -> ffq::WaitConfig {
    ffq::WaitConfig::adaptive().with_max_park(BLOCK_SLICE)
}

fn process_id() -> i64 {
    // SAFETY: getpid is always safe.
    i64::from(unsafe { libc::getpid() })
}

/// `kill(pid, 0)` liveness probe: delivery permission errors still prove
/// the process exists; only `ESRCH` (or an impossible pid) means gone.
fn pid_alive(pid: i64) -> bool {
    let Ok(pid) = libc::pid_t::try_from(pid) else {
        return false;
    };
    // SAFETY: signal 0 performs error checking only; no signal is sent.
    if unsafe { libc::kill(pid, 0) } == 0 {
        return true;
    }
    std::io::Error::last_os_error().raw_os_error() == Some(libc::EPERM)
}

/// The region's header view. Callers must have bounds-checked the region
/// against `size_of::<RegionHeader>()` (every public path below does).
fn header_of(region: &ShmRegion) -> &RegionHeader {
    debug_assert!(region.len() >= core::mem::size_of::<RegionHeader>());
    // SAFETY: the mapping is page-aligned (mmap), lives as long as the
    // borrow (the region handle keeps it mapped), and is at least
    // header-sized per the callers' validation. All header fields are
    // atomics, so concurrent access from other processes is defined.
    unsafe { &*(region.as_ptr() as *const RegionHeader) }
}

/// Builds the raw queue view over a validated region.
///
/// # Safety
///
/// `layout` must have been validated against `region.len()` and the state
/// and cells at those offsets must be initialized (lifecycle `READY`, or
/// this process is the formatter past its `ptr::write`s).
unsafe fn queue_view<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
    region: &ShmRegion,
    layout: &RegionLayout,
) -> RawQueue<T, C, M> {
    let base = region.as_ptr();
    // SAFETY: offsets in bounds per caller; alignment by region_layout
    // construction (mmap base is page-aligned).
    unsafe {
        let state = base.add(layout.state_offset) as *const QueueState;
        let cells = base.add(layout.cells_offset) as *const C;
        RawQueue::from_raw(state, cells)
    }
}

fn discriminants_for<T: ShmSafe, C: CellSlot<T>, M: IndexMap>() -> Result<(u8, u8), ShmError> {
    let cell = cell_discriminant(C::NAME).ok_or(ShmError::BadConfig {
        field: "cell layout",
    })?;
    let map = map_discriminant(M::NAME).ok_or(ShmError::BadConfig { field: "index map" })?;
    Ok((cell, map))
}

/// Formats `region` as a queue of at least `capacity` cells: wins the
/// lifecycle claim, writes state and cells, publishes `READY`.
fn format_impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
    region: &ShmRegion,
    capacity: usize,
    variant: u8,
) -> Result<(), ShmError> {
    let cap_log2 = ffq::normalize_capacity(capacity)?;
    let layout = region_layout::<T, C>(cap_log2).ok_or(ShmError::Capacity(
        ffq::CapacityError::TooLarge {
            requested: capacity,
        },
    ))?;
    if region.len() < layout.total_len {
        return Err(ShmError::RegionTooSmall {
            required: layout.total_len,
            actual: region.len(),
        });
    }
    let elem_size = u32::try_from(core::mem::size_of::<T>()).map_err(|_| ShmError::BadConfig {
        field: "element size",
    })?;
    let (cell_layout, index_map) = discriminants_for::<T, C, M>()?;

    let header = header_of(region);
    header.begin_init()?;
    // We won the RAW -> INITIALIZING race: the region is exclusively ours
    // until we publish READY.
    // SAFETY: offsets are in bounds (checked above) and correctly aligned
    // (region_layout); nobody else references these bytes yet.
    unsafe {
        let base = region.as_ptr();
        let state = base.add(layout.state_offset) as *mut QueueState;
        // producers starts at 1: the count is pre-reserved for the (sole)
        // producer so consumers that attach first do not misread an
        // untaken producer slot as a disconnect. Shared-wait mode makes
        // the eventcount futexes process-shared (no FUTEX_PRIVATE_FLAG),
        // so parks and wakes work across address spaces.
        state.write(QueueState::new(cap_log2, 1, 0).with_shared_wait());
        let cells = base.add(layout.cells_offset) as *mut C;
        for i in 0..(1usize << cap_log2) {
            cells.add(i).write(C::empty());
        }
    }
    header.publish_ready(
        &QueueConfig {
            variant,
            cell_layout,
            index_map,
            cap_log2,
            slot_log2: 0,
            elem_size,
            elem_align: core::mem::align_of::<T>() as u32,
            state_offset: layout.state_offset as u32,
            cells_offset: layout.cells_offset as u32,
            region_len: layout.total_len as u64,
        },
        process_id(),
    )?;
    Ok(())
}

/// Waits for `READY`, then validates that the region holds exactly the
/// queue `<T, C, M, variant>` describes. Returns the validated layout.
fn validate_attach<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
    region: &ShmRegion,
    variant: u8,
) -> Result<RegionLayout, ShmError> {
    if region.len() < core::mem::size_of::<RegionHeader>() {
        return Err(ShmError::RegionTooSmall {
            required: core::mem::size_of::<RegionHeader>(),
            actual: region.len(),
        });
    }
    let header = header_of(region);
    header.wait_ready(ATTACH_TIMEOUT)?;
    let cfg = QueueConfig::decode(header.config_words())?;
    let mismatch = |field, expected: u64, found: u64| {
        Err(ShmError::ConfigMismatch {
            field,
            expected,
            found,
        })
    };
    if cfg.variant != variant {
        return mismatch("variant", u64::from(variant), u64::from(cfg.variant));
    }
    let (cell_layout, index_map) = discriminants_for::<T, C, M>()?;
    if cfg.cell_layout != cell_layout {
        return mismatch(
            "cell layout",
            u64::from(cell_layout),
            u64::from(cfg.cell_layout),
        );
    }
    if cfg.index_map != index_map {
        return mismatch("index map", u64::from(index_map), u64::from(cfg.index_map));
    }
    if u64::from(cfg.elem_size) != core::mem::size_of::<T>() as u64 {
        return mismatch(
            "element size",
            core::mem::size_of::<T>() as u64,
            u64::from(cfg.elem_size),
        );
    }
    if u64::from(cfg.elem_align) != core::mem::align_of::<T>() as u64 {
        return mismatch(
            "element alignment",
            core::mem::align_of::<T>() as u64,
            u64::from(cfg.elem_align),
        );
    }
    let layout = region_layout::<T, C>(cfg.cap_log2).ok_or(ShmError::BadConfig {
        field: "capacity exponent",
    })?;
    if cfg.state_offset as usize != layout.state_offset {
        return mismatch(
            "state offset",
            layout.state_offset as u64,
            u64::from(cfg.state_offset),
        );
    }
    if cfg.cells_offset as usize != layout.cells_offset {
        return mismatch(
            "cells offset",
            layout.cells_offset as u64,
            u64::from(cfg.cells_offset),
        );
    }
    if cfg.region_len != layout.total_len as u64 {
        return mismatch("region length", layout.total_len as u64, cfg.region_len);
    }
    if region.len() < layout.total_len {
        return Err(ShmError::RegionTooSmall {
            required: layout.total_len,
            actual: region.len(),
        });
    }
    Ok(layout)
}

fn attach_producer_impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
    region: ShmRegion,
    variant: u8,
) -> Result<ShmProducer<T, C, M>, ShmError> {
    let layout = validate_attach::<T, C, M>(&region, variant)?;
    let header = header_of(&region);
    if header.is_poisoned() {
        return Err(ShmError::Poisoned);
    }
    if !header.producer_slot().try_claim(process_id()) {
        return Err(ShmError::ProducerAttached);
    }
    // SAFETY: layout validated against the READY region.
    let q = unsafe { queue_view::<T, C, M>(&region, &layout) };
    // Winning the slot makes us the sole producer; re-arm the count a
    // previous producer's clean detach may have dropped to zero.
    q.state().producers().store(1, Ordering::Release);
    let heartbeat = header.producer_slot().heartbeat();
    // SAFETY: unique producer (slot claim), view valid while `region` is
    // held by the returned handle.
    let mut raw = unsafe { RawProducer::attach(q) };
    raw.set_wait_config(shm_wait_config());
    // SPMC regions can have several parked consumers, each owning specific
    // pending ranks: publish wakes must broadcast so one cannot land on the
    // wrong consumer and leave the rank's owner sleeping (see
    // `RawProducer::set_multi_consumer`).
    raw.set_multi_consumer(variant == crate::header::VARIANT_SPMC);
    Ok(ShmProducer {
        raw,
        region,
        heartbeat,
    })
}

/// The producer side of a shared-memory queue (SPSC and SPMC — the
/// single-producer engine is identical; the variant only gates who may
/// attach on the other side).
///
/// Created by [`spsc::create`]/[`spmc::create`] (format + attach) or
/// [`spsc::attach_producer`]/[`spmc::attach_producer`] on an existing
/// region. Dropping the handle detaches cleanly: consumers drain whatever
/// was published, then observe `Disconnected`.
pub struct ShmProducer<T: ShmSafe, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    raw: RawProducer<T, C, M>,
    region: ShmRegion,
    heartbeat: u64,
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> ShmProducer<T, C, M> {
    fn header(&self) -> &RegionHeader {
        header_of(&self.region)
    }

    fn bump_heartbeat(&mut self) {
        self.heartbeat += 1;
        self.header()
            .producer_slot()
            .store_heartbeat(self.heartbeat);
    }

    /// See [`consumers_look_dead`].
    fn consumers_look_dead(&self) -> bool {
        consumers_look_dead(self.header())
    }

    /// Enqueues `value`, blocking while the queue is full. The wait is
    /// adaptive: a short spin, then bounded parks on the queue's
    /// process-shared not-full futex, so a blocked producer burns no CPU.
    ///
    /// Between park slices it keeps its heartbeat fresh and probes the
    /// consumer side: if every registered consumer is dead it poisons the
    /// queue and returns [`Poisoned`] instead of waiting on cells that
    /// will never be freed.
    pub fn enqueue(&mut self, value: T) -> Result<(), Poisoned> {
        let mut value = value;
        loop {
            match self.raw.enqueue_timeout(value, BLOCK_SLICE) {
                Ok(()) => {
                    self.bump_heartbeat();
                    return Ok(());
                }
                Err(Full(v)) => {
                    value = v;
                    // Stay visibly alive to consumers while blocked.
                    self.bump_heartbeat();
                    if self.header().is_poisoned() {
                        return Err(Poisoned);
                    }
                    if self.consumers_look_dead() {
                        self.poison();
                        return Err(Poisoned);
                    }
                }
            }
        }
    }

    /// Replaces the wait policy used while blocked on a full queue; see
    /// [`ffq::WaitConfig`].
    pub fn set_wait_config(&mut self, cfg: ffq::WaitConfig) {
        self.raw.set_wait_config(cfg);
    }

    /// Attempts to enqueue without blocking; hands the value back if the
    /// queue looks full (see [`ffq::spmc::Producer::try_enqueue`] for the
    /// rank-consumption caveat). Check [`is_poisoned`](Self::is_poisoned)
    /// separately if fullness persists.
    pub fn try_enqueue(&mut self, value: T) -> Result<(), Full<T>> {
        let r = self.raw.try_enqueue(value);
        if r.is_ok() {
            self.bump_heartbeat();
        }
        r
    }

    /// Enqueues every item of `iter` on the batched release-pass path;
    /// returns the count. Blocks while full (without a dead-peer probe —
    /// size the queue by the flow-control rule so it cannot fill, as
    /// [`ffq_enclave::queue_capacity`] does).
    ///
    /// [`ffq_enclave::queue_capacity`]:
    ///     https://docs.rs/ffq-enclave "ffq-enclave's sizing rule"
    pub fn enqueue_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        let n = self.raw.enqueue_many(iter);
        if n > 0 {
            self.bump_heartbeat();
        }
        n
    }

    /// Capacity of the shared cell array.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Approximate number of items currently enqueued.
    pub fn len_hint(&self) -> usize {
        self.raw.len_hint()
    }

    /// Number of live consumer handles (attached across all processes).
    pub fn consumers(&self) -> usize {
        self.raw.consumers()
    }

    /// `true` once the queue is poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.header().is_poisoned()
    }

    /// Explicitly poisons the queue: every blocked or future operation on
    /// any attached handle errors out. Irreversible.
    pub fn poison(&self) {
        self.header().poison();
        // Kick every parked peer so the poison is observed now, not at
        // the end of a bounded park.
        self.raw.queue().state().wake_all();
    }

    /// Snapshot of this producer's counters.
    pub fn stats(&self) -> ProducerStats {
        self.raw.stats()
    }
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> Drop for ShmProducer<T, C, M> {
    fn drop(&mut self) {
        // Clean detach: drop the producer count (consumers see
        // `Disconnected` once drained), then vacate the slot so the count
        // zeroing is never mistaken for a crash. Wake parked consumers so
        // they observe the disconnect promptly.
        let state = self.raw.queue().state();
        state.producers().fetch_sub(1, Ordering::Release);
        state.wake_all();
        self.header().producer_slot().release();
    }
}

/// `true` while at least one registered consumer process is alive. No
/// consumer *yet* (all slots untouched) also counts as alive — a
/// producer may legitimately publish before anyone attaches.
fn consumers_look_dead(header: &RegionHeader) -> bool {
    let mut saw_attached = false;
    for i in 0..crate::header::MAX_CONSUMERS {
        let pid = header.consumer_slot(i).pid();
        if pid > 0 {
            saw_attached = true;
            if pid_alive(pid) {
                return false;
            }
        }
    }
    saw_attached
}

/// Consumer-side liveness state shared by both consumer handle types.
struct PeerWatch {
    slot: usize,
    last_producer_hb: u64,
}

impl PeerWatch {
    /// Called once per expired [`BLOCK_SLICE`] while blocked empty;
    /// returns `true` when the queue is (now) poisoned. Slices are tens of
    /// milliseconds apart, so probing on every call is free.
    fn empty_tick(&mut self, header: &RegionHeader) -> bool {
        if header.is_poisoned() {
            return true;
        }
        let slot = header.producer_slot();
        let hb = slot.heartbeat();
        if hb != self.last_producer_hb {
            // Progress since the last probe: definitely alive.
            self.last_producer_hb = hb;
            return false;
        }
        let pid = slot.pid();
        if pid <= 0 || pid_alive(pid) {
            // Not attached / detached cleanly (the disconnect path covers
            // those), or alive but idle.
            return false;
        }
        // Stalled heartbeat and the pid is gone: the producer crashed.
        // Poison so every consumer (including ones blocked on ranks the
        // dead producer claimed but never published) wakes with an error.
        header.poison();
        true
    }
}

fn attach_consumer_common<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
    region: &ShmRegion,
    variant: u8,
    spsc: bool,
) -> Result<(RawQueue<T, C, M>, PeerWatch), ShmError> {
    let layout = validate_attach::<T, C, M>(region, variant)?;
    let header = header_of(region);
    if header.is_poisoned() {
        return Err(ShmError::Poisoned);
    }
    let pid = process_id();
    let slot = if spsc {
        // The SPSC contract allows exactly one consumer: slot 0 or bust.
        if !header.consumer_slot(0).try_claim(pid) {
            return Err(ShmError::SlotsFull);
        }
        0
    } else {
        header.claim_consumer_slot(pid).ok_or(ShmError::SlotsFull)?
    };
    // SAFETY: layout validated against the READY region.
    let q = unsafe { queue_view::<T, C, M>(region, &layout) };
    q.state().consumers().fetch_add(1, Ordering::AcqRel);
    let watch = PeerWatch {
        slot,
        last_producer_hb: header.producer_slot().heartbeat(),
    };
    Ok((q, watch))
}

fn consumer_detach(state: &QueueState, header: &RegionHeader, slot: usize) {
    state.consumers().fetch_sub(1, Ordering::AcqRel);
    header.consumer_slot(slot).release();
}

macro_rules! consumer_common_impl {
    () => {
        fn header(&self) -> &RegionHeader {
            header_of(&self.region)
        }

        /// Attempts to dequeue one item without blocking.
        pub fn try_dequeue(&mut self) -> Result<T, ShmTryDequeueError> {
            match self.raw.try_dequeue() {
                Ok(v) => Ok(v),
                Err(TryDequeueError::Disconnected) => Err(ShmTryDequeueError::Disconnected),
                Err(TryDequeueError::Empty) => Err(if self.header().is_poisoned() {
                    ShmTryDequeueError::Poisoned
                } else {
                    ShmTryDequeueError::Empty
                }),
            }
        }

        /// Dequeues one item, waiting — spinning, then parked on the
        /// queue's process-shared not-empty futex — while the queue is
        /// empty. A blocked consumer burns no CPU between wakes.
        ///
        /// Between park slices it probes the producer: a stalled
        /// heartbeat whose pid no longer exists poisons the queue and
        /// returns [`ShmDequeueError::Poisoned`] — bounded by the slice
        /// length, a crashed producer never leaves parked consumers
        /// hanging.
        pub fn dequeue(&mut self) -> Result<T, ShmDequeueError> {
            loop {
                match self.raw.dequeue_timeout(BLOCK_SLICE) {
                    Ok(v) => return Ok(v),
                    Err(TryDequeueError::Disconnected) => {
                        return Err(ShmDequeueError::Disconnected)
                    }
                    Err(TryDequeueError::Empty) => {
                        if self.watch.empty_tick(header_of(&self.region)) {
                            // Wake fellow parked consumers onto the
                            // poison we just observed (or published).
                            self.raw.queue().state().wake_all();
                            return Err(ShmDequeueError::Poisoned);
                        }
                    }
                }
            }
        }

        /// Dequeues one item, giving up with
        /// [`ShmTryDequeueError::Empty`] after `timeout`. Runs the same
        /// liveness probes as [`dequeue`](Self::dequeue).
        pub fn dequeue_timeout(&mut self, timeout: Duration) -> Result<T, ShmTryDequeueError> {
            let deadline = Instant::now() + timeout;
            loop {
                let now = Instant::now();
                let slice = if now >= deadline {
                    Duration::ZERO
                } else {
                    BLOCK_SLICE.min(deadline - now)
                };
                match self.raw.dequeue_timeout(slice) {
                    Ok(v) => return Ok(v),
                    Err(TryDequeueError::Disconnected) => {
                        return Err(ShmTryDequeueError::Disconnected)
                    }
                    Err(TryDequeueError::Empty) => {
                        if self.watch.empty_tick(header_of(&self.region)) {
                            self.raw.queue().state().wake_all();
                            return Err(ShmTryDequeueError::Poisoned);
                        }
                        if Instant::now() >= deadline {
                            return Err(ShmTryDequeueError::Empty);
                        }
                    }
                }
            }
        }

        /// Replaces the wait policy used inside blocked slices; see
        /// [`ffq::WaitConfig`].
        pub fn set_wait_config(&mut self, cfg: ffq::WaitConfig) {
            self.raw.set_wait_config(cfg);
        }

        /// Harvests up to `max` ready items into `buf` without blocking;
        /// returns the count.
        pub fn dequeue_batch(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
            self.raw.dequeue_batch(buf, max)
        }

        /// Capacity of the shared cell array.
        pub fn capacity(&self) -> usize {
            self.raw.capacity()
        }

        /// Approximate number of items currently enqueued.
        pub fn len_hint(&self) -> usize {
            self.raw.len_hint()
        }

        /// `true` once the queue is poisoned.
        pub fn is_poisoned(&self) -> bool {
            self.header().is_poisoned()
        }

        /// Explicitly poisons the queue for every attached handle.
        pub fn poison(&self) {
            self.header().poison();
            // Kick every parked peer so the poison is observed now, not
            // at the end of a bounded park.
            self.raw.queue().state().wake_all();
        }

        /// Snapshot of this consumer's counters.
        pub fn stats(&self) -> ConsumerStats {
            self.raw.stats()
        }
    };
}

/// A shared-head consumer on a shared-memory SPMC queue. Attach up to
/// [`MAX_CONSUMERS`](crate::header::MAX_CONSUMERS) of these, from any mix
/// of processes and threads.
pub struct ShmSpmcConsumer<T: ShmSafe, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    raw: RawConsumer<T, C, M, false>,
    region: ShmRegion,
    watch: PeerWatch,
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> ShmSpmcConsumer<T, C, M> {
    consumer_common_impl!();

    /// Number of ranks this handle has claimed but not yet resolved.
    pub fn pending_ranks(&self) -> usize {
        self.raw.pending_ranks()
    }
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> Drop for ShmSpmcConsumer<T, C, M> {
    fn drop(&mut self) {
        // Return published-but-pending cells to circulation, then detach.
        self.raw.recover_pending();
        consumer_detach(self.raw.queue().state(), self.header(), self.watch.slot);
    }
}

/// The unique consumer of a shared-memory SPSC queue (private head — no
/// shared-counter RMW on dequeue).
pub struct ShmSpscConsumer<T: ShmSafe, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    raw: RawSpscConsumer<T, C, M>,
    region: ShmRegion,
    watch: PeerWatch,
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> ShmSpscConsumer<T, C, M> {
    consumer_common_impl!();
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> Drop for ShmSpscConsumer<T, C, M> {
    fn drop(&mut self) {
        consumer_detach(self.raw.queue().state(), self.header(), self.watch.slot);
    }
}

macro_rules! variant_module {
    ($variant:expr) => {
        /// Bytes a region must have for a queue of at least `capacity`
        /// elements of `T` (after power-of-two rounding) in the default
        /// cell layout. Pass the result to [`ShmRegion::create`] /
        /// [`ShmRegion::create_memfd`](crate::region::ShmRegion::create_memfd).
        pub fn required_size<T: ShmSafe>(capacity: usize) -> Result<usize, ShmError> {
            required_size_with::<T, PaddedCell<T>>(capacity)
        }

        /// [`required_size`] for an explicit cell layout.
        pub fn required_size_with<T: ShmSafe, C: CellSlot<T>>(
            capacity: usize,
        ) -> Result<usize, ShmError> {
            let cap_log2 = ffq::normalize_capacity(capacity)?;
            region_layout::<T, C>(cap_log2)
                .map(|l| l.total_len)
                .ok_or(ShmError::Capacity(ffq::CapacityError::TooLarge {
                    requested: capacity,
                }))
        }

        /// Formats `region` as this variant's queue *without* attaching —
        /// for an owner process that only brokers the region. Exactly one
        /// process may format a region, ever.
        pub fn format<T: ShmSafe>(region: &ShmRegion, capacity: usize) -> Result<(), ShmError> {
            format_with::<T, PaddedCell<T>, LinearMap>(region, capacity)
        }

        /// [`format`] with explicit cell layout and index map.
        pub fn format_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
            region: &ShmRegion,
            capacity: usize,
        ) -> Result<(), ShmError> {
            format_impl::<T, C, M>(region, capacity, $variant)
        }

        /// Formats `region` and attaches as its producer in one step — the
        /// usual creator path.
        pub fn create<T: ShmSafe>(
            region: ShmRegion,
            capacity: usize,
        ) -> Result<Producer<T>, ShmError> {
            create_with::<T, PaddedCell<T>, LinearMap>(region, capacity)
        }

        /// [`create`] with explicit cell layout and index map.
        pub fn create_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
            region: ShmRegion,
            capacity: usize,
        ) -> Result<Producer<T, C, M>, ShmError> {
            format_with::<T, C, M>(&region, capacity)?;
            attach_producer_with::<T, C, M>(region)
        }

        /// Attaches as the producer of an already-formatted region (waits
        /// for `READY`). Fails with [`ShmError::ProducerAttached`] while
        /// another live handle holds the producer side; succeeds again
        /// after a clean detach, resuming from the mirrored tail.
        pub fn attach_producer<T: ShmSafe>(region: ShmRegion) -> Result<Producer<T>, ShmError> {
            attach_producer_with::<T, PaddedCell<T>, LinearMap>(region)
        }

        /// [`attach_producer`] with explicit cell layout and index map.
        pub fn attach_producer_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
            region: ShmRegion,
        ) -> Result<Producer<T, C, M>, ShmError> {
            attach_producer_impl::<T, C, M>(region, $variant)
        }
    };
}

/// Single-producer/single-consumer queues in shared memory.
pub mod spsc {
    use super::*;

    /// The producer handle ([`ShmProducer`] — shared with [`spmc`](super::spmc)).
    pub use super::ShmProducer as Producer;
    /// The consumer handle.
    pub use super::ShmSpscConsumer as Consumer;

    variant_module!(VARIANT_SPSC);

    /// Attaches the unique consumer of an already-formatted SPSC region
    /// (waits for `READY`). A second live consumer is refused with
    /// [`ShmError::SlotsFull`].
    pub fn attach_consumer<T: ShmSafe>(region: ShmRegion) -> Result<Consumer<T>, ShmError> {
        attach_consumer_with::<T, PaddedCell<T>, LinearMap>(region)
    }

    /// [`attach_consumer`] with explicit cell layout and index map.
    pub fn attach_consumer_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
        region: ShmRegion,
    ) -> Result<Consumer<T, C, M>, ShmError> {
        let (q, watch) = attach_consumer_common::<T, C, M>(&region, VARIANT_SPSC, true)?;
        // SAFETY: validated READY region; consumer uniqueness enforced by
        // the exclusive claim on header slot 0.
        let mut raw = unsafe { RawSpscConsumer::attach(q) };
        raw.set_wait_config(shm_wait_config());
        Ok(Consumer { raw, region, watch })
    }
}

/// Single-producer/multiple-consumer queues in shared memory — the paper's
/// headline variant, across processes.
pub mod spmc {
    use super::*;

    /// The producer handle ([`ShmProducer`] — shared with [`spsc`](super::spsc)).
    pub use super::ShmProducer as Producer;
    /// The consumer handle.
    pub use super::ShmSpmcConsumer as Consumer;

    variant_module!(VARIANT_SPMC);

    /// Attaches a consumer to an already-formatted SPMC region (waits for
    /// `READY`). Up to [`MAX_CONSUMERS`](crate::header::MAX_CONSUMERS) may
    /// be attached at once, from any mix of processes and threads.
    pub fn attach_consumer<T: ShmSafe>(region: ShmRegion) -> Result<Consumer<T>, ShmError> {
        attach_consumer_with::<T, PaddedCell<T>, LinearMap>(region)
    }

    /// [`attach_consumer`] with explicit cell layout and index map.
    pub fn attach_consumer_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
        region: ShmRegion,
    ) -> Result<Consumer<T, C, M>, ShmError> {
        let (q, watch) = attach_consumer_common::<T, C, M>(&region, VARIANT_SPMC, false)?;
        // SAFETY: validated READY region; shared-head consumers may attach
        // in any number up to the slot limit.
        let mut raw = unsafe { RawConsumer::attach(q) };
        raw.set_wait_config(shm_wait_config());
        Ok(Consumer { raw, region, watch })
    }
}

/// The sending side of a shared-memory broadcast queue: wait-free
/// publication to every subscriber in every attached process.
///
/// Unlike [`ShmProducer`], this handle **never blocks and never probes its
/// peers**: broadcast has no backpressure (slow subscribers lose items and
/// observe `Lagged`), so a dead subscriber cannot stall the sender and the
/// sender runs no liveness machinery beyond keeping its own heartbeat
/// fresh for the subscribers' probes.
pub struct ShmBroadcastSender<T: ShmSafe, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    raw: RawBroadcastProducer<T, C, M>,
    region: ShmRegion,
    heartbeat: u64,
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> ShmBroadcastSender<T, C, M> {
    fn header(&self) -> &RegionHeader {
        header_of(&self.region)
    }

    fn bump_heartbeat(&mut self) {
        self.heartbeat += 1;
        self.header()
            .producer_slot()
            .store_heartbeat(self.heartbeat);
    }

    /// Publishes `value` to every subscriber. Wait-free; never blocks and
    /// never fails — subscribers that cannot keep up observe `Lagged`, and
    /// a poisoned queue merely means nobody is left to read (check
    /// [`is_poisoned`](Self::is_poisoned) if that matters to the caller).
    pub fn send(&mut self, value: T) {
        self.raw.send(value);
        self.bump_heartbeat();
    }

    /// Publishes every item of `iter`; returns the count.
    pub fn send_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        let n = self.raw.send_many(iter);
        if n > 0 {
            self.bump_heartbeat();
        }
        n
    }

    /// Number of items published so far.
    pub fn published(&self) -> u64 {
        self.raw.tail_rank() as u64
    }

    /// Capacity of the ring — the retention window lagging subscribers
    /// can still recover from.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Number of live subscriber handles (attached across all processes).
    pub fn subscribers(&self) -> usize {
        self.raw.subscribers()
    }

    /// `true` once the queue is poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.header().is_poisoned()
    }

    /// Explicitly poisons the queue: every blocked or future receive on
    /// any attached subscriber errors out. Irreversible.
    pub fn poison(&self) {
        self.header().poison();
        // Kick every parked peer so the poison is observed now, not at
        // the end of a bounded park.
        self.raw.queue().state().wake_all();
    }
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> Drop for ShmBroadcastSender<T, C, M> {
    fn drop(&mut self) {
        // Clean detach, as ShmProducer: drop the producer count
        // (subscribers see `Closed` once they reach the final tail), then
        // vacate the slot so the count zeroing is never mistaken for a
        // crash. Wake parked subscribers so they observe the closure.
        let state = self.raw.queue().state();
        state.producers().fetch_sub(1, Ordering::Release);
        state.wake_all();
        self.header().producer_slot().release();
    }
}

/// A subscriber on a shared-memory broadcast queue. Attach up to
/// [`MAX_CONSUMERS`](crate::header::MAX_CONSUMERS), from any mix of
/// processes and threads; each observes the full stream independently and
/// writes nothing to shared memory.
pub struct ShmBroadcastSubscriber<
    T: ShmSafe,
    C: CellSlot<T> = PaddedCell<T>,
    M: IndexMap = LinearMap,
> {
    raw: RawBroadcastSubscriber<T, C, M>,
    region: ShmRegion,
    watch: PeerWatch,
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> ShmBroadcastSubscriber<T, C, M> {
    fn header(&self) -> &RegionHeader {
        header_of(&self.region)
    }

    /// Attempts to receive the next item without blocking.
    ///
    /// `Lagged(n)` means the sender lapped this subscriber and `n` items
    /// are gone; the cursor is already resynced to the oldest retained
    /// item, so the next call resumes there.
    pub fn try_recv(&mut self) -> Result<T, ShmBroadcastTryRecvError> {
        match self.raw.try_recv() {
            Ok(v) => Ok(v),
            Err(BroadcastTryRecvError::Lagged(n)) => Err(ShmBroadcastTryRecvError::Lagged(n)),
            Err(BroadcastTryRecvError::Closed) => Err(ShmBroadcastTryRecvError::Closed),
            Err(BroadcastTryRecvError::Empty) => Err(if self.header().is_poisoned() {
                ShmBroadcastTryRecvError::Poisoned
            } else {
                ShmBroadcastTryRecvError::Empty
            }),
        }
    }

    /// Receives the next item, waiting — spinning, then parked on the
    /// queue's process-shared not-empty futex — while nothing new is
    /// published.
    ///
    /// Between park slices it probes the sender exactly as
    /// [`ShmSpmcConsumer::dequeue`] probes its producer: a stalled
    /// heartbeat whose pid no longer exists poisons the queue and returns
    /// [`ShmBroadcastRecvError::Poisoned`] within one slice.
    pub fn recv(&mut self) -> Result<T, ShmBroadcastRecvError> {
        loop {
            match self.raw.recv_timeout(BLOCK_SLICE) {
                Ok(v) => return Ok(v),
                Err(BroadcastTryRecvError::Lagged(n)) => {
                    return Err(ShmBroadcastRecvError::Lagged(n))
                }
                Err(BroadcastTryRecvError::Closed) => return Err(ShmBroadcastRecvError::Closed),
                Err(BroadcastTryRecvError::Empty) => {
                    if self.watch.empty_tick(header_of(&self.region)) {
                        // Wake fellow parked subscribers onto the poison
                        // we just observed (or published).
                        self.raw.queue().state().wake_all();
                        return Err(ShmBroadcastRecvError::Poisoned);
                    }
                }
            }
        }
    }

    /// Receives the next item, giving up with
    /// [`ShmBroadcastTryRecvError::Empty`] after `timeout`. Runs the same
    /// liveness probes as [`recv`](Self::recv).
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<T, ShmBroadcastTryRecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            let slice = if now >= deadline {
                Duration::ZERO
            } else {
                BLOCK_SLICE.min(deadline - now)
            };
            match self.raw.recv_timeout(slice) {
                Ok(v) => return Ok(v),
                Err(BroadcastTryRecvError::Lagged(n)) => {
                    return Err(ShmBroadcastTryRecvError::Lagged(n))
                }
                Err(BroadcastTryRecvError::Closed) => return Err(ShmBroadcastTryRecvError::Closed),
                Err(BroadcastTryRecvError::Empty) => {
                    if self.watch.empty_tick(header_of(&self.region)) {
                        self.raw.queue().state().wake_all();
                        return Err(ShmBroadcastTryRecvError::Poisoned);
                    }
                    if Instant::now() >= deadline {
                        return Err(ShmBroadcastTryRecvError::Empty);
                    }
                }
            }
        }
    }

    /// Replaces the wait policy used inside blocked slices; see
    /// [`ffq::WaitConfig`].
    pub fn set_wait_config(&mut self, cfg: ffq::WaitConfig) {
        self.raw.set_wait_config(cfg);
    }

    /// Rank of the next item this subscriber will observe.
    pub fn cursor_rank(&self) -> i64 {
        self.raw.cursor_rank()
    }

    /// How many published items this subscriber has not yet observed
    /// (approximate — the sender keeps moving).
    pub fn len_behind(&self) -> usize {
        self.raw.len_behind()
    }

    /// Capacity of the shared ring.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// `true` once the queue is poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.header().is_poisoned()
    }

    /// Explicitly poisons the queue for every attached handle.
    pub fn poison(&self) {
        self.header().poison();
        self.raw.queue().state().wake_all();
    }

    /// Snapshot of this subscriber's counters.
    pub fn stats(&self) -> SubscriberStats {
        self.raw.stats()
    }
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> Drop for ShmBroadcastSubscriber<T, C, M> {
    fn drop(&mut self) {
        // Subscribers own nothing in shared memory — no recovery needed,
        // just the handle count and the pid slot.
        consumer_detach(self.raw.queue().state(), self.header(), self.watch.slot);
    }
}

/// Broadcast (pub-sub) queues in shared memory: every subscriber in every
/// attached process observes the full stream; subscribers that cannot keep
/// up lose items — observed as `Lagged`, never silent — instead of
/// blocking the sender (see [`ffq::broadcast`] for the cell-level seqlock
/// protocol, which is identical in-heap and over a mapping).
///
/// ```
/// use ffq_shm::{broadcast, ShmRegion};
///
/// let bytes = broadcast::required_size::<u64>(64).unwrap();
/// let region = ShmRegion::create_memfd(bytes).unwrap();
///
/// let mut tx = broadcast::create::<u64>(region.clone(), 64).unwrap();
/// // Two subscribers on independent mappings (what other processes see).
/// let mut a = broadcast::attach_subscriber::<u64>(region.remap().unwrap()).unwrap();
/// let mut b = broadcast::attach_subscriber::<u64>(region.remap().unwrap()).unwrap();
///
/// tx.send(7);
/// assert_eq!(a.recv(), Ok(7)); // both observe the same item
/// assert_eq!(b.recv(), Ok(7));
/// ```
pub mod broadcast {
    use super::*;

    /// The sending handle.
    pub use super::ShmBroadcastSender as Sender;
    /// The subscribing handle.
    pub use super::ShmBroadcastSubscriber as Subscriber;

    /// Bytes a region must have for a broadcast ring of at least
    /// `capacity` elements of `T` (after power-of-two rounding) in the
    /// default cell layout.
    pub fn required_size<T: ShmSafe>(capacity: usize) -> Result<usize, ShmError> {
        required_size_with::<T, PaddedCell<T>>(capacity)
    }

    /// [`required_size`] for an explicit cell layout.
    pub fn required_size_with<T: ShmSafe, C: CellSlot<T>>(
        capacity: usize,
    ) -> Result<usize, ShmError> {
        let cap_log2 = ffq::normalize_capacity(capacity)?;
        region_layout::<T, C>(cap_log2)
            .map(|l| l.total_len)
            .ok_or(ShmError::Capacity(ffq::CapacityError::TooLarge {
                requested: capacity,
            }))
    }

    /// Formats `region` as a broadcast queue *without* attaching. The
    /// memory layout is the typed-variant layout — only the variant
    /// discriminant (and the protocol run over the cells) differs.
    pub fn format<T: ShmSafe>(region: &ShmRegion, capacity: usize) -> Result<(), ShmError> {
        format_with::<T, PaddedCell<T>, LinearMap>(region, capacity)
    }

    /// [`format`] with explicit cell layout and index map.
    pub fn format_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
        region: &ShmRegion,
        capacity: usize,
    ) -> Result<(), ShmError> {
        format_impl::<T, C, M>(region, capacity, VARIANT_BROADCAST)
    }

    /// Formats `region` and attaches as its sender in one step — the
    /// usual creator path.
    pub fn create<T: ShmSafe>(region: ShmRegion, capacity: usize) -> Result<Sender<T>, ShmError> {
        create_with::<T, PaddedCell<T>, LinearMap>(region, capacity)
    }

    /// [`create`] with explicit cell layout and index map.
    pub fn create_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
        region: ShmRegion,
        capacity: usize,
    ) -> Result<Sender<T, C, M>, ShmError> {
        format_with::<T, C, M>(&region, capacity)?;
        attach_sender_with::<T, C, M>(region)
    }

    /// Attaches as the sender of an already-formatted broadcast region
    /// (waits for `READY`). Fails with [`ShmError::ProducerAttached`]
    /// while another live handle holds the sender side; succeeds again
    /// after a clean detach, resuming from the mirrored tail.
    pub fn attach_sender<T: ShmSafe>(region: ShmRegion) -> Result<Sender<T>, ShmError> {
        attach_sender_with::<T, PaddedCell<T>, LinearMap>(region)
    }

    /// [`attach_sender`] with explicit cell layout and index map.
    pub fn attach_sender_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
        region: ShmRegion,
    ) -> Result<Sender<T, C, M>, ShmError> {
        let layout = validate_attach::<T, C, M>(&region, VARIANT_BROADCAST)?;
        let header = header_of(&region);
        if header.is_poisoned() {
            return Err(ShmError::Poisoned);
        }
        if !header.producer_slot().try_claim(process_id()) {
            return Err(ShmError::ProducerAttached);
        }
        // SAFETY: layout validated against the READY region.
        let q = unsafe { queue_view::<T, C, M>(&region, &layout) };
        // Winning the slot makes us the sole sender; re-arm the count a
        // previous sender's clean detach may have dropped to zero.
        q.state().producers().store(1, Ordering::Release);
        let heartbeat = header.producer_slot().heartbeat();
        // SAFETY: unique producer (slot claim); the variant check above
        // guarantees every other handle on this region is a broadcast
        // subscriber. View valid while `region` is held by the handle.
        let raw = unsafe { RawBroadcastProducer::attach(q) };
        Ok(Sender {
            raw,
            region,
            heartbeat,
        })
    }

    /// Attaches a subscriber at the **live edge** of an already-formatted
    /// broadcast region: it observes only items published after this call
    /// (the usual pub-sub join semantics).
    pub fn attach_subscriber<T: ShmSafe>(region: ShmRegion) -> Result<Subscriber<T>, ShmError> {
        attach_subscriber_with::<T, PaddedCell<T>, LinearMap>(region)
    }

    /// [`attach_subscriber`] with explicit cell layout and index map.
    pub fn attach_subscriber_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
        region: ShmRegion,
    ) -> Result<Subscriber<T, C, M>, ShmError> {
        attach_subscriber_impl::<T, C, M>(region, false)
    }

    /// Attaches a subscriber at the **start of the stream** (rank 0): the
    /// first receive reports ranks the sender has already overwritten as
    /// `Lagged`, then replays everything still retained. Useful for
    /// late-joining readers that want the backlog.
    pub fn attach_subscriber_from_origin<T: ShmSafe>(
        region: ShmRegion,
    ) -> Result<Subscriber<T>, ShmError> {
        attach_subscriber_from_origin_with::<T, PaddedCell<T>, LinearMap>(region)
    }

    /// [`attach_subscriber_from_origin`] with explicit cell layout and
    /// index map.
    pub fn attach_subscriber_from_origin_with<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
        region: ShmRegion,
    ) -> Result<Subscriber<T, C, M>, ShmError> {
        attach_subscriber_impl::<T, C, M>(region, true)
    }

    fn attach_subscriber_impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap>(
        region: ShmRegion,
        from_origin: bool,
    ) -> Result<Subscriber<T, C, M>, ShmError> {
        let (q, watch) = attach_consumer_common::<T, C, M>(&region, VARIANT_BROADCAST, false)?;
        // SAFETY: validated READY region carrying the broadcast variant;
        // subscribers may attach in any number up to the slot limit.
        let mut raw = unsafe {
            if from_origin {
                RawBroadcastSubscriber::attach_from_origin(q)
            } else {
                RawBroadcastSubscriber::attach_latest(q)
            }
        };
        raw.set_wait_config(shm_wait_config());
        Ok(Subscriber { raw, region, watch })
    }
}

// ---------------------------------------------------------------------------
// Zero-copy bytes queues: the `ffq::bytes` engines over a shared region that
// appends a slot-buffer array after the descriptor cells. Descriptors move
// through the rank/gap protocol exactly like typed elements; payload bytes
// are written in place by the producer and read borrowed by consumers — no
// copy crosses the process boundary.
// ---------------------------------------------------------------------------

/// Formats `region` as a bytes queue: descriptor state + cells, then the
/// slot-buffer array (left zeroed — a slot's bytes are defined only by the
/// descriptor published for its rank).
fn format_bytes_impl(
    region: &ShmRegion,
    capacity: usize,
    slot_bytes: usize,
    variant: u8,
) -> Result<(), ShmError> {
    let cap_log2 = ffq::normalize_capacity(capacity)?;
    let slot_bytes = ffq::normalize_slot_bytes(slot_bytes)?;
    let slot_log2 = slot_bytes.trailing_zeros() as u8;
    let layout = bytes_region_layout(cap_log2, slot_log2).ok_or(ShmError::Capacity(
        ffq::CapacityError::TooLarge {
            requested: capacity,
        },
    ))?;
    if region.len() < layout.total_len {
        return Err(ShmError::RegionTooSmall {
            required: layout.total_len,
            actual: region.len(),
        });
    }
    let (cell_layout, index_map) = discriminants_for::<PayloadDesc, DescCell, LinearMap>()?;

    let header = header_of(region);
    header.begin_init()?;
    // SAFETY: offsets in bounds (checked above) and aligned
    // (bytes_region_layout); the INITIALIZING claim makes the region
    // exclusively ours until READY. See format_impl for the count/wait
    // conventions.
    unsafe {
        let base = region.as_ptr();
        let state = base.add(layout.state_offset) as *mut QueueState;
        state.write(QueueState::new(cap_log2, 1, 0).with_shared_wait());
        let cells = base.add(layout.cells_offset) as *mut DescCell;
        for i in 0..(1usize << cap_log2) {
            cells.add(i).write(DescCell::empty());
        }
    }
    header.publish_ready(
        &QueueConfig {
            variant,
            cell_layout,
            index_map,
            cap_log2,
            slot_log2,
            elem_size: core::mem::size_of::<PayloadDesc>() as u32,
            elem_align: core::mem::align_of::<PayloadDesc>() as u32,
            state_offset: layout.state_offset as u32,
            cells_offset: layout.cells_offset as u32,
            region_len: layout.total_len as u64,
        },
        process_id(),
    )?;
    Ok(())
}

/// Waits for `READY`, then validates that the region holds exactly the
/// bytes queue `variant` describes. Returns the recomputed layout plus the
/// decoded config (for `cap_log2`/`slot_log2`).
fn validate_bytes_attach(
    region: &ShmRegion,
    variant: u8,
) -> Result<(BytesRegionLayout, QueueConfig), ShmError> {
    if region.len() < core::mem::size_of::<RegionHeader>() {
        return Err(ShmError::RegionTooSmall {
            required: core::mem::size_of::<RegionHeader>(),
            actual: region.len(),
        });
    }
    let header = header_of(region);
    header.wait_ready(ATTACH_TIMEOUT)?;
    let cfg = QueueConfig::decode(header.config_words())?;
    let mismatch = |field, expected: u64, found: u64| {
        Err(ShmError::ConfigMismatch {
            field,
            expected,
            found,
        })
    };
    if cfg.variant != variant {
        return mismatch("variant", u64::from(variant), u64::from(cfg.variant));
    }
    let (cell_layout, index_map) = discriminants_for::<PayloadDesc, DescCell, LinearMap>()?;
    if cfg.cell_layout != cell_layout {
        return mismatch(
            "cell layout",
            u64::from(cell_layout),
            u64::from(cfg.cell_layout),
        );
    }
    if cfg.index_map != index_map {
        return mismatch("index map", u64::from(index_map), u64::from(cfg.index_map));
    }
    if u64::from(cfg.elem_size) != core::mem::size_of::<PayloadDesc>() as u64 {
        return mismatch(
            "element size",
            core::mem::size_of::<PayloadDesc>() as u64,
            u64::from(cfg.elem_size),
        );
    }
    if u64::from(cfg.elem_align) != core::mem::align_of::<PayloadDesc>() as u64 {
        return mismatch(
            "element alignment",
            core::mem::align_of::<PayloadDesc>() as u64,
            u64::from(cfg.elem_align),
        );
    }
    let layout = bytes_region_layout(cfg.cap_log2, cfg.slot_log2).ok_or(ShmError::BadConfig {
        field: "capacity exponent",
    })?;
    if cfg.state_offset as usize != layout.state_offset {
        return mismatch(
            "state offset",
            layout.state_offset as u64,
            u64::from(cfg.state_offset),
        );
    }
    if cfg.cells_offset as usize != layout.cells_offset {
        return mismatch(
            "cells offset",
            layout.cells_offset as u64,
            u64::from(cfg.cells_offset),
        );
    }
    if cfg.region_len != layout.total_len as u64 {
        return mismatch("region length", layout.total_len as u64, cfg.region_len);
    }
    if region.len() < layout.total_len {
        return Err(ShmError::RegionTooSmall {
            required: layout.total_len,
            actual: region.len(),
        });
    }
    Ok((layout, cfg))
}

/// Builds the raw descriptor queue and slot-region views over a validated
/// bytes region.
///
/// # Safety
///
/// `layout`/`cfg` must come from [`validate_bytes_attach`] (or the
/// formatter past its writes) against this same region.
unsafe fn bytes_queue_view(
    region: &ShmRegion,
    layout: &BytesRegionLayout,
    cfg: &QueueConfig,
) -> (RawQueue<PayloadDesc, DescCell, LinearMap>, SlotRegion) {
    let base = region.as_ptr();
    // SAFETY: offsets in bounds and aligned per the caller's validation;
    // the slot region covers 2^cap_log2 buffers of 2^slot_log2 bytes by
    // bytes_region_layout construction, pinned while the region is mapped.
    unsafe {
        let state = base.add(layout.state_offset) as *const QueueState;
        let cells = base.add(layout.cells_offset) as *const DescCell;
        let q = RawQueue::from_raw(state, cells);
        let slots = SlotRegion::from_raw(
            base.add(layout.slots_offset),
            1usize << cfg.slot_log2,
            cfg.cap_log2,
        );
        (q, slots)
    }
}

/// The spill policy a shared-memory bytes variant runs:
/// [chained](SpillMode::Chain) across cells for SPSC (the continuation
/// bytes live in slot buffers, so reassembly works cross-process), and
/// [refusal](SpillMode::Refuse) for SPMC — heap spill pointers cannot
/// cross address spaces, and truncation is never an option.
fn bytes_spill_for(variant: u8) -> SpillMode {
    if variant == VARIANT_SPSC_BYTES {
        SpillMode::Chain
    } else {
        SpillMode::Refuse
    }
}

fn attach_bytes_producer_impl(
    region: ShmRegion,
    variant: u8,
) -> Result<ShmBytesProducer, ShmError> {
    let (layout, cfg) = validate_bytes_attach(&region, variant)?;
    let header = header_of(&region);
    if header.is_poisoned() {
        return Err(ShmError::Poisoned);
    }
    if !header.producer_slot().try_claim(process_id()) {
        return Err(ShmError::ProducerAttached);
    }
    // SAFETY: layout validated against the READY region.
    let (q, slots) = unsafe { bytes_queue_view(&region, &layout, &cfg) };
    // Same conventions as the typed attach: re-arm the pre-reserved
    // producer count a previous clean detach may have dropped.
    q.state().producers().store(1, Ordering::Release);
    let heartbeat = header.producer_slot().heartbeat();
    // SAFETY: unique producer (slot claim); region pinned by the handle.
    let raw = unsafe { RawProducer::attach(q) };
    // SAFETY: slots is the region every peer recomputes from the same
    // header config; Heap spill is never selected here (see
    // bytes_spill_for), so no pointer crosses address spaces. Broadcast
    // wakes for SPMC — see attach_producer_impl.
    let mut engine = unsafe {
        SpProducer::from_raw_parts(raw, slots, bytes_spill_for(variant), {
            variant == VARIANT_SPMC_BYTES
        })
    };
    engine.set_wait_config(shm_wait_config());
    Ok(ShmBytesProducer {
        engine: Some(engine),
        q,
        region,
        heartbeat,
    })
}

/// The producer side of a shared-memory zero-copy bytes queue (SPSC and
/// SPMC — the single-producer engine is identical; the variant gates the
/// consumer side and the oversize policy).
///
/// [`reserve`](Self::reserve) hands out a [`WriteSlot`] pointing straight
/// into the mapped slot buffer: fill it in place and
/// [`commit`](WriteSlot::commit) — consumers in other processes read the
/// same bytes borrowed, with no copy in between.
pub struct ShmBytesProducer {
    /// `Some` until Drop: torn down before the header slot is released so
    /// a successor can never overlap this engine's shared-memory accesses.
    engine: Option<SpProducer>,
    q: RawQueue<PayloadDesc, DescCell, LinearMap>,
    region: ShmRegion,
    heartbeat: u64,
}

impl ShmBytesProducer {
    fn header(&self) -> &RegionHeader {
        header_of(&self.region)
    }

    /// Reserves an in-place writable buffer for a `len`-byte payload,
    /// blocking (bounded parks + liveness probes, like
    /// [`ShmProducer::enqueue`]) while the queue is full.
    ///
    /// Fails only permanently: a payload no reservation on this queue can
    /// satisfy ([`ShmReserveError::TooLarge`] — never truncation), or a
    /// poisoned queue. Dropping the returned [`WriteSlot`] uncommitted
    /// aborts the reservation; consumers never observe it.
    pub fn reserve(&mut self, len: usize) -> Result<WriteSlot<'_, SpProducer>, ShmReserveError> {
        let engine = self.engine.as_mut().expect("live until drop");
        let mut strat = WaitStrategy::new(engine.wait_config());
        loop {
            match engine.try_reserve_pending(len) {
                Ok(()) => break,
                Err(TryReserveError::TooLarge { len, max }) => {
                    return Err(ShmReserveError::TooLarge { len, max });
                }
                Err(TryReserveError::Full) => {
                    engine.full_wait_round(len, &mut strat, Some(Instant::now() + BLOCK_SLICE));
                    // Stay visibly alive to consumers while blocked.
                    self.heartbeat += 1;
                    let header = header_of(&self.region);
                    header.producer_slot().store_heartbeat(self.heartbeat);
                    if header.is_poisoned() {
                        return Err(ShmReserveError::Poisoned);
                    }
                    if consumers_look_dead(header) {
                        header.poison();
                        self.q.state().wake_all();
                        return Err(ShmReserveError::Poisoned);
                    }
                }
            }
        }
        self.heartbeat += 1;
        header_of(&self.region)
            .producer_slot()
            .store_heartbeat(self.heartbeat);
        Ok(engine.pending_slot().expect("reservation just succeeded"))
    }

    /// Reserves without blocking; [`TryReserveError::Full`] if no cell (or
    /// chain run) is free right now. Check
    /// [`is_poisoned`](Self::is_poisoned) separately if fullness persists.
    pub fn try_reserve(
        &mut self,
        len: usize,
    ) -> Result<WriteSlot<'_, SpProducer>, TryReserveError> {
        let engine = self.engine.as_mut().expect("live until drop");
        engine.try_reserve_pending(len)?;
        self.heartbeat += 1;
        header_of(&self.region)
            .producer_slot()
            .store_heartbeat(self.heartbeat);
        Ok(engine.pending_slot().expect("reservation just succeeded"))
    }

    /// Copy-in convenience: `reserve(payload.len())`, copy, commit.
    pub fn send_bytes(&mut self, payload: &[u8]) -> Result<(), ShmReserveError> {
        let mut slot = self.reserve(payload.len())?;
        slot.copy_from_slice(payload);
        slot.commit();
        Ok(())
    }

    /// The largest payload a reserve on this queue can ever satisfy
    /// (`capacity/2 × slot_bytes` for the chained SPSC flavor, one slot
    /// buffer for SPMC).
    pub fn max_payload(&self) -> usize {
        self.engine.as_ref().expect("live until drop").max_payload()
    }

    /// Bytes per slot buffer — the largest payload that avoids the
    /// chain-spill path.
    pub fn slot_bytes(&self) -> usize {
        self.engine.as_ref().expect("live until drop").slot_bytes()
    }

    /// Capacity of the shared descriptor-cell array.
    pub fn capacity(&self) -> usize {
        self.engine.as_ref().expect("live until drop").capacity()
    }

    /// Replaces the wait policy used while blocked on a full queue; see
    /// [`ffq::WaitConfig`].
    pub fn set_wait_config(&mut self, cfg: ffq::WaitConfig) {
        self.engine
            .as_mut()
            .expect("live until drop")
            .set_wait_config(cfg);
    }

    /// `true` once the queue is poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.header().is_poisoned()
    }

    /// Explicitly poisons the queue for every attached handle.
    pub fn poison(&self) {
        self.header().poison();
        self.q.state().wake_all();
    }

    /// Snapshot of this producer's counters.
    pub fn stats(&self) -> ProducerStats {
        self.engine.as_ref().expect("live until drop").stats()
    }
}

impl Drop for ShmBytesProducer {
    fn drop(&mut self) {
        // Engine first (aborts any leaked uncommitted reservation), then
        // the clean typed-producer detach: count, wake, vacate the slot —
        // strictly after the engine can no longer touch the region.
        self.engine.take();
        let state = self.q.state();
        state.producers().fetch_sub(1, Ordering::Release);
        state.wake_all();
        self.header().producer_slot().release();
    }
}

/// What every bytes-consumer attach produces: the raw queue view, the
/// slot-buffer region, and the dead-peer watchdog.
type BytesAttachParts = (
    RawQueue<PayloadDesc, DescCell, LinearMap>,
    SlotRegion,
    PeerWatch,
);

fn attach_bytes_consumer_common(
    region: &ShmRegion,
    variant: u8,
    spsc: bool,
) -> Result<BytesAttachParts, ShmError> {
    let (layout, cfg) = validate_bytes_attach(region, variant)?;
    let header = header_of(region);
    if header.is_poisoned() {
        return Err(ShmError::Poisoned);
    }
    let pid = process_id();
    let slot = if spsc {
        if !header.consumer_slot(0).try_claim(pid) {
            return Err(ShmError::SlotsFull);
        }
        0
    } else {
        header.claim_consumer_slot(pid).ok_or(ShmError::SlotsFull)?
    };
    // SAFETY: layout validated against the READY region.
    let (q, slots) = unsafe { bytes_queue_view(region, &layout, &cfg) };
    q.state().consumers().fetch_add(1, Ordering::AcqRel);
    let watch = PeerWatch {
        slot,
        last_producer_hb: header.producer_slot().heartbeat(),
    };
    Ok((q, slots, watch))
}

macro_rules! bytes_consumer_common_impl {
    ($engine_ty:ty) => {
        fn header(&self) -> &RegionHeader {
            header_of(&self.region)
        }

        /// Claims the next payload without blocking. The returned
        /// [`PayloadRef`] borrows the bytes in the mapped slot region;
        /// the cell recycles when it drops.
        pub fn try_recv(&mut self) -> Result<PayloadRef<'_, $engine_ty>, ShmTryDequeueError> {
            let engine = self.engine.as_mut().expect("live until drop");
            match engine.try_claim_payload() {
                Ok(()) => {}
                Err(TryDequeueError::Disconnected) => return Err(ShmTryDequeueError::Disconnected),
                Err(TryDequeueError::Empty) => {
                    return Err(if header_of(&self.region).is_poisoned() {
                        ShmTryDequeueError::Poisoned
                    } else {
                        ShmTryDequeueError::Empty
                    })
                }
            }
            // Infallible: the claim is already held (claiming is
            // idempotent), so this only builds the guard.
            Ok(engine.try_recv().expect("payload already claimed"))
        }

        /// Claims the next payload, waiting — bounded parks on the
        /// process-shared futex, with the same producer liveness probes as
        /// the typed [`dequeue`](ShmSpscConsumer::dequeue) — while the
        /// queue is empty.
        pub fn recv(&mut self) -> Result<PayloadRef<'_, $engine_ty>, ShmDequeueError> {
            let engine = self.engine.as_mut().expect("live until drop");
            let mut strat = WaitStrategy::new(engine.wait_config());
            let mut slice_end = Instant::now() + BLOCK_SLICE;
            loop {
                match engine.try_claim_payload() {
                    Ok(()) => break,
                    Err(TryDequeueError::Disconnected) => {
                        return Err(ShmDequeueError::Disconnected)
                    }
                    Err(TryDequeueError::Empty) => {
                        let round = engine.empty_wait_round(&mut strat, Some(slice_end));
                        if round == WaitRound::Expired || Instant::now() >= slice_end {
                            if self.watch.empty_tick(header_of(&self.region)) {
                                self.q.state().wake_all();
                                return Err(ShmDequeueError::Poisoned);
                            }
                            slice_end = Instant::now() + BLOCK_SLICE;
                        }
                    }
                }
            }
            Ok(engine.try_recv().expect("payload already claimed"))
        }

        /// Claims the next payload, giving up with
        /// [`ShmTryDequeueError::Empty`] after `timeout`. Runs the same
        /// liveness probes as [`recv`](Self::recv).
        pub fn recv_timeout(
            &mut self,
            timeout: Duration,
        ) -> Result<PayloadRef<'_, $engine_ty>, ShmTryDequeueError> {
            let deadline = Instant::now() + timeout;
            let engine = self.engine.as_mut().expect("live until drop");
            let mut strat = WaitStrategy::new(engine.wait_config());
            let mut slice_end = Instant::now() + BLOCK_SLICE;
            loop {
                match engine.try_claim_payload() {
                    Ok(()) => break,
                    Err(TryDequeueError::Disconnected) => {
                        return Err(ShmTryDequeueError::Disconnected)
                    }
                    Err(TryDequeueError::Empty) => {
                        if Instant::now() >= deadline {
                            return Err(ShmTryDequeueError::Empty);
                        }
                        let round =
                            engine.empty_wait_round(&mut strat, Some(slice_end.min(deadline)));
                        if round == WaitRound::Expired || Instant::now() >= slice_end {
                            if self.watch.empty_tick(header_of(&self.region)) {
                                self.q.state().wake_all();
                                return Err(ShmTryDequeueError::Poisoned);
                            }
                            slice_end = Instant::now() + BLOCK_SLICE;
                        }
                    }
                }
            }
            Ok(engine.try_recv().expect("payload already claimed"))
        }

        /// Replaces the wait policy used inside blocked slices; see
        /// [`ffq::WaitConfig`].
        pub fn set_wait_config(&mut self, cfg: ffq::WaitConfig) {
            self.engine
                .as_mut()
                .expect("live until drop")
                .set_wait_config(cfg);
        }

        /// Capacity of the shared descriptor-cell array.
        pub fn capacity(&self) -> usize {
            self.engine.as_ref().expect("live until drop").capacity()
        }

        /// `true` once the queue is poisoned.
        pub fn is_poisoned(&self) -> bool {
            self.header().is_poisoned()
        }

        /// Explicitly poisons the queue for every attached handle.
        pub fn poison(&self) {
            self.header().poison();
            self.q.state().wake_all();
        }

        /// Snapshot of this consumer's counters.
        pub fn stats(&self) -> ConsumerStats {
            self.engine.as_ref().expect("live until drop").stats()
        }
    };
}

/// The unique consumer of a shared-memory SPSC bytes queue: payloads —
/// including chain-spilled ones larger than a slot buffer — come out
/// borrowed from (or reassembled out of) the mapped slot region.
pub struct ShmBytesSpscConsumer {
    /// `Some` until Drop: torn down (retiring any claimed rank) before the
    /// header slot is released, so a successor consumer can never overlap
    /// this engine's shared-memory accesses.
    engine: Option<SpscConsumer>,
    q: RawQueue<PayloadDesc, DescCell, LinearMap>,
    region: ShmRegion,
    watch: PeerWatch,
}

impl ShmBytesSpscConsumer {
    bytes_consumer_common_impl!(SpscConsumer);
}

impl Drop for ShmBytesSpscConsumer {
    fn drop(&mut self) {
        // Engine first (releases a held claim), then detach.
        self.engine.take();
        consumer_detach(self.q.state(), header_of(&self.region), self.watch.slot);
    }
}

/// A shared-head consumer on a shared-memory SPMC bytes queue. Attach up
/// to [`MAX_CONSUMERS`](crate::header::MAX_CONSUMERS), from any mix of
/// processes and threads; each payload is delivered to exactly one.
pub struct ShmBytesSpmcConsumer {
    /// `Some` until Drop — see [`ShmBytesSpscConsumer::engine`].
    engine: Option<McConsumer<false>>,
    q: RawQueue<PayloadDesc, DescCell, LinearMap>,
    region: ShmRegion,
    watch: PeerWatch,
}

impl ShmBytesSpmcConsumer {
    bytes_consumer_common_impl!(McConsumer<false>);
}

impl Drop for ShmBytesSpmcConsumer {
    fn drop(&mut self) {
        // Engine first (releases a held claim, re-circulates pending
        // ranks), then detach.
        self.engine.take();
        consumer_detach(self.q.state(), header_of(&self.region), self.watch.slot);
    }
}

macro_rules! bytes_variant_module {
    ($variant:expr) => {
        /// Bytes a region must have for a queue of at least `capacity`
        /// descriptor cells with `slot_bytes`-byte payload buffers (both
        /// normalized up to powers of two). Pass the result to
        /// [`ShmRegion::create`] /
        /// [`ShmRegion::create_memfd`](crate::region::ShmRegion::create_memfd).
        pub fn required_size(capacity: usize, slot_bytes: usize) -> Result<usize, ShmError> {
            let cap_log2 = ffq::normalize_capacity(capacity)?;
            let slot = ffq::normalize_slot_bytes(slot_bytes)?;
            bytes_region_layout(cap_log2, slot.trailing_zeros() as u8)
                .map(|l| l.total_len)
                .ok_or(ShmError::Capacity(ffq::CapacityError::TooLarge {
                    requested: capacity,
                }))
        }

        /// Formats `region` as this variant's bytes queue *without*
        /// attaching. Exactly one process may format a region, ever.
        pub fn format(
            region: &ShmRegion,
            capacity: usize,
            slot_bytes: usize,
        ) -> Result<(), ShmError> {
            format_bytes_impl(region, capacity, slot_bytes, $variant)
        }

        /// Formats `region` and attaches as its producer in one step — the
        /// usual creator path.
        pub fn create(
            region: ShmRegion,
            capacity: usize,
            slot_bytes: usize,
        ) -> Result<Producer, ShmError> {
            format(&region, capacity, slot_bytes)?;
            attach_producer(region)
        }

        /// Attaches as the producer of an already-formatted bytes region
        /// (waits for `READY`). Exclusive while a live handle holds the
        /// producer side; reattachable after a clean detach.
        pub fn attach_producer(region: ShmRegion) -> Result<Producer, ShmError> {
            attach_bytes_producer_impl(region, $variant)
        }
    };
}

/// Single-producer/single-consumer zero-copy bytes queues in shared
/// memory. Payloads larger than a slot buffer spill by *chaining* across
/// cells — the continuation bytes live in slot buffers too, so reassembly
/// works across address spaces (up to `capacity/2 × slot_bytes`).
///
/// **Crash caveat:** a producer killed in the few instructions between
/// publishing a chain head and its continuation cells leaves the consumer
/// reassembling a run whose tail never arrives; the reassembly loop has no
/// liveness probe, so that consumer spins until its process is restarted
/// (single-cell payloads are immune — publish is one atomic store). Size
/// `slot_bytes` for the common payload and treat chains as a convenience
/// for rare outliers.
pub mod spsc_bytes {
    use super::*;

    /// The producer handle ([`ShmBytesProducer`] — shared with
    /// [`spmc_bytes`](super::spmc_bytes)).
    pub use super::ShmBytesProducer as Producer;
    /// The consumer handle.
    pub use super::ShmBytesSpscConsumer as Consumer;

    bytes_variant_module!(VARIANT_SPSC_BYTES);

    /// Attaches the unique consumer of an already-formatted SPSC bytes
    /// region (waits for `READY`). A second live consumer is refused with
    /// [`ShmError::SlotsFull`].
    pub fn attach_consumer(region: ShmRegion) -> Result<Consumer, ShmError> {
        let (q, slots, watch) = attach_bytes_consumer_common(&region, VARIANT_SPSC_BYTES, true)?;
        // SAFETY: validated READY region; consumer uniqueness enforced by
        // the exclusive claim on header slot 0.
        let raw = unsafe { RawSpscConsumer::attach(q) };
        // SAFETY: same slot region every peer recomputes from the header
        // config; Chain matches the producer's mode for this variant and
        // needs no shared address space.
        let mut engine = unsafe { SpscConsumer::from_raw_parts(raw, slots, SpillMode::Chain) };
        engine.set_wait_config(shm_wait_config());
        Ok(Consumer {
            engine: Some(engine),
            q,
            region,
            watch,
        })
    }
}

/// Single-producer/multiple-consumer zero-copy bytes queues in shared
/// memory. Payloads are bounded by one slot buffer: oversize reserves are
/// *refused* ([`ShmReserveError::TooLarge`]) — chains cannot be handed to
/// a shared-head consumer and heap spill cannot cross address spaces, and
/// silent truncation is never an option.
pub mod spmc_bytes {
    use super::*;

    /// The producer handle ([`ShmBytesProducer`] — shared with
    /// [`spsc_bytes`](super::spsc_bytes)).
    pub use super::ShmBytesProducer as Producer;
    /// The consumer handle.
    pub use super::ShmBytesSpmcConsumer as Consumer;

    bytes_variant_module!(VARIANT_SPMC_BYTES);

    /// Attaches a consumer to an already-formatted SPMC bytes region
    /// (waits for `READY`). Up to
    /// [`MAX_CONSUMERS`](crate::header::MAX_CONSUMERS) may be attached at
    /// once, from any mix of processes and threads.
    pub fn attach_consumer(region: ShmRegion) -> Result<Consumer, ShmError> {
        let (q, slots, watch) = attach_bytes_consumer_common(&region, VARIANT_SPMC_BYTES, false)?;
        // SAFETY: validated READY region; shared-head consumers may attach
        // in any number up to the slot limit.
        let raw = unsafe { RawConsumer::attach(q) };
        // SAFETY: same slot region every peer recomputes from the header
        // config; Refuse matches the producer's mode for this variant.
        let mut engine = unsafe { McConsumer::from_raw_parts(raw, slots, SpillMode::Refuse) };
        engine.set_wait_config(shm_wait_config());
        Ok(Consumer {
            engine: Some(engine),
            q,
            region,
            watch,
        })
    }
}

impl core::fmt::Debug for ShmBytesProducer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShmBytesProducer")
            .field("capacity", &self.capacity())
            .field("slot_bytes", &self.slot_bytes())
            .field("heartbeat", &self.heartbeat)
            .finish_non_exhaustive()
    }
}

impl core::fmt::Debug for ShmBytesSpscConsumer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShmBytesSpscConsumer")
            .field("capacity", &self.capacity())
            .finish_non_exhaustive()
    }
}

impl core::fmt::Debug for ShmBytesSpmcConsumer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShmBytesSpmcConsumer")
            .field("capacity", &self.capacity())
            .field("slot", &self.watch.slot)
            .finish_non_exhaustive()
    }
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> core::fmt::Debug for ShmProducer<T, C, M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShmProducer")
            .field("capacity", &self.raw.capacity())
            .field("heartbeat", &self.heartbeat)
            .finish_non_exhaustive()
    }
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> core::fmt::Debug for ShmSpmcConsumer<T, C, M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShmSpmcConsumer")
            .field("capacity", &self.raw.capacity())
            .field("slot", &self.watch.slot)
            .finish_non_exhaustive()
    }
}

impl<T: ShmSafe, C: CellSlot<T>, M: IndexMap> core::fmt::Debug for ShmSpscConsumer<T, C, M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShmSpscConsumer")
            .field("capacity", &self.raw.capacity())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::MAX_CONSUMERS;
    use std::sync::atomic::{AtomicU64, Ordering as AtOrdering};
    use std::sync::Arc;
    use std::thread;

    fn memfd_for_spsc(capacity: usize) -> ShmRegion {
        ShmRegion::create_memfd(spsc::required_size::<u64>(capacity).unwrap()).unwrap()
    }

    #[test]
    fn handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<spsc::Producer<u64>>();
        assert_send::<spsc::Consumer<u64>>();
        assert_send::<spmc::Consumer<u64>>();
    }

    #[test]
    fn spsc_round_trip_through_a_second_mapping() {
        let region = memfd_for_spsc(256);
        let mut tx = spsc::create::<u64>(region.clone(), 256).unwrap();
        // The consumer maps the same bytes at a different address — the
        // in-process stand-in for a second process.
        let mut rx = spsc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        assert_eq!(tx.capacity(), 256);
        assert_eq!(rx.capacity(), 256);

        let t = thread::spawn(move || {
            let mut next = 0u64;
            loop {
                match rx.dequeue() {
                    Ok(v) => {
                        assert_eq!(v, next, "SPSC must preserve FIFO order");
                        next += 1;
                    }
                    Err(ShmDequeueError::Disconnected) => return next,
                    Err(e) => panic!("unexpected {e:?}"),
                }
            }
        });
        for i in 0..50_000u64 {
            tx.enqueue(i).unwrap();
        }
        drop(tx);
        assert_eq!(t.join().unwrap(), 50_000);
    }

    #[test]
    fn spmc_fan_out_across_mappings() {
        const ITEMS: u64 = 100_000;
        let region = ShmRegion::create_memfd(spmc::required_size::<u64>(1024).unwrap()).unwrap();
        let mut tx = spmc::create::<u64>(region.clone(), 1024).unwrap();

        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let mut rx = spmc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
                let (sum, count) = (Arc::clone(&sum), Arc::clone(&count));
                thread::spawn(move || {
                    let mut last = None;
                    loop {
                        match rx.dequeue() {
                            Ok(v) => {
                                // Per-consumer FIFO: ranks a consumer
                                // receives are increasing.
                                if let Some(prev) = last {
                                    assert!(v > prev, "per-consumer order violated");
                                }
                                last = Some(v);
                                sum.fetch_add(v, AtOrdering::Relaxed);
                                count.fetch_add(1, AtOrdering::Relaxed);
                            }
                            Err(ShmDequeueError::Disconnected) => return,
                            Err(e) => panic!("unexpected {e:?}"),
                        }
                    }
                })
            })
            .collect();

        for i in 0..ITEMS {
            tx.enqueue(i).unwrap();
        }
        drop(tx);
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(count.load(AtOrdering::Relaxed), ITEMS);
        assert_eq!(sum.load(AtOrdering::Relaxed), ITEMS * (ITEMS - 1) / 2);
    }

    #[test]
    fn attach_validates_the_configuration() {
        let region = memfd_for_spsc(64);
        spsc::format::<u64>(&region, 64).unwrap();
        // Wrong variant. The refusal names both sides so the operator can
        // see what the attaching binary wanted vs what the region holds.
        assert_eq!(
            spmc::attach_consumer::<u64>(region.remap().unwrap()).unwrap_err(),
            ShmError::ConfigMismatch {
                field: "variant",
                expected: u64::from(VARIANT_SPMC),
                found: u64::from(VARIANT_SPSC),
            }
        );
        // Wrong element type (size differs).
        assert_eq!(
            spsc::attach_consumer::<u32>(region.remap().unwrap()).unwrap_err(),
            ShmError::ConfigMismatch {
                field: "element size",
                expected: 4,
                found: 8,
            }
        );
        // Wrong cell layout.
        assert_eq!(
            spsc::attach_consumer_with::<u64, ffq::cell::CompactCell<u64>, LinearMap>(
                region.remap().unwrap()
            )
            .unwrap_err(),
            ShmError::ConfigMismatch {
                field: "cell layout",
                expected: 2,
                found: 1,
            }
        );
        // Wrong index map.
        assert_eq!(
            spsc::attach_consumer_with::<u64, PaddedCell<u64>, ffq::layout::RotateMap>(
                region.remap().unwrap()
            )
            .unwrap_err(),
            ShmError::ConfigMismatch {
                field: "index map",
                expected: 2,
                found: 1,
            }
        );
        // Matching attach still works after all those rejections.
        let rx = spsc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        drop(rx);
    }

    #[test]
    fn format_errors() {
        let region = memfd_for_spsc(64);
        assert_eq!(
            spsc::format::<u64>(&region, 0).unwrap_err(),
            ShmError::Capacity(ffq::CapacityError::Zero)
        );
        assert!(matches!(
            spsc::format::<u64>(&region, 1 << 20).unwrap_err(),
            ShmError::RegionTooSmall { .. }
        ));
        spsc::format::<u64>(&region, 64).unwrap();
        assert_eq!(
            spsc::format::<u64>(&region, 64).unwrap_err(),
            ShmError::AlreadyFormatted
        );
    }

    #[test]
    fn producer_side_is_exclusive_but_reattachable() {
        let region = memfd_for_spsc(64);
        let mut tx = spsc::create::<u64>(region.clone(), 64).unwrap();
        tx.enqueue(1).unwrap();
        tx.enqueue(2).unwrap();
        assert_eq!(
            spsc::attach_producer::<u64>(region.remap().unwrap()).unwrap_err(),
            ShmError::ProducerAttached
        );
        drop(tx);
        // Clean detach: a successor resumes from the mirrored tail.
        let mut tx2 = spsc::attach_producer::<u64>(region.remap().unwrap()).unwrap();
        tx2.enqueue(3).unwrap();
        let mut rx = spsc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        assert_eq!(rx.dequeue(), Ok(1));
        assert_eq!(rx.dequeue(), Ok(2));
        assert_eq!(rx.dequeue(), Ok(3));
        drop(tx2);
        assert_eq!(rx.dequeue(), Err(ShmDequeueError::Disconnected));
    }

    #[test]
    fn spsc_allows_exactly_one_consumer() {
        let region = memfd_for_spsc(64);
        spsc::format::<u64>(&region, 64).unwrap();
        let rx = spsc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        assert_eq!(
            spsc::attach_consumer::<u64>(region.remap().unwrap()).unwrap_err(),
            ShmError::SlotsFull
        );
        drop(rx);
        assert!(spsc::attach_consumer::<u64>(region.remap().unwrap()).is_ok());
    }

    #[test]
    fn spmc_consumer_slots_exhaust() {
        let region = ShmRegion::create_memfd(spmc::required_size::<u64>(64).unwrap()).unwrap();
        spmc::format::<u64>(&region, 64).unwrap();
        let held: Vec<_> = (0..MAX_CONSUMERS)
            .map(|_| spmc::attach_consumer::<u64>(region.clone()).unwrap())
            .collect();
        assert_eq!(
            spmc::attach_consumer::<u64>(region.clone()).unwrap_err(),
            ShmError::SlotsFull
        );
        drop(held);
        assert!(spmc::attach_consumer::<u64>(region).is_ok());
    }

    #[test]
    fn explicit_poison_unblocks_a_waiting_consumer() {
        let region = ShmRegion::create_memfd(spmc::required_size::<u64>(64).unwrap()).unwrap();
        let tx = spmc::create::<u64>(region.clone(), 64).unwrap();
        let mut rx = spmc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        let t = thread::spawn(move || rx.dequeue());
        thread::sleep(Duration::from_millis(20));
        tx.poison();
        assert_eq!(t.join().unwrap(), Err(ShmDequeueError::Poisoned));
        assert!(tx.is_poisoned());
        // Attaching to a poisoned queue is refused.
        assert_eq!(
            spmc::attach_consumer::<u64>(region.remap().unwrap()).unwrap_err(),
            ShmError::Poisoned
        );
    }

    #[test]
    fn dead_producer_pid_poisons_the_queue() {
        // Simulate a crashed producer without forking: register a pid that
        // cannot exist (beyond Linux's PID_MAX_LIMIT of 2^22) in the
        // producer slot. The consumer's heartbeat probe finds it stalled,
        // the kill(2) probe reports ESRCH, and the queue poisons.
        let region = ShmRegion::create_memfd(spmc::required_size::<u64>(64).unwrap()).unwrap();
        spmc::format::<u64>(&region, 64).unwrap();
        assert!(header_of(&region).producer_slot().try_claim((1 << 22) + 1));
        let mut rx = spmc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        let start = Instant::now();
        assert_eq!(
            rx.dequeue_timeout(Duration::from_secs(10)),
            Err(ShmTryDequeueError::Poisoned),
            "consumer must observe the crash, not time out"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "crash detection must be bounded"
        );
        assert!(rx.is_poisoned());
    }

    #[test]
    fn try_dequeue_reports_poison_only_when_drained() {
        let region = memfd_for_spsc(64);
        let mut tx = spsc::create::<u64>(region.clone(), 64).unwrap();
        let mut rx = spsc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        tx.enqueue(7).unwrap();
        tx.poison();
        // The published item is still delivered; poison surfaces after.
        assert_eq!(rx.try_dequeue(), Ok(7));
        assert_eq!(rx.try_dequeue(), Err(ShmTryDequeueError::Poisoned));
        // A poisoned producer can no longer block forever either.
        assert_eq!(tx.enqueue(8), Ok(()), "space available: enqueue succeeds");
    }

    /// Deterministic payload for bytes tests: content derived from
    /// (index, length) so misdelivery or tearing cannot verify.
    fn bytes_payload(i: usize, len: usize) -> Vec<u8> {
        (0..len)
            .map(|j| (i as u8) ^ (j as u8).wrapping_mul(151).wrapping_add(29))
            .collect()
    }

    #[test]
    fn bytes_spsc_round_trip_through_a_second_mapping() {
        // Variable sizes through a second mapping of the same bytes:
        // inline, slot-exact and chain-spilled payloads all come out
        // byte-identical and in order on the far side.
        let region = ShmRegion::create_memfd(spsc_bytes::required_size(64, 64).unwrap()).unwrap();
        let mut tx = spsc_bytes::create(region.clone(), 64, 64).unwrap();
        assert_eq!(tx.slot_bytes(), 64);
        let mut rx = spsc_bytes::attach_consumer(region.remap().unwrap()).unwrap();

        let lens: Vec<usize> = (0..500)
            .map(|i| [0usize, 1, 17, 63, 64, 65, 200, 1000][i % 8])
            .collect();
        let expect = lens.clone();
        let t = thread::spawn(move || {
            let mut i = 0usize;
            loop {
                match rx.recv() {
                    Ok(view) => {
                        assert_eq!(view.len(), expect[i], "length corrupted");
                        assert_eq!(
                            &*view,
                            &bytes_payload(i, expect[i])[..],
                            "payload {i} corrupted"
                        );
                        i += 1;
                    }
                    Err(ShmDequeueError::Disconnected) => return i,
                    Err(e) => panic!("unexpected {e:?}"),
                }
            }
        });
        for (i, &len) in lens.iter().enumerate() {
            // Alternate the in-place path and the copy-in convenience.
            if i % 2 == 0 {
                let mut slot = tx.reserve(len).unwrap();
                slot.copy_from_slice(&bytes_payload(i, len));
                slot.commit();
            } else {
                tx.send_bytes(&bytes_payload(i, len)).unwrap();
            }
        }
        drop(tx);
        assert_eq!(t.join().unwrap(), lens.len());
    }

    #[test]
    fn bytes_spmc_fan_out_exactly_once() {
        let region = ShmRegion::create_memfd(spmc_bytes::required_size(256, 64).unwrap()).unwrap();
        let mut tx = spmc_bytes::create(region.clone(), 256, 64).unwrap();
        const ITEMS: usize = 20_000;

        let workers: Vec<_> = (0..3)
            .map(|_| {
                let mut rx = spmc_bytes::attach_consumer(region.remap().unwrap()).unwrap();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match rx.recv() {
                            Ok(view) => {
                                let mut idx = [0u8; 8];
                                idx.copy_from_slice(&view[..8]);
                                got.push(u64::from_le_bytes(idx) as usize);
                            }
                            Err(ShmDequeueError::Disconnected) => return got,
                            Err(e) => panic!("unexpected {e:?}"),
                        }
                    }
                })
            })
            .collect();

        for i in 0..ITEMS {
            let len = 8 + (i % 56);
            let mut msg = bytes_payload(i, len);
            msg[..8].copy_from_slice(&(i as u64).to_le_bytes());
            tx.send_bytes(&msg).unwrap();
        }
        drop(tx);
        let mut seen = vec![false; ITEMS];
        for w in workers {
            for i in w.join().unwrap() {
                assert!(!seen[i], "payload {i} delivered twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "payloads lost");
    }

    #[test]
    fn bytes_spmc_refuses_oversize_instead_of_truncating() {
        let region = ShmRegion::create_memfd(spmc_bytes::required_size(16, 64).unwrap()).unwrap();
        let mut tx = spmc_bytes::create(region.clone(), 16, 64).unwrap();
        // Multi-consumer shm queues cap payloads at one slot buffer.
        assert_eq!(tx.max_payload(), 64);
        assert_eq!(
            tx.send_bytes(&[0u8; 65]),
            Err(ShmReserveError::TooLarge { len: 65, max: 64 })
        );
        // The refusal consumed nothing: a max-size payload still flows.
        tx.send_bytes(&bytes_payload(0, 64)).unwrap();
        let mut rx = spmc_bytes::attach_consumer(region.remap().unwrap()).unwrap();
        let view = rx.recv().unwrap();
        assert_eq!(&*view, &bytes_payload(0, 64)[..]);
    }

    #[test]
    fn bytes_attach_validates_the_configuration() {
        let region = ShmRegion::create_memfd(spsc_bytes::required_size(64, 128).unwrap()).unwrap();
        spsc_bytes::format(&region, 64, 128).unwrap();
        // Typed attach onto a bytes region: refused by variant.
        assert_eq!(
            spsc::attach_consumer::<u64>(region.remap().unwrap()).unwrap_err(),
            ShmError::ConfigMismatch {
                field: "variant",
                expected: u64::from(VARIANT_SPSC),
                found: u64::from(VARIANT_SPSC_BYTES),
            }
        );
        // Wrong bytes flavor.
        assert_eq!(
            spmc_bytes::attach_consumer(region.remap().unwrap()).unwrap_err(),
            ShmError::ConfigMismatch {
                field: "variant",
                expected: u64::from(VARIANT_SPMC_BYTES),
                found: u64::from(VARIANT_SPSC_BYTES),
            }
        );
        // Matching attach works after the rejections, and recomputes the
        // slot geometry from the header (nothing to mis-specify).
        let mut tx = spsc_bytes::attach_producer(region.remap().unwrap()).unwrap();
        assert_eq!(tx.slot_bytes(), 128);
        let mut rx = spsc_bytes::attach_consumer(region.remap().unwrap()).unwrap();
        tx.send_bytes(b"hello").unwrap();
        assert_eq!(&*rx.recv().unwrap(), b"hello");
        // Bytes attach onto a typed region: also refused by variant.
        let typed = memfd_for_spsc(64);
        spsc::format::<u64>(&typed, 64).unwrap();
        assert_eq!(
            spsc_bytes::attach_consumer(typed.remap().unwrap()).unwrap_err(),
            ShmError::ConfigMismatch {
                field: "variant",
                expected: u64::from(VARIANT_SPSC_BYTES),
                found: u64::from(VARIANT_SPSC),
            }
        );
    }

    #[test]
    fn bytes_poison_unblocks_and_try_recv_drains_first() {
        let region = ShmRegion::create_memfd(spmc_bytes::required_size(16, 64).unwrap()).unwrap();
        let mut tx = spmc_bytes::create(region.clone(), 16, 64).unwrap();
        let mut rx = spmc_bytes::attach_consumer(region.remap().unwrap()).unwrap();
        tx.send_bytes(b"last words").unwrap();
        tx.poison();
        // Published payloads still drain; poison surfaces after.
        assert_eq!(&*rx.try_recv().unwrap(), b"last words");
        assert!(matches!(rx.try_recv(), Err(ShmTryDequeueError::Poisoned)));
        // Like the typed producer, a poisoned producer only *blocks* with
        // an error — with space available the reserve itself succeeds.
        assert_eq!(
            tx.send_bytes(b"x"),
            Ok(()),
            "space available: reserve succeeds"
        );
        assert_eq!(&*rx.try_recv().unwrap(), b"x");
        // A blocked consumer is released promptly with the poison.
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)),
            Err(ShmTryDequeueError::Poisoned)
        ));
    }

    #[test]
    fn bytes_dead_producer_pid_poisons_the_queue() {
        // Same crash simulation as the typed test: an impossible pid in
        // the producer slot, a stalled heartbeat, and the consumer's probe
        // escalates to poison instead of parking forever.
        let region = ShmRegion::create_memfd(spmc_bytes::required_size(16, 64).unwrap()).unwrap();
        spmc_bytes::format(&region, 16, 64).unwrap();
        assert!(header_of(&region).producer_slot().try_claim((1 << 22) + 1));
        let mut rx = spmc_bytes::attach_consumer(region.remap().unwrap()).unwrap();
        let start = Instant::now();
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)),
            Err(ShmTryDequeueError::Poisoned)
        ));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn bytes_slow_consumer_holding_a_view_degrades_not_corrupts() {
        // A consumer sitting on a borrowed PayloadRef keeps that cell
        // busy; the producer's try_reserve fails clean (no truncation, no
        // corruption) and everything drains once the view drops.
        let region = ShmRegion::create_memfd(spsc_bytes::required_size(4, 64).unwrap()).unwrap();
        let mut tx = spsc_bytes::create(region.clone(), 4, 64).unwrap();
        let mut rx = spsc_bytes::attach_consumer(region.remap().unwrap()).unwrap();
        for i in 0..4 {
            tx.send_bytes(&bytes_payload(i, 32)).unwrap();
        }
        let held = rx.try_recv().unwrap();
        assert_eq!(&*held, &bytes_payload(0, 32)[..]);
        // The ring is full behind the held rank; a wrapping reserve fails
        // without consuming anything.
        assert!(matches!(tx.try_reserve(64), Err(TryReserveError::Full)));
        drop(held);
        for i in 1..4 {
            assert_eq!(&*rx.recv().unwrap(), &bytes_payload(i, 32)[..]);
        }
        tx.send_bytes(b"after").unwrap();
        assert_eq!(&*rx.recv().unwrap(), b"after");
    }

    #[test]
    fn batched_paths_work_across_mappings() {
        let region = ShmRegion::create_memfd(spmc::required_size::<u64>(512).unwrap()).unwrap();
        let mut tx = spmc::create::<u64>(region.clone(), 512).unwrap();
        let mut rx = spmc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
        assert_eq!(tx.enqueue_many(0..300u64), 300);
        let mut buf = Vec::new();
        let mut got = 0;
        while got < 300 {
            got += rx.dequeue_batch(&mut buf, 64);
        }
        assert_eq!(buf, (0..300u64).collect::<Vec<_>>());
    }
}
