//! # ffq-shm — FFQ queues over POSIX shared memory
//!
//! Cross-process SPSC and SPMC FIFO queues built on `ffq`'s raw layer: the
//! queue's counter block and cell array live in a caller-provided
//! shared-memory region (`shm_open` or `memfd_create` + `mmap`), and
//! separate processes mapping the region — at different base addresses —
//! interoperate through the paper's rank/gap protocol alone. Nothing in a
//! region is a pointer: ranks are queue-relative integers and every
//! structure is `#[repr(C)]` with offsets recorded in a versioned header.
//!
//! ## Pieces
//!
//! * [`ShmRegion`] ([`region`]) — owns one `MAP_SHARED` mapping; named
//!   (`shm_open`) or anonymous (`memfd_create`, fd-inherited) backing.
//! * [`header`] — the region header: magic/version, a lifecycle word
//!   driving the `RAW → INITIALIZING → READY` create/attach handshake
//!   (`POISONED` absorbing), the encoded queue configuration, and per-peer
//!   pid + heartbeat slots.
//! * [`spsc`] / [`spmc`] — `create` / `attach_producer` /
//!   `attach_consumer` constructors returning handles that run the normal
//!   FFQ protocol, plus crash detection.
//! * [`spsc_bytes`] / [`spmc_bytes`] — zero-copy variable-size payload
//!   queues: descriptor cells plus a slot-buffer array in the same region;
//!   producers write payloads in place ([`ffq::WriteSlot`]) and consumers
//!   read them borrowed ([`ffq::PayloadRef`]) straight out of the mapping,
//!   with no copy crossing the process boundary.
//! * [`broadcast`] — pub-sub fan-out over the same region layout: every
//!   subscribing process observes the full stream through seqlock-stamped
//!   cells; a slow subscriber loses items (observed as `Lagged`) instead
//!   of blocking the sender, so the sender is wait-free regardless of how
//!   many processes listen.
//!
//! Element types must implement [`ffq::ShmSafe`] (plain-old-data: every
//! bit pattern valid, no pointers, no drop glue) — the compiler refuses a
//! `Box<T>` shared-memory queue instead of letting two address spaces
//! trade dangling pointers.
//!
//! ## Crash safety
//!
//! Queues are *implicitly flow controlled* in the paper's deployments, so
//! a peer that stops participating would otherwise block its partners
//! forever. Every handle registers its pid in the header; the producer
//! additionally bumps a heartbeat as it publishes. A handle that has been
//! waiting too long probes its peer — heartbeat first (free), then
//! `kill(pid, 0)` (`ESRCH` means the process is gone) — and **poisons**
//! the queue on a dead peer: the lifecycle word flips to `POISONED` and
//! every blocked or future operation on any handle returns a
//! [`Poisoned`]-flavoured error within one probe interval instead of
//! hanging.
//!
//! ## Example (single process, two mappings)
//!
//! ```
//! use ffq_shm::{spmc, ShmRegion};
//!
//! let bytes = spmc::required_size::<u64>(1024).unwrap();
//! let region = ShmRegion::create_memfd(bytes).unwrap();
//!
//! // Producer on one mapping, consumer on an independent second mapping
//! // of the same bytes (what another process would see).
//! let mut tx = spmc::create::<u64>(region.clone(), 1024).unwrap();
//! let mut rx = spmc::attach_consumer::<u64>(region.remap().unwrap()).unwrap();
//!
//! tx.enqueue(7).unwrap();
//! assert_eq!(rx.dequeue(), Ok(7));
//! ```
//!
//! Real two-process use: `examples/shm_rpc_server.rs` /
//! `examples/shm_rpc_client.rs` in the repository root run an RPC service
//! over one shared SPMC submission queue and per-proxy SPSC response
//! queues, in separate OS processes connected only by a shared-memory
//! name.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod error;
pub mod header;
pub mod region;
pub mod verify;

mod queue;

pub use error::{
    Poisoned, ShmBroadcastRecvError, ShmBroadcastTryRecvError, ShmDequeueError, ShmError,
    ShmReserveError, ShmTryDequeueError,
};
pub use queue::{
    broadcast, spmc, spmc_bytes, spsc, spsc_bytes, ShmBroadcastSender, ShmBroadcastSubscriber,
    ShmBytesProducer, ShmBytesSpmcConsumer, ShmBytesSpscConsumer, ShmProducer, ShmSpmcConsumer,
    ShmSpscConsumer,
};
pub use region::ShmRegion;

// Re-export the element-type marker so dependents need not name `ffq`
// directly for the common case.
pub use ffq::ShmSafe;
