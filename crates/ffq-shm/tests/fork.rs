//! Real two-process tests: `fork(2)` a child and exchange items through an
//! ffq-shm queue, over both `memfd_create` (fd inheritance) and `shm_open`
//! (name lookup) backings, including kill-the-peer crash detection.
//!
//! Run with `--test-threads=1`: forking from a test harness is only safe
//! while no sibling test thread can hold allocator or runtime locks at the
//! moment of the fork.
//!
//! The child side always builds its own mapping (`remap`/`open`) so parent
//! and child genuinely disagree on base addresses, and always leaves via
//! `_exit` so it cannot run destructors belonging to parent-owned handles.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;
use std::time::{Duration, Instant};

use ffq_shm::{
    broadcast, spmc, spmc_bytes, spsc, spsc_bytes, ShmBroadcastRecvError, ShmBroadcastTryRecvError,
    ShmDequeueError, ShmRegion, ShmTryDequeueError,
};

/// Forks; runs `f` in the child and `_exit`s with its return value.
fn fork_child(f: impl FnOnce() -> i32) -> libc::pid_t {
    // SAFETY: fork is safe to call; the child immediately runs `f` and
    // `_exit`s without unwinding into parent-owned state.
    match unsafe { libc::fork() } {
        -1 => panic!("fork failed: {}", std::io::Error::last_os_error()),
        0 => {
            let code = catch_unwind(AssertUnwindSafe(f)).unwrap_or(101);
            // SAFETY: terminating the child without running parent-state
            // destructors is the point.
            unsafe { libc::_exit(code) }
        }
        pid => pid,
    }
}

/// Reaps `pid` and returns its exit code (must have exited, not signaled).
fn wait_exit(pid: libc::pid_t) -> i32 {
    let mut status = 0;
    // SAFETY: pid is our direct child; status points to a local.
    let r = unsafe { libc::waitpid(pid, &mut status, 0) };
    assert_eq!(
        r,
        pid,
        "waitpid failed: {}",
        std::io::Error::last_os_error()
    );
    assert!(
        libc::WIFEXITED(status),
        "child terminated abnormally (status {status:#x})"
    );
    libc::WEXITSTATUS(status)
}

/// Drains an SPMC consumer until disconnect, checking per-consumer FIFO
/// (the ranks one consumer receives must be strictly increasing). Returns
/// `(count, sum)` or an error code.
fn drain_verifying_order(mut rx: spmc::Consumer<u64>) -> Result<(u64, u64), i32> {
    let mut count = 0u64;
    let mut sum = 0u64;
    let mut last = None;
    loop {
        match rx.dequeue() {
            Ok(v) => {
                if let Some(prev) = last {
                    if v <= prev {
                        return Err(2); // per-consumer FIFO violated
                    }
                }
                last = Some(v);
                count += 1;
                sum = sum.wrapping_add(v);
            }
            Err(ShmDequeueError::Disconnected) => return Ok((count, sum)),
            Err(ShmDequeueError::Poisoned) => return Err(3),
        }
    }
}

/// Acceptance workload: the parent produces one million items into a
/// shared SPMC queue; a forked child consumes them with two consumer
/// threads (each on its own mapping), verifies per-consumer FIFO, and
/// reports counts and checksums back over an ffq-shm SPSC response queue.
/// Shutdown is clean on both queues (drop → drain → `Disconnected`).
#[test]
fn fork_spmc_one_million_items() {
    const ITEMS: u64 = 1_000_000;

    let region_sub = ShmRegion::create_memfd(spmc::required_size::<u64>(4096).unwrap()).unwrap();
    let region_res = ShmRegion::create_memfd(spsc::required_size::<u64>(16).unwrap()).unwrap();

    let sub_child = region_sub.clone();
    let res_child = region_res.clone();
    let pid = fork_child(move || {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                // Each consumer on its own mapping of the inherited fd —
                // three address spaces' worth of views on one queue.
                let sub = sub_child.remap().unwrap();
                thread::spawn(move || {
                    drain_verifying_order(spmc::attach_consumer::<u64>(sub).unwrap())
                })
            })
            .collect();
        let mut results = Vec::new();
        for w in workers {
            match w.join() {
                Ok(Ok(r)) => results.push(r),
                Ok(Err(code)) => return code,
                Err(_) => return 4,
            }
        }
        let mut tx = spsc::attach_producer::<u64>(res_child.remap().unwrap()).unwrap();
        for (count, sum) in results {
            tx.enqueue(count).unwrap();
            tx.enqueue(sum).unwrap();
        }
        drop(tx); // clean detach: parent sees Disconnected after 4 items
        0
    });

    // Format both queues after the fork — the child's attaches spin on the
    // READY handshake, so no startup choreography is needed.
    spsc::format::<u64>(&region_res, 16).unwrap();
    let mut rx_res = spsc::attach_consumer::<u64>(region_res.clone()).unwrap();
    let mut tx = spmc::create::<u64>(region_sub.clone(), 4096).unwrap();

    // Batched cross-process publication path.
    assert_eq!(tx.enqueue_many(0..ITEMS), ITEMS as usize);
    drop(tx); // clean shutdown: consumers drain, then disconnect

    let mut report = [0u64; 4];
    for slot in report.iter_mut() {
        *slot = rx_res
            .dequeue_timeout(Duration::from_secs(60))
            .expect("child must report counts before detaching");
    }
    assert_eq!(
        rx_res.dequeue_timeout(Duration::from_millis(500)),
        Err(ShmTryDequeueError::Disconnected),
        "response queue must shut down cleanly"
    );
    assert_eq!(wait_exit(pid), 0);

    let (c0, s0, c1, s1) = (report[0], report[1], report[2], report[3]);
    assert_eq!(c0 + c1, ITEMS, "every item consumed exactly once");
    assert_eq!(
        s0.wrapping_add(s1),
        ITEMS * (ITEMS - 1) / 2,
        "checksum of consumed values"
    );
}

/// Crash detection: kill a producer child mid-run with SIGKILL and check
/// the parent's blocked consumer observes a poisoned queue within a
/// bounded delay instead of hanging.
#[test]
fn fork_killed_producer_poisons_consumers() {
    let region = ShmRegion::create_memfd(spmc::required_size::<u64>(256).unwrap()).unwrap();
    spmc::format::<u64>(&region, 256).unwrap();

    let child_region = region.clone();
    let pid = fork_child(move || {
        let mut tx = spmc::attach_producer::<u64>(child_region.remap().unwrap()).unwrap();
        for i in 0..100u64 {
            if tx.enqueue(i).is_err() {
                return 1;
            }
        }
        // "Crash" while still attached: never detach, never publish again.
        loop {
            thread::sleep(Duration::from_secs(3600));
        }
    });

    let mut rx = spmc::attach_consumer::<u64>(region.clone()).unwrap();
    for i in 0..100u64 {
        assert_eq!(
            rx.dequeue_timeout(Duration::from_secs(30)),
            Ok(i),
            "items published before the crash must arrive"
        );
    }

    // SAFETY: pid is our child.
    assert_eq!(unsafe { libc::kill(pid, libc::SIGKILL) }, 0);
    // Reap first: a zombie still answers kill(pid, 0), so detection is
    // only expected once the child is fully gone.
    let mut status = 0;
    // SAFETY: pid is our child; status points to a local.
    unsafe { libc::waitpid(pid, &mut status, 0) };
    assert!(libc::WIFSIGNALED(status));
    assert_eq!(libc::WTERMSIG(status), libc::SIGKILL);

    let start = Instant::now();
    assert_eq!(
        rx.dequeue_timeout(Duration::from_secs(30)),
        Err(ShmTryDequeueError::Poisoned),
        "consumer must observe the producer's death, not block"
    );
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "crash detection must be bounded (took {:?})",
        start.elapsed()
    );
    assert!(rx.is_poisoned());
}

/// Crash detection must reach *parked* consumers: two consumers block on an
/// empty queue long enough to exhaust their spin and yield budgets and sit
/// in the futex-park phase, then the attached producer child is SIGKILLed.
/// Both parked consumers must unblock with `Poisoned` in bounded time — the
/// bounded park plus the per-slice liveness probe is what guarantees a dead
/// peer cannot strand a sleeping waiter.
#[test]
fn fork_killed_producer_unblocks_parked_consumers() {
    let region = ShmRegion::create_memfd(spmc::required_size::<u64>(256).unwrap()).unwrap();
    spmc::format::<u64>(&region, 256).unwrap();

    let child_region = region.clone();
    let pid = fork_child(move || {
        let _tx = spmc::attach_producer::<u64>(child_region.remap().unwrap()).unwrap();
        // Attach, publish nothing, and hang: consumers have nothing to
        // dequeue and must wait on the producer forever.
        loop {
            thread::sleep(Duration::from_secs(3600));
        }
    });

    let waiters: Vec<_> = (0..2)
        .map(|_| {
            let mut rx = spmc::attach_consumer::<u64>(region.clone()).unwrap();
            thread::spawn(move || {
                let r = rx.dequeue();
                (r, rx.stats().parks)
            })
        })
        .collect();

    // Give the consumers ample time to run through spin and yield and into
    // the park phase before the "crash".
    thread::sleep(Duration::from_millis(300));

    // SAFETY: pid is our child.
    assert_eq!(unsafe { libc::kill(pid, libc::SIGKILL) }, 0);
    let mut status = 0;
    // SAFETY: pid is our child; status points to a local.
    unsafe { libc::waitpid(pid, &mut status, 0) };
    assert!(libc::WIFSIGNALED(status));

    let start = Instant::now();
    for w in waiters {
        let (r, parks) = w.join().unwrap();
        assert_eq!(
            r,
            Err(ShmDequeueError::Poisoned),
            "parked consumer must observe the producer's death"
        );
        assert!(parks > 0, "consumer never reached the park phase");
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "parked consumers must unblock in bounded time (took {:?})",
        start.elapsed()
    );
}

/// Deterministic payload derived from (index, length): a misdelivered or
/// torn payload cannot accidentally verify.
fn bytes_payload(i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| (i as u8) ^ (j as u8).wrapping_mul(193).wrapping_add(41))
        .collect()
}

/// Zero-copy payloads across a real process boundary: the parent writes
/// variable-size payloads (inline, slot-exact, chain-spilled) in place into
/// the mapped slot region; the forked child — on its own mapping at a
/// different base address — reads each borrowed, byte-verifies it, and
/// reports the count over a bytes SPMC response queue. No payload byte is
/// copied between reserve and borrow on either side.
#[test]
fn fork_bytes_spsc_variable_sizes() {
    const ITEMS: usize = 50_000;
    const LENS: [usize; 8] = [0, 1, 17, 63, 64, 65, 300, 1500];

    let region_sub = ShmRegion::create_memfd(spsc_bytes::required_size(256, 64).unwrap()).unwrap();
    let region_res = ShmRegion::create_memfd(spmc_bytes::required_size(16, 64).unwrap()).unwrap();

    let sub_child = region_sub.clone();
    let res_child = region_res.clone();
    let pid = fork_child(move || {
        let mut rx = match spsc_bytes::attach_consumer(sub_child.remap().unwrap()) {
            Ok(rx) => rx,
            Err(_) => return 5,
        };
        let mut i = 0usize;
        loop {
            match rx.recv() {
                Ok(view) => {
                    let want = bytes_payload(i, LENS[i % LENS.len()]);
                    if *view != want[..] {
                        return 6; // payload corrupted in flight
                    }
                    i += 1;
                }
                Err(ShmDequeueError::Disconnected) => break,
                Err(ShmDequeueError::Poisoned) => return 7,
            }
        }
        let mut tx = match spmc_bytes::attach_producer(res_child.remap().unwrap()) {
            Ok(tx) => tx,
            Err(_) => return 8,
        };
        if tx.send_bytes(&(i as u64).to_le_bytes()).is_err() {
            return 9;
        }
        drop(tx);
        0
    });

    spmc_bytes::format(&region_res, 16, 64).unwrap();
    let mut rx_res = spmc_bytes::attach_consumer(region_res.clone()).unwrap();
    let mut tx = spsc_bytes::create(region_sub.clone(), 256, 64).unwrap();
    for i in 0..ITEMS {
        let len = LENS[i % LENS.len()];
        let payload = bytes_payload(i, len);
        // Alternate the in-place path and the copy-in convenience.
        if i % 2 == 0 {
            let mut slot = tx.reserve(len).unwrap();
            slot.copy_from_slice(&payload);
            slot.commit();
        } else {
            tx.send_bytes(&payload).unwrap();
        }
    }
    drop(tx); // clean detach: child drains, then disconnects

    let report = rx_res
        .recv_timeout(Duration::from_secs(60))
        .expect("child must report its count");
    assert_eq!(report.len(), 8);
    let mut n = [0u8; 8];
    n.copy_from_slice(&report);
    assert_eq!(u64::from_le_bytes(n) as usize, ITEMS, "payloads lost");
    drop(report);
    assert_eq!(wait_exit(pid), 0);
}

/// The `shm_open` backing end to end: parent produces under a POSIX name,
/// child connects by name alone (no inherited state beyond the string).
#[test]
fn fork_spsc_over_named_shm() {
    const ITEMS: u64 = 200_000;
    let name = format!("ffq-fork-test-{}", std::process::id());
    let region = ShmRegion::create(&name, spsc::required_size::<u64>(1024).unwrap()).unwrap();

    let child_name = name.clone();
    let pid = fork_child(move || {
        let region = match ShmRegion::open(&child_name) {
            Ok(r) => r,
            Err(_) => return 5,
        };
        let mut rx = match spsc::attach_consumer::<u64>(region) {
            Ok(rx) => rx,
            Err(_) => return 6,
        };
        let mut next = 0u64;
        loop {
            match rx.dequeue() {
                Ok(v) => {
                    if v != next {
                        return 7; // FIFO violated
                    }
                    next += 1;
                }
                Err(ShmDequeueError::Disconnected) => {
                    return if next == ITEMS { 0 } else { 8 };
                }
                Err(ShmDequeueError::Poisoned) => return 9,
            }
        }
    });

    let mut tx = spsc::create::<u64>(region, 1024).unwrap();
    for i in 0..ITEMS {
        tx.enqueue(i).unwrap();
    }
    drop(tx);
    assert_eq!(wait_exit(pid), 0);
    ShmRegion::unlink(&name).unwrap();
}

/// Broadcast fan-out across a process boundary: the parent publishes a
/// stream; a forked child runs two subscriber threads (each on its own
/// mapping), and every subscriber must account for the complete stream —
/// each item either received (strictly increasing) or reported as lagged —
/// then observe a clean close.
#[test]
fn fork_broadcast_fanout_accounts_for_stream() {
    const ITEMS: u64 = 200_000;

    let region_b = ShmRegion::create_memfd(broadcast::required_size::<u64>(1024).unwrap()).unwrap();
    let region_res = ShmRegion::create_memfd(spsc::required_size::<u64>(16).unwrap()).unwrap();

    let b_child = region_b.clone();
    let res_child = region_res.clone();
    let pid = fork_child(move || {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let map = b_child.remap().unwrap();
                thread::spawn(move || -> Result<(u64, u64), i32> {
                    // From origin: the full stream is in scope, so
                    // received + lagged must cover every rank.
                    let mut rx = match broadcast::attach_subscriber_from_origin::<u64>(map) {
                        Ok(rx) => rx,
                        Err(_) => return Err(5),
                    };
                    let mut received = 0u64;
                    let mut lagged = 0u64;
                    let mut last = 0u64;
                    loop {
                        match rx.recv() {
                            Ok(v) => {
                                if v <= last {
                                    return Err(2); // reordered or torn
                                }
                                last = v;
                                received += 1;
                            }
                            Err(ShmBroadcastRecvError::Lagged(n)) => lagged += n,
                            Err(ShmBroadcastRecvError::Closed) => return Ok((received, lagged)),
                            Err(ShmBroadcastRecvError::Poisoned) => return Err(3),
                        }
                    }
                })
            })
            .collect();
        let mut results = Vec::new();
        for w in workers {
            match w.join() {
                Ok(Ok(r)) => results.push(r),
                Ok(Err(code)) => return code,
                Err(_) => return 4,
            }
        }
        let mut tx = spsc::attach_producer::<u64>(res_child.remap().unwrap()).unwrap();
        for (received, lagged) in results {
            tx.enqueue(received).unwrap();
            tx.enqueue(lagged).unwrap();
        }
        drop(tx);
        0
    });

    spsc::format::<u64>(&region_res, 16).unwrap();
    let mut rx_res = spsc::attach_consumer::<u64>(region_res.clone()).unwrap();
    let mut tx = broadcast::create::<u64>(region_b.clone(), 1024).unwrap();

    for i in 1..=ITEMS {
        tx.send(i);
    }
    drop(tx); // clean close: subscribers drain, then observe Closed

    let mut report = [0u64; 4];
    for slot in report.iter_mut() {
        *slot = rx_res
            .dequeue_timeout(Duration::from_secs(60))
            .expect("child must report counts before detaching");
    }
    assert_eq!(wait_exit(pid), 0);
    for pair in report.chunks(2) {
        assert_eq!(
            pair[0] + pair[1],
            ITEMS,
            "stream not fully accounted: received {} + lagged {}",
            pair[0],
            pair[1]
        );
    }
}

/// Crash detection on the broadcast lane: a SIGKILLed sender must poison
/// the queue for blocked subscribers within a bounded delay — the
/// per-slice heartbeat/pid probe, same as the point-to-point consumers.
#[test]
fn fork_killed_sender_poisons_broadcast_subscribers() {
    let region = ShmRegion::create_memfd(broadcast::required_size::<u64>(256).unwrap()).unwrap();
    broadcast::format::<u64>(&region, 256).unwrap();

    let child_region = region.clone();
    let pid = fork_child(move || {
        let mut tx = match broadcast::attach_sender::<u64>(child_region.remap().unwrap()) {
            Ok(tx) => tx,
            Err(_) => return 1,
        };
        for i in 1..=100u64 {
            tx.send(i);
        }
        // "Crash" while still attached: never detach, never publish again.
        loop {
            thread::sleep(Duration::from_secs(3600));
        }
    });

    let mut rx = broadcast::attach_subscriber_from_origin::<u64>(region.clone()).unwrap();
    for i in 1..=100u64 {
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(30)),
            Ok(i),
            "items published before the crash must arrive"
        );
    }

    // SAFETY: pid is our child.
    assert_eq!(unsafe { libc::kill(pid, libc::SIGKILL) }, 0);
    // Reap first: a zombie still answers kill(pid, 0).
    let mut status = 0;
    // SAFETY: pid is our child; status points to a local.
    unsafe { libc::waitpid(pid, &mut status, 0) };
    assert!(libc::WIFSIGNALED(status));

    let start = Instant::now();
    assert_eq!(
        rx.recv_timeout(Duration::from_secs(30)),
        Err(ShmBroadcastTryRecvError::Poisoned),
        "subscriber must observe the sender's death, not block"
    );
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "crash detection must be bounded (took {:?})",
        start.elapsed()
    );
    assert!(rx.is_poisoned());
}
