//! Property tests for the region header's pure logic: the `QueueConfig`
//! wire encoding and the lifecycle transition relation.
//!
//! These complement the deterministic unit tests in `src/header.rs` —
//! proptest explores the corners (corrupt words, hostile event orders)
//! that a handful of hand-picked cases cannot.

use proptest::prelude::*;

use ffq_shm::header::{
    lifecycle_step, variant_is_bytes, Lifecycle, LifecycleEvent, QueueConfig, VARIANT_BROADCAST,
    VARIANT_SPSC, VARIANT_SPSC_BYTES,
};

/// Any configuration `format` could legitimately write: in-range
/// discriminants, power-of-two alignment, arbitrary sizes and offsets.
fn arb_config() -> impl Strategy<Value = QueueConfig> {
    (
        VARIANT_SPSC..=VARIANT_BROADCAST,
        1..=2u8,
        1..=2u8,
        0..=31u32,
        6..=30u8, // slot exponent; forced to 0 for typed variants below
        any::<u32>(),
        0..=31u32, // alignment exponent: elem_align = 1 << e
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(
            |(
                variant,
                cell_layout,
                index_map,
                cap_log2,
                slot_exp,
                elem_size,
                align_exp,
                state_offset,
                cells_offset,
                region_len,
            )| QueueConfig {
                variant,
                cell_layout,
                index_map,
                cap_log2,
                // Typed variants must carry a zero slot byte; bytes
                // variants a valid exponent.
                slot_log2: if variant_is_bytes(variant) {
                    slot_exp
                } else {
                    0
                },
                elem_size,
                elem_align: 1u32 << align_exp,
                state_offset,
                cells_offset,
                region_len,
            },
        )
}

fn arb_state() -> impl Strategy<Value = Lifecycle> {
    prop_oneof![
        Just(Lifecycle::Raw),
        Just(Lifecycle::Initializing),
        Just(Lifecycle::Ready),
        Just(Lifecycle::Poisoned),
    ]
}

fn arb_event() -> impl Strategy<Value = LifecycleEvent> {
    prop_oneof![
        Just(LifecycleEvent::BeginInit),
        Just(LifecycleEvent::Publish),
        Just(LifecycleEvent::Poison),
    ]
}

proptest! {
    /// Every valid configuration survives the header round trip.
    #[test]
    fn config_encode_decode_round_trips(cfg in arb_config()) {
        prop_assert_eq!(QueueConfig::decode(cfg.encode()), Ok(cfg));
    }

    /// The typed variants' slot byte stays reserved-must-be-zero (it was
    /// a reserved byte in version 2): setting any of its bits makes the
    /// header undecodable — a foreign or corrupt region fails attach
    /// validation instead of producing a bogus queue view.
    #[test]
    fn typed_slot_byte_must_be_zero(cfg in arb_config(), bit in 24u32..32) {
        let mut cfg = cfg;
        if variant_is_bytes(cfg.variant) {
            cfg.variant = VARIANT_SPSC;
            cfg.slot_log2 = 0;
        }
        let mut w = cfg.encode();
        w[0] |= 1u64 << bit;
        prop_assert!(QueueConfig::decode(w).is_err());
    }

    /// Bytes variants only decode with a plausible slot exponent
    /// (`6..=30`) — a corrupt slot byte is refused, never used to size a
    /// slot region.
    #[test]
    fn bytes_slot_exponent_is_range_checked(
        cfg in arb_config(),
        exp in prop_oneof![0u8..6, 31u8..=255],
    ) {
        let mut cfg = cfg;
        if !variant_is_bytes(cfg.variant) {
            cfg.variant = VARIANT_SPSC_BYTES;
        }
        cfg.slot_log2 = exp;
        prop_assert!(QueueConfig::decode(cfg.encode()).is_err());
    }

    /// Decoding arbitrary words never panics, and the encoding is
    /// canonical: whenever decode accepts four words, re-encoding the
    /// result reproduces them bit for bit (no information silently
    /// dropped or normalized).
    #[test]
    fn decode_is_total_and_canonical(w in any::<[u64; 4]>()) {
        if let Ok(cfg) = QueueConfig::decode(w) {
            prop_assert_eq!(cfg.encode(), w);
        }
    }

    /// Single-step sanity over the whole relation: `Ready` is only ever
    /// entered by publishing from `Initializing`, `Initializing` only by
    /// claiming a `Raw` region, and `Poisoned` only via a `Poison` event
    /// (in particular a `Raw` region can never be poisoned).
    #[test]
    fn transitions_have_unique_provenance(s in arb_state(), e in arb_event()) {
        match lifecycle_step(s, e) {
            Some(Lifecycle::Ready) => {
                prop_assert_eq!(s, Lifecycle::Initializing);
                prop_assert_eq!(e, LifecycleEvent::Publish);
            }
            Some(Lifecycle::Initializing) => {
                prop_assert_eq!(s, Lifecycle::Raw);
                prop_assert_eq!(e, LifecycleEvent::BeginInit);
            }
            Some(Lifecycle::Poisoned) => {
                prop_assert_eq!(e, LifecycleEvent::Poison);
                prop_assert_ne!(s, Lifecycle::Raw);
            }
            Some(Lifecycle::Raw) => prop_assert!(false, "nothing re-enters Raw"),
            None => {}
        }
    }

    /// Driving the relation with an arbitrary event sequence (illegal
    /// events ignored, as a failed CAS would be): once the state reaches
    /// `Poisoned` it never leaves, and reaching `Ready` requires the full
    /// `BeginInit` → `Publish` handshake to appear in order.
    #[test]
    fn poison_is_absorbing_and_ready_is_earned(
        events in prop::collection::vec(arb_event(), 0..32),
    ) {
        let mut state = Lifecycle::Raw;
        let mut ever_poisoned = false;
        let mut began_at = None;
        let mut published_after_begin = false;
        for (i, &ev) in events.iter().enumerate() {
            if let Some(next) = lifecycle_step(state, ev) {
                state = next;
            }
            if state == Lifecycle::Poisoned {
                ever_poisoned = true;
            }
            prop_assert!(
                !ever_poisoned || state == Lifecycle::Poisoned,
                "escaped Poisoned at step {}", i
            );
            if ev == LifecycleEvent::BeginInit && began_at.is_none() {
                began_at = Some(i);
            }
            if ev == LifecycleEvent::Publish && began_at.is_some() {
                published_after_begin = true;
            }
        }
        if state == Lifecycle::Ready {
            prop_assert!(published_after_begin, "Ready without a handshake");
        }
    }
}
