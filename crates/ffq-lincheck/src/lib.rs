//! FIFO linearizability checking over recorded concurrent histories.
//!
//! Proposition 3 of the paper states that the FFQ object is linearizable
//! (with the proof omitted for space). This crate provides the testing-side
//! counterpart: record real concurrent executions and check them against
//! the sequential FIFO specification.
//!
//! General linearizability checking is NP-complete, but for queues with
//! *distinct values* it decomposes into four locally checkable violation
//! patterns (Henzinger, Sezgin, Vafeiadis — "Aspect-oriented linearizability
//! proofs", CONCUR 2013): a history of enqueues and successful dequeues is
//! linearizable with respect to a FIFO queue iff it contains
//!
//! 1. no dequeue of a value that was never enqueued,
//! 2. no value dequeued twice,
//! 3. no dequeue that *returns* before its value's enqueue was *invoked*,
//! 4. no order inversion: `enq(a)` completing strictly before `enq(b)`
//!    begins, while `deq(b)` completes strictly before `deq(a)` begins.
//!
//! (Empty-returning dequeues have a fifth pattern that needs interval
//! reasoning against *all* values; the recorder skips them, which weakens
//! the check only for emptiness semantics, not for loss/duplication/order.)
//!
//! Timestamps come from the TSC via [`now`]; modern x86_64 machines have
//! invariant, socket-synchronized TSCs, making cross-thread comparisons
//! meaningful at the resolution these checks need.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::Arc;

use parking_lot::Mutex;

/// Reads the timestamp counter.
#[inline]
pub fn now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: RDTSC is side-effect free.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    }
}

/// What an operation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Enqueued the value.
    Enqueue(u64),
    /// Dequeued the value.
    Dequeue(u64),
}

/// One completed operation with its real-time interval.
#[derive(Debug, Clone, Copy)]
pub struct Op {
    /// What happened.
    pub kind: OpKind,
    /// Invocation timestamp.
    pub inv: u64,
    /// Response timestamp.
    pub resp: u64,
}

/// A detected non-linearizable behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// A dequeue returned a value no enqueue produced.
    NeverEnqueued(u64),
    /// Two enqueues used the same value — the checker requires distinctness.
    DuplicateEnqueue(u64),
    /// A value was dequeued more than once.
    DoubleDequeue(u64),
    /// The dequeue returned before its enqueue was invoked.
    DequeueBeforeEnqueue(u64),
    /// FIFO order inversion between two values.
    OrderInversion {
        /// Enqueued strictly first...
        first: u64,
        /// ...but dequeued strictly after `second`, which was enqueued
        /// strictly later.
        second: u64,
    },
    /// A value overtook more predecessors than the declared relaxation
    /// bound allows ([`check_fifo_relaxed`] only).
    ExcessiveReordering {
        /// The overtaking value.
        value: u64,
        /// How many strictly-earlier-enqueued values it was dequeued
        /// strictly before.
        observed: usize,
        /// The declared bound `k` it exceeded.
        bound: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NeverEnqueued(v) => write!(f, "value {v} dequeued but never enqueued"),
            Violation::DuplicateEnqueue(v) => write!(f, "value {v} enqueued twice"),
            Violation::DoubleDequeue(v) => write!(f, "value {v} dequeued twice"),
            Violation::DequeueBeforeEnqueue(v) => {
                write!(f, "value {v} dequeued before its enqueue began")
            }
            Violation::OrderInversion { first, second } => write!(
                f,
                "FIFO inversion: {first} enqueued before {second} but dequeued after it"
            ),
            Violation::ExcessiveReordering {
                value,
                observed,
                bound,
            } => write!(
                f,
                "value {value} overtook {observed} earlier-enqueued values, bound is {bound}"
            ),
        }
    }
}

/// Checks a merged history against the FIFO specification.
///
/// Values must be distinct per enqueue. Runs in `O(n log n)`.
pub fn check_fifo(history: &[Op]) -> Result<(), Violation> {
    use std::collections::HashMap;

    /// An `[inv, resp]` real-time interval.
    type Interval = (u64, u64);

    #[derive(Default, Clone, Copy)]
    struct Val {
        enq: Option<Interval>,
        deq: Option<Interval>,
    }

    let mut vals: HashMap<u64, Val> = HashMap::with_capacity(history.len());
    for op in history {
        debug_assert!(op.inv <= op.resp, "interval inverted");
        match op.kind {
            OpKind::Enqueue(v) => {
                let e = vals.entry(v).or_default();
                if e.enq.is_some() {
                    return Err(Violation::DuplicateEnqueue(v));
                }
                e.enq = Some((op.inv, op.resp));
            }
            OpKind::Dequeue(v) => {
                let e = vals.entry(v).or_default();
                if e.deq.is_some() {
                    return Err(Violation::DoubleDequeue(v));
                }
                e.deq = Some((op.inv, op.resp));
            }
        }
    }

    // Patterns 1 and 3, and collect fully-observed values for pattern 4.
    let mut pairs: Vec<(u64, Interval, Interval)> = Vec::new();
    for (&v, rec) in &vals {
        match (rec.enq, rec.deq) {
            (None, Some(_)) => return Err(Violation::NeverEnqueued(v)),
            (Some(enq), Some(deq)) => {
                if deq.1 < enq.0 {
                    return Err(Violation::DequeueBeforeEnqueue(v));
                }
                pairs.push((v, enq, deq));
            }
            _ => {} // enqueued but never dequeued: unconstrained here
        }
    }

    // Pattern 4 sweep: a violation is a pair (a, b) with
    //   enq_a.resp < enq_b.inv  &&  deq_b.resp < deq_a.inv.
    // Sort candidates-for-a by enq.resp; process each b in ascending
    // enq.inv; maintain the max deq.inv over all a already admitted
    // (enq_a.resp < enq_b.inv). If that max exceeds deq_b.resp, some
    // admitted a is dequeued strictly after b.
    let mut by_enq_resp = pairs.clone();
    by_enq_resp.sort_unstable_by_key(|&(_, enq, _)| enq.1);
    let mut by_enq_inv = pairs;
    by_enq_inv.sort_unstable_by_key(|&(_, enq, _)| enq.0);

    let mut admit = 0usize;
    let mut max_deq_inv: Option<(u64, u64)> = None; // (deq.inv, value)
    for &(b, enq_b, deq_b) in &by_enq_inv {
        while admit < by_enq_resp.len() && by_enq_resp[admit].1 .1 < enq_b.0 {
            let (a, _, deq_a) = by_enq_resp[admit];
            if max_deq_inv.is_none_or(|(m, _)| deq_a.0 > m) {
                max_deq_inv = Some((deq_a.0, a));
            }
            admit += 1;
        }
        if let Some((m, a)) = max_deq_inv {
            if deq_b.1 < m && a != b {
                return Err(Violation::OrderInversion {
                    first: a,
                    second: b,
                });
            }
        }
    }
    Ok(())
}

/// Checks a merged history against the *k-relaxed* FIFO specification.
///
/// The spec of [`crate::check_fifo`]'s pattern 4 weakened by a reordering
/// budget: for every dequeued value `b`, the number of values `a` with
///
/// ```text
/// enq(a) returns before enq(b) is invoked   (a strictly enqueued first)
/// deq(b) returns before deq(a) is invoked   (b strictly dequeued first)
/// ```
///
/// must be at most `k` — i.e. no value overtakes more than `k` strict
/// predecessors. `k = 0` is exactly the FIFO check (every such pair is an
/// inversion); the interval semantics are unchanged, so operations that
/// overlap in real time still impose no order and never count against the
/// budget. Patterns 1–3 (loss, duplication, time travel) stay hard errors
/// regardless of `k`.
///
/// This is the verification side of `ffq::shard`'s `Ordering::Relaxed(k)`
/// contract, whose geometry guarantees `k = 3(N-1)B` for `N` shards of
/// block size `B`: record a sharded execution, then check it with that
/// bound.
///
/// Values must be distinct per enqueue. Runs in `O(n log n)` (the
/// overtake counts are computed with a Fenwick tree over the admitted
/// dequeue invocations, never pairwise).
pub fn check_fifo_relaxed(history: &[Op], k: usize) -> Result<(), Violation> {
    use std::collections::HashMap;

    type Interval = (u64, u64);

    #[derive(Default, Clone, Copy)]
    struct Val {
        enq: Option<Interval>,
        deq: Option<Interval>,
    }

    /// Add-point / count-prefix Fenwick tree over compressed coordinates.
    struct Fenwick(Vec<usize>);
    impl Fenwick {
        fn new(n: usize) -> Self {
            Fenwick(vec![0; n + 1])
        }
        fn add(&mut self, i: usize) {
            let mut j = i + 1;
            while j < self.0.len() {
                self.0[j] += 1;
                j += j & j.wrapping_neg();
            }
        }
        /// Number of added points with compressed coordinate `< i`.
        fn count_below(&self, i: usize) -> usize {
            let mut s = 0;
            let mut j = i;
            while j > 0 {
                s += self.0[j];
                j -= j & j.wrapping_neg();
            }
            s
        }
    }

    let mut vals: HashMap<u64, Val> = HashMap::with_capacity(history.len());
    for op in history {
        debug_assert!(op.inv <= op.resp, "interval inverted");
        match op.kind {
            OpKind::Enqueue(v) => {
                let e = vals.entry(v).or_default();
                if e.enq.is_some() {
                    return Err(Violation::DuplicateEnqueue(v));
                }
                e.enq = Some((op.inv, op.resp));
            }
            OpKind::Dequeue(v) => {
                let e = vals.entry(v).or_default();
                if e.deq.is_some() {
                    return Err(Violation::DoubleDequeue(v));
                }
                e.deq = Some((op.inv, op.resp));
            }
        }
    }

    let mut pairs: Vec<(u64, Interval, Interval)> = Vec::new();
    for (&v, rec) in &vals {
        match (rec.enq, rec.deq) {
            (None, Some(_)) => return Err(Violation::NeverEnqueued(v)),
            (Some(enq), Some(deq)) => {
                if deq.1 < enq.0 {
                    return Err(Violation::DequeueBeforeEnqueue(v));
                }
                pairs.push((v, enq, deq));
            }
            _ => {}
        }
    }

    // Coordinate-compress the dequeue invocation times; the Fenwick tree
    // counts admitted predecessors by deq.inv.
    let mut coords: Vec<u64> = pairs.iter().map(|&(_, _, deq)| deq.0).collect();
    coords.sort_unstable();
    coords.dedup();
    let coord = |t: u64| coords.partition_point(|&c| c < t);

    // Same two-pointer admission as `check_fifo`: processing candidates-
    // for-b in ascending enq.inv, every a with enq_a.resp < enq_b.inv is
    // admitted into the tree before b is examined. a == b never admits
    // against itself (enq.resp < enq.inv is impossible).
    let mut by_enq_resp = pairs.clone();
    by_enq_resp.sort_unstable_by_key(|&(_, enq, _)| enq.1);
    let mut by_enq_inv = pairs;
    by_enq_inv.sort_unstable_by_key(|&(_, enq, _)| enq.0);

    let mut tree = Fenwick::new(coords.len());
    let mut admitted = 0usize;
    let mut admit = 0usize;
    for &(b, enq_b, deq_b) in &by_enq_inv {
        while admit < by_enq_resp.len() && by_enq_resp[admit].1 .1 < enq_b.0 {
            tree.add(coord(by_enq_resp[admit].2 .0));
            admitted += 1;
            admit += 1;
        }
        // Overtaken predecessors: admitted values whose deq.inv lies
        // strictly after deq_b.resp.
        let observed = admitted - tree.count_below(coords.partition_point(|&c| c <= deq_b.1));
        if observed > k {
            return Err(Violation::ExcessiveReordering {
                value: b,
                observed,
                bound: k,
            });
        }
    }
    Ok(())
}

/// Collects per-thread histories and merges them for checking.
#[derive(Clone, Default)]
pub struct HistoryRecorder {
    merged: Arc<Mutex<Vec<Op>>>,
}

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a per-thread handle (cheap, lock-free while recording).
    pub fn handle(&self) -> ThreadRecorder {
        ThreadRecorder {
            merged: Arc::clone(&self.merged),
            local: Vec::new(),
        }
    }

    /// Takes the merged history (call after all handles are dropped).
    pub fn into_history(self) -> Vec<Op> {
        std::mem::take(&mut self.merged.lock())
    }

    /// Convenience: merge and check in one step.
    pub fn check(self) -> Result<(), Violation> {
        check_fifo(&self.into_history())
    }

    /// Convenience: merge and check against a `k`-relaxed FIFO in one
    /// step; see [`check_fifo_relaxed`].
    pub fn check_relaxed(self, k: usize) -> Result<(), Violation> {
        check_fifo_relaxed(&self.into_history(), k)
    }
}

/// Per-thread event recorder; flushes into the shared history on drop.
pub struct ThreadRecorder {
    merged: Arc<Mutex<Vec<Op>>>,
    local: Vec<Op>,
}

impl ThreadRecorder {
    /// Records an enqueue around `f`.
    #[inline]
    pub fn enqueue(&mut self, value: u64, f: impl FnOnce()) {
        let inv = now();
        f();
        let resp = now();
        self.local.push(Op {
            kind: OpKind::Enqueue(value),
            inv,
            resp,
        });
    }

    /// Records a dequeue around `f`; `None` results are not recorded (see
    /// the crate docs on empty-dequeue checking).
    ///
    /// **Granularity caveat**: for queues whose non-blocking dequeue has
    /// *claim* side effects spanning calls — FFQ's pending-rank
    /// `try_dequeue` — a retry loop recorded call-by-call truncates the
    /// logical operation's interval and can report spurious FIFO
    /// inversions. Record such loops with
    /// [`dequeue_until`](Self::dequeue_until) instead, which spans the whole
    /// episode (the paper's `FFQ_DEQ` is one blocking operation from the
    /// head fetch-and-add to the data read).
    #[inline]
    pub fn dequeue(&mut self, f: impl FnOnce() -> Option<u64>) -> Option<u64> {
        let inv = now();
        let got = f();
        let resp = now();
        if let Some(v) = got {
            self.local.push(Op {
                kind: OpKind::Dequeue(v),
                inv,
                resp,
            });
        }
        got
    }

    /// Records one *blocking* dequeue: retries `f` (spinning) until it
    /// yields a value, as a single operation spanning the whole wait.
    #[inline]
    pub fn dequeue_until(&mut self, mut f: impl FnMut() -> Option<u64>) -> u64 {
        let inv = now();
        let value = loop {
            if let Some(v) = f() {
                break v;
            }
            core::hint::spin_loop();
        };
        self.local.push(Op {
            kind: OpKind::Dequeue(value),
            inv,
            resp: now(),
        });
        value
    }

    /// Records a *batched* enqueue: `f` submits all of `values` in one
    /// call (e.g. FFQ's `enqueue_many`), and every value is recorded as an
    /// enqueue spanning that call's whole interval.
    ///
    /// This is the linearizability granularity of a batch: items sharing
    /// one interval are mutually concurrent, so the checker never derives
    /// a strict order between them — or against any operation overlapping
    /// the call — and intra-batch order goes unchecked. Loss, duplication
    /// and ordering against non-overlapping operations are still verified
    /// exactly.
    #[inline]
    pub fn enqueue_batch(&mut self, values: &[u64], f: impl FnOnce()) {
        let inv = now();
        f();
        let resp = now();
        for &v in values {
            self.local.push(Op {
                kind: OpKind::Enqueue(v),
                inv,
                resp,
            });
        }
    }

    /// Records a *batched* dequeue: `f` appends harvested values to `buf`
    /// (e.g. FFQ's `dequeue_batch`) and returns how many; each value is
    /// recorded as a dequeue spanning the call's interval (same granularity
    /// rationale as [`enqueue_batch`](Self::enqueue_batch)). An empty
    /// harvest records nothing.
    ///
    /// Only sound for batch calls that are self-contained episodes — every
    /// returned item's claim happened within this call. FFQ's
    /// single-producer variants guarantee this (a batch claim is sized by
    /// the published tail and never parks); for FFQ-m batch consumers,
    /// whose claims can park mid-run and deliver in a later call, record
    /// the batched *producer* side instead and drive consumers per-item.
    #[inline]
    pub fn dequeue_batch(
        &mut self,
        buf: &mut Vec<u64>,
        f: impl FnOnce(&mut Vec<u64>) -> usize,
    ) -> usize {
        let start = buf.len();
        let inv = now();
        let n = f(buf);
        let resp = now();
        debug_assert_eq!(buf.len(), start + n, "f must append exactly n values");
        for &v in &buf[start..] {
            self.local.push(Op {
                kind: OpKind::Dequeue(v),
                inv,
                resp,
            });
        }
        n
    }
}

impl Drop for ThreadRecorder {
    fn drop(&mut self) {
        self.merged.lock().append(&mut self.local);
    }
}

/// One observation a broadcast subscriber made, in the order it made them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BroadcastObs {
    /// `try_recv`/`recv` delivered this value.
    Received(u64),
    /// The subscriber fell behind and the lane reported exactly this many
    /// items irrecoverably skipped (`Lagged(n)`).
    Lagged(u64),
}

/// A violation of the broadcast sequential specification.
///
/// The spec: against a publication order `published[0..len]`, a subscriber
/// that started at rank `start` observes a *gapless cursor walk* — each
/// `Received(v)` delivers `published[cursor]` and advances the cursor by
/// one; each `Lagged(n)` skips exactly `n > 0` already-published items.
/// Every item is therefore either delivered or explicitly accounted lost;
/// silent loss, duplication, reordering, and value corruption all surface
/// as one of these variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BroadcastViolation {
    /// A `Received` value differs from the publication at the cursor —
    /// out-of-order delivery, a duplicate, a silent skip, or a torn read.
    WrongValue {
        /// Subscriber cursor (publication rank) at the observation.
        rank: u64,
        /// The value the publication order holds at that rank.
        expected: u64,
        /// The value the subscriber reported.
        got: u64,
    },
    /// A `Received` at a rank at or past the published length — the
    /// subscriber conjured an item the producer never published.
    PhantomItem {
        /// Subscriber cursor at the observation.
        rank: u64,
        /// Number of items actually published.
        published: u64,
        /// The value the subscriber reported.
        got: u64,
    },
    /// A `Lagged(0)` report: the lane claimed loss but skipped nothing.
    EmptyLag {
        /// Subscriber cursor at the observation.
        rank: u64,
    },
    /// A `Lagged(n)` that skips past the published length — the lane
    /// wrote off items the producer never published.
    LagBeyondTail {
        /// Subscriber cursor at the observation.
        rank: u64,
        /// The reported skip count.
        skipped: u64,
        /// Number of items actually published.
        published: u64,
    },
}

impl std::fmt::Display for BroadcastViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BroadcastViolation::WrongValue {
                rank,
                expected,
                got,
            } => write!(
                f,
                "broadcast rank {rank}: expected published value {expected}, subscriber saw {got}"
            ),
            BroadcastViolation::PhantomItem {
                rank,
                published,
                got,
            } => write!(
                f,
                "broadcast rank {rank}: subscriber received {got} but only {published} items were published"
            ),
            BroadcastViolation::EmptyLag { rank } => {
                write!(f, "broadcast rank {rank}: Lagged(0) reported (no items skipped)")
            }
            BroadcastViolation::LagBeyondTail {
                rank,
                skipped,
                published,
            } => write!(
                f,
                "broadcast rank {rank}: Lagged({skipped}) skips past the {published} published items"
            ),
        }
    }
}

impl std::error::Error for BroadcastViolation {}

/// Checks one subscriber's observation sequence against the publication
/// order of a broadcast lane.
///
/// `published` is the producer's send order (values need *not* be
/// distinct — the cursor walk, unlike [`check_fifo`], never matches by
/// value). `start` is the publication rank the subscriber's cursor began
/// at (0 for a subscriber created before the first send; a
/// `resubscribe`d handle starts at the live edge it joined). `obs` is
/// everything the subscriber saw, in order; `Empty`/`Closed` outcomes
/// carry no cursor movement and are simply not recorded.
///
/// Returns the first violation, or `Ok(())` if the sequence is a valid
/// gapless cursor walk. Soundness requires that `published` be complete
/// up to every rank the subscriber could have observed — record the
/// publication log before joining the subscriber threads.
pub fn check_broadcast(
    published: &[u64],
    start: usize,
    obs: &[BroadcastObs],
) -> Result<(), BroadcastViolation> {
    let len = published.len() as u64;
    let mut cursor = start as u64;
    for &o in obs {
        match o {
            BroadcastObs::Received(got) => {
                if cursor >= len {
                    return Err(BroadcastViolation::PhantomItem {
                        rank: cursor,
                        published: len,
                        got,
                    });
                }
                let expected = published[cursor as usize];
                if got != expected {
                    return Err(BroadcastViolation::WrongValue {
                        rank: cursor,
                        expected,
                        got,
                    });
                }
                cursor += 1;
            }
            BroadcastObs::Lagged(skipped) => {
                if skipped == 0 {
                    return Err(BroadcastViolation::EmptyLag { rank: cursor });
                }
                if cursor + skipped > len {
                    return Err(BroadcastViolation::LagBeyondTail {
                        rank: cursor,
                        skipped,
                        published: len,
                    });
                }
                cursor += skipped;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(kind: OpKind, inv: u64, resp: u64) -> Op {
        Op { kind, inv, resp }
    }

    #[test]
    fn sequential_fifo_passes() {
        let h = vec![
            op(OpKind::Enqueue(1), 0, 1),
            op(OpKind::Enqueue(2), 2, 3),
            op(OpKind::Dequeue(1), 4, 5),
            op(OpKind::Dequeue(2), 6, 7),
        ];
        assert_eq!(check_fifo(&h), Ok(()));
    }

    #[test]
    fn detects_never_enqueued() {
        let h = vec![op(OpKind::Dequeue(9), 0, 1)];
        assert_eq!(check_fifo(&h), Err(Violation::NeverEnqueued(9)));
    }

    #[test]
    fn detects_double_dequeue() {
        let h = vec![
            op(OpKind::Enqueue(1), 0, 1),
            op(OpKind::Dequeue(1), 2, 3),
            op(OpKind::Dequeue(1), 4, 5),
        ];
        assert_eq!(check_fifo(&h), Err(Violation::DoubleDequeue(1)));
    }

    #[test]
    fn detects_duplicate_enqueue() {
        let h = vec![op(OpKind::Enqueue(1), 0, 1), op(OpKind::Enqueue(1), 2, 3)];
        assert_eq!(check_fifo(&h), Err(Violation::DuplicateEnqueue(1)));
    }

    #[test]
    fn detects_dequeue_from_the_future() {
        let h = vec![op(OpKind::Dequeue(1), 0, 1), op(OpKind::Enqueue(1), 2, 3)];
        assert_eq!(check_fifo(&h), Err(Violation::DequeueBeforeEnqueue(1)));
    }

    #[test]
    fn overlapping_enqueue_and_dequeue_is_fine() {
        // deq returns after enq begins: linearizable (enq then deq inside
        // the overlap).
        let h = vec![op(OpKind::Enqueue(1), 5, 10), op(OpKind::Dequeue(1), 6, 11)];
        assert_eq!(check_fifo(&h), Ok(()));
    }

    #[test]
    fn detects_order_inversion() {
        // enq(1) finishes before enq(2) starts, yet 2 is dequeued strictly
        // before 1.
        let h = vec![
            op(OpKind::Enqueue(1), 0, 1),
            op(OpKind::Enqueue(2), 2, 3),
            op(OpKind::Dequeue(2), 4, 5),
            op(OpKind::Dequeue(1), 6, 7),
        ];
        match check_fifo(&h) {
            Err(Violation::OrderInversion {
                first: 1,
                second: 2,
            }) => {}
            other => panic!("expected inversion, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_enqueues_may_dequeue_either_order() {
        // enq(1) and enq(2) overlap: both dequeue orders are linearizable.
        let h = vec![
            op(OpKind::Enqueue(1), 0, 10),
            op(OpKind::Enqueue(2), 5, 15),
            op(OpKind::Dequeue(2), 20, 21),
            op(OpKind::Dequeue(1), 22, 23),
        ];
        assert_eq!(check_fifo(&h), Ok(()));
    }

    #[test]
    fn concurrent_dequeues_may_return_either_order() {
        // deq intervals overlap: no strict order between them.
        let h = vec![
            op(OpKind::Enqueue(1), 0, 1),
            op(OpKind::Enqueue(2), 2, 3),
            op(OpKind::Dequeue(2), 10, 20),
            op(OpKind::Dequeue(1), 15, 25),
        ];
        assert_eq!(check_fifo(&h), Ok(()));
    }

    #[test]
    fn unconsumed_values_are_unconstrained() {
        let h = vec![
            op(OpKind::Enqueue(1), 0, 1),
            op(OpKind::Enqueue(2), 2, 3),
            op(OpKind::Dequeue(1), 4, 5),
        ];
        assert_eq!(check_fifo(&h), Ok(()));
    }

    #[test]
    fn recorder_merges_thread_histories() {
        let rec = HistoryRecorder::new();
        let mut h1 = rec.handle();
        let mut h2 = rec.handle();
        h1.enqueue(1, || {});
        h2.enqueue(2, || {});
        assert_eq!(h1.dequeue(|| Some(1)), Some(1));
        assert_eq!(h2.dequeue(|| None), None); // not recorded
        drop(h1);
        drop(h2);
        let hist = rec.into_history();
        assert_eq!(hist.len(), 3);
    }

    #[test]
    fn recorder_end_to_end_with_a_real_queue() {
        use std::collections::VecDeque;
        let rec = HistoryRecorder::new();
        let mut h = rec.handle();
        let mut q = VecDeque::new();
        for i in 0..100u64 {
            h.enqueue(i, || q.push_back(i));
            if i % 3 == 0 {
                h.dequeue(|| q.pop_front());
            }
        }
        drop(h);
        assert_eq!(rec.check(), Ok(()));
    }

    #[test]
    fn batch_ops_share_one_interval() {
        let rec = HistoryRecorder::new();
        let mut h = rec.handle();
        h.enqueue_batch(&[1, 2, 3], || {});
        let mut buf = Vec::new();
        let n = h.dequeue_batch(&mut buf, |b| {
            b.extend([1, 2, 3]);
            3
        });
        assert_eq!(n, 3);
        // Empty harvests record nothing.
        assert_eq!(h.dequeue_batch(&mut buf, |_| 0), 0);
        drop(h);
        let hist = rec.into_history();
        assert_eq!(hist.len(), 6);
        let enq: Vec<_> = hist
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Enqueue(_)))
            .collect();
        assert!(enq
            .windows(2)
            .all(|w| w[0].inv == w[1].inv && w[0].resp == w[1].resp));
        assert_eq!(check_fifo(&hist), Ok(()));
    }

    #[test]
    fn batched_history_never_orders_within_a_batch() {
        // Both orders of a batch's values against a concurrent dequeue pair
        // are accepted: values 1 and 2 share the enqueue interval, so
        // dequeuing 2 before 1 is NOT an inversion.
        let h = vec![
            op(OpKind::Enqueue(1), 0, 10),
            op(OpKind::Enqueue(2), 0, 10),
            op(OpKind::Dequeue(2), 20, 21),
            op(OpKind::Dequeue(1), 22, 23),
        ];
        assert_eq!(check_fifo(&h), Ok(()));
    }

    #[test]
    fn relaxed_with_zero_budget_matches_the_strict_check() {
        let inverted = vec![
            op(OpKind::Enqueue(1), 0, 1),
            op(OpKind::Enqueue(2), 2, 3),
            op(OpKind::Dequeue(2), 4, 5),
            op(OpKind::Dequeue(1), 6, 7),
        ];
        assert!(check_fifo(&inverted).is_err());
        assert!(matches!(
            check_fifo_relaxed(&inverted, 0),
            Err(Violation::ExcessiveReordering {
                value: 2,
                observed: 1,
                bound: 0,
            })
        ));
        // ...and both accept the repaired order.
        let fifo = vec![
            op(OpKind::Enqueue(1), 0, 1),
            op(OpKind::Enqueue(2), 2, 3),
            op(OpKind::Dequeue(1), 4, 5),
            op(OpKind::Dequeue(2), 6, 7),
        ];
        assert_eq!(check_fifo(&fifo), Ok(()));
        assert_eq!(check_fifo_relaxed(&fifo, 0), Ok(()));
    }

    #[test]
    fn relaxed_budget_is_a_sharp_boundary() {
        // enq 1, 2, 3 sequentially; deq 3 first: 3 overtakes both 1 and 2.
        let h = vec![
            op(OpKind::Enqueue(1), 0, 1),
            op(OpKind::Enqueue(2), 2, 3),
            op(OpKind::Enqueue(3), 4, 5),
            op(OpKind::Dequeue(3), 6, 7),
            op(OpKind::Dequeue(1), 8, 9),
            op(OpKind::Dequeue(2), 10, 11),
        ];
        assert_eq!(check_fifo_relaxed(&h, 2), Ok(()));
        assert!(matches!(
            check_fifo_relaxed(&h, 1),
            Err(Violation::ExcessiveReordering {
                value: 3,
                observed: 2,
                bound: 1,
            })
        ));
    }

    #[test]
    fn relaxed_ignores_concurrent_operations() {
        // deq(1) and deq(2) overlap, so 2 never strictly overtakes 1 even
        // with both enqueues strictly ordered: budget 0 accepts.
        let h = vec![
            op(OpKind::Enqueue(1), 0, 1),
            op(OpKind::Enqueue(2), 2, 3),
            op(OpKind::Dequeue(2), 10, 20),
            op(OpKind::Dequeue(1), 15, 25),
        ];
        assert_eq!(check_fifo_relaxed(&h, 0), Ok(()));
    }

    #[test]
    fn relaxed_still_hard_fails_loss_and_duplication() {
        let lost = vec![op(OpKind::Dequeue(9), 0, 1)];
        assert_eq!(
            check_fifo_relaxed(&lost, usize::MAX),
            Err(Violation::NeverEnqueued(9))
        );
        let dup = vec![
            op(OpKind::Enqueue(1), 0, 1),
            op(OpKind::Dequeue(1), 2, 3),
            op(OpKind::Dequeue(1), 4, 5),
        ];
        assert_eq!(
            check_fifo_relaxed(&dup, usize::MAX),
            Err(Violation::DoubleDequeue(1))
        );
        let time_travel = vec![op(OpKind::Dequeue(1), 0, 1), op(OpKind::Enqueue(1), 2, 3)];
        assert_eq!(
            check_fifo_relaxed(&time_travel, usize::MAX),
            Err(Violation::DequeueBeforeEnqueue(1))
        );
    }

    #[test]
    fn over_relaxed_impl_exceeds_a_small_bound() {
        // A deliberately over-relaxed "sharded" queue: round-robin enqueue
        // over two internal FIFOs, but a consumer that fully drains the
        // second shard before touching the first. Per-shard FIFO holds,
        // yet the last odd value strictly overtakes every even one — the
        // kind of unbounded skew a real k-relaxed queue must prevent.
        use std::collections::VecDeque;
        let rec = HistoryRecorder::new();
        let mut h = rec.handle();
        let mut shards: [VecDeque<u64>; 2] = [VecDeque::new(), VecDeque::new()];
        for v in 0..100u64 {
            let s = (v % 2) as usize;
            h.enqueue(v, || shards[s].push_back(v));
        }
        for s in [1, 0] {
            while h.dequeue(|| shards[s].pop_front()).is_some() {}
        }
        drop(h);
        let hist = rec.into_history();
        assert!(matches!(
            check_fifo_relaxed(&hist, 10),
            Err(Violation::ExcessiveReordering { .. })
        ));
        // Value 99 overtakes the 50 evens enqueued strictly before it;
        // nothing overtakes more.
        assert!(matches!(
            check_fifo_relaxed(&hist, 49),
            Err(Violation::ExcessiveReordering { observed: 50, .. })
        ));
        assert_eq!(check_fifo_relaxed(&hist, 50), Ok(()));
    }

    /// The sweep must not report an inversion for the pair (a, b) when a
    /// and b are the same value admitted early.
    #[test]
    fn self_pair_is_not_an_inversion() {
        let h = vec![
            op(OpKind::Enqueue(1), 0, 1),
            op(OpKind::Dequeue(1), 2, 3),
            op(OpKind::Enqueue(2), 10, 11),
            op(OpKind::Dequeue(2), 12, 13),
        ];
        assert_eq!(check_fifo(&h), Ok(()));
    }

    #[test]
    fn broadcast_gapless_walk_passes() {
        use BroadcastObs::*;
        let published = [10, 11, 12, 13, 14];
        let obs = [Received(10), Received(11), Lagged(2), Received(14)];
        assert_eq!(check_broadcast(&published, 0, &obs), Ok(()));
        // A late joiner starting mid-stream.
        let obs = [Received(13), Received(14)];
        assert_eq!(check_broadcast(&published, 3, &obs), Ok(()));
        // Duplicate *values* in the publication order are fine: the walk
        // matches by rank, not by value.
        let published = [7, 7, 7];
        let obs = [Received(7), Lagged(1), Received(7)];
        assert_eq!(check_broadcast(&published, 0, &obs), Ok(()));
        assert_eq!(check_broadcast(&[], 0, &[]), Ok(()));
    }

    #[test]
    fn broadcast_detects_wrong_value_and_silent_skip() {
        use BroadcastObs::*;
        let published = [10, 11, 12];
        assert_eq!(
            check_broadcast(&published, 0, &[Received(10), Received(99)]),
            Err(BroadcastViolation::WrongValue {
                rank: 1,
                expected: 11,
                got: 99
            })
        );
        // A silent skip surfaces as the wrong value at the cursor.
        assert_eq!(
            check_broadcast(&published, 0, &[Received(10), Received(12)]),
            Err(BroadcastViolation::WrongValue {
                rank: 1,
                expected: 11,
                got: 12
            })
        );
        // So does a duplicate delivery.
        assert_eq!(
            check_broadcast(&published, 0, &[Received(10), Received(10)]),
            Err(BroadcastViolation::WrongValue {
                rank: 1,
                expected: 11,
                got: 10
            })
        );
    }

    #[test]
    fn broadcast_detects_phantom_and_bad_lag() {
        use BroadcastObs::*;
        let published = [10, 11];
        assert_eq!(
            check_broadcast(&published, 0, &[Received(10), Received(11), Received(12)]),
            Err(BroadcastViolation::PhantomItem {
                rank: 2,
                published: 2,
                got: 12
            })
        );
        assert_eq!(
            check_broadcast(&published, 0, &[Lagged(0)]),
            Err(BroadcastViolation::EmptyLag { rank: 0 })
        );
        assert_eq!(
            check_broadcast(&published, 1, &[Lagged(2)]),
            Err(BroadcastViolation::LagBeyondTail {
                rank: 1,
                skipped: 2,
                published: 2
            })
        );
    }
}
