//! Property tests: histories generated from a real FIFO execution always
//! pass; corrupted histories are caught.

use ffq_lincheck::{check_fifo, Op, OpKind, Violation};
use proptest::prelude::*;

/// Builds a legal history by simulating a FIFO with `lag` controlling how
/// far dequeues trail enqueues, on a virtual clock.
fn legal_history(ops: &[bool], overlap: u64, spacing: u64) -> Vec<Op> {
    let mut history = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    let mut next = 0u64;
    let mut clock = 0u64;
    for &enq in ops {
        // Interval length `overlap + 1`, next op starting `spacing` later:
        // spacing <= overlap yields concurrent operations (still legal);
        // spacing > overlap + 1 yields strictly ordered ones.
        let inv = clock;
        let resp = clock + overlap + 1;
        clock += spacing.max(1);
        if enq {
            history.push(Op {
                kind: OpKind::Enqueue(next),
                inv,
                resp,
            });
            queue.push_back(next);
            next += 1;
        } else if let Some(v) = queue.pop_front() {
            // A dequeue's interval must not end before its enqueue began;
            // by construction enq(v).inv <= inv here.
            history.push(Op {
                kind: OpKind::Dequeue(v),
                inv,
                resp,
            });
        }
    }
    history
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn legal_histories_pass(
        ops in prop::collection::vec(any::<bool>(), 1..300),
        overlap in 0u64..20,
    ) {
        let h = legal_history(&ops, overlap, 1);
        prop_assert_eq!(check_fifo(&h), Ok(()));
    }

    /// Swapping the values of two non-overlapping dequeues of
    /// non-overlapping enqueues creates a detectable inversion.
    #[test]
    fn swapped_dequeues_are_caught(
        ops in prop::collection::vec(any::<bool>(), 8..300),
    ) {
        // Strictly ordered intervals so the swap is a definite inversion.
        let mut h = legal_history(&ops, 0, 2);
        let deq_idx: Vec<usize> = h
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op.kind, OpKind::Dequeue(_)))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(deq_idx.len() >= 2);
        let (a, b) = (deq_idx[0], deq_idx[1]);
        let (va, vb) = match (h[a].kind, h[b].kind) {
            (OpKind::Dequeue(x), OpKind::Dequeue(y)) => (x, y),
            _ => unreachable!(),
        };
        prop_assume!(va != vb);
        h[a].kind = OpKind::Dequeue(vb);
        h[b].kind = OpKind::Dequeue(va);
        prop_assert!(
            check_fifo(&h).is_err(),
            "swap of {va} and {vb} went undetected"
        );
    }

    /// Duplicating a dequeue is always caught.
    #[test]
    fn duplicated_dequeues_are_caught(
        ops in prop::collection::vec(any::<bool>(), 4..200),
    ) {
        let mut h = legal_history(&ops, 3, 1);
        let dup = h.iter().find(|op| matches!(op.kind, OpKind::Dequeue(_))).copied();
        prop_assume!(dup.is_some());
        let mut dup = dup.unwrap();
        dup.inv += 1000;
        dup.resp += 1000;
        h.push(dup);
        let v = match dup.kind {
            OpKind::Dequeue(v) => v,
            _ => unreachable!(),
        };
        prop_assert_eq!(check_fifo(&h), Err(Violation::DoubleDequeue(v)));
    }

    /// Retiming a dequeue to finish before its enqueue began is caught.
    #[test]
    fn time_travel_is_caught(
        ops in prop::collection::vec(any::<bool>(), 4..200),
    ) {
        let mut h = legal_history(&ops, 0, 2);
        let idx = h.iter().position(|op| matches!(op.kind, OpKind::Dequeue(_)));
        prop_assume!(idx.is_some());
        let idx = idx.unwrap();
        let v = match h[idx].kind {
            OpKind::Dequeue(v) => v,
            _ => unreachable!(),
        };
        // Its enqueue has inv >= 0 and every interval is 1 tick; move the
        // dequeue to before time 0.
        let enq = h
            .iter()
            .find(|op| op.kind == OpKind::Enqueue(v))
            .copied()
            .unwrap();
        prop_assume!(enq.inv > 0);
        h[idx].inv = 0;
        h[idx].resp = enq.inv - 1;
        prop_assert_eq!(check_fifo(&h), Err(Violation::DequeueBeforeEnqueue(v)));
    }
}
