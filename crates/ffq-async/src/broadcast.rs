//! Async broadcast (pub-sub) endpoints: every subscriber task observes the
//! full stream; slow subscribers observe loss (`Lagged`) instead of
//! backpressuring the sender.
//!
//! Wraps [`ffq::broadcast`] the way [`crate::wrap`] wraps the
//! point-to-point handles: the queue itself is untouched, and async
//! notifications travel through the same [`AsyncCells`] waker eventcount
//! beside it. Only the **subscriber** side ever waits — broadcast
//! publication is wait-free by construction — so only `not_empty` is ever
//! registered on; the sender notifies it after each publish and on drop.
//!
//! ## Why there is no failure-path notify here
//!
//! The point-to-point futures must broadcast to the *opposite* wait cell
//! even when an attempt fails, because a failed FFQ attempt still mutates
//! shared queue state (burned gap ranks, advanced head) that the other
//! side may be parked on (see the `handle` module docs). A broadcast
//! subscriber's `try_recv` writes **nothing** to shared memory — not on
//! success, not on failure — and the sender never waits, so there is no
//! opposite cell and no state change to announce. The wake protocol
//! degenerates to the textbook eventcount: publish → notify, miss →
//! register → re-check → park.
//!
//! ## Cancellation safety
//!
//! A dropped [`Recv`] future abandons nothing: the subscriber's cursor
//! only advances inside a poll that returns `Ready`, and a wait
//! registration a notifier already consumed is handed to the next waiter
//! on drop, exactly like the point-to-point futures (ALGORITHM.md §12).
//!
//! ```
//! let (mut tx, rx) = ffq_async::broadcast::channel::<u64>(8);
//! let mut a = rx.clone();
//! let mut b = rx;
//! ffq_async::rt::block_on(async move {
//!     tx.send(7);
//!     assert_eq!(a.recv().await, Ok(7));
//!     assert_eq!(b.recv().await, Ok(7)); // both subscribers see the item
//! });
//! ```

use std::future::Future;
use std::mem::ManuallyDrop;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

use ffq::cell::{CellSlot, PaddedCell};
use ffq::error::{BroadcastRecvError, BroadcastTryRecvError};
use ffq::layout::{IndexMap, LinearMap};
use ffq_sync::WaitToken;

use crate::handle::{
    abandon_token, ensure_registered, settle_token, spin_yield, AsyncCells, DEFAULT_SPIN_POLLS,
};

/// Creates an async broadcast channel with at least the given capacity
/// (rounded up to a power of two).
///
/// Returns the unique sender and one subscriber positioned at the start
/// of the stream; clone the subscriber for more (clones inherit the
/// source's position) or call [`Subscriber::resubscribe`] to join at the
/// live edge.
///
/// # Panics
/// If `capacity` is 0 or exceeds [`ffq::MAX_CAPACITY`].
pub fn channel<T: Copy + Send>(capacity: usize) -> (Sender<T>, Subscriber<T>) {
    channel_with::<T, PaddedCell<T>, LinearMap>(capacity)
}

/// [`channel`] with explicit cell layout and index mapping.
///
/// # Panics
/// If `capacity` is 0 or exceeds [`ffq::MAX_CAPACITY`].
pub fn channel_with<T: Copy + Send, C: CellSlot<T>, M: IndexMap>(
    capacity: usize,
) -> (Sender<T, C, M>, Subscriber<T, C, M>) {
    let (tx, rx) = ffq::broadcast::channel_with::<T, C, M>(capacity);
    let cells = Arc::new(AsyncCells::new());
    (
        Sender {
            inner: ManuallyDrop::new(tx),
            cells: Arc::clone(&cells),
        },
        Subscriber {
            inner: ManuallyDrop::new(rx),
            cells,
            spin_polls: DEFAULT_SPIN_POLLS,
        },
    )
}

/// The unique sending side of an async broadcast channel.
///
/// [`send`](Self::send) is synchronous — broadcast publication is
/// wait-free, so there is nothing to `await`; the method additionally
/// wakes every parked subscriber task.
pub struct Sender<T: Copy + Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    /// `ManuallyDrop` so our `Drop` can run the inner disconnect *first*
    /// and broadcast to async waiters *after* it is visible.
    inner: ManuallyDrop<ffq::broadcast::Sender<T, C, M>>,
    cells: Arc<AsyncCells>,
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Sender<T, C, M> {
    /// Publishes `value` to every subscriber and wakes parked subscriber
    /// tasks. Wait-free; never blocks and never fails.
    pub fn send(&mut self, value: T) {
        self.inner.send(value);
        self.cells.not_empty.notify_all();
    }

    /// Publishes every item of `iter`; returns the count. Parked tasks
    /// are woken once, after the whole batch — the async analogue of the
    /// point-to-point batched publish notifying once per poll.
    pub fn send_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        let n = self.inner.send_many(iter);
        if n > 0 {
            self.cells.not_empty.notify_all();
        }
        n
    }

    /// Number of items published so far.
    pub fn published(&self) -> u64 {
        self.inner.published()
    }

    /// Capacity of the ring — the retention window lagging subscribers
    /// can still recover from.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Number of live subscriber handles.
    pub fn subscribers(&self) -> usize {
        self.inner.subscribers()
    }
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Drop for Sender<T, C, M> {
    fn drop(&mut self) {
        // Disconnect order matters (same as AsyncSender): run the sync
        // drop first so the producer-count decrement is visible, *then*
        // broadcast — otherwise a woken subscriber could re-check, still
        // see a live sender, park again, and miss the closure forever.
        // SAFETY: `inner` is dropped exactly once, here.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        self.cells.not_empty.notify_all();
    }
}

/// A subscribing handle of an async broadcast channel. Clone it to add
/// subscribers; each clone advances independently.
pub struct Subscriber<T: Copy + Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    inner: ManuallyDrop<ffq::broadcast::Subscriber<T, C, M>>,
    cells: Arc<AsyncCells>,
    spin_polls: u16,
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Subscriber<T, C, M> {
    /// Sets the reschedule-spin budget for this handle's futures (see
    /// [`DEFAULT_SPIN_POLLS`]); 0 parks on the first empty poll.
    pub fn set_spin_polls(&mut self, polls: u16) {
        self.spin_polls = polls;
    }

    /// Attempts to receive the next item without waiting.
    ///
    /// `Lagged(n)` means the sender lapped this subscriber and `n` items
    /// are gone; the cursor is already resynced, so the next receive
    /// resumes at the oldest retained item.
    pub fn try_recv(&mut self) -> Result<T, BroadcastTryRecvError> {
        self.inner.try_recv()
    }

    /// Receives the next item, suspending the task while nothing new is
    /// published. Lag is returned as an error, not waited out.
    ///
    /// Cancellation-safe: a dropped future abandons no stream position
    /// and hands any wake it was already dealt to the next waiter.
    pub fn recv(&mut self) -> Recv<'_, T, C, M> {
        Recv {
            rx: self,
            tok: None,
            spins: 0,
        }
    }

    /// A new subscriber positioned at the **live edge** of the stream (a
    /// plain `clone()` inherits this handle's position instead).
    pub fn resubscribe(&self) -> Self {
        Self {
            inner: ManuallyDrop::new(self.inner.resubscribe()),
            cells: Arc::clone(&self.cells),
            spin_polls: self.spin_polls,
        }
    }

    /// Converts this subscriber into a `Stream`-shaped adapter yielding
    /// `Result<T, Lagged>` items.
    pub fn into_stream(self) -> SubscriberStream<T, C, M> {
        SubscriberStream {
            rx: self,
            tok: None,
            spins: 0,
        }
    }

    /// Rank of the next item this subscriber will observe.
    pub fn cursor_rank(&self) -> i64 {
        self.inner.cursor_rank()
    }

    /// How many published items this subscriber has not yet observed
    /// (approximate).
    pub fn len_behind(&self) -> usize {
        self.inner.len_behind()
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Snapshot of this subscriber's counters.
    pub fn stats(&self) -> ffq::SubscriberStats {
        self.inner.stats()
    }

    /// One receive step: try, then register on `not_empty`, re-check, and
    /// return `Pending` only with a registration in place.
    fn poll_recv_inner(
        &mut self,
        tok: &mut Option<WaitToken>,
        spins: &mut u16,
        cx: &mut Context<'_>,
    ) -> Poll<Result<T, BroadcastRecvError>> {
        let spin_limit = self.spin_polls;
        let cells = Arc::clone(&self.cells);
        match self.inner.try_recv() {
            Ok(v) => {
                *spins = 0;
                settle_token(&cells.not_empty, tok);
                return Poll::Ready(Ok(v));
            }
            Err(BroadcastTryRecvError::Lagged(n)) => {
                *spins = 0;
                settle_token(&cells.not_empty, tok);
                return Poll::Ready(Err(BroadcastRecvError::Lagged(n)));
            }
            Err(BroadcastTryRecvError::Closed) => {
                settle_token(&cells.not_empty, tok);
                return Poll::Ready(Err(BroadcastRecvError::Closed));
            }
            Err(BroadcastTryRecvError::Empty) => {}
        }
        if tok.is_none() && *spins < spin_limit {
            // Reschedule-spin phase (see DEFAULT_SPIN_POLLS). No
            // opposite-cell notify: an empty broadcast try_recv mutates
            // no shared state anyone could be waiting on (module docs).
            *spins += 1;
            spin_yield(*spins, spin_limit);
            cx.waker().wake_by_ref();
            return Poll::Pending;
        }
        ensure_registered(&cells.not_empty, tok, cx.waker());
        // Mandatory post-registration re-check: a publish (or the sender
        // drop) racing the registration must be observed here, or its
        // wake may already have passed us by.
        match self.inner.try_recv() {
            Ok(v) => {
                settle_token(&cells.not_empty, tok);
                Poll::Ready(Ok(v))
            }
            Err(BroadcastTryRecvError::Lagged(n)) => {
                settle_token(&cells.not_empty, tok);
                Poll::Ready(Err(BroadcastRecvError::Lagged(n)))
            }
            Err(BroadcastTryRecvError::Closed) => {
                settle_token(&cells.not_empty, tok);
                Poll::Ready(Err(BroadcastRecvError::Closed))
            }
            Err(BroadcastTryRecvError::Empty) => Poll::Pending,
        }
    }
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Clone for Subscriber<T, C, M> {
    fn clone(&self) -> Self {
        Self {
            inner: ManuallyDrop::new((*self.inner).clone()),
            cells: Arc::clone(&self.cells),
            spin_polls: self.spin_polls,
        }
    }
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Drop for Subscriber<T, C, M> {
    fn drop(&mut self) {
        // Subscribers are invisible to everyone else (they write nothing
        // and nobody waits on them), so only the handle count matters —
        // the sync drop handles it. No notify needed.
        // SAFETY: `inner` is dropped exactly once, here.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
    }
}

/// Future of [`Subscriber::recv`].
#[must_use = "futures do nothing unless polled"]
pub struct Recv<'a, T: Copy + Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    rx: &'a mut Subscriber<T, C, M>,
    tok: Option<WaitToken>,
    spins: u16,
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Unpin for Recv<'_, T, C, M> {}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Future for Recv<'_, T, C, M> {
    type Output = Result<T, BroadcastRecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        me.rx.poll_recv_inner(&mut me.tok, &mut me.spins, cx)
    }
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Drop for Recv<'_, T, C, M> {
    fn drop(&mut self) {
        abandon_token(&self.rx.cells.not_empty, &mut self.tok);
    }
}

/// The error item of a [`SubscriberStream`]: the subscriber fell behind
/// and this many items were overwritten before it observed them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lagged(pub u64);

impl core::fmt::Display for Lagged {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "subscriber lagged: {} items overwritten", self.0)
    }
}

impl std::error::Error for Lagged {}

/// A `Stream`-shaped view of a [`Subscriber`]: yields `Ok(item)` for each
/// received item and `Err(Lagged(n))` at each loss event, then ends when
/// the sender is gone and the stream fully observed.
#[must_use = "streams do nothing unless polled"]
pub struct SubscriberStream<T: Copy + Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap>
{
    rx: Subscriber<T, C, M>,
    tok: Option<WaitToken>,
    spins: u16,
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Unpin for SubscriberStream<T, C, M> {}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> SubscriberStream<T, C, M> {
    /// Polls for the next stream item; `Ready(None)` means closed and
    /// fully observed. Runtime-agnostic equivalent of
    /// `Stream::poll_next`.
    pub fn poll_next_item(&mut self, cx: &mut Context<'_>) -> Poll<Option<Result<T, Lagged>>> {
        let me = self;
        me.rx
            .poll_recv_inner(&mut me.tok, &mut me.spins, cx)
            .map(|res| match res {
                Ok(v) => Some(Ok(v)),
                Err(BroadcastRecvError::Lagged(n)) => Some(Err(Lagged(n))),
                Err(BroadcastRecvError::Closed) => None,
            })
    }

    /// Shared access to the wrapped subscriber.
    pub fn subscriber(&self) -> &Subscriber<T, C, M> {
        &self.rx
    }

    /// Mutable access to the wrapped subscriber. Safe because the stream
    /// holds no harvested items: any in-flight wait registration is
    /// simply superseded by the next poll.
    pub fn subscriber_mut(&mut self) -> &mut Subscriber<T, C, M> {
        &mut self.rx
    }

    /// Recovers the subscriber.
    pub fn into_inner(mut self) -> Subscriber<T, C, M> {
        abandon_token(&self.rx.cells.not_empty, &mut self.tok);
        self.rx.clone()
    }
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Drop for SubscriberStream<T, C, M> {
    fn drop(&mut self) {
        abandon_token(&self.rx.cells.not_empty, &mut self.tok);
    }
}

#[cfg(feature = "futures")]
impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> futures_core::Stream
    for SubscriberStream<T, C, M>
{
    type Item = Result<T, Lagged>;

    fn poll_next(
        self: core::pin::Pin<&mut Self>,
        cx: &mut Context<'_>,
    ) -> Poll<Option<Self::Item>> {
        self.get_mut().poll_next_item(cx)
    }
}
