//! Async endpoint wrappers and their cancellation-safe futures.
//!
//! ## Where the wait state lives
//!
//! `QueueState` is `#[repr(C)]` and shm-safe — it cannot hold `Waker`s (a
//! waker is a fat pointer into one process's address space). The async
//! wait state therefore lives *beside* the queue, in an [`AsyncCells`]
//! pair shared by the wrapped endpoints via `Arc`: `not_empty` is notified
//! by senders after they publish, `not_full` by receivers after they free
//! cells. Consequently a queue endpoint only generates async notifications
//! if it is wrapped — **both ends of a queue must be wrapped** (by
//! [`crate::wrap`] or the `channel` constructors) for `await` to work; a
//! raw sync handle feeding an `AsyncReceiver` will deliver items but never
//! wake a parked task. The reverse direction is safe: wrapped endpoints
//! still run the sync publish/claim code, so they keep waking *blocking*
//! peers via the futex eventcounts.
//!
//! ## Cancellation safety
//!
//! Every future here holds only (a) a `&mut` borrow of its endpoint, (b)
//! possibly the item(s) it has not yet enqueued, and (c) an optional
//! [`WaitToken`]. Claimed-but-unsatisfied dequeue ranks live in the
//! *handle's* pending-rank FIFO (PR 1 machinery), never in the future —
//! dropping a dequeue future abandons no rank and cannot reorder FIFO
//! delivery; the next dequeue on the same handle resumes exactly where the
//! dropped future left off. The token is settled by `Drop`: a live
//! registration is removed, and a registration a notifier already consumed
//! means the future swallowed a wake — `Drop` passes it on with one more
//! `notify(1)` so no other waiter can starve (ALGORITHM.md §12).
//!
//! ## Notification discipline
//!
//! `not_empty` and `not_full` are notified with `notify_all`. Broadcast is
//! deliberate, not lazy: FFQ consumers *own* the rank they claimed, so a
//! single wake aimed at consumer A is wasted if the published rank belongs
//! to consumer B's pending FIFO — B stays parked even though its item is
//! ready (the wrong-wakee hazard; the sync futex path has the same narrow
//! window, tracked in ROADMAP.md). Broadcasting plus each waiter's
//! post-register re-check makes the wake protocol insensitive to who
//! "deserved" the wake; the cost is bounded by the number of actually
//! parked tasks and is zero (one fence + one load) when nobody waits.
//! Batched operations notify once per poll, not once per item.
//!
//! *Failure paths notify too.* A failed FFQ attempt is not a no-op: a
//! `Full` MPMC/SPMC `try_send` can burn tail ranks as gap announcements
//! at occupied cells (a parked receiver whose pending rank was just
//! superseded must wake to step over it — the sync path wakes its futex
//! eventcount from inside `resolve_rank`/`void_rank`, which async
//! waiters never hear), and an `Empty` `try_recv` can claim a fresh head
//! rank, advancing `head` — exactly what a producer parked on a full
//! queue is waiting to observe. So every path that returns `Pending`
//! (or a wrapper `try_*` that fails) broadcasts to the *opposite* cell.
//! This cannot livelock: each gap-burn/skip round-trip advances the
//! cell's gap word or `head` monotonically, so within at most one lap of
//! the ring the stalled rank is superseded and an item flows; and when
//! nobody is parked the extra notify is the free fence + relaxed load.

use std::future::Future;
use std::mem::ManuallyDrop;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use ffq::error::{Disconnected, Full, TryDequeueError};
use ffq_sync::{AsyncWaitCell, WaitToken};

use crate::traits::{TryRecv, TrySend};

/// Default poll budget for the reschedule-spin phase: before touching the
/// waiter registry, a future re-queues itself (`wake_by_ref` + `Pending`)
/// up to this many polls — executor round-trips only for the first half
/// of the budget, with an OS `yield_now` added in the back half. This is
/// the async mirror of the sync adaptive spin/yield phases
/// (`ffq_sync::WaitConfig`): at saturation the peer refills or drains the
/// queue within a couple of scheduler round-trips, so both sides stay out
/// of the registry and every notify takes the `waiters == 0` fast path
/// (one fence + one relaxed load) — no park/unpark syscalls, no registry
/// spinlock; on an oversubscribed core the yield half donates the
/// timeslice to the peer the way the sync `Backoff` yield rounds do. A
/// future that exhausts the budget registers and parks for real, so idle
/// queues still cost nothing beyond the bounded warm-down. The default is
/// deliberately small: measured on the batched saturation benchmark
/// (`fig_async`), larger budgets only steal CPU from the refilling peer.
/// Tune per handle with [`AsyncSender::set_spin_polls`] /
/// [`AsyncReceiver::set_spin_polls`] (0 = park immediately, the right
/// setting for mostly-idle queues).
pub const DEFAULT_SPIN_POLLS: u16 = 8;

/// The per-queue async wait state: one waker eventcount per direction.
#[derive(Debug, Default)]
pub(crate) struct AsyncCells {
    /// Receivers park here; senders notify after publishing.
    pub(crate) not_empty: AsyncWaitCell,
    /// Senders park here; receivers notify after freeing cells.
    pub(crate) not_full: AsyncWaitCell,
}

impl AsyncCells {
    pub(crate) const fn new() -> Self {
        Self {
            not_empty: AsyncWaitCell::new(),
            not_full: AsyncWaitCell::new(),
        }
    }
}

/// Sending on a queue whose consumers are all gone; returns the item.
///
/// Only produced by flavors whose producer can observe the consumer count
/// (SPMC/MPMC); see [`TrySend::peers_gone`].
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> SendError<T> {
    /// Recovers the item that could not be sent.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> core::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("sending on a queue with no remaining consumers")
    }
}

impl<T: core::fmt::Debug> std::error::Error for SendError<T> {}

/// Back half of the reschedule-spin phase: donate the worker's OS
/// timeslice, the async mirror of the sync `Backoff` yield rounds. The
/// first half costs only the executor round-trip (the multicore-friendly
/// case — the peer is running elsewhere); once that alone hasn't helped,
/// the peer is probably sharing this core, and `sched_yield` hands it the
/// CPU directly. Bounded by the spin budget, so this never blocks a
/// worker longer than the handful of polls the budget allows.
pub(crate) fn spin_yield(spins: u16, limit: u16) {
    if spins > limit / 2 {
        std::thread::yield_now();
    }
}

/// Registers `waker` on `cell`, reusing a still-live registration in
/// place (keeps FIFO position, no count churn). A consumed token means a
/// wake was delivered to this very task — it is being acted on right now
/// by this poll — so it is simply discarded and a fresh registration made.
pub(crate) fn ensure_registered(cell: &AsyncWaitCell, tok: &mut Option<WaitToken>, waker: &Waker) {
    if let Some(t) = tok.as_ref() {
        if cell.update(t, waker) {
            return;
        }
        *tok = None;
    }
    *tok = Some(cell.register(waker));
}

/// Settles a token on the *completion* path: the future made progress, so
/// a consumed wake is accounted for by that progress and is kept.
pub(crate) fn settle_token(cell: &AsyncWaitCell, tok: &mut Option<WaitToken>) {
    if let Some(t) = tok.take() {
        let _ = cell.deregister(t);
    }
}

/// Settles a token on the *abandonment* path (future dropped while
/// pending): a consumed wake was meant to produce progress that will now
/// never happen here, so it is handed to the next waiter.
pub(crate) fn abandon_token(cell: &AsyncWaitCell, tok: &mut Option<WaitToken>) {
    if let Some(t) = tok.take() {
        if !cell.deregister(t) {
            cell.notify(1);
        }
    }
}

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

/// Async wrapper around a queue producer handle.
///
/// Created by [`crate::wrap`] or the flavor constructors
/// ([`crate::spsc::channel`], [`crate::spmc::channel`],
/// [`crate::mpmc::channel`]). `Clone` exactly when the underlying handle
/// is (MPMC producers).
pub struct AsyncSender<S: TrySend> {
    /// `ManuallyDrop` so our `Drop` can run the inner disconnect *first*
    /// and broadcast to async waiters *after* it is visible.
    inner: ManuallyDrop<S>,
    cells: Arc<AsyncCells>,
    spin_polls: u16,
}

impl<S: TrySend> AsyncSender<S> {
    pub(crate) fn new(inner: S, cells: Arc<AsyncCells>) -> Self {
        Self {
            inner: ManuallyDrop::new(inner),
            cells,
            spin_polls: DEFAULT_SPIN_POLLS,
        }
    }

    /// Sets the reschedule-spin budget for this handle's futures (see
    /// [`DEFAULT_SPIN_POLLS`]); 0 parks on the first failed attempt.
    pub fn set_spin_polls(&mut self, polls: u16) {
        self.spin_polls = polls;
    }

    /// Attempts to enqueue without waiting, notifying async receivers.
    pub fn try_enqueue(&mut self, value: S::Item) -> Result<(), Full<S::Item>> {
        let r = self.inner.try_send(value);
        // Notify even on `Full`: a failed MPMC/SPMC attempt can burn gap
        // ranks that a parked receiver must wake to skip (module docs).
        self.cells.not_empty.notify_all();
        r
    }

    /// Enqueues one item, waiting for space if the queue is full.
    ///
    /// Cancellation-safe: dropping the future before completion means the
    /// item was never enqueued (it is dropped with the future) and no
    /// queue or wait state is leaked.
    pub fn enqueue(&mut self, value: S::Item) -> Enqueue<'_, S> {
        Enqueue {
            tx: self,
            value: Some(value),
            tok: None,
            spins: 0,
        }
    }

    /// Enqueues every item of `items` in order, waiting for space as
    /// needed; resolves to the number enqueued (short only if every
    /// consumer disconnects mid-stream, where detectable).
    ///
    /// Wakes are batched: receivers are notified once per poll, however
    /// many items that poll managed to publish. Cancellation drops the
    /// not-yet-enqueued suffix with the future; the already-published
    /// prefix is delivered normally.
    pub fn enqueue_many<I: IntoIterator<Item = S::Item>>(
        &mut self,
        items: I,
    ) -> EnqueueMany<'_, S> {
        EnqueueMany {
            tx: self,
            items: items.into_iter().collect(),
            sent: 0,
            tok: None,
            spins: 0,
        }
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// The wrapped sync handle (e.g. for `stats()`).
    ///
    /// Do not call its *blocking* operations from an executor thread, and
    /// remember that items enqueued through it do notify async receivers
    /// only via the wrapper methods.
    pub fn sync_ref(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped sync handle; see [`Self::sync_ref`].
    pub fn sync_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Converts this sender into a `Sink`-shaped adapter.
    pub fn into_sink(self) -> crate::adapters::SendSink<S> {
        crate::adapters::SendSink::new(self)
    }

    pub(crate) fn cells(&self) -> &Arc<AsyncCells> {
        &self.cells
    }

    pub(crate) fn parts(&mut self) -> (&mut S, &AsyncCells) {
        (&mut self.inner, &self.cells)
    }
}

impl<S: TrySend + Clone> Clone for AsyncSender<S> {
    fn clone(&self) -> Self {
        Self {
            inner: ManuallyDrop::new((*self.inner).clone()),
            cells: Arc::clone(&self.cells),
            spin_polls: self.spin_polls,
        }
    }
}

impl<S: TrySend> Drop for AsyncSender<S> {
    fn drop(&mut self) {
        // Disconnect order matters: run the sync handle's drop first so
        // the producer count decrement is visible, *then* broadcast —
        // otherwise a woken receiver could re-check, still see a live
        // producer, park again, and miss the disconnect forever.
        // SAFETY: `inner` is dropped exactly once, here, and never
        // touched again.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        self.cells.not_empty.notify_all();
        self.cells.not_full.notify_all();
    }
}

impl<S: TrySend + core::fmt::Debug> core::fmt::Debug for AsyncSender<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AsyncSender")
            .field("inner", &*self.inner)
            .finish_non_exhaustive()
    }
}

/// One send step shared by [`Enqueue`] and the sink adapter: tries, then
/// registers on `not_full`, re-checks, and returns `Pending` only with a
/// registration in place. `slot` keeps the unsent item between polls.
pub(crate) fn poll_send_value<S: TrySend>(
    tx: &mut AsyncSender<S>,
    slot: &mut Option<S::Item>,
    tok: &mut Option<WaitToken>,
    spins: &mut u16,
    cx: &mut Context<'_>,
) -> Poll<Result<(), SendError<S::Item>>> {
    let spin_limit = tx.spin_polls;
    let (inner, cells) = tx.parts();
    let value = slot.take().expect("send future polled after completion");
    if inner.peers_gone() {
        settle_token(&cells.not_full, tok);
        return Poll::Ready(Err(SendError(value)));
    }
    let value = match inner.try_send(value) {
        Ok(()) => {
            *spins = 0;
            settle_token(&cells.not_full, tok);
            cells.not_empty.notify_all();
            return Poll::Ready(Ok(()));
        }
        Err(Full(v)) => v,
    };
    if tok.is_none() && *spins < spin_limit {
        // Reschedule-spin phase (see DEFAULT_SPIN_POLLS): stay out of
        // the registry, just yield this task back to its executor.
        *spins += 1;
        *slot = Some(value);
        // A failed attempt can still have burned gap ranks.
        cells.not_empty.notify_all();
        spin_yield(*spins, spin_limit);
        cx.waker().wake_by_ref();
        return Poll::Pending;
    }
    ensure_registered(&cells.not_full, tok, cx.waker());
    // Mandatory post-registration re-check (see AsyncWaitCell docs): a
    // slot freed — or a disconnect — between the first attempt and the
    // registration must be observed here, or its wake may already have
    // passed us by.
    match inner.try_send(value) {
        Ok(()) => {
            settle_token(&cells.not_full, tok);
            cells.not_empty.notify_all();
            Poll::Ready(Ok(()))
        }
        Err(Full(v)) => {
            if inner.peers_gone() {
                settle_token(&cells.not_full, tok);
                return Poll::Ready(Err(SendError(v)));
            }
            *slot = Some(v);
            // The failed attempts may have burned gap ranks; a receiver
            // parked on a now-superseded pending rank needs this wake.
            cells.not_empty.notify_all();
            Poll::Pending
        }
    }
}

/// Future of [`AsyncSender::enqueue`].
#[must_use = "futures do nothing unless polled"]
pub struct Enqueue<'a, S: TrySend> {
    tx: &'a mut AsyncSender<S>,
    value: Option<S::Item>,
    tok: Option<WaitToken>,
    spins: u16,
}

impl<S: TrySend> Unpin for Enqueue<'_, S> {}

impl<S: TrySend> Future for Enqueue<'_, S> {
    type Output = Result<(), SendError<S::Item>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        poll_send_value(me.tx, &mut me.value, &mut me.tok, &mut me.spins, cx)
    }
}

impl<S: TrySend> Drop for Enqueue<'_, S> {
    fn drop(&mut self) {
        abandon_token(&self.tx.cells.not_full, &mut self.tok);
    }
}

/// Future of [`AsyncSender::enqueue_many`].
#[must_use = "futures do nothing unless polled"]
pub struct EnqueueMany<'a, S: TrySend> {
    tx: &'a mut AsyncSender<S>,
    items: std::collections::VecDeque<S::Item>,
    sent: usize,
    tok: Option<WaitToken>,
    spins: u16,
}

impl<S: TrySend> Unpin for EnqueueMany<'_, S> {}

impl<S: TrySend> Future for EnqueueMany<'_, S> {
    type Output = usize;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        let spin_limit = me.tx.spin_polls;
        let (inner, cells) = me.tx.parts();
        let mut pushed = 0usize;
        let out = loop {
            // Drain as far as space allows.
            while let Some(v) = me.items.pop_front() {
                match inner.try_send(v) {
                    Ok(()) => pushed += 1,
                    Err(Full(v)) => {
                        me.items.push_front(v);
                        break;
                    }
                }
            }
            if me.items.is_empty() || inner.peers_gone() {
                settle_token(&cells.not_full, &mut me.tok);
                break Poll::Ready(me.sent + pushed);
            }
            if pushed > 0 {
                // Progress restarts the spin budget, like the sync
                // adaptive wait restarting per blocking call.
                me.spins = 0;
            }
            if me.tok.is_none() && me.spins < spin_limit {
                // Reschedule-spin phase (see DEFAULT_SPIN_POLLS); the
                // shared notify below covers published items and any
                // burned gap ranks.
                me.spins += 1;
                spin_yield(me.spins, spin_limit);
                cx.waker().wake_by_ref();
                break Poll::Pending;
            }
            ensure_registered(&cells.not_full, &mut me.tok, cx.waker());
            // Post-registration re-check; on success resume the drain so
            // a whole freed run is published under this poll's single
            // notification.
            let v = me.items.pop_front().expect("checked non-empty");
            match inner.try_send(v) {
                Ok(()) => pushed += 1,
                Err(Full(v)) => {
                    me.items.push_front(v);
                    if inner.peers_gone() {
                        settle_token(&cells.not_full, &mut me.tok);
                        break Poll::Ready(me.sent + pushed);
                    }
                    break Poll::Pending;
                }
            }
        };
        me.sent += pushed;
        if pushed > 0 || out.is_pending() {
            // One broadcast per poll: for however many items it
            // published, and — on the Pending path — for any gap ranks
            // the failed attempts burned (module docs).
            cells.not_empty.notify_all();
        }
        out
    }
}

impl<S: TrySend> Drop for EnqueueMany<'_, S> {
    fn drop(&mut self) {
        abandon_token(&self.tx.cells.not_full, &mut self.tok);
    }
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

/// Async wrapper around a queue consumer handle.
///
/// `Clone` exactly when the underlying handle is (SPMC/MPMC consumers);
/// each clone owns its private head/pending-rank state, exactly like the
/// sync handles.
pub struct AsyncReceiver<R: TryRecv> {
    inner: ManuallyDrop<R>,
    cells: Arc<AsyncCells>,
    spin_polls: u16,
}

impl<R: TryRecv> AsyncReceiver<R> {
    pub(crate) fn new(inner: R, cells: Arc<AsyncCells>) -> Self {
        Self {
            inner: ManuallyDrop::new(inner),
            cells,
            spin_polls: DEFAULT_SPIN_POLLS,
        }
    }

    /// Sets the reschedule-spin budget for this handle's futures (see
    /// [`DEFAULT_SPIN_POLLS`]); 0 parks on the first failed attempt.
    pub fn set_spin_polls(&mut self, polls: u16) {
        self.spin_polls = polls;
    }

    /// Attempts to dequeue without waiting, notifying async senders.
    pub fn try_dequeue(&mut self) -> Result<R::Item, TryDequeueError> {
        let r = self.inner.try_recv();
        // Notify even on `Empty`: the attempt can still have claimed a
        // fresh head rank, advancing `head` past what a parked producer
        // last saw of a full queue (module docs).
        self.cells.not_full.notify_all();
        r
    }

    /// Dequeues one item, waiting for one if the queue is empty; resolves
    /// `Err(Disconnected)` once the queue is drained and every producer is
    /// gone.
    ///
    /// Cancellation-safe: a dropped future abandons no claimed rank (rank
    /// state lives in the receiver, which simply resumes it on the next
    /// dequeue) and hands any wake it had already been dealt to the next
    /// waiter.
    pub fn dequeue(&mut self) -> Dequeue<'_, R> {
        Dequeue {
            rx: self,
            tok: None,
            spins: 0,
        }
    }

    /// Dequeues a batch: waits until at least one item is available, then
    /// resolves with up to `max` immediately-available items (senders are
    /// notified of the freed cells once, not per item).
    ///
    /// Cancellation-safe by construction: items are only harvested inside
    /// the poll that completes the future, so no item is ever buffered
    /// across an `await` point where a drop could lose it.
    pub fn dequeue_batch(&mut self, max: usize) -> DequeueBatch<'_, R> {
        DequeueBatch {
            rx: self,
            max,
            tok: None,
            spins: 0,
        }
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// The wrapped sync handle; see [`AsyncSender::sync_ref`] caveats.
    pub fn sync_ref(&self) -> &R {
        &self.inner
    }

    /// Mutable access to the wrapped sync handle; see [`Self::sync_ref`].
    pub fn sync_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Converts this receiver into a `Stream`-shaped adapter.
    pub fn into_stream(self) -> crate::adapters::RecvStream<R> {
        crate::adapters::RecvStream::new(self)
    }

    pub(crate) fn cells(&self) -> &Arc<AsyncCells> {
        &self.cells
    }

    pub(crate) fn parts(&mut self) -> (&mut R, &AsyncCells) {
        (&mut self.inner, &self.cells)
    }
}

impl<R: TryRecv + Clone> Clone for AsyncReceiver<R> {
    fn clone(&self) -> Self {
        Self {
            inner: ManuallyDrop::new((*self.inner).clone()),
            cells: Arc::clone(&self.cells),
            spin_polls: self.spin_polls,
        }
    }
}

impl<R: TryRecv> Drop for AsyncReceiver<R> {
    fn drop(&mut self) {
        // Same ordering as the sender: sync disconnect first, broadcast
        // second.
        // SAFETY: `inner` is dropped exactly once, here.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        self.cells.not_empty.notify_all();
        self.cells.not_full.notify_all();
    }
}

impl<R: TryRecv + core::fmt::Debug> core::fmt::Debug for AsyncReceiver<R> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AsyncReceiver")
            .field("inner", &*self.inner)
            .finish_non_exhaustive()
    }
}

/// One receive step shared by [`Dequeue`] and the stream adapter.
pub(crate) fn poll_recv_value<R: TryRecv>(
    rx: &mut AsyncReceiver<R>,
    tok: &mut Option<WaitToken>,
    spins: &mut u16,
    cx: &mut Context<'_>,
) -> Poll<Result<R::Item, Disconnected>> {
    let spin_limit = rx.spin_polls;
    let (inner, cells) = rx.parts();
    match inner.try_recv() {
        Ok(v) => {
            *spins = 0;
            settle_token(&cells.not_empty, tok);
            cells.not_full.notify_all();
            return Poll::Ready(Ok(v));
        }
        Err(TryDequeueError::Disconnected) => {
            settle_token(&cells.not_empty, tok);
            return Poll::Ready(Err(Disconnected));
        }
        Err(TryDequeueError::Empty) => {}
    }
    if tok.is_none() && *spins < spin_limit {
        // Reschedule-spin phase (see DEFAULT_SPIN_POLLS).
        *spins += 1;
        // The attempt may still have claimed a head rank (module docs).
        cells.not_full.notify_all();
        spin_yield(*spins, spin_limit);
        cx.waker().wake_by_ref();
        return Poll::Pending;
    }
    ensure_registered(&cells.not_empty, tok, cx.waker());
    // Post-registration re-check: a publish (or last-producer drop)
    // racing the registration must be caught here.
    match inner.try_recv() {
        Ok(v) => {
            settle_token(&cells.not_empty, tok);
            cells.not_full.notify_all();
            Poll::Ready(Ok(v))
        }
        Err(TryDequeueError::Disconnected) => {
            settle_token(&cells.not_empty, tok);
            Poll::Ready(Err(Disconnected))
        }
        Err(TryDequeueError::Empty) => {
            // The Empty attempts may still have claimed a head rank; a
            // producer parked on a full queue is waiting for exactly
            // that `head` advance (module docs).
            cells.not_full.notify_all();
            Poll::Pending
        }
    }
}

/// Future of [`AsyncReceiver::dequeue`].
#[must_use = "futures do nothing unless polled"]
pub struct Dequeue<'a, R: TryRecv> {
    rx: &'a mut AsyncReceiver<R>,
    tok: Option<WaitToken>,
    spins: u16,
}

impl<R: TryRecv> Unpin for Dequeue<'_, R> {}

impl<R: TryRecv> Future for Dequeue<'_, R> {
    type Output = Result<R::Item, Disconnected>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        poll_recv_value(me.rx, &mut me.tok, &mut me.spins, cx)
    }
}

impl<R: TryRecv> Drop for Dequeue<'_, R> {
    fn drop(&mut self) {
        abandon_token(&self.rx.cells.not_empty, &mut self.tok);
    }
}

/// Future of [`AsyncReceiver::dequeue_batch`].
#[must_use = "futures do nothing unless polled"]
pub struct DequeueBatch<'a, R: TryRecv> {
    rx: &'a mut AsyncReceiver<R>,
    max: usize,
    tok: Option<WaitToken>,
    spins: u16,
}

impl<R: TryRecv> Unpin for DequeueBatch<'_, R> {}

impl<R: TryRecv> DequeueBatch<'_, R> {
    /// Harvest attempt: fills `buf` and reports whether the future can
    /// complete. `Ok(true)` = items harvested, `Ok(false)` = nothing yet,
    /// `Err` = drained + disconnected.
    fn harvest(inner: &mut R, buf: &mut Vec<R::Item>, max: usize) -> Result<bool, Disconnected> {
        if inner.recv_batch_now(buf, max) > 0 {
            return Ok(true);
        }
        // A zero batch cannot distinguish empty from disconnected; probe
        // with a single try_recv (which can also race an item in).
        match inner.try_recv() {
            Ok(v) => {
                buf.push(v);
                if max > 1 {
                    let _ = inner.recv_batch_now(buf, max - 1);
                }
                Ok(true)
            }
            Err(TryDequeueError::Disconnected) => Err(Disconnected),
            Err(TryDequeueError::Empty) => Ok(false),
        }
    }
}

impl<R: TryRecv> Future for DequeueBatch<'_, R> {
    type Output = Result<Vec<R::Item>, Disconnected>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        if me.max == 0 {
            return Poll::Ready(Ok(Vec::new()));
        }
        let spin_limit = me.rx.spin_polls;
        let (inner, cells) = me.rx.parts();
        let mut buf = Vec::new();
        match Self::harvest(inner, &mut buf, me.max) {
            Ok(true) => {
                settle_token(&cells.not_empty, &mut me.tok);
                cells.not_full.notify_all();
                return Poll::Ready(Ok(buf));
            }
            Err(Disconnected) => {
                settle_token(&cells.not_empty, &mut me.tok);
                return Poll::Ready(Err(Disconnected));
            }
            Ok(false) => {}
        }
        if me.tok.is_none() && me.spins < spin_limit {
            // Reschedule-spin phase (see DEFAULT_SPIN_POLLS).
            me.spins += 1;
            // The probe may have claimed a head rank (module docs).
            cells.not_full.notify_all();
            spin_yield(me.spins, spin_limit);
            cx.waker().wake_by_ref();
            return Poll::Pending;
        }
        ensure_registered(&cells.not_empty, &mut me.tok, cx.waker());
        match Self::harvest(inner, &mut buf, me.max) {
            Ok(true) => {
                settle_token(&cells.not_empty, &mut me.tok);
                cells.not_full.notify_all();
                Poll::Ready(Ok(buf))
            }
            Err(Disconnected) => {
                settle_token(&cells.not_empty, &mut me.tok);
                Poll::Ready(Err(Disconnected))
            }
            Ok(false) => {
                // Same as `poll_recv_value`: the probe may have claimed
                // a head rank a parked producer is waiting on.
                cells.not_full.notify_all();
                Poll::Pending
            }
        }
    }
}

impl<R: TryRecv> Drop for DequeueBatch<'_, R> {
    fn drop(&mut self) {
        abandon_token(&self.rx.cells.not_empty, &mut self.tok);
    }
}
