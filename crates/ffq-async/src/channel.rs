//! Flavor-specific async channel constructors and the generic [`wrap`].
//!
//! Each `channel(capacity)` builds the sync queue and wraps *both* ends
//! around one shared [`AsyncCells`] pair — the invariant the whole wait
//! protocol rests on (see the `handle` module docs: an unwrapped end never
//! notifies async waiters). To async-wrap a queue you built yourself (a
//! custom `CellSlot`, an shm-backed pair, …), use [`wrap`] with both of
//! its handles.

use std::sync::Arc;

use crate::handle::{AsyncCells, AsyncReceiver, AsyncSender};
use crate::traits::{TryRecv, TrySend};

/// Wraps an existing sync producer/consumer pair for async use.
///
/// Both handles must belong to the same queue (nothing breaks if they do
/// not, but each end then awaits notifications its peer never sends).
/// Additional SPMC/MPMC handles are obtained by cloning the returned
/// wrappers, which keeps every clone on the same wait cells.
pub fn wrap<S: TrySend, R: TryRecv>(tx: S, rx: R) -> (AsyncSender<S>, AsyncReceiver<R>) {
    let cells = Arc::new(AsyncCells::new());
    (
        AsyncSender::new(tx, Arc::clone(&cells)),
        AsyncReceiver::new(rx, cells),
    )
}

/// Async single-producer/single-consumer channel.
pub mod spsc {
    use super::{AsyncReceiver, AsyncSender};

    /// Async SPSC sending half.
    pub type Sender<T> = AsyncSender<ffq::spsc::Producer<T>>;
    /// Async SPSC receiving half.
    pub type Receiver<T> = AsyncReceiver<ffq::spsc::Consumer<T>>;

    /// Creates an async SPSC channel with at least `capacity` cells
    /// (rounded up to a power of two by the sync constructor).
    pub fn channel<T: Send>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = ffq::spsc::channel(capacity);
        super::wrap(tx, rx)
    }
}

/// Async single-producer/multi-consumer channel.
pub mod spmc {
    use super::{AsyncReceiver, AsyncSender};

    /// Async SPMC sending half.
    pub type Sender<T> = AsyncSender<ffq::spmc::Producer<T>>;
    /// Async SPMC receiving half; `Clone` to add consumers.
    pub type Receiver<T> = AsyncReceiver<ffq::spmc::Consumer<T>>;

    /// Creates an async SPMC channel; clone the receiver for more
    /// consumers.
    pub fn channel<T: Send>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = ffq::spmc::channel(capacity);
        super::wrap(tx, rx)
    }
}

/// Async sharded MPMC channel with a k-relaxed FIFO contract.
pub mod shard {
    use super::{AsyncReceiver, AsyncSender};

    /// Async sharded sending half; `Clone` to add producers (the realized
    /// reordering bound assumes a single producer — see `ffq::shard`).
    pub type Sender<T> = AsyncSender<ffq::shard::ShardedProducer<T>>;
    /// Async sharded receiving half; `Clone` to add consumers.
    pub type Receiver<T> = AsyncReceiver<ffq::shard::ShardedConsumer<T>>;

    /// Creates an async sharded channel with the given total capacity and
    /// FIFO contract (`Ordering::Strict` degenerates to one shard).
    pub fn channel<T: Send>(
        capacity: usize,
        ordering: ffq::shard::Ordering,
    ) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = ffq::shard::channel(capacity, ordering);
        super::wrap(tx, rx)
    }

    /// [`channel`] with an explicit `(shards, block)` geometry.
    pub fn channel_with_geometry<T: Send>(
        capacity: usize,
        shards: usize,
        block: usize,
    ) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = ffq::shard::channel_with_geometry(capacity, shards, block);
        super::wrap(tx, rx)
    }
}

/// Async unbounded channels: segment-list queues that never backpressure.
///
/// `enqueue` always completes immediately (a full segment rolls onto a
/// fresh one instead of returning `Full`), so the sending futures never
/// wait — only the receive side parks tasks. The flavors mirror
/// [`ffq::unbounded`]; `capacity` arguments are per-*segment*.
pub mod unbounded {
    use super::{AsyncReceiver, AsyncSender};

    /// Async unbounded single-producer/single-consumer channel.
    pub mod spsc {
        use super::{AsyncReceiver, AsyncSender};

        /// Async unbounded SPSC sending half.
        pub type Sender<T> = AsyncSender<ffq::unbounded::spsc::Producer<T>>;
        /// Async unbounded SPSC receiving half.
        pub type Receiver<T> = AsyncReceiver<ffq::unbounded::spsc::Consumer<T>>;

        /// Creates an async unbounded SPSC channel built from segments of
        /// at least `segment_capacity` cells.
        pub fn channel<T: Send>(segment_capacity: usize) -> (Sender<T>, Receiver<T>) {
            let (tx, rx) = ffq::unbounded::spsc::channel(segment_capacity);
            crate::channel::wrap(tx, rx)
        }
    }

    /// Async unbounded single-producer/multi-consumer channel.
    pub mod spmc {
        use super::{AsyncReceiver, AsyncSender};

        /// Async unbounded SPMC sending half.
        pub type Sender<T> = AsyncSender<ffq::unbounded::spmc::Producer<T>>;
        /// Async unbounded SPMC receiving half; `Clone` to add consumers.
        pub type Receiver<T> = AsyncReceiver<ffq::unbounded::spmc::Consumer<T>>;

        /// Creates an async unbounded SPMC channel; clone the receiver
        /// for more consumers.
        pub fn channel<T: Send>(segment_capacity: usize) -> (Sender<T>, Receiver<T>) {
            let (tx, rx) = ffq::unbounded::spmc::channel(segment_capacity);
            crate::channel::wrap(tx, rx)
        }
    }

    /// Async unbounded multi-producer/multi-consumer channel.
    pub mod mpmc {
        use super::{AsyncReceiver, AsyncSender};

        /// Async unbounded MPMC sending half; `Clone` to add producers.
        pub type Sender<T> = AsyncSender<ffq::unbounded::mpmc::Producer<T>>;
        /// Async unbounded MPMC receiving half; `Clone` to add consumers.
        pub type Receiver<T> = AsyncReceiver<ffq::unbounded::mpmc::Consumer<T>>;

        /// Creates an async unbounded MPMC channel; clone either end for
        /// more handles.
        pub fn channel<T: Send>(segment_capacity: usize) -> (Sender<T>, Receiver<T>) {
            let (tx, rx) = ffq::unbounded::mpmc::channel(segment_capacity);
            crate::channel::wrap(tx, rx)
        }
    }
}

/// Async multi-producer/multi-consumer channel.
pub mod mpmc {
    use super::{AsyncReceiver, AsyncSender};

    /// Async MPMC sending half; `Clone` to add producers.
    pub type Sender<T> = AsyncSender<ffq::mpmc::Producer<T>>;
    /// Async MPMC receiving half; `Clone` to add consumers.
    pub type Receiver<T> = AsyncReceiver<ffq::mpmc::Consumer<T>>;

    /// Creates an async MPMC channel; clone either end for more handles.
    pub fn channel<T: Send>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = ffq::mpmc::channel(capacity);
        super::wrap(tx, rx)
    }
}
