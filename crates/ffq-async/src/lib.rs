//! # ffq-async — runtime-agnostic async/await layer over FFQ queues
//!
//! Wraps the sync `ffq` endpoints ([`crate::wrap`], [`spsc::channel`],
//! [`spmc::channel`], [`mpmc::channel`], and the never-backpressuring
//! [`unbounded`] segment-list variants) with futures that park *tasks*
//! instead of threads:
//!
//! - [`AsyncSender::enqueue`] / [`AsyncSender::enqueue_many`]
//! - [`AsyncReceiver::dequeue`] / [`AsyncReceiver::dequeue_batch`]
//! - [`RecvStream`] / [`SendSink`] adapters (`futures_core::Stream` /
//!   `futures_sink::Sink` impls behind the `futures` cargo feature)
//! - the zero-copy [`bytes`] lane: [`AsyncBytesSender::reserve`] resolves
//!   to an in-place write guard, [`AsyncBytesReceiver::recv`] to a
//!   borrowed payload view
//! - the [`broadcast`] lane: every subscriber task awaits the full
//!   stream; a slow subscriber observes `Lagged` instead of
//!   backpressuring the (wait-free, synchronous) sender
//!
//! The waiting primitive is [`ffq_sync::AsyncWaitCell`] — the PR 4
//! model-checked `{seq, waiters}` eventcount with a waker registry in
//! place of a futex (ALGORITHM.md §12). The sync hot path is untouched:
//! an uncontended notify is one `SeqCst` fence plus one relaxed load.
//!
//! ## Cancellation safety
//!
//! Every future can be dropped at any time (`select!`, timeouts) without
//! losing items, leaking queue state, or perturbing FIFO order:
//!
//! - Dequeue futures never own a claimed rank — pending ranks live in the
//!   *receiver handle* (PR 1), so a dropped `Dequeue` resumes seamlessly
//!   on the next call.
//! - [`AsyncReceiver::dequeue_batch`] harvests items only in the poll
//!   that completes it; nothing is buffered across `Pending`.
//! - A dropped future whose wait registration was already consumed by a
//!   notifier re-notifies one waiter on drop (wake handoff), so a
//!   cancelled task can never swallow the only wake.
//!
//! ## Runtimes
//!
//! The futures are plain `core::task` citizens and run on any executor.
//! The `tokio` feature enables a tokio-flavored integration test and the
//! example server; the bundled [`rt`] module provides a dependency-free
//! `block_on`/executor/timer trio so tests and benches run with no
//! external runtime crates at all.
//!
//! ## Wiring rule
//!
//! Async notifications travel through an `AsyncCells` pair *beside* the
//! queue (the shm-safe `QueueState` cannot store wakers), so **both ends
//! of a queue must be async-wrapped** for `await` to make progress; a raw
//! sync handle feeding an `AsyncReceiver` delivers items but never wakes
//! a parked task. Wrapped ends still wake blocking futex waiters, so
//! mixing an async end with a *blocking* sync end works.
#![warn(missing_docs)]

mod adapters;
pub mod broadcast;
pub mod bytes;
mod channel;
mod handle;
pub mod rt;
mod traits;

pub use adapters::{RecvStream, SendSink};
pub use bytes::{
    AsyncBytesReceiver, AsyncBytesSender, AsyncPayloadRef, AsyncWriteSlot, RecvPayload, Reserve,
};
pub use channel::{mpmc, shard, spmc, spsc, unbounded, wrap};
pub use handle::{
    AsyncReceiver, AsyncSender, Dequeue, DequeueBatch, Enqueue, EnqueueMany, SendError,
    DEFAULT_SPIN_POLLS,
};
pub use traits::{TryRecv, TrySend};

// Re-exported so downstream matching on dequeue errors needs no direct
// `ffq` dependency.
pub use ffq::error::{Disconnected, Full, ReserveError, TryDequeueError, TryReserveError};
