//! Non-blocking endpoint abstraction over the three queue flavors.
//!
//! The async layer never blocks a thread, so everything it needs from a
//! queue handle is its *non-blocking* surface: `try_enqueue`/`try_dequeue`
//! plus the batched harvest. These two traits capture exactly that, which
//! lets one `AsyncSender`/`AsyncReceiver` implementation (and one set of
//! futures) serve SPSC, SPMC and MPMC handles without re-deriving the cell
//! protocol per flavor. The blocking/waiting machinery of the sync handles
//! (futex eventcounts, `WaitStrategy`) is bypassed entirely — async waiting
//! goes through the [`ffq_sync::AsyncWaitCell`] pair owned by the wrappers.

use ffq::cell::CellSlot;
use ffq::error::{Full, TryDequeueError};
use ffq::layout::IndexMap;

/// A queue endpoint that can attempt a non-blocking enqueue.
///
/// Implemented for the three `ffq` producer handles. `Send` is required
/// because async tasks migrate across executor threads.
pub trait TrySend: Send {
    /// Payload type carried by the queue.
    type Item: Send;

    /// Attempts to enqueue without blocking; `Err(Full)` returns the item.
    fn try_send(&mut self, value: Self::Item) -> Result<(), Full<Self::Item>>;

    /// `true` when every consumer handle is provably gone, so a send can
    /// never be received. Flavors without a consumer count in the producer
    /// view (SPSC) report `false` — parity with the sync API, which also
    /// cannot detect it there.
    fn peers_gone(&self) -> bool;

    /// Capacity of the underlying cell array.
    fn capacity(&self) -> usize;
}

/// A queue endpoint that can attempt a non-blocking dequeue.
pub trait TryRecv: Send {
    /// Payload type carried by the queue.
    type Item: Send;

    /// Attempts to dequeue without blocking.
    ///
    /// For the rank-claiming flavors (SPMC/MPMC) an `Empty` return re-parks
    /// any claimed-but-unsatisfied rank in the *handle's* pending-rank
    /// FIFO, never in the caller — which is what makes the async futures
    /// cancellation-safe for free: a dropped future holds no queue state.
    fn try_recv(&mut self) -> Result<Self::Item, TryDequeueError>;

    /// Harvests up to `max` immediately-available items into `buf`;
    /// returns the number appended. Never blocks, never spins on busy
    /// cells.
    fn recv_batch_now(&mut self, buf: &mut Vec<Self::Item>, max: usize) -> usize;

    /// Capacity of the underlying cell array.
    fn capacity(&self) -> usize;
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> TrySend for ffq::spsc::Producer<T, C, M> {
    type Item = T;

    #[inline]
    fn try_send(&mut self, value: T) -> Result<(), Full<T>> {
        self.try_enqueue(value)
    }

    #[inline]
    fn peers_gone(&self) -> bool {
        // The SPSC producer has no consumer-count view (by design — the
        // flavor strips every shared counter it can); sends to a dropped
        // consumer behave as in the sync API.
        false
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.capacity()
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> TrySend for ffq::spmc::Producer<T, C, M> {
    type Item = T;

    #[inline]
    fn try_send(&mut self, value: T) -> Result<(), Full<T>> {
        self.try_enqueue(value)
    }

    #[inline]
    fn peers_gone(&self) -> bool {
        self.consumers() == 0
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.capacity()
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> TrySend for ffq::mpmc::Producer<T, C, M> {
    type Item = T;

    #[inline]
    fn try_send(&mut self, value: T) -> Result<(), Full<T>> {
        self.try_enqueue(value)
    }

    #[inline]
    fn peers_gone(&self) -> bool {
        self.consumers() == 0
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.capacity()
    }
}

impl<T: Send> TrySend for ffq::shard::ShardedProducer<T> {
    type Item = T;

    #[inline]
    fn try_send(&mut self, value: T) -> Result<(), Full<T>> {
        self.try_enqueue(value)
    }

    #[inline]
    fn peers_gone(&self) -> bool {
        self.consumers() == 0
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.capacity()
    }
}

impl<T: Send> TrySend for ffq::unbounded::SpProducer<T> {
    type Item = T;

    #[inline]
    fn try_send(&mut self, value: T) -> Result<(), Full<T>> {
        // Unbounded: a full segment rolls instead of rejecting, so the
        // non-blocking send always succeeds and the async sender never
        // waits on `not_full`.
        self.enqueue(value);
        Ok(())
    }

    #[inline]
    fn peers_gone(&self) -> bool {
        self.consumers() == 0
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.segment_capacity()
    }
}

impl<T: Send> TrySend for ffq::unbounded::MpProducer<T> {
    type Item = T;

    #[inline]
    fn try_send(&mut self, value: T) -> Result<(), Full<T>> {
        self.enqueue(value);
        Ok(())
    }

    #[inline]
    fn peers_gone(&self) -> bool {
        self.consumers() == 0
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.segment_capacity()
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> TryRecv for ffq::spsc::Consumer<T, C, M> {
    type Item = T;

    #[inline]
    fn try_recv(&mut self) -> Result<T, TryDequeueError> {
        self.try_dequeue()
    }

    #[inline]
    fn recv_batch_now(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        self.dequeue_batch(buf, max)
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.capacity()
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> TryRecv for ffq::spmc::Consumer<T, C, M> {
    type Item = T;

    #[inline]
    fn try_recv(&mut self) -> Result<T, TryDequeueError> {
        self.try_dequeue()
    }

    #[inline]
    fn recv_batch_now(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        self.dequeue_batch(buf, max)
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.capacity()
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> TryRecv for ffq::mpmc::Consumer<T, C, M> {
    type Item = T;

    #[inline]
    fn try_recv(&mut self) -> Result<T, TryDequeueError> {
        self.try_dequeue()
    }

    #[inline]
    fn recv_batch_now(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        self.dequeue_batch(buf, max)
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.capacity()
    }
}

impl<T: Send> TryRecv for ffq::unbounded::SpscConsumer<T> {
    type Item = T;

    #[inline]
    fn try_recv(&mut self) -> Result<T, TryDequeueError> {
        self.try_dequeue()
    }

    #[inline]
    fn recv_batch_now(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        self.dequeue_batch(buf, max)
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.segment_capacity()
    }
}

impl<T: Send, const MP: bool> TryRecv for ffq::unbounded::McConsumer<T, MP> {
    type Item = T;

    #[inline]
    fn try_recv(&mut self) -> Result<T, TryDequeueError> {
        self.try_dequeue()
    }

    #[inline]
    fn recv_batch_now(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        self.dequeue_batch(buf, max)
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.segment_capacity()
    }
}

impl<T: Send> TryRecv for ffq::shard::ShardedConsumer<T> {
    type Item = T;

    #[inline]
    fn try_recv(&mut self) -> Result<T, TryDequeueError> {
        self.try_dequeue()
    }

    #[inline]
    fn recv_batch_now(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        self.dequeue_batch(buf, max)
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.capacity()
    }
}
