//! `Stream`/`Sink`-shaped adapters over the async endpoints.
//!
//! The adapters are plain structs with inherent `poll_*` methods, usable
//! from any hand-rolled future or runtime; the `futures` cargo feature
//! additionally implements the `futures_core::Stream` and
//! `futures_sink::Sink` traits on them (delegating 1:1 to the inherent
//! methods), which is what combinator libraries and tokio interop expect.
//!
//! Both adapters inherit the cancellation-safety story of the underlying
//! futures: wait-token handoff on drop, no queue state held across
//! `Pending`. The sink buffers at most one item (`start_send` stores it,
//! `poll_flush` publishes it); dropping the sink drops that one unsent
//! item, exactly like dropping an `Enqueue` future drops its payload.

use std::task::{Context, Poll};

use crate::handle::{
    abandon_token, poll_recv_value, poll_send_value, AsyncReceiver, AsyncSender, SendError,
};
use crate::traits::{TryRecv, TrySend};
use ffq_sync::WaitToken;

/// A `Stream`-shaped view of an [`AsyncReceiver`]: yields items until the
/// queue is drained and every producer is gone, then ends.
#[must_use = "streams do nothing unless polled"]
pub struct RecvStream<R: TryRecv> {
    rx: AsyncReceiver<R>,
    tok: Option<WaitToken>,
    spins: u16,
}

impl<R: TryRecv> Unpin for RecvStream<R> {}

impl<R: TryRecv> RecvStream<R> {
    pub(crate) fn new(rx: AsyncReceiver<R>) -> Self {
        Self {
            rx,
            tok: None,
            spins: 0,
        }
    }

    /// Polls for the next item; `Ready(None)` means drained +
    /// disconnected. Runtime-agnostic equivalent of
    /// `Stream::poll_next`.
    pub fn poll_next_item(&mut self, cx: &mut Context<'_>) -> Poll<Option<R::Item>> {
        poll_recv_value(&mut self.rx, &mut self.tok, &mut self.spins, cx).map(Result::ok)
    }

    /// Shared access to the wrapped receiver.
    pub fn receiver(&self) -> &AsyncReceiver<R> {
        &self.rx
    }

    /// Mutable access to the wrapped receiver.
    ///
    /// Safe because the stream holds no harvested items: any in-flight
    /// wait registration is simply superseded by the next poll.
    pub fn receiver_mut(&mut self) -> &mut AsyncReceiver<R> {
        &mut self.rx
    }
}

impl<R: TryRecv> Drop for RecvStream<R> {
    fn drop(&mut self) {
        abandon_token(&self.rx.cells().not_empty, &mut self.tok);
    }
}

#[cfg(feature = "futures")]
impl<R: TryRecv> futures_core::Stream for RecvStream<R> {
    type Item = R::Item;

    fn poll_next(
        self: core::pin::Pin<&mut Self>,
        cx: &mut Context<'_>,
    ) -> Poll<Option<Self::Item>> {
        self.get_mut().poll_next_item(cx)
    }
}

/// A `Sink`-shaped view of an [`AsyncSender`] buffering at most one item.
#[must_use = "sinks do nothing unless driven"]
pub struct SendSink<S: TrySend> {
    tx: AsyncSender<S>,
    slot: Option<S::Item>,
    tok: Option<WaitToken>,
    spins: u16,
}

impl<S: TrySend> Unpin for SendSink<S> {}

impl<S: TrySend> SendSink<S> {
    pub(crate) fn new(tx: AsyncSender<S>) -> Self {
        Self {
            tx,
            slot: None,
            tok: None,
            spins: 0,
        }
    }

    /// Ready to accept an item via [`Self::start_send_item`]? Flushes the
    /// buffered item first if there is one.
    pub fn poll_ready_item(
        &mut self,
        cx: &mut Context<'_>,
    ) -> Poll<Result<(), SendError<S::Item>>> {
        if self.slot.is_none() {
            return Poll::Ready(Ok(()));
        }
        self.poll_flush_item(cx)
    }

    /// Accepts one item. Must only be called after `poll_ready_item`
    /// returned `Ready(Ok)` (the single-slot buffer must be empty).
    ///
    /// The item is published eagerly when the queue has space, so a
    /// well-behaved `ready → send` loop needs no explicit flush per item.
    pub fn start_send_item(&mut self, value: S::Item) -> Result<(), SendError<S::Item>> {
        assert!(
            self.slot.is_none(),
            "start_send_item called with an unflushed item (missing poll_ready_item?)"
        );
        match self.tx.try_enqueue(value) {
            Ok(()) => Ok(()),
            Err(ffq::error::Full(v)) => {
                self.slot = Some(v);
                Ok(())
            }
        }
    }

    /// Publishes the buffered item, waiting for space as needed.
    pub fn poll_flush_item(
        &mut self,
        cx: &mut Context<'_>,
    ) -> Poll<Result<(), SendError<S::Item>>> {
        if self.slot.is_none() {
            return Poll::Ready(Ok(()));
        }
        poll_send_value(
            &mut self.tx,
            &mut self.slot,
            &mut self.tok,
            &mut self.spins,
            cx,
        )
    }

    /// Shared access to the wrapped sender.
    pub fn sender(&self) -> &AsyncSender<S> {
        &self.tx
    }
}

impl<S: TrySend> Drop for SendSink<S> {
    fn drop(&mut self) {
        abandon_token(&self.tx.cells().not_full, &mut self.tok);
    }
}

#[cfg(feature = "futures")]
impl<S: TrySend> futures_sink::Sink<S::Item> for SendSink<S> {
    type Error = SendError<S::Item>;

    fn poll_ready(
        self: core::pin::Pin<&mut Self>,
        cx: &mut Context<'_>,
    ) -> Poll<Result<(), Self::Error>> {
        self.get_mut().poll_ready_item(cx)
    }

    fn start_send(self: core::pin::Pin<&mut Self>, item: S::Item) -> Result<(), Self::Error> {
        self.get_mut().start_send_item(item)
    }

    fn poll_flush(
        self: core::pin::Pin<&mut Self>,
        cx: &mut Context<'_>,
    ) -> Poll<Result<(), Self::Error>> {
        self.get_mut().poll_flush_item(cx)
    }

    fn poll_close(
        self: core::pin::Pin<&mut Self>,
        cx: &mut Context<'_>,
    ) -> Poll<Result<(), Self::Error>> {
        self.get_mut().poll_flush_item(cx)
    }
}
