//! A dependency-free mini async runtime: `block_on`, a thread-pool
//! executor, and a timer.
//!
//! `ffq-async`'s futures are runtime-agnostic — they only need *some*
//! executor to poll them and deliver wakes. Production users bring their
//! own (tokio, smol, …, enabled via the `tokio`/`futures` features); this
//! module exists so the crate's tests, stress harness, example and
//! benchmarks run in fully offline environments where no external runtime
//! crate can be built. It is intentionally minimal — a global injector
//! queue, no work stealing, no IO reactor — but it is a *correct* executor:
//! wakes are never lost (condvar-protected queue), tasks never run
//! concurrently with themselves (single-slot future storage behind a
//! mutex), and panics in a task surface at `JoinHandle::await`.

use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// block_on
// ---------------------------------------------------------------------------

/// Current-thread waker: `wake` unparks the blocked thread.
struct ThreadWaker(std::thread::Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives `fut` to completion on the calling thread, parking between
/// polls.
///
/// Safe against the park/wake race: `unpark` on a not-yet-parked thread
/// makes the next `park` return immediately (std's park token), so a wake
/// delivered between a `Pending` return and the park is never lost.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::park(),
        }
    }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

struct ExecShared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

impl ExecShared {
    fn push(&self, task: Arc<Task>) {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(task);
        self.cv.notify_one();
    }
}

struct Task {
    /// The future, present while the task is live; `None` after
    /// completion. The mutex also serializes polls of the same task from
    /// different workers (a re-queued task may be popped while its
    /// previous poll is still finishing).
    fut: Mutex<Option<BoxFuture>>,
    /// De-duplicates queue entries: a task is pushed only by the waker
    /// that flips this false→true; the worker flips it back before
    /// polling, so a wake during the poll re-queues exactly once.
    queued: AtomicBool,
    exec: Weak<ExecShared>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            if let Some(ex) = self.exec.upgrade() {
                ex.push(self);
            }
        }
    }
}

/// A small thread-pool executor for `'static` tasks.
///
/// Dropping the executor shuts the workers down; tasks that have not
/// completed are dropped (their `JoinHandle`s then report cancellation by
/// panicking on join — join everything you care about first).
pub struct Executor {
    shared: Arc<ExecShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Spawns `threads` worker threads (at least one).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(ExecShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ffq-async-worker-{i}"))
                    .spawn(move || worker(&shared))
                    .expect("spawn executor worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Spawns a task; the returned handle is a future resolving to the
    /// task's output (or use [`JoinHandle::join`] from sync code).
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let inner = Arc::new(JoinInner {
            result: Mutex::new(JoinState::Running(None)),
        });
        let inner2 = Arc::clone(&inner);
        let wrapped = async move {
            let out = fut.await;
            let waker = {
                let mut g = inner2
                    .result
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let prev = std::mem::replace(&mut *g, JoinState::Done(Some(out)));
                match prev {
                    JoinState::Running(w) => w,
                    JoinState::Done(_) => None,
                }
            };
            if let Some(w) = waker {
                w.wake();
            }
        };
        let task = Arc::new(Task {
            fut: Mutex::new(Some(Box::pin(wrapped))),
            queued: AtomicBool::new(true),
            exec: Arc::downgrade(&self.shared),
        });
        self.shared.push(task);
        JoinHandle { inner }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker(shared: &ExecShared) {
    loop {
        let task = {
            let mut q = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = shared
                    .cv
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Clear before polling: a wake arriving mid-poll must re-queue.
        task.queued.store(false, Ordering::Release);
        let mut slot = task
            .fut
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(fut) = slot.as_mut() else {
            continue; // completed by an earlier queue entry
        };
        let waker = Waker::from(Arc::clone(&task));
        let mut cx = Context::from_waker(&waker);
        // A panicking task poisons only its own future slot; the worker
        // survives. The JoinHandle observes it as a cancelled task.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)))
        {
            Ok(Poll::Ready(())) | Err(_) => *slot = None,
            Ok(Poll::Pending) => {}
        }
    }
}

/// State shared between a task's completion wrapper and its
/// [`JoinHandle`].
enum JoinState<T> {
    /// Still running; the handle's waker, if it polled.
    Running(Option<Waker>),
    /// Finished; the output until the handle takes it.
    Done(Option<T>),
}

struct JoinInner<T> {
    result: Mutex<JoinState<T>>,
}

/// Future resolving to a spawned task's output.
pub struct JoinHandle<T> {
    inner: Arc<JoinInner<T>>,
}

impl<T> JoinHandle<T> {
    /// Blocks the current (non-executor!) thread until the task finishes.
    pub fn join(self) -> T {
        block_on(self)
    }

    /// Whether the task has finished.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        matches!(
            &*self
                .inner
                .result
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
            JoinState::Done(_)
        )
    }
}

impl<T> Unpin for JoinHandle<T> {}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut g = self
            .inner
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match &mut *g {
            JoinState::Done(out) => match out.take() {
                Some(v) => Poll::Ready(v),
                // Done(None) with no output: the task panicked (its
                // wrapper never stored a value) or the handle was polled
                // twice past completion.
                None => panic!("task panicked or JoinHandle polled after completion"),
            },
            JoinState::Running(w) => {
                *w = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Timer
// ---------------------------------------------------------------------------

/// One pending sleep: deadline + shared waker slot (the `Sleep` future
/// refreshes the waker on re-poll; `fired` tells it to stop).
struct TimerEntry {
    deadline: Instant,
    state: Arc<Mutex<SleepState>>,
}

struct SleepState {
    waker: Option<Waker>,
    fired: bool,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // deadline on top.
        other.deadline.cmp(&self.deadline)
    }
}

struct TimerShared {
    heap: Mutex<BinaryHeap<TimerEntry>>,
    cv: Condvar,
}

/// The global timer thread, started on first use. One per process is
/// plenty for tests and benches; a real runtime brings its own timer
/// wheel.
fn timer() -> &'static TimerShared {
    static TIMER: OnceLock<&'static TimerShared> = OnceLock::new();
    TIMER.get_or_init(|| {
        let shared: &'static TimerShared = Box::leak(Box::new(TimerShared {
            heap: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
        }));
        std::thread::Builder::new()
            .name("ffq-async-timer".into())
            .spawn(move || timer_thread(shared))
            .expect("spawn timer thread");
        shared
    })
}

fn timer_thread(shared: &'static TimerShared) {
    let mut heap = shared
        .heap
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    loop {
        let now = Instant::now();
        // Fire everything due; collect wakers to invoke outside the lock.
        let mut due: Vec<Waker> = Vec::new();
        while let Some(top) = heap.peek() {
            if top.deadline > now {
                break;
            }
            let entry = heap.pop().expect("peeked");
            let mut st = entry
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.fired = true;
            if let Some(w) = st.waker.take() {
                due.push(w);
            }
        }
        if !due.is_empty() {
            drop(heap);
            for w in due {
                w.wake();
            }
            heap = shared
                .heap
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            continue;
        }
        heap = match heap.peek().map(|e| e.deadline) {
            Some(next) => {
                let wait = next.saturating_duration_since(now);
                shared
                    .cv
                    .wait_timeout(heap, wait)
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0
            }
            None => shared
                .cv
                .wait(heap)
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        };
    }
}

/// Future of [`sleep`].
#[must_use = "futures do nothing unless polled"]
pub struct Sleep {
    deadline: Instant,
    /// Lazily created on first `Pending` poll so immediately-elapsed
    /// sleeps never touch the timer thread.
    state: Option<Arc<Mutex<SleepState>>>,
}

impl Unpin for Sleep {}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let me = self.get_mut();
        if Instant::now() >= me.deadline {
            return Poll::Ready(());
        }
        match &me.state {
            Some(state) => {
                let mut st = state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if st.fired {
                    return Poll::Ready(());
                }
                st.waker = Some(cx.waker().clone());
                Poll::Pending
            }
            None => {
                let state = Arc::new(Mutex::new(SleepState {
                    waker: Some(cx.waker().clone()),
                    fired: false,
                }));
                me.state = Some(Arc::clone(&state));
                let t = timer();
                t.heap
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(TimerEntry {
                        deadline: me.deadline,
                        state,
                    });
                t.cv.notify_one();
                Poll::Pending
            }
        }
    }
}

/// Resolves after `dur` (millisecond-ish granularity; test/bench grade).
pub fn sleep(dur: Duration) -> Sleep {
    Sleep {
        deadline: Instant::now() + dur,
        state: None,
    }
}

/// A [`timeout`] that elapsed before its inner future resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed;

impl core::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("timeout elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Future of [`timeout`].
#[must_use = "futures do nothing unless polled"]
pub struct Timeout<F> {
    fut: F,
    sleep: Sleep,
}

impl<F: Future + Unpin> Unpin for Timeout<F> {}

impl<F: Future + Unpin> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        if let Poll::Ready(v) = Pin::new(&mut me.fut).poll(cx) {
            return Poll::Ready(Ok(v));
        }
        match Pin::new(&mut me.sleep).poll(cx) {
            // The deadline cancels the inner future by *dropping* it with
            // this Timeout — exactly the cancellation path the queue
            // futures are hardened against.
            Poll::Ready(()) => Poll::Ready(Err(Elapsed)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Limits `fut` to `dur`; on timeout the inner future is dropped
/// (cancelled). Requires `Unpin` (all queue futures are).
pub fn timeout<F: Future + Unpin>(dur: Duration, fut: F) -> Timeout<F> {
    Timeout {
        fut,
        sleep: sleep(dur),
    }
}

/// Future of [`yield_now`].
#[must_use = "futures do nothing unless polled"]
pub struct YieldNow {
    yielded: bool,
}

impl Unpin for YieldNow {}

impl Future for YieldNow {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            return Poll::Ready(());
        }
        self.get_mut().yielded = true;
        cx.waker().wake_by_ref();
        Poll::Pending
    }
}

/// Re-queues the current task once, letting peers run.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn block_on_drives_yields() {
        assert_eq!(
            block_on(async {
                yield_now().await;
                yield_now().await;
                7
            }),
            7
        );
    }

    #[test]
    fn executor_runs_tasks_and_joins() {
        let ex = Executor::new(2);
        let hs: Vec<_> = (0..8).map(|i| ex.spawn(async move { i * i })).collect();
        let sum: i32 = hs.into_iter().map(block_on).sum();
        assert_eq!(sum, (0..8).map(|i| i * i).sum());
    }

    #[test]
    fn join_handle_awaits_inside_task() {
        let ex = Executor::new(2);
        let inner = ex.spawn(async { 5 });
        let outer = ex.spawn(async move { inner.await + 1 });
        assert_eq!(block_on(outer), 6);
    }

    #[test]
    fn sleep_and_timeout() {
        let start = Instant::now();
        block_on(sleep(Duration::from_millis(30)));
        assert!(Instant::now() - start >= Duration::from_millis(25));

        let r = block_on(timeout(
            Duration::from_millis(20),
            sleep(Duration::from_millis(500)),
        ));
        assert_eq!(r, Err(Elapsed));
        let r = block_on(timeout(
            Duration::from_millis(500),
            sleep(Duration::from_millis(5)),
        ));
        assert_eq!(r, Ok(()));
    }
}
