//! Async wrappers for the zero-copy bytes lane (`ffq::bytes`).
//!
//! The generic [`crate::AsyncSender`]/[`crate::AsyncReceiver`] move owned
//! items; the bytes engines instead hand out *borrowed guards* —
//! [`ffq::WriteSlot`] over an in-place reservation, [`ffq::PayloadRef`]
//! over a claimed payload — so they get their own wrapper pair here. The
//! wait protocol is identical (same [`AsyncCells`] eventcount pair, same
//! reschedule-spin phase, same registration tokens); only the resolution
//! type differs: futures resolve to guards, and the guards carry the
//! notifications their endpoint actions imply:
//!
//! - [`AsyncWriteSlot::commit`] publishes the payload **and** notifies
//!   `not_empty` (the publish is the linearization point receivers wait
//!   for). Dropping it uncommitted aborts the reservation and *also*
//!   notifies `not_empty`: a multi-producer abort publishes a tombstone
//!   descriptor that the rank's assigned consumer must wake to skip.
//! - Dropping an [`AsyncPayloadRef`] retires the claimed rank — the cell
//!   and its slot buffer recycle to producers — and notifies `not_full`.
//!
//! ## Cancellation safety
//!
//! Reservation and claim state live in the *engine*, never in a future:
//!
//! - A dropped [`Reserve`] future holds nothing — a reservation only
//!   exists once the future has resolved to its [`AsyncWriteSlot`], whose
//!   `Drop` aborts it. Consumers never observe an aborted payload.
//! - A dropped [`RecvPayload`] future abandons no payload: the claim
//!   (`try_claim_payload`) is resumable — the next `recv` picks up the
//!   already-claimed rank instead of skipping it.
//! - Both futures hand an already-consumed wake to the next waiter on
//!   drop ([`crate::handle`]'s `abandon_token`), so a cancelled task can
//!   never swallow the only wake.
//!
//! As everywhere in this crate, **both ends must be async-wrapped** (the
//! queue itself cannot store wakers); the `channel` constructors in
//! [`spsc`]/[`spmc`]/[`mpmc`] guarantee that.

use std::future::Future;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

use ffq::bytes::{BytesConsumer, BytesProducer, PayloadRef, WriteSlot};
use ffq::error::{Disconnected, ReserveError, TryDequeueError, TryReserveError};
use ffq_sync::WaitToken;

use crate::handle::{
    abandon_token, ensure_registered, settle_token, spin_yield, AsyncCells, DEFAULT_SPIN_POLLS,
};

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

/// Async wrapper around a zero-copy bytes producer engine.
///
/// `Clone` exactly when the engine is (the MPMC producer); clones share
/// the wait cells, keeping every producer's commits visible to parked
/// receivers.
pub struct AsyncBytesSender<P: BytesProducer + Send> {
    inner: ManuallyDrop<P>,
    cells: Arc<AsyncCells>,
    spin_polls: u16,
}

impl<P: BytesProducer + Send> AsyncBytesSender<P> {
    pub(crate) fn new(inner: P, cells: Arc<AsyncCells>) -> Self {
        Self {
            inner: ManuallyDrop::new(inner),
            cells,
            spin_polls: DEFAULT_SPIN_POLLS,
        }
    }

    /// Sets the reschedule-spin budget for this handle's futures (see
    /// [`DEFAULT_SPIN_POLLS`]); 0 parks on the first full queue.
    pub fn set_spin_polls(&mut self, polls: u16) {
        self.spin_polls = polls;
    }

    /// The largest payload a reservation on this queue can ever satisfy.
    pub fn max_payload(&self) -> usize {
        self.inner.max_payload()
    }

    /// Reserves space for a `len`-byte payload without waiting.
    ///
    /// On success the [`AsyncWriteSlot`] derefs to `len` writable bytes;
    /// fill it and [`commit`](AsyncWriteSlot::commit). Dropping it
    /// uncommitted aborts the reservation.
    pub fn try_reserve(&mut self, len: usize) -> Result<AsyncWriteSlot<'_, P>, TryReserveError> {
        if let Err(e) = self.inner.try_reserve_pending(len) {
            // The failed scan can still have burned gap ranks a parked
            // receiver is waiting behind (module docs on notify discipline).
            self.cells.not_empty.notify_all();
            return Err(e);
        }
        let cells: &AsyncCells = &self.cells;
        let slot = self
            .inner
            .pending_slot()
            .expect("reservation just succeeded");
        Ok(AsyncWriteSlot {
            slot: Some(slot),
            cells,
        })
    }

    /// Reserves space for a `len`-byte payload, waiting for room if the
    /// queue is full.
    ///
    /// Resolves to an [`AsyncWriteSlot`] over the in-place buffer; only
    /// the permanent failure remains ([`ReserveError::TooLarge`] — the
    /// payload can *never* fit; nothing is ever truncated).
    ///
    /// Cancellation-safe: a dropped future holds no reservation and hands
    /// any wake it was dealt to the next waiter.
    pub fn reserve(&mut self, len: usize) -> Reserve<'_, P> {
        Reserve {
            tx: Some(self),
            len,
            tok: None,
            spins: 0,
        }
    }

    /// Copy-in convenience: `reserve(payload.len())`, copy, commit.
    pub async fn send_bytes(&mut self, payload: &[u8]) -> Result<(), ReserveError> {
        let mut slot = self.reserve(payload.len()).await?;
        slot.copy_from_slice(payload);
        slot.commit();
        Ok(())
    }

    /// The wrapped sync engine; see [`crate::AsyncSender::sync_ref`]
    /// caveats (its blocking methods park the *thread*, not the task).
    pub fn sync_ref(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped sync engine; see [`Self::sync_ref`].
    pub fn sync_mut(&mut self) -> &mut P {
        &mut self.inner
    }
}

impl<P: BytesProducer + Send + Clone> Clone for AsyncBytesSender<P> {
    fn clone(&self) -> Self {
        Self {
            inner: ManuallyDrop::new((*self.inner).clone()),
            cells: Arc::clone(&self.cells),
            spin_polls: self.spin_polls,
        }
    }
}

impl<P: BytesProducer + Send> Drop for AsyncBytesSender<P> {
    fn drop(&mut self) {
        // Engine drop first (aborts any leaked pending reservation and
        // runs the sync disconnect), broadcast second — same ordering as
        // `AsyncSender`, so no receiver re-parks past the disconnect.
        // SAFETY: `inner` is dropped exactly once, here.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        self.cells.not_empty.notify_all();
        self.cells.not_full.notify_all();
    }
}

impl<P: BytesProducer + Send + core::fmt::Debug> core::fmt::Debug for AsyncBytesSender<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AsyncBytesSender")
            .field("inner", &*self.inner)
            .finish_non_exhaustive()
    }
}

/// A reserved, writable, in-place payload buffer tied to the async wait
/// cells. Derefs to `[u8]`.
///
/// [`commit`](Self::commit) publishes the payload and wakes parked
/// receivers; dropping uncommitted aborts the reservation (receivers
/// never observe it) and still wakes them — a multi-producer abort
/// publishes a tombstone the rank's assigned consumer must skip.
pub struct AsyncWriteSlot<'a, P: BytesProducer> {
    slot: Option<WriteSlot<'a, P>>,
    cells: &'a AsyncCells,
}

impl<P: BytesProducer> AsyncWriteSlot<'_, P> {
    /// Publishes the payload; after this call receivers can claim it.
    pub fn commit(mut self) {
        self.slot.take().expect("slot live until commit").commit();
        self.cells.not_empty.notify_all();
    }

    /// The reserved length in bytes.
    pub fn len(&self) -> usize {
        self.slot.as_ref().expect("slot live until commit").len()
    }

    /// Whether the reservation is for zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<P: BytesProducer> Deref for AsyncWriteSlot<'_, P> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.slot.as_ref().expect("slot live until commit")
    }
}

impl<P: BytesProducer> DerefMut for AsyncWriteSlot<'_, P> {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.slot.as_mut().expect("slot live until commit")
    }
}

impl<P: BytesProducer> Drop for AsyncWriteSlot<'_, P> {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            // Abort path: the inner guard's drop rolls the reservation
            // back; under multiple producers that publishes a tombstone
            // descriptor, so parked receivers still need the wake.
            drop(slot);
            self.cells.not_empty.notify_all();
        }
    }
}

impl<P: BytesProducer> core::fmt::Debug for AsyncWriteSlot<'_, P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AsyncWriteSlot")
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

/// Future of [`AsyncBytesSender::reserve`].
#[must_use = "futures do nothing unless polled"]
pub struct Reserve<'a, P: BytesProducer + Send> {
    tx: Option<&'a mut AsyncBytesSender<P>>,
    len: usize,
    tok: Option<WaitToken>,
    spins: u16,
}

impl<P: BytesProducer + Send> Unpin for Reserve<'_, P> {}

impl<'a, P: BytesProducer + Send> Future for Reserve<'a, P> {
    type Output = Result<AsyncWriteSlot<'a, P>, ReserveError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        let len = me.len;
        {
            let tx = me
                .tx
                .as_deref_mut()
                .expect("reserve future polled after completion");
            let spin_limit = tx.spin_polls;
            match tx.inner.try_reserve_pending(len) {
                Ok(()) => {}
                Err(TryReserveError::TooLarge { len, max }) => {
                    settle_token(&tx.cells.not_full, &mut me.tok);
                    return Poll::Ready(Err(ReserveError::TooLarge { len, max }));
                }
                Err(TryReserveError::Full) => {
                    if me.tok.is_none() && me.spins < spin_limit {
                        // Reschedule-spin phase (see DEFAULT_SPIN_POLLS):
                        // stay out of the registry, yield to the executor.
                        me.spins += 1;
                        // A failed scan can still have burned gap ranks.
                        tx.cells.not_empty.notify_all();
                        spin_yield(me.spins, spin_limit);
                        cx.waker().wake_by_ref();
                        return Poll::Pending;
                    }
                    ensure_registered(&tx.cells.not_full, &mut me.tok, cx.waker());
                    // Mandatory post-registration re-check: a run freed
                    // between the first attempt and the registration must
                    // be observed here, or its wake has already passed us.
                    match tx.inner.try_reserve_pending(len) {
                        Ok(()) => {}
                        Err(TryReserveError::TooLarge { len, max }) => {
                            settle_token(&tx.cells.not_full, &mut me.tok);
                            return Poll::Ready(Err(ReserveError::TooLarge { len, max }));
                        }
                        Err(TryReserveError::Full) => {
                            tx.cells.not_empty.notify_all();
                            return Poll::Pending;
                        }
                    }
                }
            }
            settle_token(&tx.cells.not_full, &mut me.tok);
        }
        // Success: surrender the full-lifetime borrow and build the guard
        // over the reservation the engine now holds.
        let tx = me.tx.take().expect("just reserved through it");
        let cells: &'a AsyncCells = &tx.cells;
        let slot = tx.inner.pending_slot().expect("reservation just succeeded");
        Poll::Ready(Ok(AsyncWriteSlot {
            slot: Some(slot),
            cells,
        }))
    }
}

impl<P: BytesProducer + Send> Drop for Reserve<'_, P> {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.as_ref() {
            abandon_token(&tx.cells.not_full, &mut self.tok);
        }
    }
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

/// Async wrapper around a zero-copy bytes consumer engine.
///
/// `Clone` exactly when the engine is (the shared-head MPMC/SPMC
/// consumers); each clone owns its private pending-rank state.
pub struct AsyncBytesReceiver<C: BytesConsumer + Send> {
    inner: ManuallyDrop<C>,
    cells: Arc<AsyncCells>,
    spin_polls: u16,
}

impl<C: BytesConsumer + Send> AsyncBytesReceiver<C> {
    pub(crate) fn new(inner: C, cells: Arc<AsyncCells>) -> Self {
        Self {
            inner: ManuallyDrop::new(inner),
            cells,
            spin_polls: DEFAULT_SPIN_POLLS,
        }
    }

    /// Sets the reschedule-spin budget for this handle's futures (see
    /// [`DEFAULT_SPIN_POLLS`]); 0 parks on the first empty queue.
    pub fn set_spin_polls(&mut self, polls: u16) {
        self.spin_polls = polls;
    }

    /// Claims the next payload without waiting.
    ///
    /// The [`AsyncPayloadRef`] borrows the bytes in place; its drop
    /// retires the rank and wakes parked senders.
    pub fn try_recv(&mut self) -> Result<AsyncPayloadRef<'_, C>, TryDequeueError> {
        if let Err(e) = self.inner.try_claim_payload() {
            // Even an Empty attempt can have claimed a fresh head rank
            // (or skipped tombstones), advancing past what a parked
            // sender last saw of a full queue.
            self.cells.not_full.notify_all();
            return Err(e);
        }
        let cells: &AsyncCells = &self.cells;
        let view = self.inner.try_recv().expect("payload already claimed");
        Ok(AsyncPayloadRef {
            view: Some(view),
            cells,
        })
    }

    /// Claims the next payload, waiting for one if the queue is empty;
    /// resolves `Err(Disconnected)` once the queue is drained and every
    /// producer is gone.
    ///
    /// Cancellation-safe: the claim is resumable engine state, so a
    /// dropped future abandons no payload — the next `recv` picks the
    /// claimed rank back up.
    pub fn recv(&mut self) -> RecvPayload<'_, C> {
        RecvPayload {
            rx: Some(self),
            tok: None,
            spins: 0,
        }
    }

    /// Copy-out convenience: [`recv`](Self::recv), copy to a `Vec`,
    /// release. (The copy-through baseline the zero-copy lane is
    /// benchmarked against.)
    pub async fn recv_bytes(&mut self) -> Result<Vec<u8>, Disconnected> {
        Ok(self.recv().await?.to_vec())
    }

    /// The wrapped sync engine; see [`crate::AsyncReceiver::sync_ref`]
    /// caveats (its blocking methods park the *thread*, not the task).
    pub fn sync_ref(&self) -> &C {
        &self.inner
    }

    /// Mutable access to the wrapped sync engine; see [`Self::sync_ref`].
    pub fn sync_mut(&mut self) -> &mut C {
        &mut self.inner
    }
}

impl<C: BytesConsumer + Send + Clone> Clone for AsyncBytesReceiver<C> {
    fn clone(&self) -> Self {
        Self {
            inner: ManuallyDrop::new((*self.inner).clone()),
            cells: Arc::clone(&self.cells),
            spin_polls: self.spin_polls,
        }
    }
}

impl<C: BytesConsumer + Send> Drop for AsyncBytesReceiver<C> {
    fn drop(&mut self) {
        // Engine drop first (releases any claimed-but-unread payload and
        // runs the sync disconnect), broadcast second.
        // SAFETY: `inner` is dropped exactly once, here.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        self.cells.not_empty.notify_all();
        self.cells.not_full.notify_all();
    }
}

impl<C: BytesConsumer + Send + core::fmt::Debug> core::fmt::Debug for AsyncBytesReceiver<C> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AsyncBytesReceiver")
            .field("inner", &*self.inner)
            .finish_non_exhaustive()
    }
}

/// A claimed, borrowed payload tied to the async wait cells. Derefs to
/// `[u8]`.
///
/// Dropping it retires the claimed rank — recycling the cell and its slot
/// buffer — and wakes parked senders. Holding it long keeps the cell
/// busy: producers skip it via gap announcements, so throughput degrades
/// but nothing corrupts.
pub struct AsyncPayloadRef<'a, C: BytesConsumer> {
    view: Option<PayloadRef<'a, C>>,
    cells: &'a AsyncCells,
}

impl<C: BytesConsumer> Deref for AsyncPayloadRef<'_, C> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.view.as_ref().expect("view live until drop")
    }
}

impl<C: BytesConsumer> Drop for AsyncPayloadRef<'_, C> {
    fn drop(&mut self) {
        if let Some(view) = self.view.take() {
            // Retires the rank (the inner guard's drop), then wakes
            // senders parked on the now-free cell.
            drop(view);
            self.cells.not_full.notify_all();
        }
    }
}

impl<C: BytesConsumer> core::fmt::Debug for AsyncPayloadRef<'_, C> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AsyncPayloadRef")
            .field("len", &self.deref().len())
            .finish_non_exhaustive()
    }
}

/// Future of [`AsyncBytesReceiver::recv`].
#[must_use = "futures do nothing unless polled"]
pub struct RecvPayload<'a, C: BytesConsumer + Send> {
    rx: Option<&'a mut AsyncBytesReceiver<C>>,
    tok: Option<WaitToken>,
    spins: u16,
}

impl<C: BytesConsumer + Send> Unpin for RecvPayload<'_, C> {}

impl<'a, C: BytesConsumer + Send> Future for RecvPayload<'a, C> {
    type Output = Result<AsyncPayloadRef<'a, C>, Disconnected>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        {
            let rx = me
                .rx
                .as_deref_mut()
                .expect("recv future polled after completion");
            let spin_limit = rx.spin_polls;
            match rx.inner.try_claim_payload() {
                Ok(()) => {}
                Err(TryDequeueError::Disconnected) => {
                    settle_token(&rx.cells.not_empty, &mut me.tok);
                    return Poll::Ready(Err(Disconnected));
                }
                Err(TryDequeueError::Empty) => {
                    if me.tok.is_none() && me.spins < spin_limit {
                        me.spins += 1;
                        // The attempt can still have claimed a fresh head
                        // rank or skipped tombstones.
                        rx.cells.not_full.notify_all();
                        spin_yield(me.spins, spin_limit);
                        cx.waker().wake_by_ref();
                        return Poll::Pending;
                    }
                    ensure_registered(&rx.cells.not_empty, &mut me.tok, cx.waker());
                    // Mandatory post-registration re-check (a publish — or
                    // a disconnect — raced the registration).
                    match rx.inner.try_claim_payload() {
                        Ok(()) => {}
                        Err(TryDequeueError::Disconnected) => {
                            settle_token(&rx.cells.not_empty, &mut me.tok);
                            return Poll::Ready(Err(Disconnected));
                        }
                        Err(TryDequeueError::Empty) => {
                            rx.cells.not_full.notify_all();
                            return Poll::Pending;
                        }
                    }
                }
            }
            settle_token(&rx.cells.not_empty, &mut me.tok);
        }
        let rx = me.rx.take().expect("just claimed through it");
        let cells: &'a AsyncCells = &rx.cells;
        let view = rx.inner.try_recv().expect("payload already claimed");
        Poll::Ready(Ok(AsyncPayloadRef {
            view: Some(view),
            cells,
        }))
    }
}

impl<C: BytesConsumer + Send> Drop for RecvPayload<'_, C> {
    fn drop(&mut self) {
        if let Some(rx) = self.rx.as_ref() {
            abandon_token(&rx.cells.not_empty, &mut self.tok);
        }
    }
}

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

/// Wraps an existing bytes engine pair for async use.
///
/// Both engines must belong to the same queue; additional SPMC/MPMC
/// handles come from cloning the returned wrappers, which keeps every
/// clone on the same wait cells (the invariant the whole protocol rests
/// on — see the module docs).
pub fn wrap_bytes<P: BytesProducer + Send, C: BytesConsumer + Send>(
    tx: P,
    rx: C,
) -> (AsyncBytesSender<P>, AsyncBytesReceiver<C>) {
    let cells = Arc::new(AsyncCells::new());
    (
        AsyncBytesSender::new(tx, Arc::clone(&cells)),
        AsyncBytesReceiver::new(rx, cells),
    )
}

/// Async zero-copy bytes SPSC channel (chain spill: payloads up to
/// `slot_bytes × capacity/2`, never truncated).
pub mod spsc {
    use super::{AsyncBytesReceiver, AsyncBytesSender};

    /// Async bytes SPSC sending half.
    pub type Sender = AsyncBytesSender<ffq::bytes::SpProducer>;
    /// Async bytes SPSC receiving half.
    pub type Receiver = AsyncBytesReceiver<ffq::bytes::SpscConsumer>;

    /// Creates an async zero-copy bytes SPSC channel: `capacity` cells,
    /// each owning a slot buffer of at least `slot_bytes` bytes (both
    /// rounded up to powers of two).
    pub fn channel(
        capacity: usize,
        slot_bytes: usize,
    ) -> Result<(Sender, Receiver), ffq::CapacityError> {
        let (tx, rx) = ffq::spsc::bytes_channel(capacity, slot_bytes)?;
        Ok(super::wrap_bytes(tx, rx))
    }
}

/// Async zero-copy bytes SPMC channel (heap spill for oversize payloads;
/// clone the receiver for more consumers).
pub mod spmc {
    use super::{AsyncBytesReceiver, AsyncBytesSender};

    /// Async bytes SPMC sending half.
    pub type Sender = AsyncBytesSender<ffq::bytes::SpProducer>;
    /// Async bytes SPMC receiving half; `Clone` to add consumers.
    pub type Receiver = AsyncBytesReceiver<ffq::bytes::McConsumer<false>>;

    /// Creates an async zero-copy bytes SPMC channel; clone the receiver
    /// for more consumers.
    pub fn channel(
        capacity: usize,
        slot_bytes: usize,
    ) -> Result<(Sender, Receiver), ffq::CapacityError> {
        let (tx, rx) = ffq::spmc::bytes_channel(capacity, slot_bytes)?;
        Ok(super::wrap_bytes(tx, rx))
    }
}

/// Async zero-copy bytes MPMC channel (heap spill for oversize payloads;
/// clone either half for more producers/consumers).
pub mod mpmc {
    use super::{AsyncBytesReceiver, AsyncBytesSender};

    /// Async bytes MPMC sending half; `Clone` to add producers.
    pub type Sender = AsyncBytesSender<ffq::bytes::MpProducer>;
    /// Async bytes MPMC receiving half; `Clone` to add consumers.
    pub type Receiver = AsyncBytesReceiver<ffq::bytes::McConsumer<true>>;

    /// Creates an async zero-copy bytes MPMC channel; clone either half
    /// for more peers.
    pub fn channel(
        capacity: usize,
        slot_bytes: usize,
    ) -> Result<(Sender, Receiver), ffq::CapacityError> {
        let (tx, rx) = ffq::mpmc::bytes_channel(capacity, slot_bytes)?;
        Ok(super::wrap_bytes(tx, rx))
    }
}
