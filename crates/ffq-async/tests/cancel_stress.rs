//! Cancellation-safety stress: futures are dropped mid-wait, constantly,
//! while the queue runs at full backpressure — and nothing may be lost,
//! duplicated, or reordered.
//!
//! The cancellation driver is `PollLimit`, a combinator that polls its
//! inner future a bounded number of times and then *drops it* (exactly
//! what `select!` loops and timeouts do), with the budget drawn from a
//! deterministic xorshift stream so runs are reproducible. Budgets are
//! small (1–3 polls), so a large fraction of every consumer's dequeues is
//! cancelled while parked — including the nasty interleaving where a
//! notifier has already consumed the future's wait registration and the
//! dropped future must hand that wake to another waiter (`notify(1)` on
//! drop). A handoff bug shows up here as a hang (every waiter parked,
//! wake swallowed); a rank-leak bug as lost items; a buffering bug in
//! `dequeue_batch` as lost items; a pending-rank reorder as a
//! per-consumer FIFO violation.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

use ffq_async::rt::{timeout, Executor};
use ffq_async::{mpmc, spsc, Disconnected};

/// Polls the inner future at most `budget` times, then drops it and
/// resolves `None` — a deterministic stand-in for `select!`-style
/// cancellation that cancels precisely at a wake point.
struct PollLimit<F> {
    inner: Option<F>,
    budget: u32,
}

impl<F> PollLimit<F> {
    fn new(inner: F, budget: u32) -> Self {
        Self {
            inner: Some(inner),
            budget: budget.max(1),
        }
    }
}

impl<F: Future + Unpin> Unpin for PollLimit<F> {}

impl<F: Future + Unpin> Future for PollLimit<F> {
    type Output = Option<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        let Some(fut) = me.inner.as_mut() else {
            return Poll::Ready(None);
        };
        if me.budget == 0 {
            // Cancel: drop the future mid-wait, typically right after a
            // wake was delivered to it.
            me.inner = None;
            return Poll::Ready(None);
        }
        me.budget -= 1;
        match Pin::new(fut).poll(cx) {
            Poll::Ready(v) => {
                me.inner = None;
                Poll::Ready(Some(v))
            }
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Tiny deterministic PRNG (xorshift64*); no `rand` dependency.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[test]
fn spsc_dequeue_cancel_never_loses_items() {
    // Deterministic single-threaded variant first: cancel a parked
    // dequeue, then verify the item still arrives, in order.
    let (mut tx, mut rx) = spsc::channel::<u32>(8);
    ffq_async::rt::block_on(async {
        // Park + cancel on an empty queue.
        let r = timeout(Duration::from_millis(10), rx.dequeue()).await;
        assert!(r.is_err());
        tx.enqueue(1).await.unwrap();
        tx.enqueue(2).await.unwrap();
        // Cancel again with items present: budget 0 polls is impossible
        // (min 1), so use an immediate drop instead.
        drop(rx.dequeue());
        assert_eq!(rx.dequeue().await, Ok(1), "dropped future lost an item");
        assert_eq!(rx.dequeue().await, Ok(2), "FIFO broken by cancellation");
    });
}

#[test]
fn mpmc_cancel_storm_no_loss_no_dup_fifo() {
    const N: u64 = 30_000;
    const CONSUMERS: usize = 4;
    const CAPACITY: usize = 64;

    let (mut tx, mut rx) = mpmc::channel::<u64>(CAPACITY);
    // Park on the first failed attempt: the point of this test is the
    // waiter-registry handoff under cancellation, which the default
    // reschedule-spin phase would mostly keep out of play.
    tx.set_spin_polls(0);
    rx.set_spin_polls(0);
    let ex = Executor::new(CONSUMERS + 1);

    // Producer keeps the queue saturated the whole run, so consumers are
    // constantly parked on not_empty and the producer on not_full — the
    // maximum-contention regime for wait-token handoff.
    let prod = ex.spawn(async move {
        let mut i = 0u64;
        while i < N {
            // Mix single sends and batches to exercise both futures.
            if i.is_multiple_of(7) {
                let hi = (i + 13).min(N);
                let sent = tx.enqueue_many(i..hi).await;
                assert_eq!(sent, (hi - i) as usize, "mpmc send cannot go short here");
                i = hi;
            } else {
                tx.enqueue(i).await.unwrap();
                i += 1;
            }
        }
    });

    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|c| {
            let mut rx = rx.clone();
            ex.spawn(async move {
                let mut rng = XorShift(0x9e37_79b9_7f4a_7c15 ^ (c as u64 + 1));
                let mut mine: Vec<u64> = Vec::new();
                loop {
                    let budget = (rng.next() % 3 + 1) as u32;
                    match rng.next() % 4 {
                        // Mostly single dequeues under a tiny poll budget:
                        // the large majority get cancelled while parked.
                        0..=2 => match PollLimit::new(rx.dequeue(), budget).await {
                            Some(Ok(v)) => mine.push(v),
                            Some(Err(Disconnected)) => break,
                            None => {} // cancelled; retry with a new future
                        },
                        // And batched dequeues, also cancel-prone.
                        _ => match PollLimit::new(rx.dequeue_batch(8), budget).await {
                            Some(Ok(batch)) => mine.extend(batch),
                            Some(Err(Disconnected)) => break,
                            None => {}
                        },
                    }
                }
                mine
            })
        })
        .collect();
    drop(rx);

    prod.join();
    let per_consumer: Vec<Vec<u64>> = consumers.into_iter().map(|h| h.join()).collect();

    let mut union: Vec<u64> = Vec::new();
    for (c, mine) in per_consumer.iter().enumerate() {
        // Per-consumer FIFO: ranks are claimed in increasing order and
        // drained in the handle's pending-rank order, so each consumer's
        // sequence is strictly increasing regardless of how many of its
        // futures were dropped.
        assert!(
            mine.windows(2).all(|w| w[0] < w[1]),
            "consumer {c}: cancellation reordered items"
        );
        union.extend(mine.iter().copied());
    }
    union.sort_unstable();
    let expected: Vec<u64> = (0..N).collect();
    assert_eq!(
        union.len(),
        expected.len(),
        "lost or duplicated items under cancellation storm"
    );
    assert_eq!(union, expected, "wrong item set under cancellation storm");
}

#[test]
fn sender_cancel_storm_no_loss_no_dup() {
    // The mirror image: sender futures are the ones being dropped, on a
    // full queue. A dropped Enqueue keeps its (unsent) item — the task
    // re-sends it — so the receiver must still see exactly 0..N in order.
    const N: u64 = 20_000;
    let (mut tx, mut rx) = spsc::channel::<u64>(4);
    // As above: force every wait through the registry.
    tx.set_spin_polls(0);
    rx.set_spin_polls(0);
    let ex = Executor::new(2);

    let prod = ex.spawn(async move {
        let mut rng = XorShift(0xdead_beef_cafe_f00d);
        let mut i = 0u64;
        while i < N {
            let budget = (rng.next() % 2 + 1) as u32;
            match PollLimit::new(tx.enqueue(i), budget).await {
                Some(Ok(())) => i += 1,
                Some(Err(e)) => panic!("spsc sender cannot disconnect: {e}"),
                None => {} // cancelled mid-wait; i is re-sent
            }
        }
    });
    let cons = ex.spawn(async move {
        let mut next = 0u64;
        while let Ok(v) = rx.dequeue().await {
            assert_eq!(v, next, "sender cancellation duplicated or reordered");
            next += 1;
        }
        next
    });
    prod.join();
    assert_eq!(cons.join(), N, "sender cancellation lost items");
}

// ---------------------------------------------------------------------------
// Zero-copy bytes lane under cancellation
// ---------------------------------------------------------------------------

/// Fills `buf[8..]` with a pattern derived from the stamped sequence
/// number so a stale or torn slot buffer is caught, not just a wrong id.
fn stamp(slot: &mut [u8], seq: u64) {
    slot[..8].copy_from_slice(&seq.to_le_bytes());
    for (j, b) in slot[8..].iter_mut().enumerate() {
        *b = (seq as u8) ^ (j as u8).wrapping_mul(151).wrapping_add(29);
    }
}

fn check_stamp(view: &[u8]) -> u64 {
    let seq = u64::from_le_bytes(view[..8].try_into().unwrap());
    for (j, b) in view[8..].iter().enumerate() {
        assert_eq!(
            *b,
            (seq as u8) ^ (j as u8).wrapping_mul(151).wrapping_add(29),
            "payload {seq} corrupted at offset {}",
            j + 8
        );
    }
    seq
}

#[test]
fn bytes_spsc_cancel_storm_keeps_committed_order() {
    // Reserve futures and recv futures are both cancelled constantly; a
    // fraction of resolved reservations is *aborted* (guard dropped
    // uncommitted, including mid-chain ones). The committed subsequence
    // must arrive complete, in commit order, byte-identical.
    const N: u64 = 8_000;
    // Inline, boundary and chained lengths (max payload 16/2 × 64 = 512).
    const LENS: [usize; 6] = [8, 40, 64, 65, 200, 450];
    let (mut tx, mut rx) = ffq_async::bytes::spsc::channel(16, 64).unwrap();
    tx.set_spin_polls(0);
    rx.set_spin_polls(0);
    let ex = Executor::new(2);

    let prod = ex.spawn(async move {
        let mut rng = XorShift(0x1234_5678_9abc_def1);
        let mut committed = 0u64;
        while committed < N {
            let len = LENS[(rng.next() % LENS.len() as u64) as usize];
            let budget = (rng.next() % 2 + 1) as u32;
            match PollLimit::new(tx.reserve(len), budget).await {
                Some(Ok(mut slot)) => {
                    if rng.next().is_multiple_of(5) {
                        // Abort: consumers must never observe this one.
                        stamp(&mut slot, u64::MAX);
                        drop(slot);
                    } else {
                        stamp(&mut slot, committed);
                        slot.commit();
                        committed += 1;
                    }
                }
                Some(Err(e)) => panic!("lengths are within max_payload: {e}"),
                None => {} // cancelled mid-wait; nothing was reserved
            }
        }
    });
    let cons = ex.spawn(async move {
        let mut rng = XorShift(0xfeed_face_0123_4567);
        let mut next = 0u64;
        loop {
            let budget = (rng.next() % 2 + 1) as u32;
            match PollLimit::new(rx.recv(), budget).await {
                Some(Ok(view)) => {
                    let seq = check_stamp(&view);
                    assert_ne!(seq, u64::MAX, "aborted reservation was observed");
                    assert_eq!(seq, next, "committed order violated under cancellation");
                    next += 1;
                }
                Some(Err(Disconnected)) => break next,
                None => {} // cancelled; the resumable claim is picked back up
            }
        }
    });

    prod.join();
    assert_eq!(cons.join(), N, "committed payloads lost under cancellation");
}

#[test]
fn bytes_mpmc_cancel_storm_no_loss_no_dup() {
    // Two producers (aborts publish tombstones other consumers must
    // skip), two consumers, everything cancel-prone, inline and
    // heap-spilled lengths mixed.
    const PER: u64 = 4_000;
    const PRODUCERS: u64 = 2;
    const LENS: [usize; 5] = [16, 48, 64, 100, 300];
    let (tx, rx) = ffq_async::bytes::mpmc::channel(32, 64).unwrap();
    let ex = Executor::new(4);

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let mut tx = tx.clone();
            tx.set_spin_polls(0);
            ex.spawn(async move {
                let mut rng = XorShift(0x9e37_79b9_7f4a_7c15 ^ (p + 1));
                let mut committed = 0u64;
                while committed < PER {
                    let len = LENS[(rng.next() % LENS.len() as u64) as usize];
                    let budget = (rng.next() % 2 + 1) as u32;
                    match PollLimit::new(tx.reserve(len), budget).await {
                        Some(Ok(mut slot)) => {
                            if rng.next().is_multiple_of(6) {
                                stamp(&mut slot, u64::MAX);
                                drop(slot); // tombstoned, consumers skip it
                            } else {
                                stamp(&mut slot, p * PER + committed);
                                slot.commit();
                                committed += 1;
                            }
                        }
                        Some(Err(e)) => panic!("lengths are within max_payload: {e}"),
                        None => {}
                    }
                }
            })
        })
        .collect();
    drop(tx);

    let consumers: Vec<_> = (0..2)
        .map(|c| {
            let mut rx = rx.clone();
            rx.set_spin_polls(0);
            ex.spawn(async move {
                let mut rng = XorShift(0x0bad_c0de_dead_10cc ^ (c as u64 + 1));
                let mut mine: Vec<u64> = Vec::new();
                loop {
                    let budget = (rng.next() % 2 + 1) as u32;
                    match PollLimit::new(rx.recv(), budget).await {
                        Some(Ok(view)) => {
                            let seq = check_stamp(&view);
                            assert_ne!(seq, u64::MAX, "aborted reservation was observed");
                            mine.push(seq);
                        }
                        Some(Err(Disconnected)) => break mine,
                        None => {}
                    }
                }
            })
        })
        .collect();
    drop(rx);

    for p in producers {
        p.join();
    }
    let per_consumer: Vec<Vec<u64>> = consumers.into_iter().map(|h| h.join()).collect();
    let mut union: Vec<u64> = Vec::new();
    for (c, mine) in per_consumer.iter().enumerate() {
        // Each producer's payloads reach any single consumer in commit
        // order (ranks increase per producer; claims increase per
        // consumer).
        for p in 0..PRODUCERS {
            let sub: Vec<u64> = mine.iter().copied().filter(|v| v / PER == p).collect();
            assert!(
                sub.windows(2).all(|w| w[0] < w[1]),
                "consumer {c}: producer {p}'s payloads reordered"
            );
        }
        union.extend(mine.iter().copied());
    }
    union.sort_unstable();
    assert_eq!(
        union,
        (0..PRODUCERS * PER).collect::<Vec<_>>(),
        "lost or duplicated payloads under cancellation storm"
    );
}
