//! Async broadcast lane coverage on the bundled mini runtime: fan-out
//! wakes, lag surfacing, closed-stream termination, clone/resubscribe
//! positioning, and cancellation safety of parked `recv` futures.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

use ffq::error::{BroadcastRecvError, BroadcastTryRecvError};
use ffq_async::broadcast::{self, Lagged};
use ffq_async::rt::{block_on, sleep, timeout, Executor};

#[test]
fn fanout_every_subscriber_accounts_for_full_stream() {
    // Small ring so slow subscribers really do lose items: for each
    // subscriber, received + lagged must equal the total published.
    const N: u64 = 50_000;
    let (mut tx, rx) = broadcast::channel::<u64>(64);
    let ex = Executor::new(3);

    let subs: Vec<_> = (0..2)
        .map(|_| {
            let mut rx = rx.clone();
            ex.spawn(async move {
                let mut received = 0u64;
                let mut lagged = 0u64;
                let mut last = 0u64;
                loop {
                    match rx.recv().await {
                        Ok(v) => {
                            assert!(v > last, "stream went backwards: {v} after {last}");
                            last = v;
                            received += 1;
                        }
                        Err(BroadcastRecvError::Lagged(n)) => lagged += n,
                        Err(BroadcastRecvError::Closed) => break (received, lagged),
                    }
                }
            })
        })
        .collect();
    drop(rx);

    let prod = ex.spawn(async move {
        for i in 1..=N {
            tx.send(i);
        }
    });
    prod.join();
    for sub in subs {
        let (received, lagged) = sub.join();
        assert_eq!(
            received + lagged,
            N,
            "items neither observed nor counted lost"
        );
        assert!(received > 0, "subscriber observed nothing at all");
    }
}

#[test]
fn parked_subscribers_wake_on_send() {
    let (mut tx, rx) = broadcast::channel::<u32>(8);
    let ex = Executor::new(3);

    let mut a = rx.clone();
    let mut b = rx;
    let sub_a = ex.spawn(async move { a.recv().await });
    let sub_b = ex.spawn(async move { b.recv().await });
    // Let both park before publishing (spin budgets are tiny; the sleep
    // is belt-and-braces, not a correctness requirement).
    std::thread::sleep(Duration::from_millis(20));
    tx.send(9);

    assert_eq!(sub_a.join(), Ok(9));
    assert_eq!(sub_b.join(), Ok(9));
}

#[test]
fn lag_surfaces_once_then_stream_resumes() {
    let (mut tx, mut rx) = broadcast::channel::<u64>(4);
    // Overrun the ring with no reader: 100 published into capacity 4.
    for i in 1..=100 {
        tx.send(i);
    }
    block_on(async move {
        match rx.recv().await {
            Err(BroadcastRecvError::Lagged(n)) => assert_eq!(n, 96),
            other => panic!("expected Lagged(96), got {other:?}"),
        }
        // Resynced to the oldest retained item; the tail is intact.
        for want in 97..=100 {
            assert_eq!(rx.recv().await, Ok(want));
        }
        assert_eq!(rx.try_recv(), Err(BroadcastTryRecvError::Empty));
    });
}

#[test]
fn parked_subscriber_wakes_on_sender_drop() {
    let (tx, mut rx) = broadcast::channel::<u32>(8);
    let ex = Executor::new(2);
    let sub = ex.spawn(async move { rx.recv().await });
    std::thread::sleep(Duration::from_millis(20));
    drop(tx);
    assert_eq!(sub.join(), Err(BroadcastRecvError::Closed));
}

#[test]
fn stream_yields_items_lag_and_ends_on_close() {
    let (mut tx, rx) = broadcast::channel::<u64>(4);
    let mut stream = rx.into_stream();
    for i in 1..=6 {
        tx.send(i);
    }
    drop(tx);
    block_on(async move {
        let first = std::future::poll_fn(|cx| stream.poll_next_item(cx)).await;
        assert_eq!(first, Some(Err(Lagged(2))));
        for want in 3..=6 {
            let item = std::future::poll_fn(|cx| stream.poll_next_item(cx)).await;
            assert_eq!(item, Some(Ok(want)));
        }
        let end = std::future::poll_fn(|cx| stream.poll_next_item(cx)).await;
        assert_eq!(end, None, "closed + drained stream must end");
    });
}

#[test]
fn clone_inherits_position_resubscribe_joins_live_edge() {
    let (mut tx, mut rx) = broadcast::channel::<u64>(16);
    block_on(async move {
        tx.send(1);
        tx.send(2);
        assert_eq!(rx.recv().await, Ok(1));

        let mut cloned = rx.clone(); // same position: next item is 2
        let mut live = rx.resubscribe(); // live edge: nothing yet
        assert_eq!(cloned.recv().await, Ok(2));
        assert_eq!(live.try_recv(), Err(BroadcastTryRecvError::Empty));

        tx.send(3);
        assert_eq!(live.recv().await, Ok(3));
        assert_eq!(rx.recv().await, Ok(2)); // original unaffected by either
    });
}

/// Polls the inner future at most `budget` times, then drops it —
/// cancelling precisely at a wake point, like a `select!` loser.
struct PollLimit<F> {
    inner: Option<F>,
    budget: u32,
}

impl<F: Future + Unpin> Unpin for PollLimit<F> {}

impl<F: Future + Unpin> Future for PollLimit<F> {
    type Output = Option<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        let Some(fut) = me.inner.as_mut() else {
            return Poll::Ready(None);
        };
        if me.budget == 0 {
            me.inner = None;
            return Poll::Ready(None);
        }
        me.budget -= 1;
        match Pin::new(fut).poll(cx) {
            Poll::Ready(v) => {
                me.inner = None;
                Poll::Ready(Some(v))
            }
            Poll::Pending => Poll::Pending,
        }
    }
}

#[test]
fn cancelled_parked_recv_does_not_swallow_wakes() {
    // Two subscribers park; one is cancelled mid-wait (possibly right as
    // a notify consumed its registration). The survivor must still see
    // every wake — a swallowed handoff shows up as a timeout here.
    let (mut tx, rx) = broadcast::channel::<u64>(1024);
    let ex = Executor::new(3);
    const N: u64 = 2_000;

    let mut cancelly = rx.clone();
    let canceller = ex.spawn(async move {
        let mut seen = 0u64;
        for round in 0..N {
            let fut = PollLimit {
                inner: Some(cancelly.recv()),
                budget: (round % 3 + 1) as u32,
            };
            if let Some(res) = fut.await {
                match res {
                    Ok(_) | Err(BroadcastRecvError::Lagged(_)) => seen += 1,
                    Err(BroadcastRecvError::Closed) => break,
                }
            }
        }
        seen
    });
    let mut steady = rx;
    let survivor = ex.spawn(async move {
        let mut received = 0u64;
        let mut lagged = 0u64;
        loop {
            match timeout(Duration::from_secs(30), steady.recv()).await {
                Ok(Ok(_)) => received += 1,
                Ok(Err(BroadcastRecvError::Lagged(n))) => lagged += n,
                Ok(Err(BroadcastRecvError::Closed)) => break,
                Err(_) => panic!("survivor starved: a cancelled future swallowed a wake"),
            }
            received
                .checked_add(lagged)
                .expect("counters never overflow");
        }
        (received, lagged)
    });

    let prod = ex.spawn(async move {
        for i in 1..=N {
            tx.send(i);
            if i % 64 == 0 {
                sleep(Duration::from_micros(200)).await;
            }
        }
    });
    prod.join();
    let (received, lagged) = survivor.join();
    assert_eq!(received + lagged, N);
    canceller.join();
}

#[test]
fn send_many_wakes_and_delivers_batch() {
    let (mut tx, mut rx) = broadcast::channel::<u64>(64);
    let ex = Executor::new(2);
    let sub = ex.spawn(async move {
        let mut got = Vec::new();
        while let Ok(v) = rx.recv().await {
            got.push(v);
        }
        got
    });
    std::thread::sleep(Duration::from_millis(10));
    assert_eq!(tx.send_many(1..=32), 32);
    drop(tx);
    assert_eq!(sub.join(), (1..=32).collect::<Vec<_>>());
}
