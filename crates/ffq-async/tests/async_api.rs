//! End-to-end async API coverage on the bundled mini runtime.
//!
//! Everything here runs with zero external crates: tasks are spawned on
//! `ffq_async::rt::Executor` and driven by `rt::block_on`, so the same
//! tests run offline, under CI, and under Miri.

use std::time::Duration;

use ffq_async::rt::{block_on, timeout, Executor};
use ffq_async::{mpmc, shard, spmc, spsc, unbounded, wrap, Disconnected};

#[test]
fn spsc_roundtrip_in_order() {
    let (mut tx, mut rx) = spsc::channel::<u64>(8);
    let ex = Executor::new(2);
    const N: u64 = 10_000;

    let prod = ex.spawn(async move {
        for i in 0..N {
            tx.enqueue(i).await.expect("spsc send cannot fail");
        }
        // tx drops here -> disconnect broadcast
    });
    let cons = ex.spawn(async move {
        let mut next = 0u64;
        loop {
            match rx.dequeue().await {
                Ok(v) => {
                    assert_eq!(v, next, "FIFO order violated");
                    next += 1;
                }
                Err(Disconnected) => break next,
            }
        }
    });

    prod.join();
    assert_eq!(cons.join(), N);
}

#[test]
fn spsc_backpressure_tiny_capacity() {
    // Capacity 4 forces the producer through the not_full wait path
    // thousands of times.
    let (mut tx, mut rx) = spsc::channel::<u64>(4);
    let ex = Executor::new(2);
    const N: u64 = 5_000;

    let prod = ex.spawn(async move {
        for i in 0..N {
            tx.enqueue(i).await.unwrap();
        }
    });
    let cons = ex.spawn(async move {
        let mut got = 0u64;
        while let Ok(v) = rx.dequeue().await {
            assert_eq!(v, got);
            got += 1;
        }
        got
    });
    prod.join();
    assert_eq!(cons.join(), N);
}

#[test]
fn enqueue_many_and_dequeue_batch() {
    let (mut tx, mut rx) = spsc::channel::<u32>(16);
    let ex = Executor::new(2);
    const N: u32 = 4_096;

    let prod = ex.spawn(async move {
        let sent = tx.enqueue_many(0..N).await;
        assert_eq!(sent, N as usize, "spsc enqueue_many must send everything");
    });
    let cons = ex.spawn(async move {
        let mut all = Vec::new();
        while let Ok(batch) = rx.dequeue_batch(64).await {
            assert!(!batch.is_empty(), "batch resolves only with items");
            assert!(batch.len() <= 64);
            all.extend(batch);
        }
        all
    });
    prod.join();
    let all = cons.join();
    assert_eq!(all, (0..N).collect::<Vec<_>>());
}

#[test]
fn dequeue_batch_zero_max_is_empty() {
    let (mut tx, mut rx) = spsc::channel::<u8>(4);
    block_on(async {
        tx.enqueue(9).await.unwrap();
        assert_eq!(rx.dequeue_batch(0).await.unwrap(), Vec::<u8>::new());
        assert_eq!(rx.dequeue_batch(8).await.unwrap(), vec![9]);
    });
}

#[test]
fn receiver_sees_disconnect_after_drain() {
    let (mut tx, mut rx) = spsc::channel::<u8>(8);
    block_on(async {
        tx.enqueue(1).await.unwrap();
        tx.enqueue(2).await.unwrap();
        drop(tx);
        // Already-published items are still delivered...
        assert_eq!(rx.dequeue().await, Ok(1));
        assert_eq!(rx.dequeue().await, Ok(2));
        // ...then the disconnect surfaces.
        assert_eq!(rx.dequeue().await, Err(Disconnected));
    });
}

#[test]
fn receiver_parked_when_producer_drops_wakes_up() {
    // The Drop-ordering case: the consumer is already parked on not_empty
    // when the last producer disappears; the drop broadcast must wake it
    // and the re-check must observe the disconnect.
    let (tx, mut rx) = spsc::channel::<u8>(8);
    let ex = Executor::new(2);
    let cons = ex.spawn(async move { rx.dequeue().await });
    std::thread::sleep(Duration::from_millis(50)); // let it park
    drop(tx);
    assert_eq!(cons.join(), Err(Disconnected));
}

#[test]
fn sender_sees_consumers_gone_mpmc() {
    let (mut tx, rx) = mpmc::channel::<u32>(4);
    block_on(async {
        // Fill the queue, then remove the only consumer: the parked
        // sender must resolve with SendError and return the item.
        for i in 0..4 {
            tx.enqueue(i).await.unwrap();
        }
        drop(rx);
        let err = tx.enqueue(99).await.expect_err("consumers are gone");
        assert_eq!(err.into_inner(), 99);
    });
}

#[test]
fn spmc_fanout_partitions_items() {
    let (mut tx, rx) = spmc::channel::<u64>(32);
    let ex = Executor::new(3);
    const N: u64 = 8_000;
    const CONSUMERS: usize = 3;

    let handles: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let mut rx = rx.clone();
            ex.spawn(async move {
                let mut mine = Vec::new();
                while let Ok(v) = rx.dequeue().await {
                    mine.push(v);
                }
                mine
            })
        })
        .collect();
    drop(rx); // only the clones remain

    let prod = ex.spawn(async move {
        for i in 0..N {
            if tx.enqueue(i).await.is_err() {
                panic!("consumers vanished mid-run");
            }
        }
    });
    prod.join();

    let mut union: Vec<u64> = Vec::new();
    for h in handles {
        let mine = h.join();
        // Rank claiming is in arrival order per consumer: each consumer's
        // view must be strictly increasing.
        assert!(
            mine.windows(2).all(|w| w[0] < w[1]),
            "per-consumer FIFO violated"
        );
        union.extend(mine);
    }
    union.sort_unstable();
    assert_eq!(
        union,
        (0..N).collect::<Vec<_>>(),
        "lost or duplicated items"
    );
}

#[test]
fn mpmc_many_to_many() {
    let (tx, rx) = mpmc::channel::<u64>(64);
    let ex = Executor::new(4);
    const PRODUCERS: u64 = 3;
    const PER: u64 = 3_000;

    let prods: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let mut tx = tx.clone();
            ex.spawn(async move {
                for i in 0..PER {
                    tx.enqueue(p * PER + i).await.unwrap();
                }
            })
        })
        .collect();
    drop(tx);

    let cons: Vec<_> = (0..2)
        .map(|_| {
            let mut rx = rx.clone();
            ex.spawn(async move {
                let mut mine = Vec::new();
                while let Ok(v) = rx.dequeue().await {
                    mine.push(v);
                }
                mine
            })
        })
        .collect();
    drop(rx);

    for p in prods {
        p.join();
    }
    let mut union: Vec<u64> = Vec::new();
    for c in cons {
        union.extend(c.join());
    }
    union.sort_unstable();
    assert_eq!(union, (0..PRODUCERS * PER).collect::<Vec<_>>());
}

#[test]
fn sharded_fanout_keeps_per_shard_fifo() {
    // Geometry (2 shards × 4-item blocks): a single producer's gapless
    // rotation lands value `v` on shard `(v / 4) % 2`, so each consumer's
    // per-shard subsequence must stay strictly increasing even though the
    // cross-shard merge is only k-relaxed.
    let (mut tx, rx) = shard::channel_with_geometry::<u64>(256, 2, 4);
    let ex = Executor::new(3);
    const N: u64 = 8_000;
    const CONSUMERS: usize = 3;

    let handles: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let mut rx = rx.clone();
            ex.spawn(async move {
                let mut mine = Vec::new();
                while let Ok(v) = rx.dequeue().await {
                    mine.push(v);
                }
                mine
            })
        })
        .collect();
    drop(rx);

    let prod = ex.spawn(async move {
        for i in 0..N {
            if tx.enqueue(i).await.is_err() {
                panic!("consumers vanished mid-run");
            }
        }
    });
    prod.join();

    let mut union: Vec<u64> = Vec::new();
    for h in handles {
        let mine = h.join();
        for shard in 0..2 {
            let sub: Vec<u64> = mine
                .iter()
                .copied()
                .filter(|v| (v / 4) % 2 == shard)
                .collect();
            assert!(
                sub.windows(2).all(|w| w[0] < w[1]),
                "per-shard FIFO violated on shard {shard}"
            );
        }
        union.extend(mine);
    }
    union.sort_unstable();
    assert_eq!(
        union,
        (0..N).collect::<Vec<_>>(),
        "lost or duplicated items"
    );
}

#[test]
fn stream_adapter_yields_until_end() {
    let (mut tx, rx) = spsc::channel::<u32>(8);
    let ex = Executor::new(2);

    let prod = ex.spawn(async move {
        for i in 0..100u32 {
            tx.enqueue(i).await.unwrap();
        }
    });
    let cons = ex.spawn(async move {
        let mut stream = rx.into_stream();
        let mut got = Vec::new();
        // Drive the stream through its inherent poll method with a tiny
        // hand-rolled future, proving the adapter needs no futures crate.
        loop {
            let next = std::future::poll_fn(|cx| stream.poll_next_item(cx)).await;
            match next {
                Some(v) => got.push(v),
                None => break,
            }
        }
        got
    });
    prod.join();
    assert_eq!(cons.join(), (0..100).collect::<Vec<_>>());
}

#[test]
fn sink_adapter_flushes_buffered_item() {
    let (tx, mut rx) = spsc::channel::<u32>(2);
    let ex = Executor::new(2);

    let prod = ex.spawn(async move {
        let mut sink = tx.into_sink();
        for i in 0..50u32 {
            std::future::poll_fn(|cx| sink.poll_ready_item(cx))
                .await
                .unwrap();
            sink.start_send_item(i).unwrap();
        }
        std::future::poll_fn(|cx| sink.poll_flush_item(cx))
            .await
            .unwrap();
        // sink (and its sender) drop here -> disconnect
    });
    let cons = ex.spawn(async move {
        let mut got = Vec::new();
        while let Ok(v) = rx.dequeue().await {
            got.push(v);
        }
        got
    });
    prod.join();
    assert_eq!(cons.join(), (0..50).collect::<Vec<_>>());
}

#[test]
fn wrap_existing_sync_pair() {
    // Queues built directly from the sync crate can be adopted.
    let (tx, rx) = ffq::mpmc::channel::<u16>(8);
    let (mut atx, mut arx) = wrap(tx, rx);
    block_on(async {
        atx.enqueue(7).await.unwrap();
        assert_eq!(arx.dequeue().await, Ok(7));
    });
}

#[test]
fn timeout_on_empty_queue_then_delivery() {
    let (mut tx, mut rx) = spsc::channel::<u8>(4);
    block_on(async {
        // Nothing queued: the dequeue must time out (and its drop is a
        // cancellation while parked).
        let r = timeout(Duration::from_millis(20), rx.dequeue()).await;
        assert!(r.is_err(), "empty queue cannot resolve a dequeue");
        // The cancelled wait must not wedge the receiver.
        tx.enqueue(42).await.unwrap();
        let r = timeout(Duration::from_millis(500), rx.dequeue()).await;
        assert_eq!(r.expect("item was queued"), Ok(42));
    });
}

#[test]
fn try_ops_notify_async_peers() {
    // try_enqueue on the wrapper must wake a parked async receiver (the
    // whole point of routing non-blocking ops through the wrapper).
    let (mut tx, mut rx) = spsc::channel::<u8>(4);
    let ex = Executor::new(2);
    let cons = ex.spawn(async move { rx.dequeue().await });
    std::thread::sleep(Duration::from_millis(50)); // let it park
    tx.try_enqueue(5).expect("queue is empty");
    assert_eq!(cons.join(), Ok(5));
}

#[test]
fn unbounded_sends_never_wait_and_cross_seams_in_order() {
    // Tiny segments force the whole stream through segment rolls; the
    // unbounded sender must complete every enqueue on the first poll
    // (there is no Full path) while the receiver crosses the seams in
    // FIFO order to the disconnect verdict.
    let (mut tx, mut rx) = unbounded::spsc::channel::<u64>(8);
    let ex = Executor::new(2);
    const N: u64 = 10_000;

    let prod = ex.spawn(async move {
        for i in 0..N {
            tx.enqueue(i).await.expect("unbounded send cannot fail");
        }
    });
    let cons = ex.spawn(async move {
        let mut next = 0u64;
        loop {
            match rx.dequeue().await {
                Ok(v) => {
                    assert_eq!(v, next, "FIFO order violated at a seam");
                    next += 1;
                }
                Err(Disconnected) => break next,
            }
        }
    });
    prod.join();
    assert_eq!(cons.join(), N);
}

#[test]
fn unbounded_mpmc_fanout_exactly_once() {
    // Cloned async ends over the unbounded MPMC tier: two producers burst
    // with no backpressure, two consumers drain across the seams; the
    // union is exactly-once.
    let (tx, rx) = unbounded::mpmc::channel::<u64>(16);
    let ex = Executor::new(4);
    const PER: u64 = 4_000;

    let producers: Vec<_> = (0..2u64)
        .map(|p| {
            let mut tx = tx.clone();
            ex.spawn(async move {
                for i in 0..PER {
                    tx.enqueue(p * PER + i).await.unwrap();
                }
            })
        })
        .collect();
    drop(tx);
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let mut rx = rx.clone();
            ex.spawn(async move {
                let mut got = Vec::new();
                while let Ok(v) = rx.dequeue().await {
                    got.push(v);
                }
                got
            })
        })
        .collect();
    drop(rx);
    for p in producers {
        p.join();
    }
    let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join()).collect();
    all.sort_unstable();
    assert_eq!(all, (0..2 * PER).collect::<Vec<_>>());
}

#[test]
fn unbounded_cancelled_dequeue_leaves_receiver_clean() {
    // Cancellation safety across the segment machinery: a dequeue future
    // dropped while parked (timeout) must leave the unbounded receiver
    // able to take the next item — including when that item lands in a
    // *new* segment after a roll.
    let (mut tx, mut rx) = unbounded::spmc::channel::<u8>(4);
    block_on(async {
        let r = timeout(Duration::from_millis(20), rx.dequeue()).await;
        assert!(r.is_err(), "empty queue cannot resolve a dequeue");
        // Burst past one segment so delivery crosses a seam.
        for i in 0..10u8 {
            tx.enqueue(i).await.unwrap();
        }
        for want in 0..10u8 {
            let r = timeout(Duration::from_millis(500), rx.dequeue()).await;
            assert_eq!(r.expect("items were queued"), Ok(want));
        }
    });
}

// ---------------------------------------------------------------------------
// Zero-copy bytes lane
// ---------------------------------------------------------------------------

/// Deterministic per-byte pattern so a wrong slot, a stale buffer, or a
/// cross-payload mixup is caught byte-for-byte, not just by length.
fn bytes_payload(i: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| (i as u8) ^ (j as u8).wrapping_mul(167).wrapping_add(13))
        .collect()
}

#[test]
fn bytes_spsc_zero_copy_roundtrip_variable_sizes() {
    // Inline, chained (>64 B) and empty payloads through the in-place
    // write / borrowed read path, producer and consumer on separate
    // executor threads.
    let (mut tx, mut rx) = ffq_async::bytes::spsc::channel(16, 64).unwrap();
    let ex = Executor::new(2);
    const N: u64 = 4_000;
    const LENS: [usize; 8] = [0, 1, 17, 63, 64, 65, 200, 450];

    let prod = ex.spawn(async move {
        for i in 0..N {
            let len = LENS[(i % LENS.len() as u64) as usize];
            let mut slot = tx.reserve(len).await.expect("within max_payload");
            slot.copy_from_slice(&bytes_payload(i, len));
            slot.commit();
        }
    });
    let cons = ex.spawn(async move {
        let mut next = 0u64;
        loop {
            match rx.recv().await {
                Ok(view) => {
                    let len = LENS[(next % LENS.len() as u64) as usize];
                    assert_eq!(&*view, &bytes_payload(next, len)[..], "payload {next}");
                    next += 1;
                }
                Err(Disconnected) => break next,
            }
        }
    });

    prod.join();
    assert_eq!(cons.join(), N);
}

#[test]
fn bytes_spmc_fanout_exactly_once() {
    // One producer, three cloned consumers; each payload carries its index
    // in the first 8 bytes and must arrive exactly once across the pool.
    const N: u64 = 6_000;
    const CONSUMERS: usize = 3;
    let (mut tx, rx) = ffq_async::bytes::spmc::channel(32, 64).unwrap();
    let ex = Executor::new(CONSUMERS + 1);

    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let mut rx = rx.clone();
            ex.spawn(async move {
                let mut mine: Vec<u64> = Vec::new();
                loop {
                    match rx.recv_bytes().await {
                        Ok(buf) => {
                            mine.push(u64::from_le_bytes(buf[..8].try_into().unwrap()));
                        }
                        Err(Disconnected) => break mine,
                    }
                }
            })
        })
        .collect();
    drop(rx);

    let prod = ex.spawn(async move {
        for i in 0..N {
            // Mix inline and heap-spilled (>64 B) payloads.
            let len = if i % 5 == 0 { 120 } else { 24 };
            let mut payload = bytes_payload(i, len);
            payload[..8].copy_from_slice(&i.to_le_bytes());
            tx.send_bytes(&payload).await.unwrap();
        }
    });

    prod.join();
    let mut union: Vec<u64> = consumers.into_iter().flat_map(|c| c.join()).collect();
    union.sort_unstable();
    assert_eq!(
        union,
        (0..N).collect::<Vec<_>>(),
        "lost or duplicated payloads"
    );
}

#[test]
fn bytes_mpmc_many_to_many_roundtrip() {
    const PER: u64 = 3_000;
    const PRODUCERS: u64 = 2;
    let (tx, rx) = ffq_async::bytes::mpmc::channel(32, 64).unwrap();
    let ex = Executor::new(4);

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let mut tx = tx.clone();
            ex.spawn(async move {
                for i in 0..PER {
                    let v = p * PER + i;
                    let mut slot = tx.reserve(16).await.unwrap();
                    slot[..8].copy_from_slice(&v.to_le_bytes());
                    slot[8..].copy_from_slice(&v.to_be_bytes());
                    slot.commit();
                }
            })
        })
        .collect();
    drop(tx);

    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let mut rx = rx.clone();
            ex.spawn(async move {
                let mut mine: Vec<u64> = Vec::new();
                loop {
                    match rx.recv().await {
                        Ok(view) => {
                            let v = u64::from_le_bytes(view[..8].try_into().unwrap());
                            assert_eq!(
                                u64::from_be_bytes(view[8..].try_into().unwrap()),
                                v,
                                "torn payload"
                            );
                            mine.push(v);
                        }
                        Err(Disconnected) => break mine,
                    }
                }
            })
        })
        .collect();
    drop(rx);

    for p in producers {
        p.join();
    }
    let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join()).collect();
    all.sort_unstable();
    assert_eq!(all, (0..PRODUCERS * PER).collect::<Vec<_>>());
}

#[test]
fn bytes_too_large_fails_fast_and_parked_receiver_sees_disconnect() {
    let (mut tx, mut rx) = ffq_async::bytes::spmc::channel(8, 64).unwrap();
    block_on(async {
        // SPMC refuses nothing (heap spill) except absurd lengths; the
        // SPSC chain flavor has a finite max — check that one instead.
        let _ = &mut tx;
        let (mut ctx, _crx) = ffq_async::bytes::spsc::channel(8, 64).unwrap();
        let max = ctx.max_payload();
        match ctx.reserve(max + 1).await {
            Err(ffq_async::ReserveError::TooLarge { len, max: m }) => {
                assert_eq!((len, m), (max + 1, max));
            }
            Ok(_) => panic!("oversize reservation must fail, never truncate"),
        };
    });

    // A receiver parked on an empty queue must wake on sender drop.
    let ex = Executor::new(2);
    let cons = ex.spawn(async move {
        assert_eq!(
            rx.recv().await.err(),
            Some(Disconnected),
            "parked receiver missed the disconnect"
        );
    });
    std::thread::sleep(Duration::from_millis(50));
    drop(tx);
    cons.join();
}
