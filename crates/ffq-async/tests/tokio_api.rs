//! Tokio integration: the same futures, driven by a real multi-threaded
//! runtime with `tokio::select!`/`tokio::time::timeout` cancellation.
//!
//! Compiled only with `--features tokio` (needs the tokio crate, so it is
//! skipped in offline builds; CI runs it in the dedicated async job).
#![cfg(feature = "tokio")]

use std::time::Duration;

use ffq_async::{mpmc, spsc, Disconnected};

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn spsc_roundtrip_on_tokio() {
    let (mut tx, mut rx) = spsc::channel::<u64>(16);
    const N: u64 = 50_000;

    let prod = tokio::spawn(async move {
        for i in 0..N {
            tx.enqueue(i).await.unwrap();
        }
    });
    let cons = tokio::spawn(async move {
        let mut next = 0u64;
        while let Ok(v) = rx.dequeue().await {
            assert_eq!(v, next);
            next += 1;
        }
        next
    });

    prod.await.unwrap();
    assert_eq!(cons.await.unwrap(), N);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn select_cancellation_is_safe() {
    // tokio::select! drops the losing branch's future — the real-world
    // cancellation path the futures are hardened against.
    let (mut tx, mut rx) = spsc::channel::<u64>(8);
    const N: u64 = 10_000;

    let prod = tokio::spawn(async move {
        for i in 0..N {
            tx.enqueue(i).await.unwrap();
        }
    });
    let cons = tokio::spawn(async move {
        let mut next = 0u64;
        loop {
            tokio::select! {
                r = rx.dequeue() => match r {
                    Ok(v) => {
                        assert_eq!(v, next, "select-cancel reordered or lost items");
                        next += 1;
                    }
                    Err(Disconnected) => break,
                },
                // A ticking timer constantly wins races against the
                // dequeue, dropping it mid-wait.
                () = tokio::time::sleep(Duration::from_micros(50)) => {}
            }
        }
        next
    });

    prod.await.unwrap();
    assert_eq!(cons.await.unwrap(), N);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn timeout_cancellation_mpmc() {
    let (tx, rx) = mpmc::channel::<u64>(32);
    const N: u64 = 5_000;
    const CONSUMERS: usize = 3;

    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let mut rx = rx.clone();
            tokio::spawn(async move {
                let mut mine = Vec::new();
                loop {
                    match tokio::time::timeout(Duration::from_micros(200), rx.dequeue()).await {
                        Ok(Ok(v)) => mine.push(v),
                        Ok(Err(Disconnected)) => break,
                        Err(_elapsed) => {} // dequeue dropped mid-wait; retry
                    }
                }
                mine
            })
        })
        .collect();
    drop(rx);

    let mut tx2 = tx;
    tokio::spawn(async move {
        for i in 0..N {
            tx2.enqueue(i).await.unwrap();
        }
    })
    .await
    .unwrap();

    let mut union = Vec::new();
    for c in consumers {
        let mine = c.await.unwrap();
        assert!(
            mine.windows(2).all(|w| w[0] < w[1]),
            "per-consumer FIFO broken"
        );
        union.extend(mine);
    }
    union.sort_unstable();
    assert_eq!(union, (0..N).collect::<Vec<_>>());
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn stream_and_sink_on_tokio() {
    use futures_core::Stream;
    use futures_sink::Sink;

    let (tx, rx) = spsc::channel::<u32>(8);

    let prod = tokio::spawn(async move {
        let mut sink = tx.into_sink();
        for i in 0..1_000u32 {
            std::future::poll_fn(|cx| std::pin::Pin::new(&mut sink).poll_ready(cx))
                .await
                .unwrap();
            std::pin::Pin::new(&mut sink).start_send(i).unwrap();
        }
        std::future::poll_fn(|cx| std::pin::Pin::new(&mut sink).poll_close(cx))
            .await
            .unwrap();
    });
    let cons = tokio::spawn(async move {
        let mut stream = rx.into_stream();
        let mut got = Vec::new();
        while let Some(v) =
            std::future::poll_fn(|cx| std::pin::Pin::new(&mut stream).poll_next(cx)).await
        {
            got.push(v);
        }
        got
    });

    prod.await.unwrap();
    assert_eq!(cons.await.unwrap(), (0..1_000).collect::<Vec<_>>());
}
