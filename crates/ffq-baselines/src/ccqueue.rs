//! CC-Queue: a FIFO queue synchronized with the CC-Synch combining protocol
//! (Fatourou & Kallimanis, PPoPP '12 — reference [5] of the paper).
//!
//! Instead of every thread fighting over head/tail pointers, threads publish
//! *requests* into a combining list (a single `swap` on the list tail) and
//! spin locally; whichever thread finds itself at the head of the list
//! becomes the **combiner** and applies a batch of requests to a plain
//! sequential queue on everyone's behalf. One cache-line handoff per request
//! instead of a CAS storm — which is why the paper's Figure 8 shows ccqueue
//! winning single-threaded and degrading once the combiner's serial section
//! becomes the bottleneck.

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicU8, Ordering};
use std::collections::VecDeque;
use std::sync::Arc;

use ffq_sync::CachePadded;
use parking_lot::Mutex;

use crate::traits::{BenchHandle, BenchQueue};

const OP_ENQ: u8 = 1;
const OP_DEQ: u8 = 2;

/// Max requests a combiner serves before handing the role off — bounds the
/// unfairness window (the paper's cited implementation uses a similar cap).
const COMBINE_LIMIT: usize = 1024;

/// A combining-list node. One per thread plus one list dummy; recycled
/// forever, freed when the queue drops.
struct CcNode {
    op: AtomicU8,
    arg: AtomicU64,
    /// Encoded result: 0 = `None`, otherwise value + 1.
    ret: AtomicU64,
    /// Spun on by the request owner; cleared by the combiner.
    wait: AtomicBool,
    /// Whether the combiner served the request (false on wake-up means
    /// "you are the combiner now").
    completed: AtomicBool,
    next: AtomicPtr<CcNode>,
}

impl CcNode {
    fn boxed() -> *mut CcNode {
        Box::into_raw(Box::new(CcNode {
            op: AtomicU8::new(0),
            arg: AtomicU64::new(0),
            ret: AtomicU64::new(0),
            wait: AtomicBool::new(false),
            completed: AtomicBool::new(false),
            next: AtomicPtr::new(core::ptr::null_mut()),
        }))
    }
}

/// The CC-Synch combined FIFO queue.
pub struct CcQueue {
    /// Tail of the combining list (always points at the current dummy).
    tail: CachePadded<AtomicPtr<CcNode>>,
    /// The sequential queue. Only the (unique) combiner touches it; the
    /// combiner role is transferred through the `wait` flag with
    /// release/acquire, which carries the happens-before chain.
    items: UnsafeCell<VecDeque<u64>>,
    /// Every node ever allocated, for cleanup on drop.
    nodes: Mutex<Vec<*mut CcNode>>,
}

// SAFETY: `items` is only accessed by the combiner (mutual exclusion by the
// combining protocol); nodes are shared via atomics.
unsafe impl Send for CcQueue {}
unsafe impl Sync for CcQueue {}

impl CcQueue {
    /// Runs one operation through the combining protocol.
    fn run_op(&self, spare: &mut *mut CcNode, op: u8, arg: u64) -> u64 {
        let next_node = *spare;
        // SAFETY: `next_node` is this thread's spare — no other thread holds
        // a reference to it (its previous owner finished waiting on it).
        unsafe {
            (*next_node)
                .next
                .store(core::ptr::null_mut(), Ordering::Relaxed);
            (*next_node).wait.store(true, Ordering::Relaxed);
            (*next_node).completed.store(false, Ordering::Relaxed);
        }
        // Publish our node as the new list dummy; the old dummy becomes our
        // request node.
        let cur = self.tail.swap(next_node, Ordering::AcqRel);
        // SAFETY: `cur` was the dummy; we own its request fields until the
        // combiner serves it.
        unsafe {
            (*cur).op.store(op, Ordering::Relaxed);
            (*cur).arg.store(arg, Ordering::Relaxed);
            // Release: the combiner's Acquire load of `next` must see op/arg.
            (*cur).next.store(next_node, Ordering::Release);
        }
        *spare = cur;

        // Spin locally until served or promoted to combiner.
        let mut backoff = ffq_sync::Backoff::new();
        // SAFETY: cur stays valid; nodes are only freed when the queue drops.
        while unsafe { (*cur).wait.load(Ordering::Acquire) } {
            backoff.wait();
        }
        if unsafe { (*cur).completed.load(Ordering::Acquire) } {
            return unsafe { (*cur).ret.load(Ordering::Acquire) };
        }

        // We are the combiner: serve a batch starting with our own request.
        // SAFETY: combiner exclusivity — only one thread at a time observes
        // wait == false && completed == false.
        let items = unsafe { &mut *self.items.get() };
        let mut tmp = cur;
        let mut served = 0;
        loop {
            let next = unsafe { (*tmp).next.load(Ordering::Acquire) };
            if next.is_null() || served >= COMBINE_LIMIT {
                break;
            }
            served += 1;
            unsafe {
                let node = &*tmp;
                match node.op.load(Ordering::Relaxed) {
                    OP_ENQ => {
                        items.push_back(node.arg.load(Ordering::Relaxed));
                        node.ret.store(0, Ordering::Relaxed);
                    }
                    OP_DEQ => {
                        let r = items.pop_front().map_or(0, |v| v + 1);
                        node.ret.store(r, Ordering::Relaxed);
                    }
                    other => unreachable!("combiner saw op {other}"),
                }
                node.completed.store(true, Ordering::Relaxed);
                // Release publishes ret/completed (and, transitively, the
                // sequential queue state to the next combiner).
                node.wait.store(false, Ordering::Release);
            }
            tmp = next;
        }
        // Hand the combiner role to the owner of `tmp` (completed stays
        // false). If the list is quiescent, tmp is the dummy and its future
        // owner will simply find wait == false when it enlists.
        unsafe { (*tmp).wait.store(false, Ordering::Release) };
        unsafe { (*cur).ret.load(Ordering::Relaxed) }
    }
}

impl Drop for CcQueue {
    fn drop(&mut self) {
        for &node in self.nodes.lock().iter() {
            // SAFETY: exclusive access at drop; every node came from
            // CcNode::boxed and is freed exactly once.
            drop(unsafe { Box::from_raw(node) });
        }
    }
}

impl BenchQueue for CcQueue {
    type Handle = CcHandle;

    fn with_capacity(capacity: usize) -> Self {
        let dummy = CcNode::boxed();
        // The initial dummy's owner-to-be must become combiner on arrival.
        // Its `wait` is false and `completed` false by construction, but it
        // is only examined after being *replaced* as dummy, so no special
        // casing is needed.
        Self {
            tail: CachePadded::new(AtomicPtr::new(dummy)),
            items: UnsafeCell::new(VecDeque::with_capacity(capacity)),
            nodes: Mutex::new(vec![dummy]),
        }
    }

    fn register(self: &Arc<Self>) -> CcHandle {
        let spare = CcNode::boxed();
        self.nodes.lock().push(spare);
        CcHandle {
            queue: Arc::clone(self),
            spare,
        }
    }

    const NAME: &'static str = "ccqueue";
}

/// Per-thread handle owning a recycled combining node.
pub struct CcHandle {
    queue: Arc<CcQueue>,
    spare: *mut CcNode,
}

// SAFETY: the spare node is exclusively this handle's between operations.
unsafe impl Send for CcHandle {}

impl BenchHandle for CcHandle {
    fn enqueue(&mut self, value: u64) {
        self.queue.run_op(&mut self.spare, OP_ENQ, value);
    }

    fn dequeue(&mut self) -> Option<u64> {
        let r = self.queue.run_op(&mut self.spare, OP_DEQ, 0);
        if r == 0 {
            None
        } else {
            Some(r - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_fifo() {
        let q = Arc::new(CcQueue::with_capacity(8));
        let mut h = q.register();
        assert_eq!(h.dequeue(), None);
        for i in 0..50 {
            h.enqueue(i);
        }
        for i in 0..50 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn combiner_serves_batches() {
        // Many threads hammering the queue forces combining; correctness is
        // checked by a strict produce/consume balance.
        use std::collections::HashSet;
        const THREADS: u64 = 8;
        const PER: u64 = 5_000;
        let q = Arc::new(CcQueue::with_capacity(1024));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut h = q.register();
                    let mut got = Vec::new();
                    for i in 0..PER {
                        h.enqueue(t * PER + i);
                        if let Some(v) = h.dequeue() {
                            got.push(v);
                        }
                    }
                    // Drain leftovers.
                    while let Some(v) = h.dequeue() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(all.len() as u64, THREADS * PER);
        let set: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn nodes_freed_on_drop() {
        let q = Arc::new(CcQueue::with_capacity(8));
        let mut handles: Vec<CcHandle> = (0..4).map(|_| q.register()).collect();
        for (i, h) in handles.iter_mut().enumerate() {
            h.enqueue(i as u64);
        }
        drop(handles);
        drop(q); // frees 1 dummy + 4 handle nodes; leak-checked under asan
    }
}
