//! The common interface all comparator queues implement.
//!
//! Modeled on the benchmark framework of Yang & Mellor-Crummey [21] that the
//! paper plugs FFQ into: a queue is shared (`Arc`) among threads, and each
//! thread *registers* to obtain a private handle it performs operations
//! through. Handles exist because several queues need genuine per-thread
//! state — wfqueue's peer records, CC-Queue's combining nodes, FFQ's
//! producer/consumer endpoints — and because it keeps per-thread statistics
//! uncontended.

use std::sync::Arc;

/// A shared MPMC word queue that benchmark threads can register with.
pub trait BenchQueue: Send + Sync + Sized + 'static {
    /// The per-thread handle type.
    type Handle: BenchHandle;

    /// Creates a queue. `capacity` is a sizing hint: bounded queues round it
    /// up to a power of two; unbounded queues (msqueue, lcrq, wfqueue) use
    /// it for segment sizing or ignore it.
    fn with_capacity(capacity: usize) -> Self;

    /// Registers the calling thread, returning its operation handle.
    fn register(self: &Arc<Self>) -> Self::Handle;

    /// Display name used in benchmark reports (matches the paper's labels).
    const NAME: &'static str;
}

/// A per-thread endpoint of a [`BenchQueue`].
pub trait BenchHandle: Send + 'static {
    /// Enqueues `value`, blocking/spinning if the queue is momentarily full
    /// (bounded queues only; unbounded queues never block).
    fn enqueue(&mut self, value: u64);

    /// Dequeues a value, or returns `None` if the queue appears empty.
    fn dequeue(&mut self) -> Option<u64>;

    /// Enqueues a batch of values. The default loops [`enqueue`] per item;
    /// queues with amortized bulk paths (FFQ's `enqueue_many` rank runs)
    /// override it so batch benchmarks compare real batch submission against
    /// this per-item floor.
    ///
    /// [`enqueue`]: BenchHandle::enqueue
    fn enqueue_batch(&mut self, values: &[u64]) {
        for &v in values {
            self.enqueue(v);
        }
    }

    /// Dequeues up to `max` values into `buf`, returning how many were
    /// appended. May return 0 when the queue appears empty. The default
    /// loops [`dequeue`]; FFQ overrides it with `dequeue_batch`, which
    /// claims and harvests a rank run under a single head RMW.
    ///
    /// [`dequeue`]: BenchHandle::dequeue
    fn dequeue_batch(&mut self, buf: &mut Vec<u64>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.dequeue() {
                Some(v) => {
                    buf.push(v);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}
