//! wfqueue — Yang & Mellor-Crummey's fetch-and-add queue (PPoPP '16,
//! reference [21] of the paper; the paper compares against its "fast WF-10"
//! configuration).
//!
//! The design's core is an *infinite array* realized as a linked list of
//! fixed-size segments: enqueuers fetch-and-add a tail index and CAS their
//! value into the addressed cell; dequeuers fetch-and-add a head index and
//! harvest the addressed cell, poisoning it (`TOP`) if the matching enqueuer
//! has not arrived so that it moves on. Every operation makes progress with
//! one FAA — no CAS loop on a shared pointer — which is why the paper's
//! Figure 8 shows it scaling where msqueue/ccqueue collapse.
//!
//! Segment reclamation follows the original's scheme: each registered
//! handle publishes a *hazard index* before claiming one, and segments are
//! only unlinked below the minimum of both global indices and every
//! published hazard (plus epoch deferral for the unlink/free gap).
//!
//! **Documented simplification** (DESIGN.md §4): the original layers a
//! helping mechanism (per-thread request records, peer scanning, phase
//! numbers) on top of this fast path to turn lock-freedom into bounded
//! wait-freedom. This implementation keeps the fast path exact and replaces
//! the slow path with unbounded retries: it is linearizable and lock-free,
//! and on the benchmark workloads the slow path is cold — Yang &
//! Mellor-Crummey report the fast path succeeding on the overwhelming
//! majority of operations, which is what the throughput comparison
//! exercises.

use core::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Atomic, Owned, Shared};
use ffq_sync::CachePadded;
use parking_lot::Mutex;

use crate::traits::{BenchHandle, BenchQueue};

/// Cells per segment (the original also uses 2^10).
const SEG_SHIFT: u32 = 10;
const SEG_SIZE: usize = 1 << SEG_SHIFT;

/// Cell states: 0 = `BOTTOM` (never written), -1 = `TOP` (poisoned by a
/// dequeuer that gave up), otherwise value + 1.
const BOTTOM: i64 = 0;
const TOP: i64 = -1;

/// Spins a dequeuer grants a pending enqueuer before poisoning its cell.
const PATIENCE: u32 = 128;

/// Hazard value meaning "no operation in flight".
const NO_HAZARD: i64 = i64::MAX;

struct Segment {
    /// This segment covers global indices `[id << SEG_SHIFT, (id+1) << SEG_SHIFT)`.
    id: i64,
    cells: Box<[AtomicI64]>,
    next: Atomic<Segment>,
}

impl Segment {
    fn new(id: i64) -> Self {
        Self {
            id,
            cells: (0..SEG_SIZE).map(|_| AtomicI64::new(BOTTOM)).collect(),
            next: Atomic::null(),
        }
    }
}

/// The FAA-based queue over an infinite segmented array.
pub struct WfQueue {
    head_idx: CachePadded<AtomicI64>,
    tail_idx: CachePadded<AtomicI64>,
    /// Oldest live segment; traversals start here (with head ≈ tail the live
    /// window is 1–2 segments, so the walk is short).
    first: CachePadded<Atomic<Segment>>,
    /// Hazard indices of registered handles; collected under the mutex.
    hazards: Mutex<Vec<Arc<AtomicI64>>>,
}

impl WfQueue {
    fn new() -> Self {
        let q = Self {
            head_idx: CachePadded::new(AtomicI64::new(0)),
            tail_idx: CachePadded::new(AtomicI64::new(0)),
            first: CachePadded::new(Atomic::null()),
            hazards: Mutex::new(Vec::new()),
        };
        let guard = epoch::pin();
        let seg = Owned::new(Segment::new(0)).into_shared(&guard);
        q.first.store(seg, Ordering::Relaxed);
        q
    }

    /// Returns the cell for global `index`, growing the segment list as
    /// needed. The caller must have published a hazard index `<= index`
    /// before obtaining `index` (see `collect` for the SC-order argument).
    fn find_cell<'g>(&self, index: i64, guard: &'g epoch::Guard) -> &'g AtomicI64 {
        let seg_id = index >> SEG_SHIFT;
        let mut seg_ptr = self.first.load(Ordering::Acquire, guard);
        // SAFETY: `first` is non-null, and the hazard protocol keeps every
        // segment >= our published hazard linked; epochs protect the
        // unlink-to-free gap.
        let mut seg = unsafe { seg_ptr.deref() };
        debug_assert!(
            seg.id <= seg_id,
            "segment {seg_id} unlinked while index {index} in flight"
        );
        while seg.id < seg_id {
            let next = seg.next.load(Ordering::Acquire, guard);
            let next = if next.is_null() {
                let new = Owned::new(Segment::new(seg.id + 1));
                match seg.next.compare_exchange(
                    Shared::null(),
                    new,
                    Ordering::Release,
                    Ordering::Acquire,
                    guard,
                ) {
                    Ok(n) => n,
                    Err(e) => e.current,
                }
            } else {
                next
            };
            seg_ptr = next;
            seg = unsafe { seg_ptr.deref() };
        }
        &seg.cells[(index & (SEG_SIZE as i64 - 1)) as usize]
    }

    /// Unlinks segments no longer reachable by the indices or any in-flight
    /// operation.
    ///
    /// Correctness of the hazard scan (all SeqCst): an operation writes its
    /// hazard `z <= index` *before* its FAA; the collector reads the global
    /// counters *before* the hazards. If the collector misses a hazard (read
    /// before it was written), then its counter reads also preceded that
    /// operation's FAA in the SC order, so the counter minimum is `<= index`
    /// and the segment survives either way.
    fn collect(&self, guard: &epoch::Guard) {
        let head = self.head_idx.load(Ordering::SeqCst);
        let tail = self.tail_idx.load(Ordering::SeqCst);
        let mut min_idx = head.min(tail);
        {
            let hazards = self.hazards.lock();
            for h in hazards.iter() {
                min_idx = min_idx.min(h.load(Ordering::SeqCst));
            }
        }
        let min_live = min_idx >> SEG_SHIFT;
        loop {
            let first_ptr = self.first.load(Ordering::Acquire, guard);
            let first = unsafe { first_ptr.deref() };
            if first.id >= min_live {
                return;
            }
            let next = first.next.load(Ordering::Acquire, guard);
            if next.is_null() {
                return;
            }
            if self
                .first
                .compare_exchange(first_ptr, next, Ordering::Release, Ordering::Relaxed, guard)
                .is_ok()
            {
                // SAFETY: unlinked below every hazard; epochs cover readers
                // that still hold references.
                unsafe { guard.defer_destroy(first_ptr) };
            } else {
                return; // someone else is collecting
            }
        }
    }

    fn enqueue(&self, hazard: &AtomicI64, value: u64) {
        debug_assert!((value as i64) < i64::MAX - 1, "value must fit 63 bits");
        let guard = &epoch::pin();
        loop {
            // Publish a conservative lower bound before claiming the index.
            hazard.store(self.tail_idx.load(Ordering::SeqCst), Ordering::SeqCst);
            let t = self.tail_idx.fetch_add(1, Ordering::SeqCst);
            let cell = self.find_cell(t, guard);
            // Unique writer for index t: only the dequeuer assigned t can
            // interfere, by poisoning.
            let won = cell
                .compare_exchange(
                    BOTTOM,
                    value as i64 + 1,
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok();
            if won {
                hazard.store(NO_HAZARD, Ordering::SeqCst);
                return;
            }
            // Poisoned: the dequeuer for t declared the queue empty first.
        }
    }

    fn dequeue(&self, hazard: &AtomicI64) -> Option<u64> {
        let guard = &epoch::pin();
        let result = loop {
            hazard.store(self.head_idx.load(Ordering::SeqCst), Ordering::SeqCst);
            let h = self.head_idx.fetch_add(1, Ordering::SeqCst);
            let cell = self.find_cell(h, guard);
            let mut spins = 0;
            let done = loop {
                let v = cell.load(Ordering::Acquire);
                if v > 0 {
                    // Ours exclusively (unique h); consume it.
                    cell.store(TOP, Ordering::Relaxed);
                    break Some(Some((v - 1) as u64));
                }
                debug_assert_eq!(v, BOTTOM, "cell for h poisoned by someone else");
                let t = self.tail_idx.load(Ordering::SeqCst);
                if t <= h {
                    // No enqueuer has claimed h: declare empty by poisoning,
                    // so a future enqueuer at h moves on.
                    if cell
                        .compare_exchange(BOTTOM, TOP, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        break Some(None);
                    }
                    // Lost to the enqueuer: the value is there now.
                    continue;
                }
                // An enqueuer owns index h and is on its way.
                spins += 1;
                if spins < PATIENCE {
                    core::hint::spin_loop();
                    continue;
                }
                // Too slow (maybe descheduled): poison and take the next
                // index; that enqueuer will retry elsewhere.
                if cell
                    .compare_exchange(BOTTOM, TOP, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    break None;
                }
                // Filled in the meantime — loop re-reads and consumes.
            };
            if let Some(r) = done {
                if h & (SEG_SIZE as i64 - 1) == SEG_SIZE as i64 - 1 {
                    self.collect(guard);
                }
                break r;
            }
        };
        hazard.store(NO_HAZARD, Ordering::SeqCst);
        result
    }
}

impl Drop for WfQueue {
    fn drop(&mut self) {
        let guard = unsafe { epoch::unprotected() };
        let mut node = self.first.load(Ordering::Relaxed, guard);
        while !node.is_null() {
            let next = unsafe { node.deref() }.next.load(Ordering::Relaxed, guard);
            drop(unsafe { node.into_owned() });
            node = next;
        }
    }
}

impl BenchQueue for WfQueue {
    type Handle = WfHandle;

    fn with_capacity(_capacity: usize) -> Self {
        // Unbounded; segments are fixed-size.
        Self::new()
    }

    fn register(self: &Arc<Self>) -> WfHandle {
        let hazard = Arc::new(AtomicI64::new(NO_HAZARD));
        self.hazards.lock().push(Arc::clone(&hazard));
        WfHandle {
            queue: Arc::clone(self),
            hazard,
        }
    }

    const NAME: &'static str = "wfqueue";
}

/// Per-thread handle carrying the hazard index (the original's per-thread
/// record, minus the helping fields).
pub struct WfHandle {
    queue: Arc<WfQueue>,
    hazard: Arc<AtomicI64>,
}

impl Drop for WfHandle {
    fn drop(&mut self) {
        self.hazard.store(NO_HAZARD, Ordering::SeqCst);
        self.queue
            .hazards
            .lock()
            .retain(|h| !Arc::ptr_eq(h, &self.hazard));
    }
}

impl BenchHandle for WfHandle {
    fn enqueue(&mut self, value: u64) {
        self.queue.enqueue(&self.hazard, value);
    }

    fn dequeue(&mut self) -> Option<u64> {
        self.queue.dequeue(&self.hazard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct(q: &WfQueue) -> AtomicI64 {
        let _ = q;
        AtomicI64::new(NO_HAZARD)
    }

    #[test]
    fn empty_then_fifo() {
        let q = WfQueue::new();
        let hz = direct(&q);
        assert_eq!(q.dequeue(&hz), None);
        for i in 0..100 {
            q.enqueue(&hz, i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(&hz), Some(i));
        }
        assert_eq!(q.dequeue(&hz), None);
    }

    #[test]
    fn crosses_segment_boundaries() {
        let q = WfQueue::new();
        let hz = direct(&q);
        let n = 3 * SEG_SIZE as u64 + 17;
        for i in 0..n {
            q.enqueue(&hz, i);
        }
        for i in 0..n {
            assert_eq!(q.dequeue(&hz), Some(i), "at {i}");
        }
        assert_eq!(q.dequeue(&hz), None);
    }

    #[test]
    fn empty_dequeues_burn_indices_but_stay_correct() {
        let q = WfQueue::new();
        let hz = direct(&q);
        for _ in 0..500 {
            assert_eq!(q.dequeue(&hz), None);
        }
        // Enqueuers step over the poisoned range.
        for i in 0..10 {
            q.enqueue(&hz, i);
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(&hz), Some(i));
        }
    }

    #[test]
    fn segments_reclaimed_over_long_run() {
        let q = Arc::new(WfQueue::new());
        let mut h = q.register();
        for round in 0..20u64 {
            for i in 0..SEG_SIZE as u64 {
                h.enqueue(round * SEG_SIZE as u64 + i);
            }
            for i in 0..SEG_SIZE as u64 {
                assert_eq!(h.dequeue(), Some(round * SEG_SIZE as u64 + i));
            }
        }
        let guard = epoch::pin();
        let first = q.first.load(Ordering::Acquire, &guard);
        assert!(unsafe { first.deref() }.id >= 18, "reclamation stalled");
    }

    #[test]
    fn handle_registration_and_drop_updates_hazards() {
        let q = Arc::new(WfQueue::new());
        let h1 = q.register();
        let h2 = q.register();
        assert_eq!(q.hazards.lock().len(), 2);
        drop(h1);
        assert_eq!(q.hazards.lock().len(), 1);
        drop(h2);
        assert_eq!(q.hazards.lock().len(), 0);
    }
}
