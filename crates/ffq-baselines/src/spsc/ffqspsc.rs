//! `ffq::spsc` behind the related-work SPSC interface, so the §II shootout
//! includes the paper's own design.

use super::{SpscPair, SpscRx, SpscTx};

/// Marker type; construct through [`SpscPair::with_capacity`].
pub struct FfqSpsc;

/// Producing endpoint (wraps [`ffq::spsc::Producer`]).
pub struct FfqSpscTx {
    inner: ffq::spsc::Producer<u64>,
}

/// Consuming endpoint (wraps [`ffq::spsc::Consumer`]).
pub struct FfqSpscRx {
    inner: ffq::spsc::Consumer<u64>,
}

impl SpscPair for FfqSpsc {
    type Tx = FfqSpscTx;
    type Rx = FfqSpscRx;

    fn with_capacity(capacity: usize) -> (FfqSpscTx, FfqSpscRx) {
        let (tx, rx) = ffq::spsc::channel(capacity.next_power_of_two().max(2));
        (FfqSpscTx { inner: tx }, FfqSpscRx { inner: rx })
    }

    const NAME: &'static str = "ffq (spsc)";
}

impl SpscTx for FfqSpscTx {
    fn try_enqueue(&mut self, value: u64) -> bool {
        self.inner.try_enqueue(value).is_ok()
    }
}

impl SpscRx for FfqSpscRx {
    fn try_dequeue(&mut self) -> Option<u64> {
        self.inner.try_dequeue().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_roundtrip() {
        let (mut tx, mut rx) = FfqSpsc::with_capacity(8);
        assert!(tx.try_enqueue(3));
        assert_eq!(rx.try_dequeue(), Some(3));
        assert_eq!(rx.try_dequeue(), None);
    }
}
