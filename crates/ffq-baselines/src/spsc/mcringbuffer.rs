//! MCRingBuffer (Lee, Bu, Chandranmenon — IPDPS 2010, reference [13]).
//!
//! Lamport's ring with *batched control-variable updates*: each side works
//! against a cached copy of the other side's counter and only re-reads the
//! shared counter when the cached one proves insufficient; its own counter
//! is published only every `BATCH` operations. Control-line ping-pong drops
//! by the batch factor, at the cost of the consumer lagging up to a batch
//! behind (items are not visible until the producer publishes).

use core::cell::UnsafeCell;
use core::mem::MaybeUninit;
use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ffq_sync::CachePadded;

use super::{SpscPair, SpscRx, SpscTx};

/// Preferred operations between shared-counter publishes (the paper tunes
/// this to the cache line / workload; 32 is in its evaluated range).
const MAX_BATCH: u64 = 32;

struct Shared {
    buffer: Box<[UnsafeCell<MaybeUninit<u64>>]>,
    mask: u64,
    /// Effective batch: capped at a quarter of the ring so the consumer
    /// republishes its head often enough for the producer to ever see
    /// space (a batch larger than the ring livelocks the pair — the
    /// control-batching hazard §II credits B-Queue with eliminating).
    batch: u64,
    head: CachePadded<AtomicU64>,
    tail: CachePadded<AtomicU64>,
}

// SAFETY: as in Lamport — the published counter windows separate the two
// sides' slot accesses; batching only *delays* publication, it never lets
// the windows overlap.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// Marker type; construct through [`SpscPair::with_capacity`].
pub struct McRingBuffer;

/// Producing endpoint with batching state.
pub struct McTx {
    shared: Arc<Shared>,
    /// Private true tail (ahead of the published one by < BATCH).
    local_tail: u64,
    /// Last published tail.
    published_tail: u64,
    /// Cached copy of the consumer's head.
    cached_head: u64,
}

/// Consuming endpoint with batching state.
pub struct McRx {
    shared: Arc<Shared>,
    local_head: u64,
    published_head: u64,
    cached_tail: u64,
}

impl SpscPair for McRingBuffer {
    type Tx = McTx;
    type Rx = McRx;

    fn with_capacity(capacity: usize) -> (McTx, McRx) {
        let cap = capacity.next_power_of_two().max(2);
        let shared = Arc::new(Shared {
            buffer: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: cap as u64 - 1,
            batch: (cap as u64 / 4).clamp(1, MAX_BATCH),
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(0)),
        });
        (
            McTx {
                shared: Arc::clone(&shared),
                local_tail: 0,
                published_tail: 0,
                cached_head: 0,
            },
            McRx {
                shared,
                local_head: 0,
                published_head: 0,
                cached_tail: 0,
            },
        )
    }

    const NAME: &'static str = "mcringbuffer";
}

impl McTx {
    fn publish(&mut self) {
        if self.published_tail != self.local_tail {
            self.shared.tail.store(self.local_tail, Ordering::Release);
            self.published_tail = self.local_tail;
        }
    }
}

impl SpscTx for McTx {
    fn try_enqueue(&mut self, value: u64) -> bool {
        let s = &*self.shared;
        // Fullness against the cached head first; refresh only on demand.
        if self.local_tail.wrapping_sub(self.cached_head) > s.mask {
            self.cached_head = s.head.load(Ordering::Acquire);
            if self.local_tail.wrapping_sub(self.cached_head) > s.mask {
                // Genuinely full: flush our pending items so the consumer
                // can actually drain them (otherwise both sides deadlock on
                // invisible work).
                self.publish();
                return false;
            }
        }
        // SAFETY: slot outside the consumer's published window.
        unsafe {
            (*s.buffer[(self.local_tail & s.mask) as usize].get()).write(value);
        }
        self.local_tail = self.local_tail.wrapping_add(1);
        if self.local_tail.wrapping_sub(self.published_tail) >= s.batch {
            self.publish();
        }
        true
    }

    fn flush(&mut self) {
        self.publish();
    }
}

impl Drop for McTx {
    fn drop(&mut self) {
        // Unpublished items must not be stranded.
        self.publish();
    }
}

impl SpscRx for McRx {
    fn try_dequeue(&mut self) -> Option<u64> {
        let s = &*self.shared;
        if self.local_head == self.cached_tail {
            self.cached_tail = s.tail.load(Ordering::Acquire);
            if self.local_head == self.cached_tail {
                // Publish our progress so the producer unblocks even when
                // we found nothing (mirror of the producer-side flush).
                if self.published_head != self.local_head {
                    s.head.store(self.local_head, Ordering::Release);
                    self.published_head = self.local_head;
                }
                return None;
            }
        }
        // SAFETY: published tail proves the slot was written.
        let value =
            unsafe { (*s.buffer[(self.local_head & s.mask) as usize].get()).assume_init_read() };
        self.local_head = self.local_head.wrapping_add(1);
        if self.local_head.wrapping_sub(self.published_head) >= s.batch {
            s.head.store(self.local_head, Ordering::Release);
            self.published_head = self.local_head;
        }
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_invisible_until_batch_or_flush() {
        let (mut tx, mut rx) = McRingBuffer::with_capacity(128); // batch 32
                                                                 // Fewer than a batch: consumer sees nothing yet...
        for i in 0..(MAX_BATCH - 1) {
            assert!(tx.try_enqueue(i));
        }
        assert_eq!(rx.try_dequeue(), None, "pre-batch items leaked");
        // ...the batch-completing item publishes everything.
        assert!(tx.try_enqueue(MAX_BATCH - 1));
        for i in 0..MAX_BATCH {
            assert_eq!(rx.try_dequeue(), Some(i));
        }
    }

    #[test]
    fn tiny_ring_lockstep_does_not_livelock() {
        // Regression: with batch > capacity the producer could starve
        // waiting for a head publish that never came.
        let (mut tx, mut rx) = McRingBuffer::with_capacity(8);
        for i in 0..1_000u64 {
            tx.enqueue(i);
            tx.flush();
            assert_eq!(rx.dequeue(), i);
        }
    }

    #[test]
    fn full_flushes_pending_work() {
        let (mut tx, mut rx) = McRingBuffer::with_capacity(8);
        let mut accepted = 0;
        while tx.try_enqueue(accepted) {
            accepted += 1;
        }
        assert_eq!(accepted, 8);
        // The full-path flush made them visible despite BATCH > capacity.
        for i in 0..8 {
            assert_eq!(rx.try_dequeue(), Some(i));
        }
    }

    #[test]
    fn producer_drop_flushes() {
        let (mut tx, mut rx) = McRingBuffer::with_capacity(128);
        tx.try_enqueue(7);
        drop(tx);
        assert_eq!(rx.try_dequeue(), Some(7));
    }
}
