//! B-Queue (Wang, Zhang, Tang, Hua — IJPP 2013, reference [20]).
//!
//! FastForward-style data-dependent slots plus *self-tuning batching with
//! backtracking*: instead of testing its own next slot, each side probes a
//! slot a whole batch ahead. Because slots are produced and consumed in
//! ring order, "slot `i + d - 1` is free" implies slots `i .. i+d` are all
//! free (and symmetrically for fullness), so a successful probe buys `d`
//! checks-free operations. On a failed probe the distance halves —
//! the backtracking that makes the batch size self-tuning and deadlock-free
//! without MCRingBuffer-style explicit flushes (§II: "avoids using
//! parameters that require system-specific tuning").
//!
//! Items are individually visible the instant they are written (FastForward
//! slots), so `flush` is a no-op — batching here saves *checks*, not
//! visibility.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use super::{SpscPair, SpscRx, SpscTx};

const EMPTY: u64 = 0;

/// Initial probe distance (self-tunes downward under pressure).
const MAX_BATCH: u64 = 64;

struct Shared {
    buffer: Box<[AtomicU64]>,
    mask: u64,
}

/// Marker type; construct through [`SpscPair::with_capacity`].
pub struct BQueue;

/// Producing endpoint: private index + granted batch budget.
pub struct BQueueTx {
    shared: Arc<Shared>,
    tail: u64,
    /// Slots verified free ahead of `tail` (inclusive of the next one).
    budget: u64,
}

/// Consuming endpoint: private index + granted batch budget.
pub struct BQueueRx {
    shared: Arc<Shared>,
    head: u64,
    budget: u64,
}

impl SpscPair for BQueue {
    type Tx = BQueueTx;
    type Rx = BQueueRx;

    fn with_capacity(capacity: usize) -> (BQueueTx, BQueueRx) {
        let cap = capacity.next_power_of_two().max(2);
        let shared = Arc::new(Shared {
            buffer: (0..cap).map(|_| AtomicU64::new(EMPTY)).collect(),
            mask: cap as u64 - 1,
        });
        (
            BQueueTx {
                shared: Arc::clone(&shared),
                tail: 0,
                budget: 0,
            },
            BQueueRx {
                shared,
                head: 0,
                budget: 0,
            },
        )
    }

    const NAME: &'static str = "bqueue";
}

impl BQueueTx {
    /// Backtracking probe: find the largest `d <= MAX_BATCH` (capped to the
    /// ring size) such that slot `tail + d - 1` is free.
    fn acquire_budget(&mut self) -> bool {
        let s = &*self.shared;
        let mut d = MAX_BATCH.min(s.mask + 1);
        while d > 0 {
            let probe = &s.buffer[((self.tail + d - 1) & s.mask) as usize];
            if probe.load(Ordering::Acquire) == EMPTY {
                self.budget = d;
                return true;
            }
            d /= 2;
        }
        false
    }
}

impl SpscTx for BQueueTx {
    fn try_enqueue(&mut self, value: u64) -> bool {
        debug_assert!(value < u64::MAX);
        if self.budget == 0 && !self.acquire_budget() {
            return false;
        }
        let slot = &self.shared.buffer[(self.tail & self.shared.mask) as usize];
        debug_assert_eq!(
            slot.load(Ordering::Relaxed),
            EMPTY,
            "probe guarantee violated"
        );
        slot.store(value + 1, Ordering::Release);
        self.tail = self.tail.wrapping_add(1);
        self.budget -= 1;
        true
    }
}

impl BQueueRx {
    fn acquire_budget(&mut self) -> bool {
        let s = &*self.shared;
        let mut d = MAX_BATCH.min(s.mask + 1);
        while d > 0 {
            let probe = &s.buffer[((self.head + d - 1) & s.mask) as usize];
            if probe.load(Ordering::Acquire) != EMPTY {
                self.budget = d;
                return true;
            }
            d /= 2;
        }
        false
    }
}

impl SpscRx for BQueueRx {
    fn try_dequeue(&mut self) -> Option<u64> {
        if self.budget == 0 && !self.acquire_budget() {
            return None;
        }
        let slot = &self.shared.buffer[(self.head & self.shared.mask) as usize];
        let v = slot.load(Ordering::Acquire);
        debug_assert_ne!(v, EMPTY, "probe guarantee violated");
        slot.store(EMPTY, Ordering::Release);
        self.head = self.head.wrapping_add(1);
        self.budget -= 1;
        Some(v - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_grants_full_batch_on_empty_ring() {
        let (mut tx, _rx) = BQueue::with_capacity(256);
        assert!(tx.try_enqueue(1));
        // One probe bought MAX_BATCH slots.
        assert_eq!(tx.budget, MAX_BATCH - 1);
    }

    #[test]
    fn backtracking_halves_until_fit() {
        let (mut tx, mut rx) = BQueue::with_capacity(16);
        // Fill 12 of 16; next producer probe at distance 16 and 8 fails
        // (those slots are occupied), succeeds at 4.
        for i in 0..12 {
            assert!(tx.try_enqueue(i));
        }
        tx.budget = 0; // force re-probe
        assert!(tx.try_enqueue(12));
        assert_eq!(tx.budget, 3, "expected a backtracked batch of 4");
        for i in 0..13 {
            assert_eq!(rx.try_dequeue(), Some(i));
        }
    }

    #[test]
    fn immediate_visibility_no_flush_needed() {
        let (mut tx, mut rx) = BQueue::with_capacity(64);
        assert!(tx.try_enqueue(5));
        assert_eq!(rx.try_dequeue(), Some(5), "item invisible without flush");
    }

    #[test]
    fn full_ring_rejects() {
        let (mut tx, mut rx) = BQueue::with_capacity(4);
        for i in 0..4 {
            assert!(tx.try_enqueue(i), "at {i}");
        }
        assert!(!tx.try_enqueue(4));
        assert_eq!(rx.try_dequeue(), Some(0));
        assert!(tx.try_enqueue(4));
    }
}
