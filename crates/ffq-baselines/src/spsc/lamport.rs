//! Lamport's classic single-producer/single-consumer ring buffer
//! ("Specifying concurrent program modules", TOPLAS 1983 — reference [11]).
//!
//! Both the head and tail counters are shared: the producer reads `head` on
//! every enqueue to test fullness and the consumer reads `tail` on every
//! dequeue to test emptiness. That is precisely the control-variable cache
//! traffic MCRingBuffer and successors attack — every counter update by one
//! side invalidates a line the other side polls.

use core::cell::UnsafeCell;
use core::mem::MaybeUninit;
use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ffq_sync::CachePadded;

use super::{SpscPair, SpscRx, SpscTx};

struct Shared {
    buffer: Box<[UnsafeCell<MaybeUninit<u64>>]>,
    mask: u64,
    head: CachePadded<AtomicU64>,
    tail: CachePadded<AtomicU64>,
}

// SAFETY: slot (tail mod N) is written only by the unique producer before
// the tail publish; slot (head mod N) is read only by the unique consumer
// before the head publish; the counters order those accesses.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// Marker type; construct through [`SpscPair::with_capacity`].
pub struct LamportQueue;

/// Producing endpoint.
pub struct LamportTx {
    shared: Arc<Shared>,
}

/// Consuming endpoint.
pub struct LamportRx {
    shared: Arc<Shared>,
}

impl SpscPair for LamportQueue {
    type Tx = LamportTx;
    type Rx = LamportRx;

    fn with_capacity(capacity: usize) -> (LamportTx, LamportRx) {
        let cap = capacity.next_power_of_two().max(2);
        let shared = Arc::new(Shared {
            buffer: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: cap as u64 - 1,
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(0)),
        });
        (
            LamportTx {
                shared: Arc::clone(&shared),
            },
            LamportRx { shared },
        )
    }

    const NAME: &'static str = "lamport";
}

impl SpscTx for LamportTx {
    fn try_enqueue(&mut self, value: u64) -> bool {
        let s = &*self.shared;
        let tail = s.tail.load(Ordering::Relaxed); // we are the only writer
                                                   // Full test reads the shared head — Lamport's costly step.
        if tail.wrapping_sub(s.head.load(Ordering::Acquire)) > s.mask {
            return false;
        }
        // SAFETY: the slot is outside the consumer's [head, tail) window.
        unsafe { (*s.buffer[(tail & s.mask) as usize].get()).write(value) };
        s.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }
}

impl SpscRx for LamportRx {
    fn try_dequeue(&mut self) -> Option<u64> {
        let s = &*self.shared;
        let head = s.head.load(Ordering::Relaxed); // we are the only writer
        if head == s.tail.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: tail > head proves the producer published this slot.
        let value = unsafe { (*s.buffer[(head & s.mask) as usize].get()).assume_init_read() };
        s.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_fully_usable() {
        let (mut tx, mut rx) = LamportQueue::with_capacity(4);
        for i in 0..4 {
            assert!(tx.try_enqueue(i));
        }
        assert!(!tx.try_enqueue(4), "5th item must be refused");
        assert_eq!(rx.try_dequeue(), Some(0));
        assert!(tx.try_enqueue(4));
    }

    #[test]
    fn counters_wrap_u64_safely() {
        // Not literally wrapping u64 here, but the wrapping arithmetic path
        // is exercised by many laps.
        let (mut tx, mut rx) = LamportQueue::with_capacity(2);
        for i in 0..1_000u64 {
            assert!(tx.try_enqueue(i));
            assert_eq!(rx.try_dequeue(), Some(i));
        }
    }
}
