//! The SPSC queues of the paper's related-work section (§II).
//!
//! FFQ's design is positioned against a line of single-producer/
//! single-consumer ring buffers; this module implements each so the claims
//! of §II are reproducible as measurements (`related_work_spsc` binary):
//!
//! | Queue | Idea | Paper's remark |
//! |-------|------|----------------|
//! | [`lamport`] | head/tail counters, both shared | the 1983 baseline [11] |
//! | [`fastforward`] | data-dependent slots, no shared counters | needs system-specific slip tuning [7] |
//! | [`mcringbuffer`] | Lamport + batched control-variable updates | improves control-variable locality [13] |
//! | [`batchqueue`] | two buffer halves exchanged wholesale | fewer control variables [19] |
//! | [`bqueue`] | FastForward + self-tuning batch probe with backtracking | no tuning parameters [20] |
//!
//! All carry `u64` payloads like the comparative benchmarks. `ffq::spsc`
//! itself adapts to the same interface ([`ffqspsc`]) so the shootout
//! includes the paper's contribution.

pub mod batchqueue;
pub mod bqueue;
pub mod fastforward;
pub mod ffqspsc;
pub mod lamport;
pub mod mcringbuffer;

/// Constructor of a connected SPSC endpoint pair.
pub trait SpscPair {
    /// Producing endpoint.
    type Tx: SpscTx;
    /// Consuming endpoint.
    type Rx: SpscRx;

    /// Builds a queue with at least `capacity` usable slots (rounded up to
    /// a power of two where the algorithm needs it).
    fn with_capacity(capacity: usize) -> (Self::Tx, Self::Rx);

    /// Display name for reports.
    const NAME: &'static str;
}

/// The producing end of an SPSC queue.
pub trait SpscTx: Send + 'static {
    /// Attempts to enqueue; `false` means the queue was full.
    fn try_enqueue(&mut self, value: u64) -> bool;

    /// Blocking convenience: spins (with escalation) until accepted.
    fn enqueue(&mut self, value: u64) {
        let mut backoff = ffq_sync::Backoff::new();
        while !self.try_enqueue(value) {
            backoff.wait();
        }
    }

    /// Makes buffered items visible to the consumer.
    ///
    /// A no-op for unbatched designs. Batching queues (MCRingBuffer,
    /// BatchQueue) hold items back until a batch boundary — the very
    /// deadlock B-Queue's backtracking was invented to avoid (§II) — so a
    /// producer that will pause must flush.
    fn flush(&mut self) {}
}

/// The consuming end of an SPSC queue.
pub trait SpscRx: Send + 'static {
    /// Attempts to dequeue; `None` means the queue looked empty.
    fn try_dequeue(&mut self) -> Option<u64>;

    /// Blocking convenience: spins (with escalation) until an item arrives.
    fn dequeue(&mut self) -> u64 {
        let mut backoff = ffq_sync::Backoff::new();
        loop {
            if let Some(v) = self.try_dequeue() {
                return v;
            }
            backoff.wait();
        }
    }
}

#[cfg(test)]
mod conformance {
    use super::*;

    fn fifo_and_empty<Q: SpscPair>() {
        let (mut tx, mut rx) = Q::with_capacity(64);
        assert_eq!(rx.try_dequeue(), None, "{}", Q::NAME);
        for i in 0..50 {
            assert!(tx.try_enqueue(i), "{} refused at {i}", Q::NAME);
        }
        tx.flush();
        for i in 0..50 {
            assert_eq!(rx.try_dequeue(), Some(i), "{}", Q::NAME);
        }
        assert_eq!(rx.try_dequeue(), None, "{}", Q::NAME);
    }

    fn fills_up_and_recovers<Q: SpscPair>() {
        let (mut tx, mut rx) = Q::with_capacity(16);
        let mut accepted = 0u64;
        while tx.try_enqueue(accepted) {
            accepted += 1;
            assert!(accepted <= 64, "{} never reports full", Q::NAME);
        }
        // Batching designs may report full below nominal capacity, but a
        // 16-slot queue must hold at least 8 before refusing.
        assert!(accepted >= 8, "{} full after only {accepted}", Q::NAME);
        tx.flush();
        assert_eq!(rx.try_dequeue(), Some(0), "{}", Q::NAME);
        // Some space must eventually come back. Batched designs may need
        // more dequeues — including an empty one, which is where
        // MCRingBuffer's consumer publishes its progress — before the
        // producer observes it.
        let mut freed = false;
        let mut expected = 1;
        for _ in 0..accepted * 2 {
            if tx.try_enqueue(1000) {
                freed = true;
                break;
            }
            if let Some(v) = rx.try_dequeue() {
                assert_eq!(v, expected, "{}", Q::NAME);
                expected += 1;
            }
        }
        assert!(freed, "{} never recovered from full", Q::NAME);
    }

    fn wraparound_many_times<Q: SpscPair>() {
        let (mut tx, mut rx) = Q::with_capacity(8);
        for i in 0..10_000u64 {
            tx.enqueue(i);
            tx.flush();
            assert_eq!(rx.dequeue(), i, "{}", Q::NAME);
        }
    }

    fn cross_thread_stream<Q: SpscPair>()
    where
        Q::Tx: Send,
        Q::Rx: Send,
    {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = Q::with_capacity(1 << 10);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.enqueue(i);
            }
        });
        for i in 0..N {
            assert_eq!(rx.dequeue(), i, "{} out of order", Q::NAME);
        }
        producer.join().unwrap();
        assert_eq!(rx.try_dequeue(), None);
    }

    macro_rules! spsc_conformance {
        ($name:ident, $q:ty) => {
            mod $name {
                #[test]
                fn fifo_and_empty() {
                    super::fifo_and_empty::<$q>();
                }

                #[test]
                fn fills_up_and_recovers() {
                    super::fills_up_and_recovers::<$q>();
                }

                #[test]
                fn wraparound_many_times() {
                    super::wraparound_many_times::<$q>();
                }

                #[test]
                fn cross_thread_stream() {
                    super::cross_thread_stream::<$q>();
                }
            }
        };
    }

    spsc_conformance!(lamport, crate::spsc::lamport::LamportQueue);
    spsc_conformance!(fastforward, crate::spsc::fastforward::FastForward);
    spsc_conformance!(mcringbuffer, crate::spsc::mcringbuffer::McRingBuffer);
    spsc_conformance!(batchqueue, crate::spsc::batchqueue::BatchQueue);
    spsc_conformance!(bqueue, crate::spsc::bqueue::BQueue);
    spsc_conformance!(ffqspsc, crate::spsc::ffqspsc::FfqSpsc);
}
