//! BatchQueue (Preud'homme, Sopena, Thomas, Folliot — ICPADS 2012,
//! reference [19]).
//!
//! The buffer is split into two halves that producer and consumer exchange
//! wholesale: the producer fills one half while the consumer drains the
//! other, and a single flag word per half says whose turn it is. Producer
//! and consumer thus touch disjoint memory except for the two flags —
//! "BatchQueue avoids false sharing by isolating producer and consumer in
//! different parts of the queue" (§II).

use core::cell::UnsafeCell;
use core::mem::MaybeUninit;
use core::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use ffq_sync::CachePadded;

use super::{SpscPair, SpscRx, SpscTx};

struct Half {
    /// True when the half belongs to the consumer (filled, ready to drain).
    ready: CachePadded<AtomicBool>,
    /// Valid slots in the half (== half_len except for a shutdown flush).
    /// Written by the producer before the `ready` release-store.
    len: AtomicUsize,
    slots: Box<[UnsafeCell<MaybeUninit<u64>>]>,
}

struct Shared {
    halves: [Half; 2],
    half_len: usize,
}

// SAFETY: a half's slots are touched exclusively by the producer while
// `ready == false` and exclusively by the consumer while `ready == true`;
// the flag flips with release/acquire.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// Marker type; construct through [`SpscPair::with_capacity`].
pub struct BatchQueue;

/// Producing endpoint: fills the current half, hands it over when full.
pub struct BatchTx {
    shared: Arc<Shared>,
    half: usize,
    fill: usize,
}

/// Consuming endpoint: drains the current half, returns it when empty.
pub struct BatchRx {
    shared: Arc<Shared>,
    half: usize,
    drain: usize,
    available: usize,
}

impl SpscPair for BatchQueue {
    type Tx = BatchTx;
    type Rx = BatchRx;

    fn with_capacity(capacity: usize) -> (BatchTx, BatchRx) {
        let half_len = (capacity / 2).next_power_of_two().max(1);
        let mk_half = || Half {
            ready: CachePadded::new(AtomicBool::new(false)),
            len: AtomicUsize::new(0),
            slots: (0..half_len)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        };
        let shared = Arc::new(Shared {
            halves: [mk_half(), mk_half()],
            half_len,
        });
        (
            BatchTx {
                shared: Arc::clone(&shared),
                half: 0,
                fill: 0,
            },
            BatchRx {
                shared,
                half: 0,
                drain: 0,
                available: 0,
            },
        )
    }

    const NAME: &'static str = "batchqueue";
}

impl BatchTx {
    fn hand_over_partial(&mut self) {
        if self.fill > 0 {
            let s = &*self.shared;
            let half = &s.halves[self.half];
            if !half.ready.load(Ordering::Acquire) {
                half.len.store(self.fill, Ordering::Relaxed);
                half.ready.store(true, Ordering::Release);
                self.half ^= 1;
                self.fill = 0;
            }
        }
    }
}

impl SpscTx for BatchTx {
    fn try_enqueue(&mut self, value: u64) -> bool {
        let s = &*self.shared;
        let half = &s.halves[self.half];
        // Our half still at the consumer? Then we are full.
        if half.ready.load(Ordering::Acquire) {
            return false;
        }
        // SAFETY: we own this half while ready == false.
        unsafe { (*half.slots[self.fill].get()).write(value) };
        self.fill += 1;
        if self.fill == s.half_len {
            // Hand the filled half over and move to the other one.
            half.len.store(s.half_len, Ordering::Relaxed);
            half.ready.store(true, Ordering::Release);
            self.half ^= 1;
            self.fill = 0;
        }
        true
    }

    fn flush(&mut self) {
        self.hand_over_partial();
    }
}

impl Drop for BatchTx {
    fn drop(&mut self) {
        // A partially filled half would be stranded by design in BatchQueue
        // (the original punts to a timeout-based flush); hand it over so
        // nothing is lost on producer shutdown.
        self.hand_over_partial();
    }
}

impl SpscRx for BatchRx {
    fn try_dequeue(&mut self) -> Option<u64> {
        let s = &*self.shared;
        if self.available == 0 {
            let half = &s.halves[self.half];
            if !half.ready.load(Ordering::Acquire) {
                return None;
            }
            // The acquire above ordered this len read after the publish.
            self.available = half.len.load(Ordering::Relaxed);
            self.drain = 0;
            if self.available == 0 {
                // Defensive: an empty handover (cannot happen today).
                half.ready.store(false, Ordering::Release);
                self.half ^= 1;
                return None;
            }
        }
        let half = &s.halves[self.half];
        // SAFETY: we own this half while ready == true.
        let value = unsafe { (*half.slots[self.drain].get()).assume_init_read() };
        self.drain += 1;
        self.available -= 1;
        if self.available == 0 {
            half.ready.store(false, Ordering::Release);
            self.half ^= 1;
        }
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_arrive_in_half_batches() {
        let (mut tx, mut rx) = BatchQueue::with_capacity(8); // halves of 4
        for i in 0..3 {
            assert!(tx.try_enqueue(i));
        }
        assert_eq!(rx.try_dequeue(), None, "partial half leaked");
        assert!(tx.try_enqueue(3)); // completes the half
        for i in 0..4 {
            assert_eq!(rx.try_dequeue(), Some(i));
        }
    }

    #[test]
    fn double_buffering_keeps_both_sides_busy() {
        let (mut tx, mut rx) = BatchQueue::with_capacity(4); // halves of 2
        assert!(tx.try_enqueue(0));
        assert!(tx.try_enqueue(1)); // half 0 handed over
        assert!(tx.try_enqueue(2));
        assert!(tx.try_enqueue(3)); // half 1 handed over
        assert!(!tx.try_enqueue(4), "both halves at the consumer");
        assert_eq!(rx.try_dequeue(), Some(0));
        assert_eq!(rx.try_dequeue(), Some(1)); // half 0 returned
        assert!(tx.try_enqueue(4));
        assert_eq!(rx.try_dequeue(), Some(2));
        assert_eq!(rx.try_dequeue(), Some(3));
        assert_eq!(rx.try_dequeue(), None, "half 1 only partially refilled");
    }
}
