//! FastForward (Giacomoni et al., PPoPP 2008 — reference [7]).
//!
//! The insight: make the *slot itself* carry the full/empty information, so
//! producer and consumer never read each other's counter. Each side keeps a
//! purely local index; the producer writes into a slot it observes EMPTY,
//! the consumer takes from a slot it observes full. FFQ's `rank` field is a
//! descendant of this idea (the cell announces its own state), generalized
//! to multiple consumers.
//!
//! FastForward stores pointers and uses NULL as the EMPTY sentinel; this
//! word-queue port stores `value + 1` so 0 can be the sentinel (the
//! comparative benchmarks use small integers). The paper's *temporal
//! slipping* tuning (keeping the consumer a cache line behind) is
//! deliberately not implemented — §II: "slipping requires system-specific
//! tuning", which is FFQ's argument against it.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use super::{SpscPair, SpscRx, SpscTx};

const EMPTY: u64 = 0;

struct Shared {
    /// Slot = value + 1; EMPTY (0) = free.
    buffer: Box<[AtomicU64]>,
    mask: u64,
}

/// Marker type; construct through [`SpscPair::with_capacity`].
pub struct FastForward;

/// Producing endpoint with its private index.
pub struct FastForwardTx {
    shared: Arc<Shared>,
    tail: u64,
}

/// Consuming endpoint with its private index.
pub struct FastForwardRx {
    shared: Arc<Shared>,
    head: u64,
}

impl SpscPair for FastForward {
    type Tx = FastForwardTx;
    type Rx = FastForwardRx;

    fn with_capacity(capacity: usize) -> (FastForwardTx, FastForwardRx) {
        let cap = capacity.next_power_of_two().max(2);
        let shared = Arc::new(Shared {
            buffer: (0..cap).map(|_| AtomicU64::new(EMPTY)).collect(),
            mask: cap as u64 - 1,
        });
        (
            FastForwardTx {
                shared: Arc::clone(&shared),
                tail: 0,
            },
            FastForwardRx { shared, head: 0 },
        )
    }

    const NAME: &'static str = "fastforward";
}

impl SpscTx for FastForwardTx {
    fn try_enqueue(&mut self, value: u64) -> bool {
        debug_assert!(
            value < u64::MAX,
            "value must leave room for the +1 encoding"
        );
        let slot = &self.shared.buffer[(self.tail & self.shared.mask) as usize];
        // Full test is local to the slot: no shared counter read.
        if slot.load(Ordering::Acquire) != EMPTY {
            return false;
        }
        slot.store(value + 1, Ordering::Release);
        self.tail = self.tail.wrapping_add(1);
        true
    }
}

impl SpscRx for FastForwardRx {
    fn try_dequeue(&mut self) -> Option<u64> {
        let slot = &self.shared.buffer[(self.head & self.shared.mask) as usize];
        let v = slot.load(Ordering::Acquire);
        if v == EMPTY {
            return None;
        }
        slot.store(EMPTY, Ordering::Release);
        self.head = self.head.wrapping_add(1);
        Some(v - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_shared_counters_anywhere() {
        // Structural: the shared state is just the slot array.
        assert_eq!(
            core::mem::size_of::<Shared>(),
            core::mem::size_of::<Box<[AtomicU64]>>() + core::mem::size_of::<u64>()
        );
    }

    #[test]
    fn zero_value_roundtrips_despite_sentinel() {
        let (mut tx, mut rx) = FastForward::with_capacity(4);
        assert!(tx.try_enqueue(0));
        assert_eq!(rx.try_dequeue(), Some(0));
    }

    #[test]
    fn full_when_consumer_stalls() {
        let (mut tx, mut rx) = FastForward::with_capacity(4);
        for i in 0..4 {
            assert!(tx.try_enqueue(i));
        }
        assert!(!tx.try_enqueue(9));
        assert_eq!(rx.try_dequeue(), Some(0));
        assert!(tx.try_enqueue(9));
    }
}
