//! The Michael–Scott non-blocking queue (PODC '96), reference [15] of the
//! paper.
//!
//! A linked list with a dummy head node; `head` and `tail` are manipulated
//! with compare-and-swap loops. The paper's evaluation names it the worst
//! performer under contention precisely because every operation competes on
//! those two pointers with CASes "inside a loop that can repeat many times".
//!
//! Memory reclamation uses `crossbeam_epoch` — the standard production-grade
//! epoch-based scheme (hazard pointers would add latency without changing
//! the contention profile the comparison is about).

use core::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Atomic, Owned, Shared};
use ffq_sync::CachePadded;

use crate::traits::{BenchHandle, BenchQueue};

struct Node {
    /// Unused in the dummy node.
    value: u64,
    next: Atomic<Node>,
}

/// The Michael–Scott two-pointer queue.
pub struct MsQueue {
    head: CachePadded<Atomic<Node>>,
    tail: CachePadded<Atomic<Node>>,
}

impl MsQueue {
    fn new() -> Self {
        let dummy = Owned::new(Node {
            value: 0,
            next: Atomic::null(),
        });
        let q = Self {
            head: CachePadded::new(Atomic::null()),
            tail: CachePadded::new(Atomic::null()),
        };
        let guard = epoch::pin();
        let dummy = dummy.into_shared(&guard);
        q.head.store(dummy, Ordering::Relaxed);
        q.tail.store(dummy, Ordering::Relaxed);
        q
    }

    fn enqueue(&self, value: u64) {
        let guard = &epoch::pin();
        let new = Owned::new(Node {
            value,
            next: Atomic::null(),
        })
        .into_shared(guard);
        loop {
            let tail = self.tail.load(Ordering::Acquire, guard);
            // SAFETY: tail is never null after construction and nodes are
            // reclaimed only after being unlinked, under the epoch guard.
            let tail_ref = unsafe { tail.deref() };
            let next = tail_ref.next.load(Ordering::Acquire, guard);
            if !next.is_null() {
                // Tail lagging: help swing it forward, then retry.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                );
                continue;
            }
            if tail_ref
                .next
                .compare_exchange(
                    Shared::null(),
                    new,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                )
                .is_ok()
            {
                // Linearized; swing tail (failure is fine — someone helped).
                let _ = self.tail.compare_exchange(
                    tail,
                    new,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                );
                return;
            }
        }
    }

    fn dequeue(&self) -> Option<u64> {
        let guard = &epoch::pin();
        loop {
            let head = self.head.load(Ordering::Acquire, guard);
            // SAFETY: as in enqueue.
            let head_ref = unsafe { head.deref() };
            let next = head_ref.next.load(Ordering::Acquire, guard);
            // Empty queue: the dummy has no successor.
            let next_ref = unsafe { next.as_ref() }?;
            // Keep tail from pointing at the node we are about to unlink.
            let tail = self.tail.load(Ordering::Acquire, guard);
            if head == tail {
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                );
            }
            let value = next_ref.value;
            if self
                .head
                .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed, guard)
                .is_ok()
            {
                // The old dummy is unreachable once every pinned thread
                // moves on.
                unsafe { guard.defer_destroy(head) };
                return Some(value);
            }
        }
    }
}

impl Drop for MsQueue {
    fn drop(&mut self) {
        // Exclusive access: walk and free the remaining chain (dummy + any
        // unconsumed nodes).
        let guard = unsafe { epoch::unprotected() };
        let mut node = self.head.load(Ordering::Relaxed, guard);
        while !node.is_null() {
            let next = unsafe { node.deref() }.next.load(Ordering::Relaxed, guard);
            drop(unsafe { node.into_owned() });
            node = next;
        }
    }
}

impl BenchQueue for MsQueue {
    type Handle = MsHandle;

    fn with_capacity(_capacity: usize) -> Self {
        // Unbounded: the hint is irrelevant.
        Self::new()
    }

    fn register(self: &Arc<Self>) -> MsHandle {
        MsHandle {
            queue: Arc::clone(self),
        }
    }

    const NAME: &'static str = "msqueue";
}

/// Per-thread handle (stateless; epoch pinning is per-operation).
pub struct MsHandle {
    queue: Arc<MsQueue>,
}

impl BenchHandle for MsHandle {
    fn enqueue(&mut self, value: u64) {
        self.queue.enqueue(value);
    }

    fn dequeue(&mut self) -> Option<u64> {
        self.queue.dequeue()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_then_fifo() {
        let q = MsQueue::new();
        assert_eq!(q.dequeue(), None);
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn unconsumed_nodes_freed_on_drop() {
        // Leak detection is delegated to the allocator under miri/asan; here
        // we just exercise the drop path with pending nodes.
        let q = MsQueue::new();
        for i in 0..100 {
            q.enqueue(i);
        }
        drop(q);
    }

    #[test]
    fn alternating_many_wraps() {
        let q = MsQueue::new();
        for i in 0..50_000u64 {
            q.enqueue(i);
            assert_eq!(q.dequeue(), Some(i));
        }
    }
}
