//! The HTM-based queue of the paper's comparative study (§V-G):
//! "based on a bounded circular buffer and simply executes the enqueue and
//! dequeue operations inside hardware transactions".
//!
//! Hardware TM is unavailable here, so the transactions run on the
//! [`ffq_htm`] software emulation (see that crate and DESIGN.md §4.2 for why
//! the substitution preserves the comparison's shape: conflicts between
//! concurrent operations are genuine and produce genuine aborts/retries).
//!
//! Region word layout: `[0] = head`, `[1] = tail`, `[2..2+cap] = slots`.

use std::sync::Arc;

use ffq_htm::TxRegion;
use ffq_sync::Backoff;

use crate::traits::{BenchHandle, BenchQueue};

const HEAD: usize = 0;
const TAIL: usize = 1;
const SLOTS: usize = 2;

/// Speculative attempts before falling back to the global lock — the usual
/// small constant from HTM retry templates.
const RETRIES: u32 = 8;

/// A bounded circular-buffer queue executed inside (emulated) transactions.
pub struct HtmQueue {
    region: TxRegion,
    capacity: u64,
}

impl HtmQueue {
    fn try_enqueue(&self, value: u64) -> bool {
        self.region.transaction(|tx| {
            let head = tx.read(HEAD)?;
            let tail = tx.read(TAIL)?;
            if tail - head >= self.capacity {
                return Ok(false);
            }
            tx.write(SLOTS + (tail % self.capacity) as usize, value)?;
            tx.write(TAIL, tail + 1)?;
            Ok(true)
        })
    }

    fn try_dequeue(&self) -> Option<u64> {
        self.region.transaction(|tx| {
            let head = tx.read(HEAD)?;
            let tail = tx.read(TAIL)?;
            if head == tail {
                return Ok(None);
            }
            let value = tx.read(SLOTS + (head % self.capacity) as usize)?;
            tx.write(HEAD, head + 1)?;
            Ok(Some(value))
        })
    }

    /// Snapshot of the transactional statistics (commits, aborts, fallbacks).
    pub fn region_stats(&self) -> &ffq_htm::HtmStats {
        self.region.stats()
    }
}

impl BenchQueue for HtmQueue {
    type Handle = HtmHandle;

    fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        Self {
            region: TxRegion::new(SLOTS + cap, RETRIES),
            capacity: cap as u64,
        }
    }

    fn register(self: &Arc<Self>) -> HtmHandle {
        HtmHandle {
            queue: Arc::clone(self),
        }
    }

    const NAME: &'static str = "htm";
}

/// Per-thread handle (stateless).
pub struct HtmHandle {
    queue: Arc<HtmQueue>,
}

impl BenchHandle for HtmHandle {
    fn enqueue(&mut self, value: u64) {
        let mut backoff = Backoff::new();
        while !self.queue.try_enqueue(value) {
            backoff.wait();
        }
    }

    fn dequeue(&mut self) -> Option<u64> {
        self.queue.try_dequeue()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_empty() {
        let q = Arc::new(HtmQueue::with_capacity(8));
        assert_eq!(q.try_dequeue(), None);
        assert!(q.try_enqueue(10));
        assert!(q.try_enqueue(20));
        assert_eq!(q.try_dequeue(), Some(10));
        assert_eq!(q.try_dequeue(), Some(20));
        assert_eq!(q.try_dequeue(), None);
    }

    #[test]
    fn full_detection() {
        let q = Arc::new(HtmQueue::with_capacity(4));
        for i in 0..4 {
            assert!(q.try_enqueue(i));
        }
        assert!(!q.try_enqueue(4));
        assert_eq!(q.try_dequeue(), Some(0));
        assert!(q.try_enqueue(4));
    }

    #[test]
    fn contended_operations_record_aborts() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let q = Arc::new(HtmQueue::with_capacity(64));
        let stop = Arc::new(AtomicBool::new(false));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut h = q.register();
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        h.enqueue(n);
                        let _ = h.dequeue();
                        n += 1;
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            t.join().unwrap();
        }
        let snap = q.region_stats().snapshot();
        assert!(snap.commits > 0);
    }
}
