//! Vyukov's bounded MPMC ring buffer.
//!
//! This is the "state-of-the-art concurrent FIFO queue" the paper's secure
//! enclave framework originally used (footnote 8 points at the 1024cores
//! bounded MPMC queue) and the "mpmc" curve of Figure 7. Each slot carries a
//! sequence number; producers and consumers claim positions with
//! compare-and-swap on the respective position counter and synchronize
//! through the slot sequence, so there is no per-operation lock — but both
//! counters are CAS-contended, which is exactly the bottleneck FFQ removes
//! for its single producer.

use core::cell::UnsafeCell;
use core::mem::MaybeUninit;
use core::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ffq_sync::{Backoff, CachePadded};

use crate::traits::{BenchHandle, BenchQueue};

struct Slot {
    /// Slot state: `seq == pos` ⇒ writable for the producer claiming `pos`;
    /// `seq == pos + 1` ⇒ readable for the consumer claiming `pos`.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<u64>>,
}

/// Dmitry Vyukov's bounded MPMC queue.
pub struct VyukovQueue {
    buffer: Box<[Slot]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// SAFETY: slot values are only touched by the thread whose CAS on the
// position counter claimed the slot, bracketed by the seq protocol.
unsafe impl Send for VyukovQueue {}
unsafe impl Sync for VyukovQueue {}

impl VyukovQueue {
    fn try_enqueue(&self, value: u64) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // Slot writable: claim the position.
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made us the unique writer of this
                        // slot for this lap.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                // Slot still holds the previous lap: queue full.
                return false;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    fn try_dequeue(&self) -> Option<u64> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: unique reader of this slot for this lap.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }
}

impl BenchQueue for VyukovQueue {
    type Handle = VyukovHandle;

    fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let buffer: Box<[Slot]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            buffer,
            mask: cap - 1,
            enqueue_pos: CachePadded::new(AtomicUsize::new(0)),
            dequeue_pos: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    fn register(self: &Arc<Self>) -> VyukovHandle {
        VyukovHandle {
            queue: Arc::clone(self),
        }
    }

    const NAME: &'static str = "mpmc (vyukov)";
}

/// Per-thread handle (stateless).
pub struct VyukovHandle {
    queue: Arc<VyukovQueue>,
}

impl BenchHandle for VyukovHandle {
    fn enqueue(&mut self, value: u64) {
        let mut backoff = Backoff::new();
        while !self.queue.try_enqueue(value) {
            backoff.wait();
        }
    }

    fn dequeue(&mut self) -> Option<u64> {
        self.queue.try_dequeue()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_detection() {
        let q = Arc::new(VyukovQueue::with_capacity(4));
        for i in 0..4 {
            assert!(q.try_enqueue(i));
        }
        assert!(!q.try_enqueue(99));
        assert_eq!(q.try_dequeue(), Some(0));
        assert!(q.try_enqueue(99));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let q = Arc::new(VyukovQueue::with_capacity(5));
        for i in 0..8 {
            assert!(q.try_enqueue(i), "slot {i}");
        }
        assert!(!q.try_enqueue(8));
    }

    #[test]
    fn seq_lap_arithmetic_survives_many_wraps() {
        let q = Arc::new(VyukovQueue::with_capacity(2));
        let mut h = q.register();
        for i in 0..10_000u64 {
            h.enqueue(i);
            assert_eq!(h.dequeue(), Some(i));
        }
    }
}
