//! Comparator queues for the FFQ paper's evaluation.
//!
//! Figure 8 of the paper compares FFQ-m against five state-of-the-art
//! concurrent queues inside the benchmark framework of Yang &
//! Mellor-Crummey [21]; Figure 7 additionally uses a generic bounded MPMC
//! queue (Vyukov's, footnote 8) as the non-FFQ syscall queue. This crate
//! implements all of them behind one [`BenchQueue`] interface:
//!
//! | Module | Queue | Origin |
//! |--------|-------|--------|
//! | [`msqueue`] | Michael–Scott two-pointer linked queue | PODC '96 [15] |
//! | [`ccqueue`] | CC-Queue: combining-synchronized queue | PPoPP '12 [5] |
//! | [`lcrq`] | LCRQ: linked list of concurrent ring queues | PPoPP '13 [17] |
//! | [`wfqueue`] | Yang & Mellor-Crummey FAA-based queue | PPoPP '16 [21] |
//! | [`vyukov`] | Bounded MPMC ring (the paper's "MPMC queue") | 1024cores |
//! | [`htmqueue`] | Circular buffer inside transactions | paper §V-G |
//! | [`mutexqueue`] | `Mutex<VecDeque>` reference model | (testing) |
//! | [`ffqueue`] | FFQ adapters implementing [`BenchQueue`] | this repo |
//!
//! All baselines are *word queues* (they carry `u64` payloads): the paper's
//! benchmark enqueues 64-bit integers, and LCRQ/wfqueue are natively
//! word-based designs. The `ffq` crate itself is fully generic.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod ccqueue;
pub mod ffqueue;
pub mod htmqueue;
pub mod lcrq;
pub mod msqueue;
pub mod mutexqueue;
pub mod spsc;
pub mod traits;
pub mod vyukov;
pub mod wfqueue;

pub use traits::{BenchHandle, BenchQueue};

#[cfg(test)]
mod conformance {
    //! One battery of behavioural tests instantiated for every queue.

    use super::traits::{BenchHandle, BenchQueue};
    use std::collections::HashSet;
    use std::sync::Arc;

    fn fifo_single_thread<Q: BenchQueue>() {
        let q = Arc::new(Q::with_capacity(256));
        let mut h = q.register();
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i), "{}", Q::NAME);
        }
        assert_eq!(h.dequeue(), None, "{}", Q::NAME);
    }

    fn interleaved_wraparound<Q: BenchQueue>() {
        let q = Arc::new(Q::with_capacity(16));
        let mut h = q.register();
        for round in 0..200u64 {
            h.enqueue(round * 3);
            h.enqueue(round * 3 + 1);
            h.enqueue(round * 3 + 2);
            assert_eq!(h.dequeue(), Some(round * 3));
            assert_eq!(h.dequeue(), Some(round * 3 + 1));
            assert_eq!(h.dequeue(), Some(round * 3 + 2));
        }
        assert_eq!(h.dequeue(), None);
    }

    fn mpmc_no_loss_no_dup<Q: BenchQueue>() {
        const THREADS: usize = 4;
        const PER: u64 = 10_000;
        let q = Arc::new(Q::with_capacity(1 << 12));
        let handles: Vec<_> = (0..THREADS as u64)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut h = q.register();
                    let mut got = Vec::new();
                    // Enqueue/dequeue pairs, like the Figure 8 benchmark.
                    for i in 0..PER {
                        h.enqueue(t * PER + i);
                        loop {
                            if let Some(v) = h.dequeue() {
                                got.push(v);
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(all.len() as u64, THREADS as u64 * PER, "{}", Q::NAME);
        let set: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "{}: duplicates", Q::NAME);
        all.sort_unstable();
        assert_eq!(all[0], 0);
        assert_eq!(*all.last().unwrap(), THREADS as u64 * PER - 1);
    }

    fn per_producer_order<Q: BenchQueue>() {
        const PER: u64 = 20_000;
        let q = Arc::new(Q::with_capacity(1 << 12));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut h = q.register();
                for i in 0..PER {
                    h.enqueue(i);
                }
            })
        };
        let mut h = q.register();
        let mut expected = 0;
        while expected < PER {
            if let Some(v) = h.dequeue() {
                assert_eq!(v, expected, "{}: out of order", Q::NAME);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }

    macro_rules! conformance_suite {
        ($modname:ident, $q:ty) => {
            mod $modname {
                #[test]
                fn fifo_single_thread() {
                    super::fifo_single_thread::<$q>();
                }

                #[test]
                fn interleaved_wraparound() {
                    super::interleaved_wraparound::<$q>();
                }

                #[test]
                fn mpmc_no_loss_no_dup() {
                    super::mpmc_no_loss_no_dup::<$q>();
                }

                #[test]
                fn per_producer_order() {
                    super::per_producer_order::<$q>();
                }
            }
        };
    }

    conformance_suite!(msqueue_conformance, crate::msqueue::MsQueue);
    conformance_suite!(ccqueue_conformance, crate::ccqueue::CcQueue);
    conformance_suite!(lcrq_conformance, crate::lcrq::Lcrq);
    conformance_suite!(wfqueue_conformance, crate::wfqueue::WfQueue);
    conformance_suite!(vyukov_conformance, crate::vyukov::VyukovQueue);
    conformance_suite!(htmqueue_conformance, crate::htmqueue::HtmQueue);
    conformance_suite!(mutexqueue_conformance, crate::mutexqueue::MutexQueue);
    conformance_suite!(ffq_mpmc_conformance, crate::ffqueue::FfqMpmc);
    conformance_suite!(ffq_bytes_mpmc_conformance, crate::ffqueue::FfqBytesMpmc);
}
