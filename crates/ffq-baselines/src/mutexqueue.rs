//! Reference queue: a `VecDeque` under a mutex.
//!
//! Not part of the paper's comparison — it exists as the obviously-correct
//! model the concurrent queues are cross-checked against in tests, and as a
//! "what you get without a concurrent algorithm" baseline in reports.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::traits::{BenchHandle, BenchQueue};

/// `Mutex<VecDeque<u64>>` with the [`BenchQueue`] interface.
pub struct MutexQueue {
    inner: Mutex<VecDeque<u64>>,
}

impl BenchQueue for MutexQueue {
    type Handle = MutexHandle;

    fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    fn register(self: &Arc<Self>) -> MutexHandle {
        MutexHandle {
            queue: Arc::clone(self),
        }
    }

    const NAME: &'static str = "mutex";
}

/// Per-thread handle; stateless beyond the shared reference.
pub struct MutexHandle {
    queue: Arc<MutexQueue>,
}

impl BenchHandle for MutexHandle {
    fn enqueue(&mut self, value: u64) {
        self.queue.inner.lock().push_back(value);
    }

    fn dequeue(&mut self) -> Option<u64> {
        self.queue.inner.lock().pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_fifo() {
        let q = Arc::new(MutexQueue::with_capacity(4));
        let mut h = q.register();
        assert_eq!(h.dequeue(), None);
        h.enqueue(1);
        h.enqueue(2);
        assert_eq!(h.dequeue(), Some(1));
        assert_eq!(h.dequeue(), Some(2));
        assert_eq!(h.dequeue(), None);
    }
}
