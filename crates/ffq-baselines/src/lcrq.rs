//! LCRQ — Morrison & Afek's linked concurrent ring queue (PPoPP '13,
//! reference [17] of the paper).
//!
//! A CRQ is a bounded ring whose head and tail advance by fetch-and-add;
//! each cell packs `(value, ⟨safe, idx⟩)` into a 128-byte... *bit* pair that
//! is updated with a double-word CAS (the same `cmpxchg16b` primitive FFQ-m
//! needs — the paper notes "lcrq and FFQ-m use a double-word
//! compare-and-set, which is only available on a few high-end CPUs"). When a
//! CRQ fills or livelocks it is *closed* and a fresh CRQ is appended,
//! Michael–Scott style, making the full queue unbounded.
//!
//! Cell encoding on top of [`ffq_sync::DoubleWord`]:
//! `lo` = value + 1 (0 = empty), `hi` = cell index with bit 62 as the
//! *unsafe* flag. The CRQ tail uses bit 62 as its *closed* flag.

use core::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Atomic, Owned};
use ffq_sync::{CachePadded, DoubleWord};

use crate::traits::{BenchHandle, BenchQueue};

/// Cell value sentinel: empty.
const EMPTY: i64 = 0;
/// `hi` bit 62: the cell is unsafe (a dequeuer overtook a slow enqueuer).
const UNSAFE_BIT: i64 = 1 << 62;
/// Tail bit 62: the CRQ is closed to further enqueues.
const CLOSED_BIT: i64 = 1 << 62;
/// Failed enqueue iterations on one CRQ before closing it (anti-livelock).
const STARVATION_LIMIT: u32 = 16;

#[inline]
fn cell_idx(hi: i64) -> i64 {
    hi & !UNSAFE_BIT
}

#[inline]
fn cell_is_safe(hi: i64) -> bool {
    hi & UNSAFE_BIT == 0
}

/// One bounded ring (a CRQ).
struct Crq {
    head: CachePadded<AtomicI64>,
    tail: CachePadded<AtomicI64>,
    ring: Box<[DoubleWord]>,
    mask: i64,
    next: Atomic<Crq>,
}

enum CrqEnq {
    Ok,
    Closed,
}

impl Crq {
    fn new(size: usize) -> Self {
        debug_assert!(size.is_power_of_two());
        Self {
            head: CachePadded::new(AtomicI64::new(0)),
            tail: CachePadded::new(AtomicI64::new(0)),
            // Cell i starts safe, idx = i, empty.
            ring: (0..size as i64)
                .map(|i| DoubleWord::new(EMPTY, i))
                .collect(),
            mask: size as i64 - 1,
            next: Atomic::null(),
        }
    }

    /// A CRQ born with one element already in slot 0 (used when appending a
    /// ring for an enqueue that closed its predecessor).
    fn with_first(size: usize, value: u64) -> Self {
        let crq = Self::new(size);
        crq.ring[0].store_lo(value as i64 + 1, Ordering::Relaxed);
        // Slot 0 now publishes idx 0 occupied; tail starts past it.
        crq.tail.store(1, Ordering::Relaxed);
        crq
    }

    fn size(&self) -> i64 {
        self.mask + 1
    }

    fn close(&self) {
        self.tail.fetch_or(CLOSED_BIT, Ordering::SeqCst);
    }

    fn enqueue(&self, value: u64) -> CrqEnq {
        debug_assert!((value as i64) < i64::MAX - 1, "value must fit 63 bits");
        let mut attempts = 0;
        loop {
            let t_raw = self.tail.fetch_add(1, Ordering::SeqCst);
            if t_raw & CLOSED_BIT != 0 {
                return CrqEnq::Closed;
            }
            let t = t_raw;
            let cell = &self.ring[(t & self.mask) as usize];
            let hi = cell.load_hi(Ordering::Acquire);
            let lo = cell.load_lo(Ordering::Acquire);
            let idx = cell_idx(hi);
            if lo == EMPTY
                && idx <= t
                && (cell_is_safe(hi) || self.head.load(Ordering::SeqCst) <= t)
            {
                // Deposit: value, ⟨safe, t⟩. The pair CAS fails if a
                // dequeuer advanced the cell meanwhile.
                if cell
                    .compare_exchange((EMPTY, hi), (value as i64 + 1, t))
                    .is_ok()
                {
                    return CrqEnq::Ok;
                }
            }
            attempts += 1;
            // Close when full (tail a full lap ahead of head) or starving.
            if t - self.head.load(Ordering::SeqCst) >= self.size() || attempts >= STARVATION_LIMIT {
                self.close();
                return CrqEnq::Closed;
            }
        }
    }

    fn dequeue(&self) -> Option<u64> {
        loop {
            let h = self.head.fetch_add(1, Ordering::SeqCst);
            let cell = &self.ring[(h & self.mask) as usize];
            loop {
                let hi = cell.load_hi(Ordering::Acquire);
                let lo = cell.load_lo(Ordering::Acquire);
                let idx = cell_idx(hi);
                let unsafe_bit = hi & UNSAFE_BIT;
                if idx > h {
                    // Cell already re-purposed for a later lap.
                    break;
                }
                if lo != EMPTY {
                    if idx == h {
                        // Our element: consume and advance the cell a lap.
                        if cell
                            .compare_exchange((lo, hi), (EMPTY, (h + self.size()) | unsafe_bit))
                            .is_ok()
                        {
                            return Some((lo - 1) as u64);
                        }
                    } else {
                        // An element deposited for an *older* index that its
                        // dequeuer has not reached — mark the cell unsafe so
                        // enqueuers keep out until the mismatch resolves.
                        if cell
                            .compare_exchange((lo, hi), (lo, idx | UNSAFE_BIT))
                            .is_ok()
                        {
                            break;
                        }
                    }
                } else {
                    // Empty: advance the cell so a slow enqueuer for index
                    // <= h cannot deposit into the past.
                    if cell
                        .compare_exchange((EMPTY, hi), (EMPTY, (h + self.size()) | unsafe_bit))
                        .is_ok()
                    {
                        break;
                    }
                }
            }
            // Empty check: no outstanding elements at or below our index?
            let t = self.tail.load(Ordering::SeqCst) & !CLOSED_BIT;
            if t <= h + 1 {
                self.fix_state();
                return None;
            }
        }
    }

    /// After dequeuers overshoot (head > tail), pull tail up so later
    /// enqueues do not land on already-skipped indices.
    fn fix_state(&self) {
        loop {
            let t_raw = self.tail.load(Ordering::SeqCst);
            let h = self.head.load(Ordering::SeqCst);
            if (t_raw & !CLOSED_BIT) >= h {
                return;
            }
            if self
                .tail
                .compare_exchange(
                    t_raw,
                    h | (t_raw & CLOSED_BIT),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                return;
            }
        }
    }
}

/// The unbounded linked list of CRQs.
pub struct Lcrq {
    head: CachePadded<Atomic<Crq>>,
    tail: CachePadded<Atomic<Crq>>,
    ring_size: usize,
}

impl Lcrq {
    fn new(ring_size: usize) -> Self {
        let first = Owned::new(Crq::new(ring_size));
        let q = Self {
            head: CachePadded::new(Atomic::null()),
            tail: CachePadded::new(Atomic::null()),
            ring_size,
        };
        let guard = epoch::pin();
        let first = first.into_shared(&guard);
        q.head.store(first, Ordering::Relaxed);
        q.tail.store(first, Ordering::Relaxed);
        q
    }

    fn enqueue(&self, value: u64) {
        let guard = &epoch::pin();
        loop {
            let crq_ptr = self.tail.load(Ordering::Acquire, guard);
            // SAFETY: CRQs are reclaimed only after unlinking, under epochs.
            let crq = unsafe { crq_ptr.deref() };
            let next = crq.next.load(Ordering::Acquire, guard);
            if !next.is_null() {
                // Help swing the tail to the real last ring.
                let _ = self.tail.compare_exchange(
                    crq_ptr,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                );
                continue;
            }
            match crq.enqueue(value) {
                CrqEnq::Ok => return,
                CrqEnq::Closed => {
                    // Append a fresh ring carrying our element.
                    let new = Owned::new(Crq::with_first(self.ring_size, value));
                    match crq.next.compare_exchange(
                        epoch::Shared::null(),
                        new,
                        Ordering::Release,
                        Ordering::Relaxed,
                        guard,
                    ) {
                        Ok(new_ptr) => {
                            let _ = self.tail.compare_exchange(
                                crq_ptr,
                                new_ptr,
                                Ordering::Release,
                                Ordering::Relaxed,
                                guard,
                            );
                            return;
                        }
                        Err(_) => continue, // someone else appended; retry there
                    }
                }
            }
        }
    }

    fn dequeue(&self) -> Option<u64> {
        let guard = &epoch::pin();
        loop {
            let crq_ptr = self.head.load(Ordering::Acquire, guard);
            // SAFETY: as in enqueue.
            let crq = unsafe { crq_ptr.deref() };
            if let Some(v) = crq.dequeue() {
                return Some(v);
            }
            // This ring looked empty. If it has no successor the whole queue
            // is empty; otherwise the ring is closed (successors are only
            // appended after closing) — drain once more, then unlink it.
            let next = crq.next.load(Ordering::Acquire, guard);
            if next.is_null() {
                return None;
            }
            if let Some(v) = crq.dequeue() {
                return Some(v);
            }
            if self
                .head
                .compare_exchange(crq_ptr, next, Ordering::Release, Ordering::Relaxed, guard)
                .is_ok()
            {
                // SAFETY: unlinked; destroyed after all pinned threads leave.
                unsafe { guard.defer_destroy(crq_ptr) };
            }
        }
    }
}

impl Drop for Lcrq {
    fn drop(&mut self) {
        let guard = unsafe { epoch::unprotected() };
        let mut node = self.head.load(Ordering::Relaxed, guard);
        while !node.is_null() {
            let next = unsafe { node.deref() }.next.load(Ordering::Relaxed, guard);
            drop(unsafe { node.into_owned() });
            node = next;
        }
    }
}

impl BenchQueue for Lcrq {
    type Handle = LcrqHandle;

    fn with_capacity(capacity: usize) -> Self {
        // The hint sizes the rings; the queue itself is unbounded.
        let ring = capacity.next_power_of_two().clamp(64, 1 << 16);
        Self::new(ring)
    }

    fn register(self: &Arc<Self>) -> LcrqHandle {
        LcrqHandle {
            queue: Arc::clone(self),
        }
    }

    const NAME: &'static str = "lcrq";
}

/// Per-thread handle (stateless; epochs pin per operation).
pub struct LcrqHandle {
    queue: Arc<Lcrq>,
}

impl BenchHandle for LcrqHandle {
    fn enqueue(&mut self, value: u64) {
        // Unbounded queue: never blocks.
        self.queue.enqueue(value);
    }

    fn dequeue(&mut self) -> Option<u64> {
        self.queue.dequeue()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_then_fifo() {
        let q = Lcrq::new(64);
        assert_eq!(q.dequeue(), None);
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn overflow_appends_new_ring() {
        let q = Lcrq::new(64);
        // Far more items than one ring holds.
        for i in 0..1000 {
            q.enqueue(i);
        }
        for i in 0..1000 {
            assert_eq!(q.dequeue(), Some(i), "at {i}");
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn interleaved_over_ring_boundary() {
        let q = Lcrq::new(64);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for round in 0..500 {
            for _ in 0..(round % 7) + 1 {
                q.enqueue(next_in);
                next_in += 1;
            }
            for _ in 0..(round % 5) + 1 {
                if let Some(v) = q.dequeue() {
                    assert_eq!(v, next_out);
                    next_out += 1;
                }
            }
        }
        while let Some(v) = q.dequeue() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_in, next_out);
    }

    #[test]
    fn dequeue_overshoot_recovers() {
        let q = Lcrq::new(64);
        // Lots of empty dequeues push head ahead; fix_state must keep
        // subsequent enqueues reachable.
        for _ in 0..200 {
            assert_eq!(q.dequeue(), None);
        }
        q.enqueue(7);
        assert_eq!(q.dequeue(), Some(7));
    }
}
