//! FFQ adapters for the comparative benchmark interface.
//!
//! Figure 8 runs the *MPMC* variant of FFQ ("we hence use the MPMC variant
//! of FFQ to support concurrent accesses of both producers and consumers"),
//! so [`FfqMpmc`] is the adapter the comparison uses. The SPSC/SPMC variants
//! appear in that figure only as single-threaded reference marks, which the
//! harness drives through the `ffq` crate's native handles.

use std::sync::Arc;

use ffq::mpmc;
use parking_lot::Mutex;

use crate::traits::{BenchHandle, BenchQueue};

/// `ffq::mpmc` behind the [`BenchQueue`] interface.
pub struct FfqMpmc {
    /// Prototype handles cloned at registration. The producer/consumer types
    /// take `&mut self` for operations, so registration clones from behind a
    /// mutex rather than sharing.
    proto: Mutex<(mpmc::Producer<u64>, mpmc::Consumer<u64>)>,
}

impl BenchQueue for FfqMpmc {
    type Handle = FfqMpmcHandle;

    fn with_capacity(capacity: usize) -> Self {
        let (tx, rx) = mpmc::channel(capacity.next_power_of_two().max(2));
        Self {
            proto: Mutex::new((tx, rx)),
        }
    }

    fn register(self: &Arc<Self>) -> FfqMpmcHandle {
        let proto = self.proto.lock();
        FfqMpmcHandle {
            tx: proto.0.clone(),
            rx: proto.1.clone(),
        }
    }

    const NAME: &'static str = "ffq (mpmc)";
}

/// A registered thread's producer+consumer endpoint pair.
pub struct FfqMpmcHandle {
    tx: mpmc::Producer<u64>,
    rx: mpmc::Consumer<u64>,
}

impl BenchHandle for FfqMpmcHandle {
    fn enqueue(&mut self, value: u64) {
        self.tx.enqueue(value);
    }

    fn dequeue(&mut self) -> Option<u64> {
        self.rx.try_dequeue().ok()
    }

    fn enqueue_batch(&mut self, values: &[u64]) {
        self.tx.enqueue_many(values.iter().copied());
    }

    fn dequeue_batch(&mut self, buf: &mut Vec<u64>, max: usize) -> usize {
        self.rx.dequeue_batch(buf, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_roundtrip() {
        let q = Arc::new(FfqMpmc::with_capacity(16));
        let mut h = q.register();
        h.enqueue(11);
        h.enqueue(22);
        assert_eq!(h.dequeue(), Some(11));
        assert_eq!(h.dequeue(), Some(22));
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn batch_overrides_roundtrip() {
        let q = Arc::new(FfqMpmc::with_capacity(64));
        let mut h = q.register();
        h.enqueue_batch(&[1, 2, 3, 4, 5]);
        let mut buf = Vec::new();
        assert_eq!(h.dequeue_batch(&mut buf, 3), 3);
        assert_eq!(h.dequeue_batch(&mut buf, 8), 2);
        assert_eq!(buf, vec![1, 2, 3, 4, 5]);
        assert_eq!(h.dequeue_batch(&mut buf, 8), 0);
    }

    #[test]
    fn handles_from_two_registrations_share_items() {
        let q = Arc::new(FfqMpmc::with_capacity(16));
        let mut a = q.register();
        let mut b = q.register();
        a.enqueue(5);
        assert_eq!(b.dequeue(), Some(5));
    }
}
