//! FFQ adapters for the comparative benchmark interface.
//!
//! Figure 8 runs the *MPMC* variant of FFQ ("we hence use the MPMC variant
//! of FFQ to support concurrent accesses of both producers and consumers"),
//! so [`FfqMpmc`] is the adapter the comparison uses. The SPSC/SPMC variants
//! appear in that figure only as single-threaded reference marks, which the
//! harness drives through the `ffq` crate's native handles.

use std::sync::Arc;

use ffq::mpmc;
use parking_lot::Mutex;

use crate::traits::{BenchHandle, BenchQueue};

/// `ffq::mpmc` behind the [`BenchQueue`] interface.
pub struct FfqMpmc {
    /// Prototype handles cloned at registration. The producer/consumer types
    /// take `&mut self` for operations, so registration clones from behind a
    /// mutex rather than sharing.
    proto: Mutex<(mpmc::Producer<u64>, mpmc::Consumer<u64>)>,
}

impl BenchQueue for FfqMpmc {
    type Handle = FfqMpmcHandle;

    fn with_capacity(capacity: usize) -> Self {
        let (tx, rx) = mpmc::channel(capacity.next_power_of_two().max(2));
        Self {
            proto: Mutex::new((tx, rx)),
        }
    }

    fn register(self: &Arc<Self>) -> FfqMpmcHandle {
        let proto = self.proto.lock();
        FfqMpmcHandle {
            tx: proto.0.clone(),
            rx: proto.1.clone(),
        }
    }

    const NAME: &'static str = "ffq (mpmc)";
}

/// A registered thread's producer+consumer endpoint pair.
pub struct FfqMpmcHandle {
    tx: mpmc::Producer<u64>,
    rx: mpmc::Consumer<u64>,
}

impl BenchHandle for FfqMpmcHandle {
    fn enqueue(&mut self, value: u64) {
        self.tx.enqueue(value);
    }

    fn dequeue(&mut self) -> Option<u64> {
        self.rx.try_dequeue().ok()
    }

    fn enqueue_batch(&mut self, values: &[u64]) {
        self.tx.enqueue_many(values.iter().copied());
    }

    fn dequeue_batch(&mut self, buf: &mut Vec<u64>, max: usize) -> usize {
        self.rx.dequeue_batch(buf, max)
    }
}

/// `ffq::shard` (the block-granular sharded MPMC frontend, k-relaxed
/// FIFO) behind the [`BenchQueue`] interface.
///
/// Not part of the conformance battery on purpose: the battery asserts
/// *strict* FIFO from a single producer, which a multi-shard geometry
/// deliberately trades away. Sharded-specific tests live below; the
/// k-bound itself is checked by `ffq-lincheck`.
pub struct FfqSharded {
    /// Prototype handles cloned at registration (same pattern as
    /// [`FfqMpmc`]: operations take `&mut self`).
    proto: Mutex<(
        ffq::shard::ShardedProducer<u64>,
        ffq::shard::ShardedConsumer<u64>,
    )>,
}

impl FfqSharded {
    /// Builds a sharded queue with an explicit `(shards, block)` geometry,
    /// for benchmarks that sweep geometries rather than take the default.
    pub fn with_geometry(capacity: usize, shards: usize, block: usize) -> Self {
        let (tx, rx) = ffq::shard::channel_with_geometry(capacity, shards, block);
        Self {
            proto: Mutex::new((tx, rx)),
        }
    }
}

impl BenchQueue for FfqSharded {
    type Handle = FfqShardedHandle;

    fn with_capacity(capacity: usize) -> Self {
        Self::with_geometry(capacity, 4, ffq::shard::DEFAULT_BLOCK)
    }

    fn register(self: &Arc<Self>) -> FfqShardedHandle {
        let proto = self.proto.lock();
        FfqShardedHandle {
            tx: proto.0.clone(),
            rx: proto.1.clone(),
        }
    }

    const NAME: &'static str = "ffq (sharded)";
}

/// A registered thread's sharded producer+consumer endpoint pair.
pub struct FfqShardedHandle {
    tx: ffq::shard::ShardedProducer<u64>,
    rx: ffq::shard::ShardedConsumer<u64>,
}

impl FfqShardedHandle {
    /// Merged per-shard consumer counters of this handle.
    pub fn consumer_stats(&self) -> ffq::ConsumerStats {
        self.rx.stats()
    }

    /// Shard-selection counters (visits, steals, occupancy samples) of
    /// this handle's consumer end.
    pub fn shard_stats(&self) -> ffq::ShardStats {
        self.rx.shard_stats()
    }
}

impl BenchHandle for FfqShardedHandle {
    fn enqueue(&mut self, value: u64) {
        self.tx.enqueue(value);
    }

    fn dequeue(&mut self) -> Option<u64> {
        self.rx.try_dequeue().ok()
    }

    fn enqueue_batch(&mut self, values: &[u64]) {
        self.tx.enqueue_many(values.iter().copied());
    }

    fn dequeue_batch(&mut self, buf: &mut Vec<u64>, max: usize) -> usize {
        self.rx.dequeue_batch(buf, max)
    }
}

/// `ffq::unbounded::mpmc` (the segment-list tier) behind the
/// [`BenchQueue`] interface.
///
/// `with_capacity(n)` makes `n` the *segment* capacity, so head-to-head
/// runs against a bounded adapter at the same `n` measure exactly the
/// per-item overhead of the segment machinery (seal checks, seam
/// crossings, epoch traffic) at equal ring geometry.
pub struct FfqUnbounded {
    /// Prototype handles cloned at registration (same pattern as
    /// [`FfqMpmc`]: operations take `&mut self`).
    proto: Mutex<(
        ffq::unbounded::mpmc::Producer<u64>,
        ffq::unbounded::mpmc::Consumer<u64>,
    )>,
}

impl BenchQueue for FfqUnbounded {
    type Handle = FfqUnboundedHandle;

    fn with_capacity(capacity: usize) -> Self {
        let (tx, rx) = ffq::unbounded::mpmc::channel(capacity.next_power_of_two().max(2));
        Self {
            proto: Mutex::new((tx, rx)),
        }
    }

    fn register(self: &Arc<Self>) -> FfqUnboundedHandle {
        let proto = self.proto.lock();
        FfqUnboundedHandle {
            tx: proto.0.clone(),
            rx: proto.1.clone(),
        }
    }

    const NAME: &'static str = "ffq (unbounded)";
}

/// A registered thread's unbounded producer+consumer endpoint pair.
pub struct FfqUnboundedHandle {
    tx: ffq::unbounded::mpmc::Producer<u64>,
    rx: ffq::unbounded::mpmc::Consumer<u64>,
}

impl FfqUnboundedHandle {
    /// Segment churn counters (allocations, freelist hits, seals) of this
    /// handle's producer end.
    pub fn producer_seg_stats(&self) -> ffq::SegmentStats {
        self.tx.seg_stats()
    }

    /// Segment churn counters (advances, retires, frees) of this handle's
    /// consumer end.
    pub fn consumer_seg_stats(&self) -> ffq::SegmentStats {
        self.rx.seg_stats()
    }
}

impl BenchHandle for FfqUnboundedHandle {
    fn enqueue(&mut self, value: u64) {
        self.tx.enqueue(value);
    }

    fn dequeue(&mut self) -> Option<u64> {
        self.rx.try_dequeue().ok()
    }

    fn enqueue_batch(&mut self, values: &[u64]) {
        self.tx.enqueue_many(values.iter().copied());
    }

    fn dequeue_batch(&mut self, buf: &mut Vec<u64>, max: usize) -> usize {
        self.rx.dequeue_batch(buf, max)
    }
}

/// `ffq::mpmc::bytes_channel` (the zero-copy payload lane) behind the
/// [`BenchQueue`] interface: the benchmark word travels stamped into the
/// first 8 bytes of an N-byte payload written directly into the cell's
/// slot buffer (`reserve` → in-place write → `commit`), and dequeue reads
/// it back through the borrowed [`ffq::bytes::PayloadRef`] view.
///
/// This is the "bytes-payload mode" of the bench adapters: any figure
/// that drives [`BenchHandle`]s can swap this in next to [`FfqMpmc`] to
/// price the descriptor/slot machinery against the fixed-item lane at
/// identical topology. The payload size defaults to 64 bytes and is
/// overridable via the `FFQ_BENCH_PAYLOAD` environment variable (clamped
/// to ≥ 8 so the stamp fits); the slot buffer is sized to the payload, so
/// the lane stays inline (no heap spill) at every setting.
pub struct FfqBytesMpmc {
    /// Prototype handles cloned at registration (same pattern as
    /// [`FfqMpmc`]: operations take `&mut self`).
    proto: Mutex<(ffq::bytes::MpProducer, ffq::bytes::McConsumer<true>)>,
    /// Bytes moved per benchmark word (≥ 8).
    payload_len: usize,
}

/// Payload size for [`FfqBytesMpmc`]: `FFQ_BENCH_PAYLOAD` env var,
/// default 64, clamped to at least the 8-byte stamp.
pub fn bytes_payload_len() -> usize {
    std::env::var("FFQ_BENCH_PAYLOAD")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(64)
        .max(8)
}

impl BenchQueue for FfqBytesMpmc {
    type Handle = FfqBytesMpmcHandle;

    fn with_capacity(capacity: usize) -> Self {
        let payload_len = bytes_payload_len();
        let (tx, rx) = mpmc::bytes_channel(capacity.next_power_of_two().max(2), payload_len)
            .expect("bench geometry within layout limits");
        Self {
            proto: Mutex::new((tx, rx)),
            payload_len,
        }
    }

    fn register(self: &Arc<Self>) -> FfqBytesMpmcHandle {
        let proto = self.proto.lock();
        FfqBytesMpmcHandle {
            tx: proto.0.clone(),
            rx: proto.1.clone(),
            payload_len: self.payload_len,
        }
    }

    const NAME: &'static str = "ffq (mpmc, bytes)";
}

/// A registered thread's bytes-lane producer+consumer endpoint pair.
pub struct FfqBytesMpmcHandle {
    tx: ffq::bytes::MpProducer,
    rx: ffq::bytes::McConsumer<true>,
    payload_len: usize,
}

impl BenchHandle for FfqBytesMpmcHandle {
    fn enqueue(&mut self, value: u64) {
        use ffq::bytes::BytesProducer;
        // Payload fits the slot by construction, so `reserve` can only
        // block on a momentarily full ring, never fail.
        let mut slot = self
            .tx
            .reserve(self.payload_len)
            .expect("payload sized to the slot buffer");
        slot[..8].copy_from_slice(&value.to_le_bytes());
        slot.commit();
    }

    fn dequeue(&mut self) -> Option<u64> {
        use ffq::bytes::BytesConsumer;
        let view = self.rx.try_recv().ok()?;
        let mut stamp = [0u8; 8];
        stamp.copy_from_slice(&view[..8]);
        Some(u64::from_le_bytes(stamp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_roundtrip() {
        let q = Arc::new(FfqMpmc::with_capacity(16));
        let mut h = q.register();
        h.enqueue(11);
        h.enqueue(22);
        assert_eq!(h.dequeue(), Some(11));
        assert_eq!(h.dequeue(), Some(22));
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn batch_overrides_roundtrip() {
        let q = Arc::new(FfqMpmc::with_capacity(64));
        let mut h = q.register();
        h.enqueue_batch(&[1, 2, 3, 4, 5]);
        let mut buf = Vec::new();
        assert_eq!(h.dequeue_batch(&mut buf, 3), 3);
        assert_eq!(h.dequeue_batch(&mut buf, 8), 2);
        assert_eq!(buf, vec![1, 2, 3, 4, 5]);
        assert_eq!(h.dequeue_batch(&mut buf, 8), 0);
    }

    #[test]
    fn handles_from_two_registrations_share_items() {
        let q = Arc::new(FfqMpmc::with_capacity(16));
        let mut a = q.register();
        let mut b = q.register();
        a.enqueue(5);
        assert_eq!(b.dequeue(), Some(5));
    }

    #[test]
    fn unbounded_adapter_rolls_and_counts_segments() {
        // Segment capacity 4, 20 items with no consumer: the adapter must
        // absorb the burst by rolling and report the churn through the
        // stats accessors.
        let q = Arc::new(FfqUnbounded::with_capacity(4));
        let mut a = q.register();
        let mut b = q.register();
        let vals: Vec<u64> = (0..20).collect();
        a.enqueue_batch(&vals);
        assert!(
            a.producer_seg_stats().segments_sealed >= 4,
            "20 items over 4-cell segments must roll: {:?}",
            a.producer_seg_stats()
        );
        let mut got = Vec::new();
        while let Some(v) = b.dequeue() {
            got.push(v);
        }
        assert_eq!(got, vals, "cross-handle FIFO across seams");
        assert!(
            b.consumer_seg_stats().segments_advanced >= 4,
            "drain must cross the seams: {:?}",
            b.consumer_seg_stats()
        );
    }

    #[test]
    fn sharded_drain_is_loss_free_and_per_shard_ordered() {
        // Geometry (2 shards × 4-item blocks): one producer's gapless
        // rotation lands value `v` on shard `(v / 4) % 2`, so the drain
        // may interleave shards but each shard's subsequence must stay
        // increasing.
        let q = Arc::new(FfqSharded::with_geometry(256, 2, 4));
        let mut h = q.register();
        let vals: Vec<u64> = (0..100).collect();
        h.enqueue_batch(&vals);
        let mut got = Vec::new();
        while let Some(v) = h.dequeue() {
            got.push(v);
        }
        for shard in 0..2 {
            let sub: Vec<u64> = got
                .iter()
                .copied()
                .filter(|v| (v / 4) % 2 == shard)
                .collect();
            assert!(sub.windows(2).all(|w| w[0] < w[1]), "shard {shard} order");
        }
        got.sort_unstable();
        assert_eq!(got, vals);
    }

    #[test]
    fn sharded_handles_share_items_and_count_stats() {
        let q = Arc::new(FfqSharded::with_geometry(64, 2, 2));
        let mut a = q.register();
        let mut b = q.register();
        a.enqueue_batch(&[1, 2, 3, 4]);
        let mut got = Vec::new();
        while let Some(v) = b.dequeue() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4]);
        assert_eq!(b.consumer_stats().dequeued, 4);
        assert!(b.shard_stats().shard_visits > 0);
    }
}
