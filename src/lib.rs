//! Meta-crate for the FFQ reproduction: re-exports every workspace crate so
//! the examples and integration tests have a single dependency surface.
//!
//! See the individual crates for the actual implementations:
//!
//! * [`ffq`] — the paper's contribution: SPSC/SPMC/MPMC FFQ queues.
//! * [`ffq_sync`] — cache padding, backoff, double-word CAS, seqlock.
//! * [`ffq_baselines`] — comparator queues for the evaluation (Fig. 8).
//! * [`ffq_htm`] — software transactional emulation of HTM.
//! * [`ffq_affinity`] — CPU topology and thread-placement policies.
//! * [`ffq_cachesim`] — cache-hierarchy simulator for the counter figures.
//! * [`ffq_enclave`] — simulated SGX syscall framework (Fig. 7).

pub use ffq;
pub use ffq_affinity;
pub use ffq_baselines;
pub use ffq_cachesim;
pub use ffq_enclave;
pub use ffq_htm;
pub use ffq_lincheck;
pub use ffq_sync;
