//! Linearizability validation of real concurrent executions (the testing
//! counterpart of the paper's Proposition 3), for FFQ and every baseline.
//!
//! Each run records a concurrent history of enqueues and successful
//! dequeues with TSC-timestamped intervals and checks it against the FIFO
//! specification via `ffq-lincheck`'s four violation patterns.

use std::sync::Arc;

use ffq_baselines::{
    ccqueue::CcQueue, ffqueue::FfqMpmc, htmqueue::HtmQueue, lcrq::Lcrq, msqueue::MsQueue,
    vyukov::VyukovQueue, wfqueue::WfQueue, BenchHandle, BenchQueue,
};
use ffq_lincheck::HistoryRecorder;

const THREADS: u64 = 4;
const PER: u64 = 8_000;

/// Enqueue/dequeue pairs on a shared queue, fully recorded.
fn record_mpmc<Q: BenchQueue>() -> HistoryRecorder {
    let q = Arc::new(Q::with_capacity(1 << 10));
    let rec = HistoryRecorder::new();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let q = Arc::clone(&q);
            let mut r = rec.handle();
            std::thread::spawn(move || {
                let mut h = q.register();
                for i in 0..PER {
                    let v = t * PER + i;
                    r.enqueue(v, || h.enqueue(v));
                    // One logical (blocking) dequeue per pair: claim-style
                    // try_dequeue retries belong to a single operation.
                    r.dequeue_until(|| h.dequeue());
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    rec
}

macro_rules! lin_test {
    ($name:ident, $q:ty) => {
        #[test]
        fn $name() {
            let rec = record_mpmc::<$q>();
            if let Err(v) = rec.check() {
                panic!("{} is not linearizable: {v}", <$q>::NAME);
            }
        }
    };
}

lin_test!(ffq_mpmc_is_linearizable, FfqMpmc);
lin_test!(wfqueue_is_linearizable, WfQueue);
lin_test!(lcrq_is_linearizable, Lcrq);
lin_test!(ccqueue_is_linearizable, CcQueue);
lin_test!(msqueue_is_linearizable, MsQueue);
lin_test!(htmqueue_is_linearizable, HtmQueue);
lin_test!(vyukov_is_linearizable, VyukovQueue);

/// FFQ SPMC: one recorded producer, several recorded consumers.
///
/// Consumers record *blocking* dequeues (`dequeue_until`): FFQ's logical
/// dequeue spans from the head fetch-and-add to the data read, so a
/// claim-carrying `try_dequeue` retry loop is one operation, not many
/// (recording it call-by-call reports spurious inversions — see the
/// lincheck crate docs).
#[test]
fn ffq_spmc_is_linearizable() {
    use std::sync::atomic::{AtomicU64, Ordering};

    const ITEMS: u64 = 30_000;
    let (mut tx, rx) = ffq::spmc::channel::<u64>(256);
    let rec = HistoryRecorder::new();
    // Each consumer reserves one item per recorded blocking dequeue, so all
    // ITEMS dequeues are claimed exactly once and every thread terminates.
    let reservations = Arc::new(AtomicU64::new(0));

    let consumers: Vec<_> = (0..3)
        .map(|_| {
            let mut rx = rx.clone();
            let mut r = rec.handle();
            let reservations = Arc::clone(&reservations);
            std::thread::spawn(move || loop {
                if reservations.fetch_add(1, Ordering::Relaxed) >= ITEMS {
                    break;
                }
                r.dequeue_until(|| rx.try_dequeue().ok());
            })
        })
        .collect();
    drop(rx);

    let mut r = rec.handle();
    for i in 0..ITEMS {
        r.enqueue(i, || tx.enqueue(i));
    }
    drop(tx);
    drop(r);
    for c in consumers {
        c.join().unwrap();
    }
    if let Err(v) = rec.check() {
        panic!("ffq spmc is not linearizable: {v}");
    }
}

/// FFQ SPMC batch operations: a batched producer against batched consumers.
///
/// Items of one `enqueue_many` / `dequeue_batch` call are recorded with the
/// call's whole interval (the linearizability granularity of a batch). The
/// consumers rely on the single-producer guarantee that a batch claim never
/// parks — each successful `dequeue_batch` is a self-contained episode — so
/// per-call recording is sound; see `ThreadRecorder::dequeue_batch`.
#[test]
fn ffq_spmc_batch_ops_are_linearizable() {
    use std::sync::atomic::{AtomicU64, Ordering};

    const ITEMS: u64 = 30_000;
    let (mut tx, rx) = ffq::spmc::channel::<u64>(256);
    let rec = HistoryRecorder::new();
    let consumed = Arc::new(AtomicU64::new(0));

    let consumers: Vec<_> = (0..3)
        .map(|t| {
            let mut rx = rx.clone();
            let mut r = rec.handle();
            let consumed = Arc::clone(&consumed);
            // Different batch sizes per consumer exercise partial harvests.
            let max = 4usize << t;
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                while consumed.load(Ordering::Relaxed) < ITEMS {
                    buf.clear();
                    let n = r.dequeue_batch(&mut buf, |b| rx.dequeue_batch(b, max));
                    if n == 0 {
                        std::thread::yield_now();
                    } else {
                        consumed.fetch_add(n as u64, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    drop(rx);

    let mut r = rec.handle();
    let mut next = 0u64;
    while next < ITEMS {
        let hi = (next + 64).min(ITEMS);
        let chunk: Vec<u64> = (next..hi).collect();
        r.enqueue_batch(&chunk, || {
            tx.enqueue_many(chunk.iter().copied());
        });
        next = hi;
    }
    drop(tx);
    drop(r);
    for c in consumers {
        c.join().unwrap();
    }
    if let Err(v) = rec.check() {
        panic!("ffq spmc batch ops are not linearizable: {v}");
    }
}

/// FFQ-m batched producers: `enqueue_many` rank runs under multi-producer
/// contention (DWCAS resolution, gap-loss recovery) still linearize.
///
/// Consumers stay per-item (`dequeue_until`): FFQ-m batch *claims* can park
/// mid-run and deliver in a later call, which per-call recording cannot
/// express — the producer side is what this history exercises.
#[test]
fn ffq_mpmc_batched_producers_are_linearizable() {
    use std::sync::atomic::{AtomicU64, Ordering};

    const PRODUCERS: u64 = 2;
    const PER: u64 = 10_000;
    let (tx, rx) = ffq::mpmc::channel::<u64>(64);
    let rec = HistoryRecorder::new();
    let reservations = Arc::new(AtomicU64::new(0));

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let mut tx = tx.clone();
            let mut r = rec.handle();
            std::thread::spawn(move || {
                let mut next = 0u64;
                while next < PER {
                    let hi = (next + 25).min(PER);
                    let chunk: Vec<u64> = (next..hi).map(|i| p * PER + i).collect();
                    r.enqueue_batch(&chunk, || {
                        tx.enqueue_many(chunk.iter().copied());
                    });
                    next = hi;
                }
            })
        })
        .collect();
    drop(tx);

    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let mut rx = rx.clone();
            let mut r = rec.handle();
            let reservations = Arc::clone(&reservations);
            std::thread::spawn(move || loop {
                if reservations.fetch_add(1, Ordering::Relaxed) >= PRODUCERS * PER {
                    break;
                }
                r.dequeue_until(|| rx.try_dequeue().ok());
            })
        })
        .collect();
    drop(rx);

    for p in producers {
        p.join().unwrap();
    }
    for c in consumers {
        c.join().unwrap();
    }
    if let Err(v) = rec.check() {
        panic!("ffq mpmc batched producers are not linearizable: {v}");
    }
}

/// FFQ SPSC with both sides batched: runs published with one release pass,
/// harvests mirrored with one head store.
#[test]
fn ffq_spsc_batch_is_linearizable() {
    const ITEMS: u64 = 50_000;
    let (mut tx, mut rx) = ffq::spsc::channel::<u64>(128);
    let rec = HistoryRecorder::new();
    let consumer = {
        let mut r = rec.handle();
        std::thread::spawn(move || {
            let mut buf = Vec::new();
            let mut n = 0u64;
            while n < ITEMS {
                buf.clear();
                let k = r.dequeue_batch(&mut buf, |b| rx.dequeue_batch(b, 32));
                if k == 0 {
                    std::thread::yield_now();
                }
                n += k as u64;
            }
        })
    };
    let mut r = rec.handle();
    let mut next = 0u64;
    while next < ITEMS {
        let hi = (next + 48).min(ITEMS);
        let chunk: Vec<u64> = (next..hi).collect();
        r.enqueue_batch(&chunk, || {
            tx.enqueue_many(chunk.iter().copied());
        });
        next = hi;
    }
    drop(r);
    consumer.join().unwrap();
    if let Err(v) = rec.check() {
        panic!("ffq spsc batch is not linearizable: {v}");
    }
}

/// FFQ SPSC: the fully relaxed variant still linearizes.
#[test]
fn ffq_spsc_is_linearizable() {
    let (mut tx, mut rx) = ffq::spsc::channel::<u64>(128);
    let rec = HistoryRecorder::new();
    let consumer = {
        let mut r = rec.handle();
        std::thread::spawn(move || {
            let mut n = 0u64;
            while n < 50_000 {
                if r.dequeue(|| rx.try_dequeue().ok()).is_some() {
                    n += 1;
                }
            }
        })
    };
    let mut r = rec.handle();
    for i in 0..50_000u64 {
        r.enqueue(i, || tx.enqueue(i));
    }
    drop(r);
    consumer.join().unwrap();
    if let Err(v) = rec.check() {
        panic!("ffq spsc is not linearizable: {v}");
    }
}

/// Unbounded SPMC: linearizability across segment boundaries. Tiny
/// segments (16 cells under 30k items) force ~2000 seams, so the history
/// repeatedly spans seal/link/advance/retire/recycle transitions — a rank
/// replayed by a recycled segment or an item lost at a seam shows up as a
/// FIFO violation.
#[test]
fn ffq_unbounded_spmc_is_linearizable_across_seams() {
    use std::sync::atomic::{AtomicU64, Ordering};

    const ITEMS: u64 = 30_000;
    let (mut tx, rx) = ffq::unbounded::spmc::channel::<u64>(16);
    let rec = HistoryRecorder::new();
    let reservations = Arc::new(AtomicU64::new(0));

    let consumers: Vec<_> = (0..3)
        .map(|_| {
            let mut rx = rx.clone();
            let mut r = rec.handle();
            let reservations = Arc::clone(&reservations);
            std::thread::spawn(move || loop {
                if reservations.fetch_add(1, Ordering::Relaxed) >= ITEMS {
                    break;
                }
                r.dequeue_until(|| rx.try_dequeue().ok());
            })
        })
        .collect();
    drop(rx);

    let mut r = rec.handle();
    for i in 0..ITEMS {
        r.enqueue(i, || tx.enqueue(i));
    }
    drop(tx);
    drop(r);
    for c in consumers {
        c.join().unwrap();
    }
    if let Err(v) = rec.check() {
        panic!("unbounded spmc is not linearizable across seams: {v}");
    }
}

/// Unbounded MPMC: contending producers roll via seal election (the
/// next-link CAS plus the poisoned rank dispenser) while consumers cross
/// the same seams; the recorded history must still be FIFO-linearizable.
#[test]
fn ffq_unbounded_mpmc_is_linearizable_across_seams() {
    use std::sync::atomic::{AtomicU64, Ordering};

    const PRODUCERS: u64 = 3;
    const PER: u64 = 8_000;
    let (tx, rx) = ffq::unbounded::mpmc::channel::<u64>(16);
    let rec = HistoryRecorder::new();
    let reservations = Arc::new(AtomicU64::new(0));

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let mut tx = tx.clone();
            let mut r = rec.handle();
            std::thread::spawn(move || {
                for i in 0..PER {
                    let v = p * PER + i;
                    r.enqueue(v, || tx.enqueue(v));
                }
            })
        })
        .collect();
    drop(tx);

    let consumers: Vec<_> = (0..3)
        .map(|_| {
            let mut rx = rx.clone();
            let mut r = rec.handle();
            let reservations = Arc::clone(&reservations);
            std::thread::spawn(move || loop {
                if reservations.fetch_add(1, Ordering::Relaxed) >= PRODUCERS * PER {
                    break;
                }
                r.dequeue_until(|| rx.try_dequeue().ok());
            })
        })
        .collect();
    drop(rx);

    for p in producers {
        p.join().unwrap();
    }
    for c in consumers {
        c.join().unwrap();
    }
    if let Err(v) = rec.check() {
        panic!("unbounded mpmc is not linearizable across seams: {v}");
    }
}

/// Sharded queue: the recorded concurrent history must satisfy the
/// `k`-relaxed FIFO specification for the exact `k = 3(N-1)B` the
/// geometry declares — no looser. Strict mode (one shard) must pass the
/// plain FIFO check.
#[test]
fn sharded_history_respects_its_declared_relaxation_bound() {
    const TOTAL: u64 = 30_000;
    let shards = 4;
    let block = 8;
    let k = ffq::shard::relaxation_bound(shards, block);
    let (mut tx, rx) = ffq::shard::channel_with_geometry::<u64>(512, shards, block);
    let rec = HistoryRecorder::new();
    let producer = {
        let mut r = rec.handle();
        std::thread::spawn(move || {
            for v in 0..TOTAL {
                r.enqueue(v, || tx.enqueue(v));
            }
        })
    };
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let mut rx = rx.clone();
            let mut r = rec.handle();
            std::thread::spawn(move || {
                // One blocking dequeue per recorded operation; `None`
                // (disconnected after drain) ends the history.
                while r.dequeue(|| rx.dequeue().ok()).is_some() {}
            })
        })
        .collect();
    drop(rx);
    producer.join().unwrap();
    for c in consumers {
        c.join().unwrap();
    }
    if let Err(v) = rec.check_relaxed(k) {
        panic!("sharded history violates its declared bound k={k}: {v}");
    }
}

/// Strict-ordering sharded queue degrades to one shard and is exactly
/// FIFO: the unrelaxed checker must accept its histories.
#[test]
fn sharded_strict_mode_is_linearizable_fifo() {
    const TOTAL: u64 = 20_000;
    let (mut tx, rx) = ffq::shard::channel::<u64>(256, ffq::shard::Ordering::Strict);
    let rec = HistoryRecorder::new();
    let producer = {
        let mut r = rec.handle();
        std::thread::spawn(move || {
            for v in 0..TOTAL {
                r.enqueue(v, || tx.enqueue(v));
            }
        })
    };
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let mut rx = rx.clone();
            let mut r = rec.handle();
            std::thread::spawn(move || while r.dequeue(|| rx.dequeue().ok()).is_some() {})
        })
        .collect();
    drop(rx);
    producer.join().unwrap();
    for c in consumers {
        c.join().unwrap();
    }
    if let Err(v) = rec.check() {
        panic!("strict sharded history is not FIFO-linearizable: {v}");
    }
}
