//! Property-based tests over the core invariants.

use std::collections::VecDeque;

use proptest::prelude::*;

use ffq::cell::{CompactCell, PaddedCell};
use ffq::layout::{IndexMap, LinearMap, RotateMap};

/// Single-threaded op sequences on SPSC FFQ must behave exactly like a
/// bounded VecDeque (the sequential specification of a FIFO queue).
fn check_against_model<C, M>(capacity: usize, ops: &[Op])
where
    C: ffq::cell::CellSlot<u64>,
    M: IndexMap,
{
    let (mut tx, mut rx) = ffq::spsc::channel_with::<u64, C, M>(capacity);
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut next = 0u64;
    for op in ops {
        match op {
            Op::Enqueue => {
                // Mirror the paper's sizing assumption: only enqueue when
                // the model says there is room (blocking enqueue on a full
                // queue would wait for the absent consumer thread).
                if model.len() < capacity {
                    tx.enqueue(next);
                    model.push_back(next);
                    next += 1;
                }
            }
            Op::Dequeue => {
                let got = rx.try_dequeue().ok();
                let want = model.pop_front();
                assert_eq!(got, want, "divergence from sequential model");
            }
        }
    }
    // Drain both; remaining contents must agree.
    while let Some(want) = model.pop_front() {
        assert_eq!(rx.try_dequeue().ok(), Some(want));
    }
    assert!(rx.try_dequeue().is_err());
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Enqueue,
    Dequeue,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::Enqueue), Just(Op::Dequeue)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spsc_matches_vecdeque_model(
        cap_log2 in 1u32..8,
        ops in prop::collection::vec(op_strategy(), 0..400),
    ) {
        let capacity = 1usize << cap_log2;
        check_against_model::<PaddedCell<u64>, LinearMap>(capacity, &ops);
        check_against_model::<CompactCell<u64>, RotateMap>(capacity, &ops);
    }

    #[test]
    fn spmc_single_consumer_matches_model(
        cap_log2 in 1u32..8,
        ops in prop::collection::vec(op_strategy(), 0..400),
    ) {
        // The SPMC variant driven by one consumer is also a sequential FIFO.
        let capacity = 1usize << cap_log2;
        let (mut tx, mut rx) = ffq::spmc::channel::<u64>(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for op in &ops {
            match op {
                Op::Enqueue => {
                    if model.len() < capacity {
                        tx.enqueue(next);
                        model.push_back(next);
                        next += 1;
                    }
                }
                Op::Dequeue => {
                    // A pending rank can make one specific dequeue lag: with
                    // a single consumer the pending rank is always the next
                    // undequeued rank, so results still match the model.
                    let got = rx.try_dequeue().ok();
                    let want = model.pop_front();
                    prop_assert_eq!(got, want);
                }
            }
        }
    }

    #[test]
    fn mpmc_single_threaded_matches_model(
        cap_log2 in 1u32..8,
        ops in prop::collection::vec(op_strategy(), 0..400),
    ) {
        let capacity = 1usize << cap_log2;
        let (mut tx, mut rx) = ffq::mpmc::channel::<u64>(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for op in &ops {
            match op {
                Op::Enqueue => {
                    if model.len() < capacity {
                        tx.enqueue(next);
                        model.push_back(next);
                        next += 1;
                    }
                }
                Op::Dequeue => {
                    let got = rx.try_dequeue().ok();
                    let want = model.pop_front();
                    prop_assert_eq!(got, want);
                }
            }
        }
    }

    /// Single-threaded op sequences on the unbounded SPSC tier behave
    /// exactly like an *unbounded* VecDeque: enqueue always succeeds (a
    /// full segment rolls instead of rejecting), and dequeues replay the
    /// stream in order across every segment seam. Tiny segments force
    /// heavy roll/retire/recycle traffic, so a recycled segment replaying
    /// a stale rank or dropping a live one diverges from the model.
    #[test]
    fn unbounded_spsc_matches_vecdeque_model(
        seg_cap_log2 in 1u32..5,
        ops in prop::collection::vec(op_strategy(), 0..400),
    ) {
        let (mut tx, mut rx) = ffq::unbounded::spsc::channel::<u64>(1usize << seg_cap_log2);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for op in &ops {
            match op {
                Op::Enqueue => {
                    tx.enqueue(next);
                    model.push_back(next);
                    next += 1;
                }
                Op::Dequeue => {
                    let got = rx.try_dequeue().ok();
                    let want = model.pop_front();
                    prop_assert_eq!(got, want, "divergence at a segment seam");
                }
            }
        }
        while let Some(want) = model.pop_front() {
            prop_assert_eq!(rx.try_dequeue().ok(), Some(want));
        }
        prop_assert!(rx.try_dequeue().is_err());
        // Conservation across the segment machinery: everything sealed was
        // either retired or is still reachable; frees never exceed retires.
        let s = tx.seg_stats().merge(rx.seg_stats());
        prop_assert!(s.segments_freed <= s.segments_retired);
        prop_assert!(s.segments_retired <= s.segments_advanced);
        prop_assert!(s.freelist_hits <= s.segments_freed);
    }

    /// Same sequential-model check for the unbounded MPMC tier driven by
    /// one thread: the poisoned-dispenser roll path and the claim/resolve
    /// protocol must still look like a FIFO through arbitrary recycling.
    #[test]
    fn unbounded_mpmc_single_threaded_matches_model(
        seg_cap_log2 in 1u32..5,
        ops in prop::collection::vec(op_strategy(), 0..400),
    ) {
        let (mut tx, mut rx) = ffq::unbounded::mpmc::channel::<u64>(1usize << seg_cap_log2);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for op in &ops {
            match op {
                Op::Enqueue => {
                    tx.enqueue(next);
                    model.push_back(next);
                    next += 1;
                }
                Op::Dequeue => {
                    let got = rx.try_dequeue().ok();
                    let want = model.pop_front();
                    prop_assert_eq!(got, want, "divergence at a segment seam");
                }
            }
        }
        while let Some(want) = model.pop_front() {
            prop_assert_eq!(rx.try_dequeue().ok(), Some(want));
        }
    }

    /// Segment recycling under real concurrency: a producer streams random
    /// burst sizes through tiny segments while two workers drain. However
    /// segments recycle, no value may ever be observed twice and each
    /// consumer's view of the single producer's stream must stay strictly
    /// increasing across seams.
    #[test]
    fn unbounded_spmc_recycling_is_exactly_once(
        seg_cap_log2 in 1u32..4,
        bursts in prop::collection::vec(1usize..24, 1..24),
    ) {
        let (mut tx, rx) = ffq::unbounded::spmc::channel::<u64>(1usize << seg_cap_log2);
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let mut rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.dequeue() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        let mut next = 0u64;
        for burst in &bursts {
            for _ in 0..*burst {
                tx.enqueue(next);
                next += 1;
            }
        }
        drop(tx);
        let mut all = Vec::new();
        for h in workers {
            let got = h.join().unwrap();
            prop_assert!(
                got.windows(2).all(|w| w[0] < w[1]),
                "per-consumer FIFO violated across seams: {:?}",
                got
            );
            all.extend(got);
        }
        all.sort_unstable();
        prop_assert_eq!(all, (0..next).collect::<Vec<_>>());
    }

    /// Both index mappings are bijections for every power-of-two size.
    #[test]
    fn index_maps_are_bijective(cap_log2 in 1u32..14) {
        let n = 1i64 << cap_log2;
        let mut seen_linear = vec![false; n as usize];
        let mut seen_rotate = vec![false; n as usize];
        for r in 0..n {
            let l = LinearMap::slot(r, cap_log2);
            let t = RotateMap::slot(r, cap_log2);
            prop_assert!(!seen_linear[l], "linear collision at {}", r);
            prop_assert!(!seen_rotate[t], "rotate collision at {}", r);
            seen_linear[l] = true;
            seen_rotate[t] = true;
        }
    }

    /// Index maps depend only on rank mod N.
    #[test]
    fn index_maps_are_periodic(cap_log2 in 1u32..14, rank in 0i64..1_000_000) {
        let n = 1i64 << cap_log2;
        prop_assert_eq!(
            LinearMap::slot(rank, cap_log2),
            LinearMap::slot(rank % n, cap_log2)
        );
        prop_assert_eq!(
            RotateMap::slot(rank, cap_log2),
            RotateMap::slot(rank % n, cap_log2)
        );
    }

    /// The STM commits random read-modify-write batches equivalently to
    /// direct sequential execution.
    #[test]
    fn stm_matches_sequential_model(
        words in 1usize..16,
        batches in prop::collection::vec(
            prop::collection::vec((0usize..16, 0u64..100), 1..6),
            0..40
        ),
    ) {
        let region = ffq_htm::TxRegion::new(words, 8);
        let mut model = vec![0u64; words];
        for batch in &batches {
            region.transaction(|tx| {
                for &(idx, add) in batch {
                    let idx = idx % words;
                    let v = tx.read(idx)?;
                    tx.write(idx, v.wrapping_add(add))?;
                }
                Ok(())
            });
            for &(idx, add) in batch {
                let idx = idx % words;
                model[idx] = model[idx].wrapping_add(add);
            }
        }
        for (i, &want) in model.iter().enumerate() {
            prop_assert_eq!(region.peek(i), want);
        }
    }

    /// Cache hit+miss accounting is conserved and hit ratios are sane for
    /// arbitrary access streams.
    #[test]
    fn cache_accounting_conserved(
        accesses in prop::collection::vec((0u64..512, any::<bool>()), 1..600),
    ) {
        let mut cache = ffq_cachesim::cache::Cache::new(4096, 4);
        let mut lookups = 0u64;
        for &(line, write) in &accesses {
            if cache.access(line, write) == ffq_cachesim::cache::Lookup::Miss {
                cache.fill(line, write);
            }
            lookups += 1;
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, lookups);
        prop_assert!((0.0..=1.0).contains(&s.hit_ratio()));
        // A filled line is present until evicted; immediately re-touching
        // the last line must hit.
        let last = accesses.last().unwrap().0;
        prop_assert!(cache.contains(last));
    }

    /// Request/response wire encodings round-trip for all field values.
    #[test]
    fn enclave_wire_roundtrip(e in any::<u16>(), a in any::<u16>(), s in any::<u32>(), v in any::<u16>()) {
        let req = ffq_enclave::syscall::Request { enclave_thread: e, app_thread: a, seq: s };
        prop_assert_eq!(ffq_enclave::syscall::Request::decode(req.encode()), req);
        let resp = ffq_enclave::syscall::Response { app_thread: a, seq: s, value: v };
        prop_assert_eq!(ffq_enclave::syscall::Response::decode(resp.encode()), resp);
    }

    /// Kernel cpu-list strings round-trip through the parser.
    #[test]
    fn cpu_list_parses_composed_strings(ids in prop::collection::btree_set(0usize..256, 1..20)) {
        let s = ids.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",");
        let parsed = ffq_affinity::parse_cpu_list(&s).unwrap();
        prop_assert_eq!(parsed, ids.into_iter().collect::<Vec<_>>());
    }
}
