//! Integration tests for the simulator substrates: the cache model must
//! reproduce the paper's qualitative claims, and the enclave framework must
//! produce the Figure 7 orderings, end to end.

use std::time::Duration;

use ffq_cachesim::{simulate_spsc, CellLayoutKind, SimConfig, SimPlacement};
use ffq_enclave::{measure_latency, run_throughput, EnclaveConfig, Variant};

fn sim(queue_log2: u32, placement: SimPlacement) -> ffq_cachesim::SimReport {
    let mut cfg = SimConfig::fig45(1 << queue_log2, placement);
    cfg.ops = 400_000;
    simulate_spsc(&cfg)
}

/// Fig. 3/5 claim: throughput and L3 behaviour degrade once the queue
/// outgrows the L3 (8 MiB = 2^17 aligned cells in the Skylake model).
#[test]
fn queue_size_sweep_has_the_papers_knee() {
    let within = sim(14, SimPlacement::OtherCore); // 1 MiB footprint
    let beyond = sim(20, SimPlacement::OtherCore); // 64 MiB footprint
    assert!(
        beyond.l3_hit_ratio < within.l3_hit_ratio,
        "L3 hit ratio should drop past capacity: {} !< {}",
        beyond.l3_hit_ratio,
        within.l3_hit_ratio
    );
    assert!(beyond.mem_bytes_per_kcycle > within.mem_bytes_per_kcycle * 2.0);
    assert!(beyond.ops_per_kcycle < within.ops_per_kcycle);
    assert!(beyond.ipc < within.ipc, "IPC must fall with memory stalls");
}

/// Fig. 4 claim: sibling HT holds better private-cache hit ratios than
/// cross-core placement (shared L1/L2 vs. coherence transfers).
#[test]
fn sibling_ht_beats_other_core_on_hit_ratio() {
    let sib = sim(10, SimPlacement::SiblingHt);
    let other = sim(10, SimPlacement::OtherCore);
    assert!(sib.l1_hit_ratio > other.l1_hit_ratio);
    assert!(sib.remote_transfers < other.remote_transfers);
}

/// Fig. 2 direction: compact cells halve the footprint, so at sizes where
/// padded cells burst a cache level the compact layout keeps hitting.
#[test]
fn compact_layout_has_smaller_footprint_effect() {
    let mut padded = SimConfig::fig45(1 << 18, SimPlacement::OtherCore);
    padded.ops = 400_000;
    let mut compact = padded.clone();
    compact.layout = CellLayoutKind::Compact;
    let rp = simulate_spsc(&padded);
    let rc = simulate_spsc(&compact);
    assert!(
        rc.mem_bytes < rp.mem_bytes,
        "compact {} >= padded {}",
        rc.mem_bytes,
        rp.mem_bytes
    );
}

/// The SPMC head costs one extra access (the fetch-and-add) per dequeue.
/// With a single simulated consumer the head line stays core-local — the
/// paper's "SPSC removes the need for an atomic increment" gain shows up as
/// per-op work, not coherence (that needs multiple consumers).
#[test]
fn shared_head_costs_an_access_per_dequeue() {
    // Serialized mapping: every access lands on the single clock, so the
    // extra head access is visible in wall-clock (in the parallel mappings
    // the producer's 3-access path hides the consumer-side cost).
    let mut spsc = SimConfig::fig45(1 << 10, SimPlacement::SameHt);
    spsc.ops = 200_000;
    let mut spmc = spsc.clone();
    spmc.shared_head = true;
    let a = simulate_spsc(&spsc);
    let b = simulate_spsc(&spmc);
    assert!(
        b.ops_per_kcycle < a.ops_per_kcycle,
        "head FAA should cost throughput: {} !< {}",
        b.ops_per_kcycle,
        a.ops_per_kcycle
    );
    // And it is pure local-hit work: coherence traffic is unchanged.
    assert_eq!(b.invalidations, a.invalidations);
    assert_eq!(b.remote_transfers, a.remote_transfers);
}

/// Fig. 7 (right) ordering: native < ffq <= mpmc on latency. The FFQ-vs-MPMC
/// gap is contention-driven and noisy on a 1-core host, so only the
/// native-vs-queued ordering is asserted strictly.
#[test]
fn enclave_latency_ordering() {
    let cfg = EnclaveConfig::free();
    let native = measure_latency(Variant::Native, 3_000, cfg);
    let ffq = measure_latency(Variant::SgxFfq, 3_000, cfg);
    let mpmc = measure_latency(Variant::SgxMpmc, 3_000, cfg);
    assert!(native.avg_cycles < ffq.avg_cycles);
    assert!(native.avg_cycles < mpmc.avg_cycles);
}

/// Fig. 7 (left) plumbing: all three variants sustain load with several
/// producers and proxies, and enclave accounting moves.
#[test]
fn enclave_throughput_all_variants_sustained() {
    for variant in Variant::ALL {
        let r = run_throughput(
            variant,
            2,
            1,
            4,
            Duration::from_millis(150),
            EnclaveConfig::free(),
        );
        assert!(r.completed > 100, "{}: only {}", r.variant, r.completed);
        assert!(r.ops_per_sec > 0.0);
    }
}

/// The enclave transition model burns real time: a run with expensive
/// transitions completes fewer calls than a free one under idle pressure.
#[test]
fn transition_cost_is_observable() {
    let cheap = run_throughput(
        Variant::SgxFfq,
        1,
        1,
        1,
        Duration::from_millis(150),
        EnclaveConfig::free(),
    );
    let costly = run_throughput(
        Variant::SgxFfq,
        1,
        1,
        1,
        Duration::from_millis(150),
        EnclaveConfig {
            transition_cycles: 200_000,
            memory_tax_cycles: 0,
        },
    );
    // With one app thread the enclave loop goes idle after every submit, so
    // transitions happen constantly; when each burns 200k cycles, far fewer
    // fit in the same wall-clock window. (Completions themselves are
    // scheduling-bound on a 1-core host, so they are not asserted.)
    assert!(cheap.transitions > 0);
    assert!(costly.transitions > 0);
    assert!(
        costly.transitions < cheap.transitions,
        "costly {} !< cheap {}",
        costly.transitions,
        cheap.transitions
    );
}
