//! Property-based coverage for the batch operations and the pending-rank
//! FIFO: interleaved `claim_batch` / `dequeue_batch` / `try_dequeue` on one
//! consumer handle must never lose, duplicate, or reorder that consumer's
//! claimed ranks — a consumer holding a run of unfilled ranks widens the
//! gap-announcement race windows of §III-B, so this is where the machinery
//! is most likely to break.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use ffq::TryDequeueError;

/// Operations a single consumer (plus the guarded producer) can interleave.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Enqueue up to `n` items (bounded by free space so the single thread
    /// never blocks).
    Enqueue(u8),
    /// Batch-enqueue up to `n` items under the same guard.
    EnqueueMany(u8),
    /// Claim a run of `k` ranks up front — deliberately allowed to overrun
    /// the published tail, parking unsatisfied ranks.
    ClaimBatch(u8),
    /// Harvest up to `max` items.
    DequeueBatch(u8),
    /// One per-item dequeue, resuming the oldest parked rank first.
    TryDequeue,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..16).prop_map(Op::Enqueue),
        (1u8..16).prop_map(Op::EnqueueMany),
        (1u8..8).prop_map(Op::ClaimBatch),
        (1u8..32).prop_map(Op::DequeueBatch),
        Just(Op::TryDequeue),
    ]
}

/// Runs one op sequence against the sequential FIFO model. The producer is
/// guarded by the model (never enqueues past capacity), so no gaps are ever
/// created and every dequeue must match the model exactly: `try_dequeue`
/// yields the model front iff the model is non-empty, and
/// `dequeue_batch(max)` yields exactly `min(max, len)` items in FIFO order —
/// regardless of how many ranks were pre-claimed or parked.
fn check_batch_ops_against_model(capacity: usize, ops: &[Op]) {
    let (mut tx, mut rx) = ffq::spmc::channel::<u64>(capacity);
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut next = 0u64;
    let mut buf = Vec::new();
    for op in ops {
        match *op {
            Op::Enqueue(n) => {
                for _ in 0..(n as usize).min(capacity - model.len()) {
                    tx.enqueue(next);
                    model.push_back(next);
                    next += 1;
                }
            }
            Op::EnqueueMany(n) => {
                let k = (n as usize).min(capacity - model.len());
                assert_eq!(tx.enqueue_many(next..next + k as u64), k);
                for _ in 0..k {
                    model.push_back(next);
                    next += 1;
                }
            }
            Op::ClaimBatch(k) => {
                rx.claim_batch(k as usize);
            }
            Op::DequeueBatch(max) => {
                buf.clear();
                let want = (max as usize).min(model.len());
                let got = rx.dequeue_batch(&mut buf, max as usize);
                assert_eq!(got, want, "dequeue_batch harvested a wrong count");
                for v in &buf {
                    assert_eq!(Some(*v), model.pop_front(), "batch out of order");
                }
            }
            Op::TryDequeue => {
                assert_eq!(rx.try_dequeue().ok(), model.pop_front());
            }
        }
    }
    // Whatever ranks are still parked, nothing already published may be
    // lost or reordered.
    while let Some(want) = model.pop_front() {
        assert_eq!(rx.try_dequeue().ok(), Some(want));
    }
    assert!(rx.try_dequeue().is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn pending_rank_fifo_never_loses_or_reorders(
        cap_log2 in 1u32..8,
        ops in prop::collection::vec(op_strategy(), 0..300),
    ) {
        check_batch_ops_against_model(1usize << cap_log2, &ops);
    }

    /// Same property on the MPMC variant (whose batch claims can park
    /// mid-run because producers resolve ranks after taking them).
    #[test]
    fn mpmc_batch_ops_match_model(
        cap_log2 in 2u32..8,
        ops in prop::collection::vec(op_strategy(), 0..300),
    ) {
        let capacity = 1usize << cap_log2;
        let (mut tx, mut rx) = ffq::mpmc::channel::<u64>(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        let mut buf = Vec::new();
        for op in &ops {
            match *op {
                Op::Enqueue(n) => {
                    for _ in 0..(n as usize).min(capacity - model.len()) {
                        tx.enqueue(next);
                        model.push_back(next);
                        next += 1;
                    }
                }
                Op::EnqueueMany(n) => {
                    let k = (n as usize).min(capacity - model.len());
                    prop_assert_eq!(tx.enqueue_many(next..next + k as u64), k);
                    for _ in 0..k {
                        model.push_back(next);
                        next += 1;
                    }
                }
                Op::ClaimBatch(k) => rx.claim_batch(k as usize),
                Op::DequeueBatch(max) => {
                    buf.clear();
                    let want = (max as usize).min(model.len());
                    prop_assert_eq!(rx.dequeue_batch(&mut buf, max as usize), want);
                    for v in &buf {
                        prop_assert_eq!(Some(*v), model.pop_front());
                    }
                }
                Op::TryDequeue => {
                    prop_assert_eq!(rx.try_dequeue().ok(), model.pop_front());
                }
            }
        }
        while let Some(want) = model.pop_front() {
            prop_assert_eq!(rx.try_dequeue().ok(), Some(want));
        }
    }

    /// SPSC batch harvest against the same model (no claims — the head is
    /// private — but the single-mirror-store path must stay exact).
    #[test]
    fn spsc_dequeue_batch_matches_model(
        cap_log2 in 1u32..8,
        ops in prop::collection::vec(op_strategy(), 0..300),
    ) {
        let capacity = 1usize << cap_log2;
        let (mut tx, mut rx) = ffq::spsc::channel::<u64>(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        let mut buf = Vec::new();
        for op in &ops {
            match *op {
                Op::Enqueue(n) | Op::EnqueueMany(n) => {
                    let k = (n as usize).min(capacity - model.len());
                    prop_assert_eq!(tx.enqueue_many(next..next + k as u64), k);
                    for _ in 0..k {
                        model.push_back(next);
                        next += 1;
                    }
                }
                Op::ClaimBatch(_) => {} // no claims on SPSC
                Op::DequeueBatch(max) => {
                    buf.clear();
                    let want = (max as usize).min(model.len());
                    prop_assert_eq!(rx.dequeue_batch(&mut buf, max as usize), want);
                    for v in &buf {
                        prop_assert_eq!(Some(*v), model.pop_front());
                    }
                }
                Op::TryDequeue => {
                    prop_assert_eq!(rx.try_dequeue().ok(), model.pop_front());
                }
            }
        }
        while let Some(want) = model.pop_front() {
            prop_assert_eq!(rx.try_dequeue().ok(), Some(want));
        }
    }
}

/// Cross-thread stress: one batched producer against mixed batch and
/// per-item consumers on the same SPMC queue. No item may be lost or
/// duplicated, and each consumer must see *its* items in FIFO order
/// (claims are taken in rank order, per handle).
#[test]
fn spmc_mixed_batch_and_per_item_consumers_stress() {
    const TOTAL: u64 = 60_000;
    let (mut tx, rx) = ffq::spmc::channel::<u64>(256);
    let received = Arc::new(AtomicU64::new(0));

    // Consumer 0: pure per-item. 1: pure batch. 2: pre-claims runs.
    let consumers: Vec<_> = (0..3)
        .map(|style| {
            let mut rx = rx.clone();
            let received = Arc::clone(&received);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                let mut buf = Vec::new();
                loop {
                    let n = match style {
                        0 => 0,
                        1 => rx.dequeue_batch(&mut buf, 32),
                        _ => {
                            if rx.pending_ranks() == 0 && rx.len_hint() >= 4 {
                                rx.claim_batch(4);
                            }
                            rx.dequeue_batch(&mut buf, 8)
                        }
                    };
                    if n > 0 {
                        received.fetch_add(n as u64, Ordering::Relaxed);
                        got.append(&mut buf);
                        continue;
                    }
                    match rx.try_dequeue() {
                        Ok(v) => {
                            received.fetch_add(1, Ordering::Relaxed);
                            got.push(v);
                        }
                        Err(TryDequeueError::Empty) => std::thread::yield_now(),
                        Err(TryDequeueError::Disconnected) => return got,
                    }
                }
            })
        })
        .collect();
    drop(rx);

    let mut next = 0u64;
    while next < TOTAL {
        let hi = (next + 37).min(TOTAL);
        tx.enqueue_many(next..hi);
        next = hi;
    }
    drop(tx);

    let mut all = Vec::new();
    for c in consumers {
        let got = c.join().unwrap();
        // Per-consumer FIFO: a single producer's values are published in
        // rank order and each handle harvests its claims in claim order.
        for w in got.windows(2) {
            assert!(w[0] < w[1], "consumer saw {} before {}", w[0], w[1]);
        }
        all.extend(got);
    }
    assert_eq!(all.len() as u64, TOTAL, "items lost or duplicated");
    all.sort_unstable();
    for (i, v) in all.iter().enumerate() {
        assert_eq!(*v, i as u64);
    }
    assert_eq!(received.load(Ordering::Relaxed), TOTAL);
}
