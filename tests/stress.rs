//! Cross-crate stress tests: the FFQ variants under hostile interleavings.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ffq::TryDequeueError;

/// A tiny queue, many items, many consumers: constant wrap-around and gap
/// pressure.
#[test]
fn spmc_tiny_queue_high_pressure() {
    const ITEMS: u64 = 60_000;
    let (mut tx, rx) = ffq::spmc::channel::<u64>(8);
    let consumers: Vec<_> = (0..4)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.dequeue() {
                    got.push(v);
                }
                got
            })
        })
        .collect();
    drop(rx);
    for i in 0..ITEMS {
        tx.enqueue(i);
    }
    drop(tx);
    let mut all: Vec<u64> = consumers
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
}

/// A deliberately stalled consumer holds a claimed rank while the producer
/// laps the array many times — the "slow consumer" scenario that creates
/// gap announcements for the same cell repeatedly (§III-A).
#[test]
fn spmc_stalled_consumer_gap_storm() {
    let (mut tx, rx) = ffq::spmc::channel::<u64>(16);
    let mut slow = rx.clone();
    let mut fast = rx.clone();
    drop(rx);

    // The slow consumer claims a rank while the queue is empty, then sits
    // on it (pending) for the whole test.
    assert_eq!(slow.try_dequeue(), Err(TryDequeueError::Empty));

    // The producer laps the array; the fast consumer keeps up.
    let mut received = Vec::new();
    for i in 0..10_000u64 {
        tx.enqueue(i);
        loop {
            match fast.try_dequeue() {
                Ok(v) => {
                    received.push(v);
                    break;
                }
                // The item may be destined for the slow consumer's pending
                // rank — it only claims one, so at most one item is parked.
                Err(TryDequeueError::Empty) => {
                    if let Ok(v) = slow.try_dequeue() {
                        received.push(v);
                        break;
                    }
                }
                Err(TryDequeueError::Disconnected) => unreachable!(),
            }
        }
    }
    received.sort_unstable();
    assert_eq!(received, (0..10_000).collect::<Vec<_>>());
    assert!(tx.stats().enqueued == 10_000);
}

/// MPMC with more threads than cores, constantly yielding: exercises the
/// claimed-cell (-2) window and the gap DWCAS races of Algorithm 2.
#[test]
fn mpmc_oversubscribed_yield_storm() {
    const PRODUCERS: u64 = 6;
    const CONSUMERS: usize = 6;
    const PER: u64 = 8_000;
    let (tx, rx) = ffq::mpmc::channel::<u64>(32); // tiny: maximal conflicts
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let mut tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..PER {
                    tx.enqueue(p * PER + i);
                    if i % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    drop(tx);
    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match rx.try_dequeue() {
                        Ok(v) => got.push(v),
                        Err(TryDequeueError::Empty) => std::thread::yield_now(),
                        Err(TryDequeueError::Disconnected) => break,
                    }
                }
                got
            })
        })
        .collect();
    drop(rx);
    for p in producers {
        p.join().unwrap();
    }
    let all: Vec<u64> = consumers
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect();
    assert_eq!(all.len() as u64, PRODUCERS * PER);
    let set: HashSet<u64> = all.iter().copied().collect();
    assert_eq!(set.len(), all.len(), "duplicates under yield storm");
}

/// Dropping a consumer with a *published* pending item must recycle the
/// cell (documented drop behaviour), keeping the queue fully usable.
#[test]
fn consumer_drop_recovers_published_pending() {
    let (mut tx, rx) = ffq::spmc::channel::<u64>(8);
    let mut doomed = rx.clone();
    let mut survivor = rx.clone();
    drop(rx);

    // doomed claims rank 0 while empty...
    assert!(doomed.try_dequeue().is_err());
    // ...the item for rank 0 then arrives...
    tx.enqueue(42);
    // ...and doomed dies without consuming it. Its Drop must free cell 0.
    drop(doomed);

    // The slot is reusable: fill the whole array twice over.
    for round in 0..2 {
        for i in 0..8u64 {
            tx.enqueue(round * 8 + i);
        }
        for _ in 0..8 {
            assert!(survivor.dequeue().is_ok());
        }
    }
}

/// Producer dropped while consumers are blocked in `dequeue()`: all of them
/// must wake with `Disconnected`, not hang.
#[test]
fn blocking_consumers_wake_on_disconnect() {
    let (tx, rx) = ffq::spmc::channel::<u64>(64);
    let woke = Arc::new(AtomicBool::new(false));
    let consumers: Vec<_> = (0..3)
        .map(|_| {
            let mut rx = rx.clone();
            let woke = Arc::clone(&woke);
            std::thread::spawn(move || {
                // Blocks until disconnection (queue stays empty).
                assert_eq!(rx.dequeue(), Err(ffq::Disconnected));
                woke.store(true, Ordering::Relaxed);
            })
        })
        .collect();
    drop(rx);
    std::thread::sleep(Duration::from_millis(50));
    drop(tx);
    for c in consumers {
        c.join().unwrap();
    }
    assert!(woke.load(Ordering::Relaxed));
}

/// The SPSC pair streaming boxed (heap) payloads across threads while the
/// queue wraps thousands of times: no leaks, no double frees (asserted via
/// drop counting).
#[test]
fn spsc_boxed_payload_drop_balance() {
    use std::sync::atomic::AtomicI64;
    static LIVE: AtomicI64 = AtomicI64::new(0);
    struct Tracked(#[allow(dead_code)] u64);
    impl Tracked {
        fn new(v: u64) -> Self {
            LIVE.fetch_add(1, Ordering::Relaxed);
            Tracked(v)
        }
    }
    impl Drop for Tracked {
        fn drop(&mut self) {
            LIVE.fetch_sub(1, Ordering::Relaxed);
        }
    }

    {
        let (mut tx, mut rx) = ffq::spsc::channel::<Tracked>(16);
        let t = std::thread::spawn(move || {
            for i in 0..50_000u64 {
                tx.enqueue(Tracked::new(i));
            }
        });
        let mut n = 0u64;
        // Consume most but not all, leaving some for queue-drop cleanup.
        while n < 49_990 {
            if rx.dequeue().is_ok() {
                n += 1;
            }
        }
        t.join().unwrap();
    }
    assert_eq!(
        LIVE.load(Ordering::Relaxed),
        0,
        "payloads leaked or double-dropped"
    );
}

/// try_enqueue storms against a full queue: the counter pre-check rejects
/// each attempt in O(1), and nothing is lost or duplicated once draining
/// resumes.
#[test]
fn full_queue_try_enqueue_storm_stays_consistent() {
    let (mut tx, mut rx) = ffq::spmc::channel::<u64>(4);
    for i in 0..4 {
        tx.try_enqueue(i).unwrap();
    }
    // 100 hopeless attempts: each burns a full scan's worth of ranks.
    for _ in 0..100 {
        assert!(tx.try_enqueue(999).is_err());
    }
    assert_eq!(tx.stats().full_rejections, 100);
    // Drain and refill repeatedly; FIFO per producer must survive.
    let mut expected = vec![0, 1, 2, 3];
    let drained: Vec<u64> = std::iter::from_fn(|| rx.try_dequeue().ok()).collect();
    assert_eq!(drained, expected);
    for i in 10..14u64 {
        tx.enqueue(i);
    }
    expected = vec![10, 11, 12, 13];
    let drained: Vec<u64> = std::iter::from_fn(|| rx.try_dequeue().ok()).collect();
    assert_eq!(drained, expected);
}
