//! Every comparator queue cross-checked against the mutex-protected
//! reference model, sequentially and concurrently.

use std::collections::HashSet;
use std::sync::Arc;

use ffq_baselines::{
    ccqueue::CcQueue, ffqueue::FfqMpmc, htmqueue::HtmQueue, lcrq::Lcrq, msqueue::MsQueue,
    vyukov::VyukovQueue, wfqueue::WfQueue, BenchHandle, BenchQueue,
};

/// Deterministic pseudo-random op tape shared by all queues.
fn op_tape(len: usize, seed: u64) -> Vec<bool> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 0
        })
        .collect()
}

/// Applies the same op tape to the queue and a VecDeque; results must agree
/// exactly (single-threaded linearizability).
fn sequential_equivalence<Q: BenchQueue>() {
    let q = Arc::new(Q::with_capacity(64));
    let mut h = q.register();
    let mut model = std::collections::VecDeque::new();
    let mut next = 0u64;
    for &is_enq in &op_tape(2_000, 0xC0FFEE) {
        if is_enq {
            if model.len() < 64 {
                h.enqueue(next);
                model.push_back(next);
                next += 1;
            }
        } else {
            assert_eq!(h.dequeue(), model.pop_front(), "{} diverged", Q::NAME);
        }
    }
    while let Some(want) = model.pop_front() {
        assert_eq!(h.dequeue(), Some(want), "{} diverged in drain", Q::NAME);
    }
    assert_eq!(h.dequeue(), None);
}

/// Concurrent checksum: N threads enqueue disjoint ranges and collectively
/// dequeue everything; union must be exact.
///
/// Each dequeue retries until it yields an item — the paper's benchmark
/// protocol. This matters for FFQ: a thread that gives up on a transient
/// `None` and drops its handle forfeits a claimed rank, orphaning one item
/// (documented drop semantics); pairing enqueue with a successful dequeue
/// guarantees every thread exits with no claim outstanding.
fn concurrent_checksum<Q: BenchQueue>() {
    const THREADS: u64 = 3;
    const PER: u64 = 15_000;
    let q = Arc::new(Q::with_capacity(1 << 10));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut h = q.register();
                let mut got = Vec::new();
                for i in 0..PER {
                    h.enqueue(t * PER + i);
                    loop {
                        if let Some(v) = h.dequeue() {
                            got.push(v);
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
                got
            })
        })
        .collect();
    let all: Vec<u64> = workers
        .into_iter()
        .flat_map(|w| w.join().unwrap())
        .collect();
    assert_eq!(all.len() as u64, THREADS * PER, "{} lost items", Q::NAME);
    let set: HashSet<u64> = all.iter().copied().collect();
    assert_eq!(set.len(), all.len(), "{} duplicated items", Q::NAME);
    assert_eq!(set.iter().copied().max(), Some(THREADS * PER - 1));
}

macro_rules! cross_check {
    ($name:ident, $q:ty) => {
        mod $name {
            use super::*;

            #[test]
            fn sequential_equivalence() {
                super::sequential_equivalence::<$q>();
            }

            #[test]
            fn concurrent_checksum() {
                super::concurrent_checksum::<$q>();
            }
        }
    };
}

cross_check!(msqueue, MsQueue);
cross_check!(ccqueue, CcQueue);
cross_check!(lcrq, Lcrq);
cross_check!(wfqueue, WfQueue);
cross_check!(vyukov, VyukovQueue);
cross_check!(htmqueue, HtmQueue);
cross_check!(ffq_mpmc, FfqMpmc);
