/root/repo/target/release/deps/ffq-3d2f86406cd80ded.d: crates/ffq/src/lib.rs crates/ffq/src/cell.rs crates/ffq/src/error.rs crates/ffq/src/layout.rs crates/ffq/src/mpmc.rs crates/ffq/src/raw.rs crates/ffq/src/spmc.rs crates/ffq/src/spsc.rs crates/ffq/src/stats.rs crates/ffq/src/shared.rs

/root/repo/target/release/deps/libffq-3d2f86406cd80ded.rlib: crates/ffq/src/lib.rs crates/ffq/src/cell.rs crates/ffq/src/error.rs crates/ffq/src/layout.rs crates/ffq/src/mpmc.rs crates/ffq/src/raw.rs crates/ffq/src/spmc.rs crates/ffq/src/spsc.rs crates/ffq/src/stats.rs crates/ffq/src/shared.rs

/root/repo/target/release/deps/libffq-3d2f86406cd80ded.rmeta: crates/ffq/src/lib.rs crates/ffq/src/cell.rs crates/ffq/src/error.rs crates/ffq/src/layout.rs crates/ffq/src/mpmc.rs crates/ffq/src/raw.rs crates/ffq/src/spmc.rs crates/ffq/src/spsc.rs crates/ffq/src/stats.rs crates/ffq/src/shared.rs

crates/ffq/src/lib.rs:
crates/ffq/src/cell.rs:
crates/ffq/src/error.rs:
crates/ffq/src/layout.rs:
crates/ffq/src/mpmc.rs:
crates/ffq/src/raw.rs:
crates/ffq/src/spmc.rs:
crates/ffq/src/spsc.rs:
crates/ffq/src/stats.rs:
crates/ffq/src/shared.rs:
