/root/repo/target/release/deps/ffq-c7093a2a8164a674.d: crates/ffq/src/lib.rs crates/ffq/src/cell.rs crates/ffq/src/error.rs crates/ffq/src/layout.rs crates/ffq/src/mpmc.rs crates/ffq/src/raw.rs crates/ffq/src/spmc.rs crates/ffq/src/spsc.rs crates/ffq/src/stats.rs crates/ffq/src/shared.rs

/root/repo/target/release/deps/libffq-c7093a2a8164a674.rlib: crates/ffq/src/lib.rs crates/ffq/src/cell.rs crates/ffq/src/error.rs crates/ffq/src/layout.rs crates/ffq/src/mpmc.rs crates/ffq/src/raw.rs crates/ffq/src/spmc.rs crates/ffq/src/spsc.rs crates/ffq/src/stats.rs crates/ffq/src/shared.rs

/root/repo/target/release/deps/libffq-c7093a2a8164a674.rmeta: crates/ffq/src/lib.rs crates/ffq/src/cell.rs crates/ffq/src/error.rs crates/ffq/src/layout.rs crates/ffq/src/mpmc.rs crates/ffq/src/raw.rs crates/ffq/src/spmc.rs crates/ffq/src/spsc.rs crates/ffq/src/stats.rs crates/ffq/src/shared.rs

crates/ffq/src/lib.rs:
crates/ffq/src/cell.rs:
crates/ffq/src/error.rs:
crates/ffq/src/layout.rs:
crates/ffq/src/mpmc.rs:
crates/ffq/src/raw.rs:
crates/ffq/src/spmc.rs:
crates/ffq/src/spsc.rs:
crates/ffq/src/stats.rs:
crates/ffq/src/shared.rs:
