/root/repo/target/release/deps/loom_queues-9a178ae2b89fcf64.d: crates/ffq/tests/loom_queues.rs

/root/repo/target/release/deps/loom_queues-9a178ae2b89fcf64: crates/ffq/tests/loom_queues.rs

crates/ffq/tests/loom_queues.rs:
