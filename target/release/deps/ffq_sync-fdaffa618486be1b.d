/root/repo/target/release/deps/ffq_sync-fdaffa618486be1b.d: crates/ffq-sync/src/lib.rs crates/ffq-sync/src/atomic.rs crates/ffq-sync/src/backoff.rs crates/ffq-sync/src/dwcas.rs crates/ffq-sync/src/eventcount.rs crates/ffq-sync/src/futex.rs crates/ffq-sync/src/padded.rs crates/ffq-sync/src/seqlock.rs

/root/repo/target/release/deps/ffq_sync-fdaffa618486be1b: crates/ffq-sync/src/lib.rs crates/ffq-sync/src/atomic.rs crates/ffq-sync/src/backoff.rs crates/ffq-sync/src/dwcas.rs crates/ffq-sync/src/eventcount.rs crates/ffq-sync/src/futex.rs crates/ffq-sync/src/padded.rs crates/ffq-sync/src/seqlock.rs

crates/ffq-sync/src/lib.rs:
crates/ffq-sync/src/atomic.rs:
crates/ffq-sync/src/backoff.rs:
crates/ffq-sync/src/dwcas.rs:
crates/ffq-sync/src/eventcount.rs:
crates/ffq-sync/src/futex.rs:
crates/ffq-sync/src/padded.rs:
crates/ffq-sync/src/seqlock.rs:
