/root/repo/target/release/deps/ffq-ed61061f1580f174.d: crates/ffq/src/lib.rs crates/ffq/src/cell.rs crates/ffq/src/error.rs crates/ffq/src/layout.rs crates/ffq/src/mpmc.rs crates/ffq/src/raw.rs crates/ffq/src/spmc.rs crates/ffq/src/spsc.rs crates/ffq/src/stats.rs crates/ffq/src/shared.rs

/root/repo/target/release/deps/ffq-ed61061f1580f174: crates/ffq/src/lib.rs crates/ffq/src/cell.rs crates/ffq/src/error.rs crates/ffq/src/layout.rs crates/ffq/src/mpmc.rs crates/ffq/src/raw.rs crates/ffq/src/spmc.rs crates/ffq/src/spsc.rs crates/ffq/src/stats.rs crates/ffq/src/shared.rs

crates/ffq/src/lib.rs:
crates/ffq/src/cell.rs:
crates/ffq/src/error.rs:
crates/ffq/src/layout.rs:
crates/ffq/src/mpmc.rs:
crates/ffq/src/raw.rs:
crates/ffq/src/spmc.rs:
crates/ffq/src/spsc.rs:
crates/ffq/src/stats.rs:
crates/ffq/src/shared.rs:
