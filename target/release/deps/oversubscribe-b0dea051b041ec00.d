/root/repo/target/release/deps/oversubscribe-b0dea051b041ec00.d: crates/ffq/tests/oversubscribe.rs

/root/repo/target/release/deps/oversubscribe-b0dea051b041ec00: crates/ffq/tests/oversubscribe.rs

crates/ffq/tests/oversubscribe.rs:
