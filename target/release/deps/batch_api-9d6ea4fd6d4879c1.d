/root/repo/target/release/deps/batch_api-9d6ea4fd6d4879c1.d: crates/ffq/tests/batch_api.rs

/root/repo/target/release/deps/batch_api-9d6ea4fd6d4879c1: crates/ffq/tests/batch_api.rs

crates/ffq/tests/batch_api.rs:
