/root/repo/target/release/deps/ffq_loom-55663098f19fb1a7.d: crates/ffq-loom/src/lib.rs crates/ffq-loom/src/rt.rs crates/ffq-loom/src/futex.rs crates/ffq-loom/src/sync.rs crates/ffq-loom/src/thread.rs

/root/repo/target/release/deps/libffq_loom-55663098f19fb1a7.rlib: crates/ffq-loom/src/lib.rs crates/ffq-loom/src/rt.rs crates/ffq-loom/src/futex.rs crates/ffq-loom/src/sync.rs crates/ffq-loom/src/thread.rs

/root/repo/target/release/deps/libffq_loom-55663098f19fb1a7.rmeta: crates/ffq-loom/src/lib.rs crates/ffq-loom/src/rt.rs crates/ffq-loom/src/futex.rs crates/ffq-loom/src/sync.rs crates/ffq-loom/src/thread.rs

crates/ffq-loom/src/lib.rs:
crates/ffq-loom/src/rt.rs:
crates/ffq-loom/src/futex.rs:
crates/ffq-loom/src/sync.rs:
crates/ffq-loom/src/thread.rs:
