/root/repo/target/debug/deps/ffq_sync-ef78c348a1116c99.d: crates/ffq-sync/src/lib.rs crates/ffq-sync/src/atomic.rs crates/ffq-sync/src/backoff.rs crates/ffq-sync/src/dwcas.rs crates/ffq-sync/src/eventcount.rs crates/ffq-sync/src/futex.rs crates/ffq-sync/src/padded.rs crates/ffq-sync/src/seqlock.rs

/root/repo/target/debug/deps/ffq_sync-ef78c348a1116c99: crates/ffq-sync/src/lib.rs crates/ffq-sync/src/atomic.rs crates/ffq-sync/src/backoff.rs crates/ffq-sync/src/dwcas.rs crates/ffq-sync/src/eventcount.rs crates/ffq-sync/src/futex.rs crates/ffq-sync/src/padded.rs crates/ffq-sync/src/seqlock.rs

crates/ffq-sync/src/lib.rs:
crates/ffq-sync/src/atomic.rs:
crates/ffq-sync/src/backoff.rs:
crates/ffq-sync/src/dwcas.rs:
crates/ffq-sync/src/eventcount.rs:
crates/ffq-sync/src/futex.rs:
crates/ffq-sync/src/padded.rs:
crates/ffq-sync/src/seqlock.rs:
