/root/repo/target/debug/deps/loom_queues-e8df8f45754f292f.d: crates/ffq/tests/loom_queues.rs

/root/repo/target/debug/deps/loom_queues-e8df8f45754f292f: crates/ffq/tests/loom_queues.rs

crates/ffq/tests/loom_queues.rs:
