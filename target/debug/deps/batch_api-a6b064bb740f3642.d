/root/repo/target/debug/deps/batch_api-a6b064bb740f3642.d: crates/ffq/tests/batch_api.rs

/root/repo/target/debug/deps/batch_api-a6b064bb740f3642: crates/ffq/tests/batch_api.rs

crates/ffq/tests/batch_api.rs:
