/root/repo/target/debug/deps/oversubscribe-574b411a8ae946ae.d: crates/ffq/tests/oversubscribe.rs

/root/repo/target/debug/deps/oversubscribe-574b411a8ae946ae: crates/ffq/tests/oversubscribe.rs

crates/ffq/tests/oversubscribe.rs:
