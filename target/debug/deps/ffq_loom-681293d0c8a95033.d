/root/repo/target/debug/deps/ffq_loom-681293d0c8a95033.d: crates/ffq-loom/src/lib.rs crates/ffq-loom/src/rt.rs crates/ffq-loom/src/futex.rs crates/ffq-loom/src/sync.rs crates/ffq-loom/src/thread.rs

/root/repo/target/debug/deps/libffq_loom-681293d0c8a95033.rlib: crates/ffq-loom/src/lib.rs crates/ffq-loom/src/rt.rs crates/ffq-loom/src/futex.rs crates/ffq-loom/src/sync.rs crates/ffq-loom/src/thread.rs

/root/repo/target/debug/deps/libffq_loom-681293d0c8a95033.rmeta: crates/ffq-loom/src/lib.rs crates/ffq-loom/src/rt.rs crates/ffq-loom/src/futex.rs crates/ffq-loom/src/sync.rs crates/ffq-loom/src/thread.rs

crates/ffq-loom/src/lib.rs:
crates/ffq-loom/src/rt.rs:
crates/ffq-loom/src/futex.rs:
crates/ffq-loom/src/sync.rs:
crates/ffq-loom/src/thread.rs:
