/root/repo/target/debug/deps/ffq_loom-762f816a820d5ed8.d: crates/ffq-loom/src/lib.rs crates/ffq-loom/src/rt.rs crates/ffq-loom/src/futex.rs crates/ffq-loom/src/sync.rs crates/ffq-loom/src/thread.rs

/root/repo/target/debug/deps/ffq_loom-762f816a820d5ed8: crates/ffq-loom/src/lib.rs crates/ffq-loom/src/rt.rs crates/ffq-loom/src/futex.rs crates/ffq-loom/src/sync.rs crates/ffq-loom/src/thread.rs

crates/ffq-loom/src/lib.rs:
crates/ffq-loom/src/rt.rs:
crates/ffq-loom/src/futex.rs:
crates/ffq-loom/src/sync.rs:
crates/ffq-loom/src/thread.rs:
