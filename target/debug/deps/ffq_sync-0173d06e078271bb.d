/root/repo/target/debug/deps/ffq_sync-0173d06e078271bb.d: crates/ffq-sync/src/lib.rs crates/ffq-sync/src/atomic.rs crates/ffq-sync/src/backoff.rs crates/ffq-sync/src/dwcas.rs crates/ffq-sync/src/eventcount.rs crates/ffq-sync/src/futex.rs crates/ffq-sync/src/padded.rs crates/ffq-sync/src/seqlock.rs

/root/repo/target/debug/deps/libffq_sync-0173d06e078271bb.rlib: crates/ffq-sync/src/lib.rs crates/ffq-sync/src/atomic.rs crates/ffq-sync/src/backoff.rs crates/ffq-sync/src/dwcas.rs crates/ffq-sync/src/eventcount.rs crates/ffq-sync/src/futex.rs crates/ffq-sync/src/padded.rs crates/ffq-sync/src/seqlock.rs

/root/repo/target/debug/deps/libffq_sync-0173d06e078271bb.rmeta: crates/ffq-sync/src/lib.rs crates/ffq-sync/src/atomic.rs crates/ffq-sync/src/backoff.rs crates/ffq-sync/src/dwcas.rs crates/ffq-sync/src/eventcount.rs crates/ffq-sync/src/futex.rs crates/ffq-sync/src/padded.rs crates/ffq-sync/src/seqlock.rs

crates/ffq-sync/src/lib.rs:
crates/ffq-sync/src/atomic.rs:
crates/ffq-sync/src/backoff.rs:
crates/ffq-sync/src/dwcas.rs:
crates/ffq-sync/src/eventcount.rs:
crates/ffq-sync/src/futex.rs:
crates/ffq-sync/src/padded.rs:
crates/ffq-sync/src/seqlock.rs:
