/* smoke_client — a C process on an ffq shared-memory queue, using only
 * include/ffq.h and libffq_ffi.
 *
 * Three modes, driven by the Rust integration test
 * (crates/ffq-ffi/tests/c_client.rs) and by CI:
 *
 *   smoke_client selftest <shm-name>
 *       Creates an SPSC u64 region, round-trips 10000 items through it in
 *       one process, exercises the bytes lane's reserve/commit and
 *       payload_ref/release protocol, prints "selftest ok". Standalone
 *       proof that a C program can drive the ABI end to end.
 *
 *   smoke_client echo <in-name> <out-name> <count>
 *       Attaches as a consumer of the Rust-created SPMC u64 region
 *       <in-name> and as the producer of the SPSC u64 region <out-name>,
 *       then echoes exactly <count> items. The Rust side asserts
 *       per-consumer FIFO on what comes back.
 *
 *   smoke_client produce-and-hang <name> <count>
 *       Attaches as the producer of the SPMC u64 region <name>, enqueues
 *       <count> items, then hangs forever WITHOUT detaching. The test
 *       SIGKILLs this process and asserts that the Rust consumer's
 *       heartbeat watchdog poisons the queue instead of waiting forever.
 */

#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

#include "ffq.h"

static void die(const char *what, ffq_status_t status) {
    fprintf(stderr, "smoke_client: %s failed: status %d (%s)\n", what,
            (int)status, ffq_last_error_message());
    exit(1);
}

static ffq_region_t *open_retry(const char *name) {
    /* The creator may still be formatting: retry open for ~5 s. */
    for (int i = 0; i < 500; i++) {
        ffq_region_t *region = NULL;
        ffq_status_t status = ffq_region_open(name, &region);
        if (status == FFQ_OK)
            return region;
        usleep(10 * 1000);
    }
    die("ffq_region_open (retries exhausted)", FFQ_ERR_OS);
    return NULL;
}

static int selftest(const char *name) {
    /* Typed SPSC lane: create, round-trip, clean disconnect. */
    size_t size = 0;
    ffq_status_t status = ffq_spsc_u64_required_size(256, &size);
    if (status != FFQ_OK)
        die("ffq_spsc_u64_required_size", status);

    ffq_region_t *region = NULL;
    status = ffq_region_create(name, size, &region);
    if (status != FFQ_OK)
        die("ffq_region_create", status);

    ffq_spsc_u64_producer_t *prod = NULL;
    status = ffq_spsc_u64_create(region, 256, &prod);
    if (status != FFQ_OK)
        die("ffq_spsc_u64_create", status);

    ffq_spsc_u64_consumer_t *cons = NULL;
    status = ffq_spsc_u64_attach_consumer(region, &cons);
    if (status != FFQ_OK)
        die("ffq_spsc_u64_attach_consumer", status);
    ffq_region_close(region);

    if (ffq_spsc_u64_producer_capacity(prod) != 256)
        die("capacity mismatch", -99);

    for (uint64_t i = 0; i < 10000; i++) {
        status = ffq_spsc_u64_enqueue(prod, i * 3);
        if (status != FFQ_OK)
            die("enqueue", status);
        uint64_t out = 0;
        status = ffq_spsc_u64_dequeue(cons, &out);
        if (status != FFQ_OK)
            die("dequeue", status);
        if (out != i * 3) {
            fprintf(stderr, "smoke_client: value mismatch: %llu != %llu\n",
                    (unsigned long long)out, (unsigned long long)(i * 3));
            return 1;
        }
    }
    uint64_t out = 0;
    if (ffq_spsc_u64_try_dequeue(cons, &out) != FFQ_EMPTY)
        die("try_dequeue on empty should be FFQ_EMPTY", -99);
    ffq_spsc_u64_producer_close(prod);
    if (ffq_spsc_u64_dequeue(cons, &out) != FFQ_DISCONNECTED)
        die("dequeue after producer close should be FFQ_DISCONNECTED", -99);
    ffq_spsc_u64_consumer_close(cons);
    ffq_region_unlink(name);

    /* Bytes lane: reserve/commit in place, read borrowed. */
    char bytes_name[256];
    snprintf(bytes_name, sizeof bytes_name, "%s-bytes", name);
    status = ffq_bytes_spsc_required_size(64, 512, &size);
    if (status != FFQ_OK)
        die("ffq_bytes_spsc_required_size", status);
    status = ffq_region_create(bytes_name, size, &region);
    if (status != FFQ_OK)
        die("ffq_region_create (bytes)", status);
    ffq_bytes_producer_t *bprod = NULL;
    status = ffq_bytes_spsc_create(region, 64, 512, &bprod);
    if (status != FFQ_OK)
        die("ffq_bytes_spsc_create", status);
    ffq_bytes_consumer_t *bcons = NULL;
    status = ffq_bytes_spsc_attach_consumer(region, &bcons);
    if (status != FFQ_OK)
        die("ffq_bytes_spsc_attach_consumer", status);
    ffq_region_close(region);

    const char msg[] = "zero-copy from C through shared memory";
    uint8_t *buf = NULL;
    status = ffq_bytes_reserve(bprod, sizeof msg, &buf);
    if (status != FFQ_OK)
        die("ffq_bytes_reserve", status);
    memcpy(buf, msg, sizeof msg);
    status = ffq_bytes_commit(bprod);
    if (status != FFQ_OK)
        die("ffq_bytes_commit", status);

    const uint8_t *data = NULL;
    size_t len = 0;
    status = ffq_payload_ref(bcons, &data, &len);
    if (status != FFQ_OK)
        die("ffq_payload_ref", status);
    if (len != sizeof msg || memcmp(data, msg, len) != 0)
        die("payload bytes mismatch", -99);
    /* Protocol misuse is a status, not corruption. */
    if (ffq_payload_try_ref(bcons, &data, &len) != FFQ_ERR_STATE)
        die("second payload ref should be FFQ_ERR_STATE", -99);
    status = ffq_payload_release(bcons);
    if (status != FFQ_OK)
        die("ffq_payload_release", status);

    ffq_bytes_producer_close(bprod);
    ffq_bytes_consumer_close(bcons);
    ffq_region_unlink(bytes_name);

    printf("selftest ok\n");
    return 0;
}

static int echo(const char *in_name, const char *out_name, long count) {
    ffq_region_t *in_region = open_retry(in_name);
    ffq_spmc_u64_consumer_t *cons = NULL;
    ffq_status_t status = ffq_spmc_u64_attach_consumer(in_region, &cons);
    if (status != FFQ_OK)
        die("ffq_spmc_u64_attach_consumer", status);
    ffq_region_close(in_region);

    ffq_region_t *out_region = open_retry(out_name);
    ffq_spsc_u64_producer_t *prod = NULL;
    status = ffq_spsc_u64_attach_producer(out_region, &prod);
    if (status != FFQ_OK)
        die("ffq_spsc_u64_attach_producer", status);
    ffq_region_close(out_region);

    for (long i = 0; i < count; i++) {
        uint64_t v = 0;
        status = ffq_spmc_u64_dequeue(cons, &v);
        if (status == FFQ_DISCONNECTED)
            break;
        if (status != FFQ_OK)
            die("echo dequeue", status);
        status = ffq_spsc_u64_enqueue(prod, v);
        if (status != FFQ_OK)
            die("echo enqueue", status);
    }

    ffq_spsc_u64_producer_close(prod);
    ffq_spmc_u64_consumer_close(cons);
    return 0;
}

static int produce_and_hang(const char *name, long count) {
    ffq_region_t *region = open_retry(name);
    ffq_spmc_u64_producer_t *prod = NULL;
    ffq_status_t status = ffq_spmc_u64_attach_producer(region, &prod);
    if (status != FFQ_OK)
        die("ffq_spmc_u64_attach_producer", status);
    ffq_region_close(region);

    for (long i = 0; i < count; i++) {
        status = ffq_spmc_u64_enqueue(prod, (uint64_t)i);
        if (status != FFQ_OK)
            die("enqueue", status);
    }
    /* Hang without detaching; the test SIGKILLs us here. The producer
     * heartbeat goes stale, the pid dies, and the Rust consumer's
     * watchdog must poison the queue. */
    for (;;)
        pause();
    return 0; /* unreachable */
}

int main(int argc, char **argv) {
    if (argc >= 3 && strcmp(argv[1], "selftest") == 0)
        return selftest(argv[2]);
    if (argc >= 5 && strcmp(argv[1], "echo") == 0)
        return echo(argv[2], argv[3], strtol(argv[4], NULL, 10));
    if (argc >= 4 && strcmp(argv[1], "produce-and-hang") == 0)
        return produce_and_hang(argv[2], strtol(argv[3], NULL, 10));
    fprintf(stderr,
            "usage: smoke_client selftest <name>\n"
            "       smoke_client echo <in-name> <out-name> <count>\n"
            "       smoke_client produce-and-hang <name> <count>\n");
    return 64;
}
