//! Async RPC over FFQ queues: many client tasks share one MPMC request
//! queue into a single server task, which answers each client over its
//! own SPSC response queue.
//!
//! The topology is the async twin of `shm_rpc_server.rs`: fan-in on a
//! rank-claiming MPMC queue (each request is claimed exactly once, no
//! server-side locking), fan-out on per-client SPSC queues (responses
//! can never interleave between clients, and the server never blocks on
//! a slow client longer than that client's private queue). Everything is
//! `await`-based: clients park on their response queue, the server parks
//! on an empty request queue, and backpressure propagates through the
//! `not_full` wait cells instead of spinning.
//!
//! Cancellation is exercised on purpose: every so often a client races
//! its response-dequeue against a timeout and lets the timeout win,
//! dropping the future mid-wait. The dropped future abandons no rank and
//! hands off any consumed wake, so the retry must still observe every
//! response, in order — the example asserts it.
//!
//! By default the demo runs on the crate's dependency-free mini executor
//! (`ffq_async::rt`), so it works offline:
//!
//! ```sh
//! cargo run --release --example async_rpc_server
//! ```
//!
//! With the `tokio` feature the same code runs unchanged on a tokio
//! multi-thread runtime — the futures are runtime-agnostic:
//!
//! ```sh
//! cargo run --release --features tokio --example async_rpc_server
//! ```

use std::time::{Duration, Instant};

use ffq_async::{mpmc, spsc, Disconnected};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: u64 = 5_000;
const REQ_QUEUE_CAPACITY: usize = 256;
const RESP_QUEUE_CAPACITY: usize = 32;
/// Every Nth response wait is raced against (and lost to) a timeout.
const CANCEL_EVERY: u64 = 64;

/// One RPC request: which client asked, and the operand.
struct Request {
    client: usize,
    x: u64,
}

/// The "remote procedure": cheap but not free, so batching shows.
fn handle(x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) ^ x
}

/// Runtime glue so the demo body is identical on both executors: `spawn`
/// returns an awaitable join future, `timeout` races a future against a
/// deadline, `run` drives the root future to completion.
#[cfg(not(feature = "tokio"))]
mod glue {
    use std::future::Future;
    use std::sync::OnceLock;
    use std::time::Duration;

    use ffq_async::rt::{self, Executor, JoinHandle};

    fn executor() -> &'static Executor {
        static EX: OnceLock<Executor> = OnceLock::new();
        EX.get_or_init(|| Executor::new(4))
    }

    pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        executor().spawn(fut)
    }

    pub async fn timeout<F: Future + Unpin>(dur: Duration, fut: F) -> Result<F::Output, ()> {
        rt::timeout(dur, fut).await.map_err(|_| ())
    }

    pub fn run<F: Future>(fut: F) -> F::Output {
        rt::block_on(fut)
    }

    pub const RUNTIME: &str = "ffq-async mini executor (4 workers)";
}

#[cfg(feature = "tokio")]
mod glue {
    use std::future::Future;
    use std::time::Duration;

    pub struct JoinHandle<T>(tokio::task::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        pub async fn join_async(self) -> T {
            self.0.await.expect("task panicked")
        }
    }

    pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        JoinHandle(tokio::spawn(fut))
    }

    pub async fn timeout<F: Future + Unpin>(dur: Duration, fut: F) -> Result<F::Output, ()> {
        tokio::time::timeout(dur, fut).await.map_err(|_| ())
    }

    pub fn run<F: Future>(fut: F) -> F::Output {
        tokio::runtime::Builder::new_multi_thread()
            .worker_threads(4)
            .enable_time()
            .build()
            .expect("tokio runtime")
            .block_on(fut)
    }

    pub const RUNTIME: &str = "tokio multi-thread (4 workers)";
}

/// Awaits a mini-rt or tokio join handle through one name.
macro_rules! join {
    ($h:expr) => {{
        #[cfg(not(feature = "tokio"))]
        {
            $h.await
        }
        #[cfg(feature = "tokio")]
        {
            $h.join_async().await
        }
    }};
}

async fn server(
    mut req_rx: mpmc::Receiver<Request>,
    mut resp_txs: Vec<spsc::Sender<u64>>,
) -> (u64, u64) {
    let mut served = 0u64;
    let mut batches = 0u64;
    loop {
        // Harvest a run of requests per wake: one schedule round-trip
        // amortized over up to 32 RPCs at saturation.
        match req_rx.dequeue_batch(32).await {
            Ok(batch) => {
                batches += 1;
                for req in batch {
                    served += 1;
                    let resp = handle(req.x);
                    // Per-client SPSC: awaiting here blocks only on
                    // *this* client's queue being full, and the SendError
                    // case cannot happen (clients keep their receiver
                    // until after the last response).
                    if resp_txs[req.client].enqueue(resp).await.is_err() {
                        unreachable!("client dropped its response queue early");
                    }
                }
            }
            // All client request handles dropped and the queue drained.
            Err(Disconnected) => return (served, batches),
        }
    }
}

async fn client(
    id: usize,
    mut req_tx: mpmc::Sender<Request>,
    mut resp_rx: spsc::Receiver<u64>,
) -> u64 {
    let mut cancelled = 0u64;
    for seq in 0..REQUESTS_PER_CLIENT {
        let x = (id as u64) << 32 | seq;
        req_tx
            .enqueue(Request { client: id, x })
            .await
            .unwrap_or_else(|_| panic!("server vanished with clients still live"));
        // Periodically lose the wait on purpose: drop the dequeue future
        // mid-park, then retry. Cancellation safety means the retry sees
        // the response — never a lost item, never out of order.
        if seq % CANCEL_EVERY == CANCEL_EVERY - 1 {
            match glue::timeout(Duration::from_micros(1), resp_rx.dequeue()).await {
                // Dropped mid-wait; fall through and retry below.
                Err(()) => cancelled += 1,
                // The response won the race after all.
                Ok(Ok(resp)) => {
                    assert_eq!(resp, handle(x), "client {id}: wrong or reordered response");
                    continue;
                }
                Ok(Err(Disconnected)) => panic!("client {id}: server hung up mid-stream"),
            }
        }
        match resp_rx.dequeue().await {
            Ok(resp) => assert_eq!(resp, handle(x), "client {id}: wrong or reordered response"),
            Err(Disconnected) => panic!("client {id}: server hung up mid-stream"),
        }
    }
    cancelled
}

fn main() {
    let total = CLIENTS as u64 * REQUESTS_PER_CLIENT;
    println!(
        "async RPC demo: {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests on {}",
        glue::RUNTIME
    );

    let elapsed = glue::run(async {
        let (req_tx, req_rx) = mpmc::channel::<Request>(REQ_QUEUE_CAPACITY);

        let mut resp_txs = Vec::with_capacity(CLIENTS);
        let mut clients = Vec::with_capacity(CLIENTS);
        let start = Instant::now();
        for id in 0..CLIENTS {
            let (resp_tx, resp_rx) = spsc::channel::<u64>(RESP_QUEUE_CAPACITY);
            resp_txs.push(resp_tx);
            clients.push(glue::spawn(client(id, req_tx.clone(), resp_rx)));
        }
        // The spawned clients hold the only request senders now; when the
        // last one finishes, the server's dequeue reports Disconnected.
        drop(req_tx);
        let server_task = glue::spawn(server(req_rx, resp_txs));

        let mut cancelled = 0u64;
        for c in clients {
            cancelled += join!(c);
        }
        let (served, batches) = join!(server_task);
        let elapsed = start.elapsed();

        assert_eq!(served, total, "server lost requests");
        println!(
            "served {served} RPCs in {batches} batches (avg {:.1}/batch), {cancelled} waits cancelled mid-park",
            served as f64 / batches.max(1) as f64
        );
        elapsed
    });

    println!(
        "{total} RPCs in {:.3}s  ->  {:.2} kRPC/s round-trip",
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64() / 1e3
    );
}
