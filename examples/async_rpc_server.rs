//! Async RPC load harness: a thousand simulated clients fan variable-size
//! request payloads into sharded zero-copy MPMC queues, and every request
//! carries a timestamp so the servers record end-to-end p50/p99/p999.
//!
//! The topology scales the original demo into the harness shape of
//! `fig_scale` (which emits the committed `results/BENCH_scale.json`):
//!
//! * **Fan-in** — clients hash onto [`SHARDS`] `ffq_async::bytes::mpmc`
//!   channels (rank-claiming MPMC, one server task per shard). Requests
//!   are built *in place*: `reserve(len).await` yields the cell's slot
//!   buffer, the client writes the payload directly into it, `commit`
//!   publishes. No staging buffer, no copy. Payload sizes follow a mixed
//!   distribution, including oversize requests that spill to a heap
//!   descriptor — nothing truncates.
//! * **Fan-out** — per-client SPSC response queues, as before: responses
//!   can never interleave between clients, and the server never blocks on
//!   a slow client longer than that client's private queue.
//!
//! Cancellation is exercised on purpose, now on *both* future kinds:
//! every so often a client races its response dequeue against a timeout
//! (a dropped dequeue future abandons no claimed rank), and every so
//! often it races `reserve` itself (a reservation only materializes when
//! the future resolves — a `Reserve` future dropped mid-park leaks no
//! cell, and the retry must still find the queue intact). The harness
//! asserts every response arrives, in order, with the right checksum.
//!
//! Servers verify every payload byte and record enqueue→claim latency
//! into the HDR-style histogram from `ffq_bench::hist`.
//!
//! By default the demo runs on the crate's dependency-free mini executor
//! (`ffq_async::rt`), so it works offline:
//!
//! ```sh
//! cargo run --release --example async_rpc_server
//! ```
//!
//! With the `tokio` feature the same code runs unchanged on a tokio
//! multi-thread runtime — the futures are runtime-agnostic:
//!
//! ```sh
//! cargo run --release --features tokio --example async_rpc_server
//! ```
//!
//! Knobs: `FFQ_RPC_CLIENTS` (default 1000), `FFQ_RPC_REQUESTS` (default
//! 20 per client).

use std::time::{Duration, Instant};

use ffq_async::bytes::mpmc as req;
use ffq_async::{spsc, Disconnected};
use ffq_bench::hist::Histogram;

/// Request-queue shards; clients hash on `client % SHARDS`.
const SHARDS: usize = 2;
/// Cells per shard ring.
const REQ_QUEUE_CAPACITY: usize = 512;
/// Slot buffer bytes per cell: the largest *inline* payload.
const SLOT_BYTES: usize = 256;
const RESP_QUEUE_CAPACITY: usize = 32;
/// Every Nth response wait is raced against a timeout. Which side wins
/// depends on runtime and load; both outcomes are asserted correct.
const CANCEL_DEQUEUE_EVERY: u64 = 64;
/// Every Nth reservation is raced against a timeout before retrying.
const CANCEL_RESERVE_EVERY: u64 = 97;

/// Payload bytes reserved for the header: `[0..8)` tag (client + seq),
/// `[8..16)` nanosecond timestamp.
const HDR: usize = 16;

/// The mixed payload-size distribution (bytes): mostly small inline
/// requests, a tail of larger ones, and an oversize class (1024 > slot)
/// that exercises the heap-spill path.
const SIZE_DIST: [usize; 16] = [
    24, 24, 24, 24, 24, 24, 72, 72, 72, 72, 192, 192, 192, 256, 256, 1024,
];

fn payload_len(tag: u64) -> usize {
    SIZE_DIST[(tag.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 60) as usize & 15]
}

/// Fills `buf[HDR..]` with words derived from `tag`; the server verifies
/// every byte, so the harness doubles as an integrity test.
fn fill_body(buf: &mut [u8], tag: u64) {
    let mut i = 0u64;
    let mut chunks = buf[HDR..].chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&(tag ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).to_le_bytes());
        i += 1;
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let w = (tag ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).to_le_bytes();
        let n = rem.len();
        rem.copy_from_slice(&w[..n]);
    }
}

/// Verifies a request payload and returns `(tag, stamp_ns)`.
fn verify_body(buf: &[u8]) -> (u64, u64) {
    let mut w8 = [0u8; 8];
    w8.copy_from_slice(&buf[..8]);
    let tag = u64::from_le_bytes(w8);
    w8.copy_from_slice(&buf[8..HDR]);
    let stamp = u64::from_le_bytes(w8);
    let mut diff = 0u64;
    let mut i = 0u64;
    let mut chunks = buf[HDR..].chunks_exact(8);
    for chunk in &mut chunks {
        w8.copy_from_slice(chunk);
        diff |= u64::from_le_bytes(w8) ^ tag ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        i += 1;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let w = (tag ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).to_le_bytes();
        diff |= u64::from(rem != &w[..rem.len()]);
    }
    assert_eq!(diff, 0, "request payload corrupted (tag {tag:#x})");
    (tag, stamp)
}

/// The "remote procedure": the response a client expects for `tag`.
fn handle(tag: u64) -> u64 {
    tag.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) ^ tag
}

/// Runtime glue so the demo body is identical on both executors: `spawn`
/// returns an awaitable join future, `timeout` races a future against a
/// deadline, `run` drives the root future to completion.
#[cfg(not(feature = "tokio"))]
mod glue {
    use std::future::Future;
    use std::sync::OnceLock;
    use std::time::Duration;

    use ffq_async::rt::{self, Executor, JoinHandle};

    fn executor() -> &'static Executor {
        static EX: OnceLock<Executor> = OnceLock::new();
        EX.get_or_init(|| Executor::new(4))
    }

    pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        executor().spawn(fut)
    }

    pub async fn timeout<F: Future + Unpin>(dur: Duration, fut: F) -> Result<F::Output, ()> {
        rt::timeout(dur, fut).await.map_err(|_| ())
    }

    pub fn run<F: Future>(fut: F) -> F::Output {
        rt::block_on(fut)
    }

    pub const RUNTIME: &str = "ffq-async mini executor (4 workers)";
}

#[cfg(feature = "tokio")]
mod glue {
    use std::future::Future;
    use std::time::Duration;

    pub struct JoinHandle<T>(tokio::task::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        pub async fn join_async(self) -> T {
            self.0.await.expect("task panicked")
        }
    }

    pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        JoinHandle(tokio::spawn(fut))
    }

    pub async fn timeout<F: Future + Unpin>(dur: Duration, fut: F) -> Result<F::Output, ()> {
        tokio::time::timeout(dur, fut).await.map_err(|_| ())
    }

    pub fn run<F: Future>(fut: F) -> F::Output {
        tokio::runtime::Builder::new_multi_thread()
            .worker_threads(4)
            .enable_time()
            .build()
            .expect("tokio runtime")
            .block_on(fut)
    }

    pub const RUNTIME: &str = "tokio multi-thread (4 workers)";
}

/// Awaits a mini-rt or tokio join handle through one name.
macro_rules! join {
    ($h:expr) => {{
        #[cfg(not(feature = "tokio"))]
        {
            $h.await
        }
        #[cfg(feature = "tokio")]
        {
            $h.join_async().await
        }
    }};
}

/// One shard's server: claims request payloads zero-copy, verifies them
/// in place, records enqueue→claim latency, answers on the requesting
/// client's private queue. `resp_txs[local]` is the sender for global
/// client `local * SHARDS + shard`.
async fn server(
    epoch: Instant,
    mut req_rx: req::Receiver,
    mut resp_txs: Vec<spsc::Sender<u64>>,
) -> (u64, Histogram) {
    let mut served = 0u64;
    let mut hist = Histogram::new();
    loop {
        // The borrowed view is dropped (retiring the rank) before the
        // response await — holding it across a yield would keep the cell
        // busy and, on a multi-worker executor, the task must stay Send.
        let (tag, reply) = match req_rx.recv().await {
            Ok(view) => {
                let now = epoch.elapsed().as_nanos() as u64;
                let (tag, stamp) = verify_body(&view);
                hist.record(now.saturating_sub(stamp));
                (tag, handle(tag))
            }
            // All client request handles dropped and the queue drained.
            Err(Disconnected) => return (served, hist),
        };
        served += 1;
        let local = (tag >> 20) as usize / SHARDS;
        if resp_txs[local].enqueue(reply).await.is_err() {
            unreachable!("client dropped its response queue early");
        }
    }
}

/// One simulated client: `n` in-place requests through its shard, each
/// answered on the private response queue. Returns how many waits were
/// cancelled mid-park (dequeue, reserve).
async fn client(
    epoch: Instant,
    id: usize,
    n: u64,
    mut req_tx: req::Sender,
    mut resp_rx: spsc::Receiver<u64>,
) -> (u64, u64) {
    let mut cancelled_deq = 0u64;
    let mut cancelled_res = 0u64;
    for seq in 0..n {
        let tag = (id as u64) << 20 | seq;
        let len = payload_len(tag);

        // Zero-copy request: reserve the cell's slot buffer and build the
        // message in place. Every CANCEL_RESERVE_EVERY-th reservation is
        // raced against a timeout first — a Reserve future dropped
        // mid-park materializes nothing, so the retry starts clean.
        if seq % CANCEL_RESERVE_EVERY == CANCEL_RESERVE_EVERY - 1 {
            if let Err(()) = glue::timeout(Duration::from_nanos(1), req_tx.reserve(len)).await {
                cancelled_res += 1;
            } else {
                // Rarely the reservation wins the race; it was returned
                // inside the Ok and dropped — an uncommitted WriteSlot
                // aborts, publishing a tombstone the servers skip. Either
                // way nothing is leaked and we fall through to retry.
            }
        }
        // Scoped so the guard (a raw-pointer view, !Send) is provably
        // dead before the next await — the spawned task must stay Send.
        {
            let mut slot = req_tx
                .reserve(len)
                .await
                .expect("payload within heap-spill max");
            slot[..8].copy_from_slice(&tag.to_le_bytes());
            let now = epoch.elapsed().as_nanos() as u64;
            slot[8..HDR].copy_from_slice(&now.to_le_bytes());
            fill_body(&mut slot, tag);
            slot.commit();
        }

        // Periodically lose the response wait on purpose: drop the
        // dequeue future mid-park, then retry. Cancellation safety means
        // the retry sees the response — never a lost item.
        if seq % CANCEL_DEQUEUE_EVERY == CANCEL_DEQUEUE_EVERY - 1 {
            match glue::timeout(Duration::from_micros(1), resp_rx.dequeue()).await {
                // Dropped mid-wait; fall through and retry below.
                Err(()) => cancelled_deq += 1,
                // The response won the race after all.
                Ok(Ok(resp)) => {
                    assert_eq!(
                        resp,
                        handle(tag),
                        "client {id}: wrong or reordered response"
                    );
                    continue;
                }
                Ok(Err(Disconnected)) => panic!("client {id}: server hung up mid-stream"),
            }
        }
        match resp_rx.dequeue().await {
            Ok(resp) => assert_eq!(
                resp,
                handle(tag),
                "client {id}: wrong or reordered response"
            ),
            Err(Disconnected) => panic!("client {id}: server hung up mid-stream"),
        }
    }
    (cancelled_deq, cancelled_res)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let clients = env_usize("FFQ_RPC_CLIENTS", 1000);
    let per_client = env_usize("FFQ_RPC_REQUESTS", 20) as u64;
    let total = clients as u64 * per_client;
    println!(
        "async RPC load harness: {clients} clients x {per_client} requests -> {SHARDS} shards on {}",
        glue::RUNTIME
    );

    let (elapsed, hist) = glue::run(async {
        let epoch = Instant::now();
        let mut shards = Vec::with_capacity(SHARDS);
        for _ in 0..SHARDS {
            shards.push(
                req::channel(REQ_QUEUE_CAPACITY, SLOT_BYTES)
                    .expect("harness geometry within layout limits"),
            );
        }
        // resp_txs[shard][local] answers global client `local*SHARDS+shard`.
        let mut resp_txs: Vec<Vec<spsc::Sender<u64>>> = (0..SHARDS).map(|_| Vec::new()).collect();
        let mut client_tasks = Vec::with_capacity(clients);
        let start = Instant::now();
        for id in 0..clients {
            let shard = id % SHARDS;
            let (resp_tx, resp_rx) = spsc::channel::<u64>(RESP_QUEUE_CAPACITY);
            resp_txs[shard].push(resp_tx);
            let req_tx = shards[shard].0.clone();
            client_tasks.push(glue::spawn(client(epoch, id, per_client, req_tx, resp_rx)));
        }
        // The spawned clients hold the only request senders now; when the
        // last one finishes, each server's recv reports Disconnected.
        let mut server_tasks = Vec::with_capacity(SHARDS);
        for (_, rx) in shards.drain(..) {
            let txs = std::mem::take(&mut resp_txs[server_tasks.len()]);
            server_tasks.push(glue::spawn(server(epoch, rx, txs)));
        }

        let (mut cancelled_deq, mut cancelled_res) = (0u64, 0u64);
        for c in client_tasks {
            let (d, r) = join!(c);
            cancelled_deq += d;
            cancelled_res += r;
        }
        let mut served = 0u64;
        let mut hist = Histogram::new();
        for s in server_tasks {
            let (n, h) = join!(s);
            served += n;
            hist.merge(&h);
        }
        let elapsed = start.elapsed();

        assert_eq!(served, total, "servers lost requests");
        println!(
            "served {served} RPCs; cancelled mid-park: {cancelled_deq} dequeues, {cancelled_res} reservations"
        );
        (elapsed, hist)
    });

    let s = hist.summary();
    println!(
        "{total} RPCs in {:.3}s  ->  {:.2} kRPC/s round-trip",
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64() / 1e3
    );
    println!(
        "request enqueue->claim latency: p50 {:.1} us, p90 {:.1} us, p99 {:.1} us, p999 {:.1} us, max {:.1} us",
        s.p50_ns as f64 / 1e3,
        s.p90_ns as f64 / 1e3,
        s.p99_ns as f64 / 1e3,
        s.p999_ns as f64 / 1e3,
        s.max_ns as f64 / 1e3,
    );
}
