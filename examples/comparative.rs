//! A pocket version of the paper's Figure 8: every queue in this repository
//! doing enqueue/dequeue pairs on one shared queue, at 1 and 4 threads.
//!
//! Run with: `cargo run --release --example comparative`
//! (For the full sweep with think times and JSON output, use
//! `cargo run --release -p ffq-bench --bin fig8_comparative`.)

use std::sync::Arc;
use std::time::Instant;

use ffq_baselines::{
    ccqueue::CcQueue, ffqueue::FfqMpmc, htmqueue::HtmQueue, lcrq::Lcrq, msqueue::MsQueue,
    mutexqueue::MutexQueue, vyukov::VyukovQueue, wfqueue::WfQueue, BenchHandle, BenchQueue,
};

const PAIRS: u64 = 200_000;

fn run<Q: BenchQueue>(threads: usize) -> f64 {
    let q = Arc::new(Q::with_capacity(1 << 10));
    let per = PAIRS / threads as u64;
    let start = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut h = q.register();
                for i in 0..per {
                    h.enqueue(t as u64 * per + i);
                    while h.dequeue().is_none() {
                        std::hint::spin_loop();
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    (2 * per * threads as u64) as f64 / secs / 1e6
}

fn main() {
    println!(
        "{:<16} {:>12} {:>12}",
        "queue", "1 thr Mops/s", "4 thr Mops/s"
    );
    macro_rules! row {
        ($q:ty) => {
            println!(
                "{:<16} {:>12.2} {:>12.2}",
                <$q>::NAME,
                run::<$q>(1),
                run::<$q>(4)
            );
        };
    }
    row!(FfqMpmc);
    row!(WfQueue);
    row!(Lcrq);
    row!(CcQueue);
    row!(MsQueue);
    row!(HtmQueue);
    row!(VyukovQueue);
    row!(MutexQueue);
    println!(
        "\nhost parallelism: {} (ranking on oversubscribed hosts reflects algorithmic cost, not scaling)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
}
