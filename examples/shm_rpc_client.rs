//! Client half of the cross-process RPC demo — see `shm_rpc_server.rs`.
//!
//! The client plays the "enclave": it attaches as the single producer of
//! the server's SPMC submission queue, multiplexes a configurable number
//! of simulated application threads over that one producer (exactly like
//! the in-process enclave runtime does), and collects results from the
//! per-proxy SPSC response queues. Flow control is implicit: each app
//! thread keeps at most one request outstanding, so the submission queue
//! — sized at twice the caller count — can never fill, and every enqueue
//! completes without waiting.
//!
//! ```text
//! cargo run --release --example shm_rpc_client -- [base-name] [requests] [app-threads]
//! ```
//!
//! Defaults: `ffq-rpc 200000 8`. The client verifies per-app-thread
//! response sequencing and that every proxy returned the same syscall
//! value, then reports round-trip throughput.

use std::time::{Duration, Instant};

use ffq_enclave::syscall::{Request, Response};
use ffq_shm::{spmc, spsc, ShmError, ShmRegion, ShmTryDequeueError};
use ffq_sync::Backoff;

fn usage() -> ! {
    eprintln!("usage: shm_rpc_client [base-name] [requests] [app-threads]");
    std::process::exit(2);
}

/// Polls `open` until the server has created the name (fresh servers race
/// with fresh clients) or a few seconds pass.
fn open_retry(name: &str) -> ShmRegion {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match ShmRegion::open(name) {
            Ok(r) => return r,
            Err(ShmError::Os { errno, .. }) if errno == libc::ENOENT => {
                if Instant::now() >= deadline {
                    eprintln!("timed out waiting for '{name}' — is shm_rpc_server running?");
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => {
                eprintln!("cannot open '{name}': {e}");
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() > 3 || args.first().is_some_and(|a| a.starts_with('-')) {
        usage();
    }
    let base = args.first().map(String::as_str).unwrap_or("ffq-rpc");
    let requests: u64 = args
        .get(1)
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(200_000);
    let mut app_threads: usize = args
        .get(2)
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(8);
    if requests == 0 || app_threads == 0 {
        usage();
    }

    // The submission queue appears last on the server side, so once it
    // opens, the response queues are all in place.
    let mut tx =
        spmc::attach_producer::<u64>(open_retry(&format!("{base}-sub"))).expect("attach producer");

    // Honour the server's implicit-flow-control provisioning: one
    // outstanding request per app thread, at most capacity/2 app threads.
    let max_callers = tx.capacity() / 2;
    if app_threads > max_callers {
        eprintln!("clamping app-threads {app_threads} -> {max_callers} (queue capacity)");
        app_threads = max_callers;
    }

    let mut responses = Vec::new();
    loop {
        let name = format!("{base}-rsp{}", responses.len());
        match ShmRegion::open(&name) {
            Ok(region) => {
                responses.push(spsc::attach_consumer::<u64>(region).expect("attach response"))
            }
            Err(ShmError::Os { errno, .. }) if errno == libc::ENOENT => break,
            Err(e) => {
                eprintln!("cannot open '{name}': {e}");
                std::process::exit(1);
            }
        }
    }
    assert!(!responses.is_empty(), "server exposes at least one proxy");
    println!(
        "connected to '{base}': {} prox{}, {app_threads} app threads, {requests} round trips",
        responses.len(),
        if responses.len() == 1 { "y" } else { "ies" }
    );

    // Per-app-thread state: the sequence number the next response must
    // carry. `u32::MAX` marks "nothing outstanding".
    const IDLE: u32 = u32::MAX;
    let mut expected = vec![0u32; app_threads];
    let mut issued = 0u64;
    let mut received = 0u64;
    let mut value_seen: Option<u16> = None;

    let start = Instant::now();
    // Prime one outstanding request per app thread.
    for (t, exp) in expected.iter_mut().enumerate() {
        if issued < requests {
            submit(&mut tx, t as u16, *exp);
            issued += 1;
        } else {
            *exp = IDLE;
        }
    }

    let mut backoff = Backoff::new();
    let mut next_queue = 0usize;
    let queues = responses.len();
    while received < requests {
        let mut progressed = false;
        for _ in 0..queues {
            let rx = &mut responses[next_queue];
            next_queue = (next_queue + 1) % queues;
            match rx.try_dequeue() {
                Ok(word) => {
                    progressed = true;
                    let resp = Response::decode(word);
                    let t = resp.app_thread as usize;
                    assert!(t < app_threads, "response routed to unknown app thread");
                    assert_eq!(
                        resp.seq, expected[t],
                        "per-app-thread responses must arrive in submission order"
                    );
                    match value_seen {
                        None => value_seen = Some(resp.value),
                        Some(v) => assert_eq!(v, resp.value, "proxies answer consistently"),
                    }
                    received += 1;
                    if issued < requests {
                        expected[t] += 1;
                        submit(&mut tx, t as u16, expected[t]);
                        issued += 1;
                    } else {
                        expected[t] = IDLE;
                    }
                }
                Err(ShmTryDequeueError::Empty) => {}
                Err(e) => {
                    eprintln!("response queue failed: {e} — did the server die?");
                    std::process::exit(1);
                }
            }
        }
        if progressed {
            backoff = Backoff::new();
        } else {
            backoff.wait();
        }
    }
    let elapsed = start.elapsed();

    drop(tx); // clean detach: the server drains, reports, and exits

    // Every response queue must wind down cleanly behind the detach.
    for rx in &mut responses {
        assert_eq!(
            rx.dequeue_timeout(Duration::from_secs(10)),
            Err(ShmTryDequeueError::Disconnected),
            "no responses may remain after the last request is answered"
        );
    }

    let secs = elapsed.as_secs_f64().max(1e-9);
    println!(
        "completed {received} round trips in {secs:.3}s — {:.0} RPC/s \
         (syscall value 0x{:04x} from all proxies)",
        received as f64 / secs,
        value_seen.unwrap_or(0),
    );
}

/// Issues one request word for app thread `t`.
fn submit(tx: &mut spmc::Producer<u64>, t: u16, seq: u32) {
    let word = Request {
        enclave_thread: 0,
        app_thread: t,
        seq,
    }
    .encode();
    // Implicit flow control makes this effectively wait-free: the queue
    // cannot be full while every caller has at most one request in flight.
    tx.enqueue(word).expect("submission queue poisoned");
}
