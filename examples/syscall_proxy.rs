//! The paper's motivating application, §I: an SGX-style asynchronous
//! system-call proxy. Application threads inside a (simulated) enclave
//! cannot trap into the kernel; they submit requests through an SPMC FFQ to
//! proxy threads outside, which execute the real `getppid(2)` and return
//! results through per-proxy SPSC FFQs.
//!
//! Run with: `cargo run --release --example syscall_proxy`

use std::time::Duration;

use ffq_enclave::{measure_latency, run_throughput, EnclaveConfig, Variant};

fn main() {
    let config = EnclaveConfig::default();
    println!(
        "simulated enclave: transition = {} cycles, memory tax = {} cycles",
        config.transition_cycles, config.memory_tax_cycles
    );

    println!("\nthroughput (1 enclave thread, 2 proxies, 8 app threads, 1s):");
    for variant in Variant::ALL {
        let r = run_throughput(variant, 1, 2, 8, Duration::from_secs(1), config);
        println!(
            "  {:>8}: {:>10.0} getppid/s  ({} transitions)",
            r.variant, r.ops_per_sec, r.transitions
        );
    }

    println!("\nend-to-end latency (single app thread, cycles per call):");
    for variant in Variant::ALL {
        let r = measure_latency(variant, 10_000, config);
        println!(
            "  {:>8}: avg {:>9.0}  min {:>8}  max {:>10}",
            r.variant, r.avg_cycles, r.min_cycles, r.max_cycles
        );
    }

    println!("\n(Figure 7 of the paper reports the same two panels; run");
    println!(" `cargo run --release -p ffq-bench --bin fig7_enclave` for the full sweep.)");
}
