//! Quickstart: the three FFQ variants in two minutes.
//!
//! Run with: `cargo run --release --example quickstart`

use std::thread;
use std::time::Instant;

fn spsc_demo() {
    println!("-- SPSC: one producer, one consumer, no atomic RMW at all --");
    let (mut tx, mut rx) = ffq::spsc::channel::<u64>(1 << 12);
    let start = Instant::now();
    let producer = thread::spawn(move || {
        for i in 0..1_000_000u64 {
            tx.enqueue(i);
        }
    });
    let mut sum = 0u64;
    for _ in 0..1_000_000u64 {
        sum += rx.dequeue().expect("producer alive until done");
    }
    producer.join().unwrap();
    println!(
        "   streamed 1M items in {:?} (sum {})",
        start.elapsed(),
        sum
    );
}

fn spmc_demo() {
    println!("-- SPMC: the paper's headline variant — wait-free enqueue --");
    let (mut tx, rx) = ffq::spmc::channel::<String>(1 << 10);
    let workers: Vec<_> = (0..3)
        .map(|id| {
            let mut rx = rx.clone();
            thread::spawn(move || {
                let mut handled = 0u64;
                // dequeue() returns Err(Disconnected) once the producer is
                // dropped and everything reachable was drained.
                while let Ok(job) = rx.dequeue() {
                    let _ = job.len(); // "execute the system call"
                    handled += 1;
                }
                (id, handled)
            })
        })
        .collect();
    drop(rx);

    for i in 0..10_000 {
        tx.enqueue(format!("syscall #{i}"));
    }
    drop(tx); // signal disconnection

    let mut total = 0;
    for w in workers {
        let (id, handled) = w.join().unwrap();
        println!("   worker {id} handled {handled} jobs");
        total += handled;
    }
    assert_eq!(total, 10_000);
}

fn mpmc_demo() {
    println!("-- MPMC: multiple producers via 128-bit double-word CAS --");
    let (tx, rx) = ffq::mpmc::channel::<u64>(1 << 10);
    let producers: Vec<_> = (0..2)
        .map(|p| {
            let mut tx = tx.clone();
            thread::spawn(move || {
                for i in 0..5_000u64 {
                    tx.enqueue(p * 5_000 + i);
                }
            })
        })
        .collect();
    drop(tx);
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let mut rx = rx.clone();
            thread::spawn(move || {
                let mut n = 0u64;
                while rx.dequeue().is_ok() {
                    n += 1;
                }
                n
            })
        })
        .collect();
    drop(rx);
    for p in producers {
        p.join().unwrap();
    }
    let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    println!("   2 producers -> 2 consumers moved {total} items");
    assert_eq!(total, 10_000);
}

fn stats_demo() {
    println!("-- Statistics: gaps are observable --");
    let (mut tx, mut rx) = ffq::spmc::channel::<u32>(4);
    for i in 0..4 {
        tx.enqueue(i);
    }
    // A full queue forces the producer to skip busy cells (announcing gaps)
    // until a consumer frees one.
    assert!(tx.try_enqueue(99).is_err());
    println!(
        "   producer: enqueued={} gaps_created={} full_rejections={}",
        tx.stats().enqueued,
        tx.stats().gaps_created,
        tx.stats().full_rejections
    );
    while rx.try_dequeue().is_ok() {}
    println!(
        "   consumer: dequeued={} gaps_skipped={}",
        rx.stats().dequeued,
        rx.stats().gaps_skipped
    );
}

fn main() {
    spsc_demo();
    spmc_demo();
    mpmc_demo();
    stats_demo();
    println!("done.");
}
