//! Layout tuning (§IV of the paper): the same queue, four memory layouts.
//!
//! Demonstrates the `channel_with` generic constructors and the per-handle
//! statistics, and reports throughput for each of Figure 2's
//! configurations on this machine plus the simulated multicore.
//!
//! Run with: `cargo run --release --example layout_tuning`

use std::time::{Duration, Instant};

use ffq::cell::{CellSlot, CompactCell, PaddedCell};
use ffq::layout::{IndexMap, LinearMap, RotateMap};

fn run<C: CellSlot<u64> + 'static, M: IndexMap>(name: &str) {
    let (mut tx, rx) = ffq::mpmc::channel_with::<u64, C, M>(4096);
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                let mut n = 0u64;
                while rx.dequeue().is_ok() {
                    n += 1;
                }
                n
            })
        })
        .collect();
    drop(rx);

    let start = Instant::now();
    let deadline = start + Duration::from_millis(400);
    let mut produced = 0u64;
    while Instant::now() < deadline {
        for _ in 0..1024 {
            tx.enqueue(produced);
            produced += 1;
        }
    }
    let stats = tx.stats();
    drop(tx);
    let consumed: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(consumed, produced);
    println!(
        "{name:<22} {:>8.3} Mops/s   (gaps created: {}, CAS failures: {})",
        produced as f64 / start.elapsed().as_secs_f64() / 1e6,
        stats.gaps_created,
        stats.cas_failures,
    );
}

fn main() {
    println!("cell layout x index mapping on this machine (FFQ-m, 1p/2c):");
    run::<CompactCell<u64>, LinearMap>("compact + linear");
    run::<PaddedCell<u64>, LinearMap>("padded  + linear");
    run::<CompactCell<u64>, RotateMap>("compact + rotate");
    run::<PaddedCell<u64>, RotateMap>("padded  + rotate");

    println!("\nsimulated 4-core Skylake, 1 producer / 8 consumers:");
    use ffq_cachesim::{simulate_spmc, CellLayoutKind, SimConfig, SimPlacement};
    for (layout, name) in [
        (CellLayoutKind::Compact, "compact (not aligned)"),
        (CellLayoutKind::Padded, "padded  (aligned)"),
    ] {
        let mut cfg = SimConfig::fig45(4096, SimPlacement::OtherCore);
        cfg.layout = layout;
        cfg.ops = 300_000;
        let r = simulate_spmc(&cfg, 8);
        println!(
            "{name:<22} {:>8.2} ops/kcycle  ({} invalidations)",
            r.ops_per_kcycle, r.invalidations
        );
    }
    println!("\n(The full sweep is `cargo run --release -p ffq-bench --bin fig2_false_sharing`.)");
}
