//! A pipeline-parallel workload — the domain of FastForward/BatchQueue/
//! B-Queue the paper's related work targets (§II): stages connected by SPSC
//! FFQs, with a fan-out stage using SPMC to feed a worker pool.
//!
//! Stage 1 (parse) -> Stage 2 (fan-out to 3 hash workers) -> Stage 3 (fold).
//!
//! Run with: `cargo run --release --example pipeline`

use std::thread;
use std::time::Instant;

const ITEMS: u64 = 500_000;

/// A toy "packet": something worth parsing and hashing.
fn make_packet(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn parse(raw: u64) -> u64 {
    raw ^ (raw >> 31)
}

fn hash(parsed: u64) -> u64 {
    let mut x = parsed;
    for _ in 0..8 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

fn main() {
    let start = Instant::now();

    // Stage 1 -> Stage 2: SPSC (one parser, one dispatcher is implicit: the
    // parser feeds the SPMC directly — its producer is single).
    let (mut parsed_tx, parsed_rx) = ffq::spmc::channel::<u64>(1 << 12);

    // Stage 2 -> Stage 3: each hash worker has its own SPSC back to the
    // folder (the paper's response-queue pattern).
    let mut fold_rx = Vec::new();
    let workers: Vec<_> = (0..3)
        .map(|_| {
            let (mut tx, rx) = ffq::spsc::channel::<u64>(1 << 12);
            fold_rx.push(rx);
            let mut parsed_rx = parsed_rx.clone();
            thread::spawn(move || {
                let mut n = 0u64;
                while let Ok(p) = parsed_rx.dequeue() {
                    tx.enqueue(hash(p));
                    n += 1;
                }
                n
            })
        })
        .collect();
    drop(parsed_rx);

    // Stage 3: fold the hashes as they arrive.
    let folder = thread::spawn(move || {
        let mut acc = 0u64;
        let mut received = 0u64;
        let mut live = vec![true; fold_rx.len()];
        while live.iter().any(|&l| l) {
            for (i, rx) in fold_rx.iter_mut().enumerate() {
                if !live[i] {
                    continue;
                }
                loop {
                    match rx.try_dequeue() {
                        Ok(h) => {
                            acc ^= h;
                            received += 1;
                        }
                        Err(ffq::TryDequeueError::Empty) => break,
                        Err(ffq::TryDequeueError::Disconnected) => {
                            live[i] = false;
                            break;
                        }
                    }
                }
            }
            std::hint::spin_loop();
        }
        (acc, received)
    });

    // Stage 1: parse and feed the pool.
    for i in 0..ITEMS {
        parsed_tx.enqueue(parse(make_packet(i)));
    }
    drop(parsed_tx);

    let per_worker: Vec<u64> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let (acc, received) = folder.join().unwrap();

    assert_eq!(received, ITEMS);
    assert_eq!(per_worker.iter().sum::<u64>(), ITEMS);
    println!(
        "pipelined {} packets in {:?}  (per-worker: {:?}, fold = {:#018x})",
        ITEMS,
        start.elapsed(),
        per_worker,
        acc
    );

    // Verify against a sequential run: XOR-fold is order-independent, so
    // the result must match exactly.
    let expected = (0..ITEMS)
        .map(|i| hash(parse(make_packet(i))))
        .fold(0, |a, h| a ^ h);
    assert_eq!(acc, expected, "parallel pipeline corrupted data");
    println!("result verified against sequential execution.");
}
