//! Cross-process RPC service over shared-memory FFQ queues — the paper's
//! enclave syscall-proxy architecture (§I), but with the two sides in
//! **separate OS processes** connected only by POSIX shared-memory names.
//!
//! The server plays the "outside world": it formats one SPMC *submission*
//! queue that the client process produces into, runs a pool of proxy
//! threads consuming from it, executes each request (a real `getppid(2)`,
//! as in the Figure 7 benchmark), and returns results over a per-proxy
//! SPSC *response* queue. Request/response words reuse the exact wire
//! encoding of `ffq_enclave::syscall`, and the queues are sized by the
//! same implicit-flow-control rule (`ffq_enclave::queue_capacity`) that
//! keeps the paper's enqueues wait-free: with at most one outstanding
//! request per caller, a queue twice the caller count can never fill.
//!
//! Start the server, then run the client from another terminal:
//!
//! ```text
//! cargo run --release --example shm_rpc_server -- ffq-rpc 2
//! cargo run --release --example shm_rpc_client -- ffq-rpc 200000 8
//! ```
//!
//! The server serves exactly one client session: when the client detaches
//! its producer, the proxies observe `Disconnected`, drain, report, and
//! the server unlinks its shared-memory names and exits. If the client is
//! killed mid-session instead, crash detection poisons the submission
//! queue and the proxies exit with an error note rather than hanging.

use std::thread;

use ffq_enclave::syscall::{execute, Request};
use ffq_shm::{spmc, spsc, ShmDequeueError, ShmRegion};

/// Callers the submission queue is provisioned for (the client clamps its
/// app-thread count to this).
const MAX_CALLERS: usize = 64;

fn usage() -> ! {
    eprintln!("usage: shm_rpc_server [base-name] [proxies]");
    eprintln!("       base-name  shared-memory name prefix (default ffq-rpc)");
    eprintln!("       proxies    proxy threads / response queues (default 2)");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let base = args.first().map(String::as_str).unwrap_or("ffq-rpc");
    let proxies: usize = match args.get(1).map(|s| s.parse()) {
        None => 2,
        Some(Ok(n)) if (1..=8).contains(&n) => n,
        Some(_) => usage(),
    };
    if args.len() > 2 || base.starts_with('-') {
        usage();
    }

    let capacity = ffq_enclave::queue_capacity(MAX_CALLERS);

    // Response queues first, submission queue last: the client polls for
    // the submission name, so once it appears every response queue is
    // already in place and enumerable.
    let mut responders = Vec::new();
    for i in 0..proxies {
        let name = format!("{base}-rsp{i}");
        let region = ShmRegion::create(&name, spsc::required_size::<u64>(capacity).unwrap())
            .unwrap_or_else(|e| die_stale(&name, e));
        responders.push(spsc::create::<u64>(region, capacity).expect("format response queue"));
    }
    let sub_name = format!("{base}-sub");
    let sub_region = ShmRegion::create(&sub_name, spmc::required_size::<u64>(capacity).unwrap())
        .unwrap_or_else(|e| die_stale(&sub_name, e));
    spmc::format::<u64>(&sub_region, capacity).expect("format submission queue");

    println!(
        "serving on '{sub_name}' (capacity {capacity}) with {proxies} prox{} — \
         run shm_rpc_client '{base}' to connect",
        if proxies == 1 { "y" } else { "ies" }
    );

    let workers: Vec<_> = responders
        .into_iter()
        .map(|mut tx| {
            let sub = sub_region.clone();
            thread::spawn(move || -> Result<u64, ShmDequeueError> {
                let mut rx = spmc::attach_consumer::<u64>(sub).expect("attach submission");
                let mut served = 0u64;
                loop {
                    match rx.dequeue() {
                        Ok(word) => {
                            let resp = execute(Request::decode(word));
                            if tx.enqueue(resp.encode()).is_err() {
                                // Client consumer died; submission side is
                                // poisoned too — stop serving.
                                return Err(ShmDequeueError::Poisoned);
                            }
                            served += 1;
                        }
                        Err(ShmDequeueError::Disconnected) => return Ok(served),
                        Err(e @ ShmDequeueError::Poisoned) => return Err(e),
                    }
                }
            })
        })
        .collect();

    let mut total = 0u64;
    let mut crashed = false;
    for (i, w) in workers.into_iter().enumerate() {
        match w.join().expect("proxy panicked") {
            Ok(served) => {
                println!("proxy {i}: served {served} requests");
                total += served;
            }
            Err(e) => {
                eprintln!("proxy {i}: stopped on {e} (client crashed?)");
                crashed = true;
            }
        }
    }

    for i in 0..proxies {
        let _ = ShmRegion::unlink(&format!("{base}-rsp{i}"));
    }
    let _ = ShmRegion::unlink(&sub_name);
    if crashed {
        std::process::exit(1);
    }
    println!("session complete: {total} requests served");
}

/// A leftover name from a crashed earlier run makes `create` fail with
/// `EEXIST`; tell the operator how to clear it rather than guessing.
fn die_stale(name: &str, e: ffq_shm::ShmError) -> ! {
    eprintln!("cannot create shared-memory object '{name}': {e}");
    eprintln!("(a previous run may have left it behind — remove /dev/shm/{name} and retry)");
    std::process::exit(1);
}
